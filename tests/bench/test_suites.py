"""Tests for the benchmark-suite emulations."""

import pytest

from repro.bench.estimate import estimate_latency
from repro.bench.suites import imb_report, osu_report, reprompi_report
from repro.cluster.netmodels import infiniband_qdr
from repro.simtime.sources import CLOCK_GETTIME
from repro.sync.hierarchical import h2hca
from tests.conftest import run_spmd

QUIET = CLOCK_GETTIME.with_(skew_walk_sigma=1e-9)


def allreduce_op(comm):
    yield from comm.allreduce(1.0, size=8)


class TestEstimate:
    def test_every_rank_gets_same_estimate(self):
        def main(ctx, comm):
            est = yield from estimate_latency(comm, allreduce_op, nreps=5)
            return est

        _, res = run_spmd(main, network=infiniband_qdr(),
                          time_source=QUIET)
        assert len(set(res.values)) == 1
        assert 0 < res.values[0] < 1e-3


class TestBarrierSuites:
    @pytest.mark.parametrize("report_fn,name", [(osu_report, "OSU"),
                                                (imb_report, "IMB")])
    def test_root_gets_report(self, report_fn, name):
        def main(ctx, comm):
            rep = yield from report_fn(comm, allreduce_op, nreps=20)
            return rep

        _, res = run_spmd(main, network=infiniband_qdr(),
                          time_source=QUIET)
        rep = res.values[0]
        assert rep.suite == name
        assert rep.t_min <= rep.latency <= rep.t_max
        assert rep.nvalid == 20
        assert all(v is None for v in res.values[1:])


class TestReproMPI:
    def _run(self, scheme, seed=0):
        def main(ctx, comm):
            alg = main.algs.setdefault(
                ctx.rank, h2hca(nfitpoints=10, fitpoint_spacing=1e-3)
            )
            g_clk = yield from alg.sync_clocks(comm, ctx.hardware_clock)
            rep = yield from reprompi_report(
                comm, allreduce_op, lambda c: g_clk,
                max_time_slice=1.0, max_nrep=20, scheme=scheme,
            )
            return rep

        main.algs = {}
        _, res = run_spmd(main, network=infiniband_qdr(),
                          time_source=QUIET, seed=seed)
        return res.values

    def test_round_time_scheme(self):
        values = self._run("round_time")
        rep = values[0]
        assert rep.suite == "ReproMPI"
        assert rep.nvalid > 0
        assert rep.t_min <= rep.latency <= rep.t_max

    def test_barrier_scheme(self):
        values = self._run("barrier")
        rep = values[0]
        assert rep.nvalid > 0

    def test_unknown_scheme(self):
        def main(ctx, comm):
            try:
                yield from reprompi_report(
                    comm, allreduce_op, lambda c: ctx.hardware_clock,
                    scheme="bogus",
                )
            except ValueError:
                return "raised"
            return "no"

        _, res = run_spmd(main, network=infiniband_qdr(),
                          time_source=QUIET)
        assert all(v == "raised" for v in res.values)


class TestRunner:
    def test_run_latency_benchmark_cells(self):
        from repro.bench.runner import run_latency_benchmark
        from repro.cluster.machines import JUPITER

        measurements = run_latency_benchmark(
            machine=JUPITER.machine(2, 2),
            network=JUPITER.network(),
            suites=["osu", "reprompi"],
            msizes=[8, 64],
            sync_algorithm=h2hca(nfitpoints=8, fitpoint_spacing=1e-3),
            nreps=10,
            max_time_slice=0.5,
            time_source=QUIET,
        )
        assert len(measurements) == 4
        keys = {(m.suite, m.msize) for m in measurements}
        assert keys == {("osu", 8), ("osu", 64), ("reprompi", 8),
                        ("reprompi", 64)}
        for m in measurements:
            assert m.report.latency > 0

    def test_reprompi_requires_sync_algorithm(self):
        from repro.bench.runner import run_latency_benchmark
        from repro.cluster.machines import JUPITER

        with pytest.raises(ValueError):
            run_latency_benchmark(
                machine=JUPITER.machine(2, 1),
                network=JUPITER.network(),
                suites=["reprompi"],
                msizes=[8],
                sync_algorithm=None,
                time_source=QUIET,
            )


class TestSKaMPI:
    def test_window_suite_reports_minimum(self):
        from repro.bench.suites import skampi_report
        from repro.sync.hierarchical import h2hca

        def main(ctx, comm):
            alg = main.algs.setdefault(
                ctx.rank, h2hca(nfitpoints=10, fitpoint_spacing=1e-3)
            )
            g_clk = yield from alg.sync_clocks(comm, ctx.hardware_clock)
            rep = yield from skampi_report(
                comm, allreduce_op, lambda c: g_clk,
                window=200e-6, nreps=20,
            )
            return rep

        main.algs = {}
        _, res = run_spmd(main, network=infiniband_qdr(),
                          time_source=QUIET)
        rep = res.values[0]
        assert rep.suite == "SKaMPI"
        assert rep.latency == rep.t_min
        assert rep.nvalid > 0
        assert all(v is None for v in res.values[1:])

    def test_all_windows_missed_yields_nan(self):
        import math

        from repro.bench.suites import skampi_report
        from repro.sync.hierarchical import h2hca

        def main(ctx, comm):
            alg = main.algs.setdefault(
                ctx.rank, h2hca(nfitpoints=10, fitpoint_spacing=1e-3)
            )
            g_clk = yield from alg.sync_clocks(comm, ctx.hardware_clock)
            # Sub-latency windows: every repetition is late on every rank.
            rep = yield from skampi_report(
                comm, allreduce_op, lambda c: g_clk,
                window=1e-9, nreps=10,
            )
            return rep

        main.algs = {}
        _, res = run_spmd(main, network=infiniband_qdr(),
                          time_source=QUIET, seed=5)
        rep = res.values[0]
        assert rep.nvalid == 0
        assert math.isnan(rep.latency)
        assert rep.invalid > 0
