"""Tests for the COV-based adaptive stopping rule."""

import numpy as np
import pytest

from repro.bench.stopping import (
    AdaptiveBarrierScheme,
    coefficient_of_variation,
)
from repro.cluster.netmodels import infiniband_qdr, ideal_network
from repro.errors import ConfigurationError
from repro.simtime.sources import CLOCK_GETTIME
from tests.conftest import run_spmd

QUIET = CLOCK_GETTIME.with_(skew_walk_sigma=1e-9)


def allreduce_op(comm):
    yield from comm.allreduce(1.0, size=8)


class TestCov:
    def test_constant_series_zero(self):
        assert coefficient_of_variation(np.ones(10)) == 0.0

    def test_scale_invariant(self):
        a = np.array([1.0, 2.0, 3.0])
        assert coefficient_of_variation(a) == pytest.approx(
            coefficient_of_variation(a * 1000)
        )

    def test_zero_mean_guard(self):
        assert coefficient_of_variation(np.zeros(5)) == 0.0


class TestAdaptiveScheme:
    def test_stops_early_on_stable_latency(self):
        """Jitter-free network: stable after the first window."""

        def main(ctx, comm):
            scheme = AdaptiveBarrierScheme(threshold=0.05, window=5,
                                           min_nreps=10, max_nreps=500)
            result = yield from scheme.run(comm, allreduce_op)
            return result.nvalid

        _, res = run_spmd(main, network=ideal_network(),
                          time_source=QUIET)
        assert all(v == 10 for v in res.values)

    def test_caps_at_max_nreps_on_noisy_latency(self):
        def main(ctx, comm):
            scheme = AdaptiveBarrierScheme(threshold=1e-5, window=5,
                                           min_nreps=10, max_nreps=30)
            result = yield from scheme.run(comm, allreduce_op)
            return result.nvalid

        _, res = run_spmd(main, network=infiniband_qdr(),
                          time_source=QUIET)
        assert all(v == 30 for v in res.values)

    def test_all_ranks_agree_on_count(self):
        def main(ctx, comm):
            scheme = AdaptiveBarrierScheme(threshold=0.2, window=5,
                                           min_nreps=10, max_nreps=200)
            result = yield from scheme.run(comm, allreduce_op)
            return result.nvalid

        _, res = run_spmd(main, network=infiniband_qdr(),
                          time_source=QUIET, seed=3)
        assert len(set(res.values)) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveBarrierScheme(threshold=0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveBarrierScheme(window=1)
        with pytest.raises(ConfigurationError):
            AdaptiveBarrierScheme(min_nreps=50, max_nreps=20)
