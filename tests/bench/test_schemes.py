"""Tests for the measurement schemes (barrier / window / Round-Time)."""

import numpy as np
import pytest

from repro.bench.schemes import BarrierScheme, RoundTimeScheme, WindowScheme
from repro.cluster.netmodels import infiniband_qdr
from repro.errors import ConfigurationError
from repro.simtime.sources import CLOCK_GETTIME
from repro.sync.hierarchical import h2hca
from tests.conftest import run_spmd

QUIET = CLOCK_GETTIME.with_(skew_walk_sigma=1e-9)


def allreduce_op(comm):
    yield from comm.allreduce(1.0, size=8)


def run_with_clock(scheme_factory, nodes=2, rpn=2, seed=0,
                   network=None, operation=allreduce_op):
    """Sync clocks with H2HCA, then run the scheme; returns rank results."""

    def main(ctx, comm):
        alg = main.algs.setdefault(
            ctx.rank, h2hca(nfitpoints=10, fitpoint_spacing=1e-3)
        )
        g_clk = yield from alg.sync_clocks(comm, ctx.hardware_clock)
        scheme = scheme_factory(lambda c: g_clk)
        result = yield from scheme.run(comm, operation)
        return result

    main.algs = {}
    _, res = run_spmd(main, num_nodes=nodes, ranks_per_node=rpn,
                      network=network or infiniband_qdr(),
                      time_source=QUIET, seed=seed)
    return res.values


class TestBarrierScheme:
    def test_collects_requested_reps(self):
        def main(ctx, comm):
            scheme = BarrierScheme(nreps=20)
            result = yield from scheme.run(comm, allreduce_op)
            return result

        _, res = run_spmd(main, network=infiniband_qdr(),
                          time_source=QUIET)
        for r in res.values:
            assert r.nvalid == 20
            assert r.invalid == 0
            assert all(d > 0 for d in r.durations)

    def test_durations_near_true_latency(self):
        def main(ctx, comm):
            scheme = BarrierScheme(nreps=30)
            result = yield from scheme.run(comm, allreduce_op)
            return result

        _, res = run_spmd(main, num_nodes=2, ranks_per_node=2,
                          network=infiniband_qdr(), time_source=QUIET)
        means = [r.mean() for r in res.values]
        assert all(1e-6 < m < 100e-6 for m in means)

    def test_rejects_zero_reps(self):
        with pytest.raises(ConfigurationError):
            BarrierScheme(nreps=0)


class TestWindowScheme:
    def test_valid_measurements_with_generous_window(self):
        results = run_with_clock(
            lambda p: WindowScheme(p, window=200e-6, nreps=20)
        )
        for r in results:
            assert r.nvalid >= 15
            assert all(d > 0 for d in r.durations)

    def test_undersized_window_invalidates(self):
        results = run_with_clock(
            lambda p: WindowScheme(p, window=1e-6, nreps=20)
        )
        # A 1 us window cannot fit a ~10 us allreduce: after the first
        # round every subsequent window has already passed (the cascade).
        total_invalid = sum(r.invalid for r in results)
        assert total_invalid > 0

    def test_auto_window_from_estimate(self):
        results = run_with_clock(
            lambda p: WindowScheme(p, window=None, nreps=10)
        )
        assert all(r.nvalid > 0 for r in results)


class TestRoundTimeScheme:
    def test_collects_until_max_nrep(self):
        results = run_with_clock(
            lambda p: RoundTimeScheme(p, max_time_slice=5.0, max_nrep=15)
        )
        for r in results:
            assert r.nvalid == 15

    def test_time_slice_bounds_duration(self):
        def main(ctx, comm):
            alg = main.algs.setdefault(
                ctx.rank, h2hca(nfitpoints=10, fitpoint_spacing=1e-3)
            )
            g_clk = yield from alg.sync_clocks(comm, ctx.hardware_clock)
            t0 = ctx.now
            scheme = RoundTimeScheme(lambda c: g_clk,
                                     max_time_slice=5e-3, max_nrep=100000)
            result = yield from scheme.run(comm, allreduce_op)
            return (result, ctx.now - t0)

        main.algs = {}
        _, res = run_spmd(main, network=infiniband_qdr(),
                          time_source=QUIET, seed=2)
        for result, elapsed in res.values:
            assert elapsed < 0.1  # slice + one round of slack
            assert result.nvalid > 0

    def test_all_ranks_same_valid_count(self):
        results = run_with_clock(
            lambda p: RoundTimeScheme(p, max_time_slice=5.0, max_nrep=12),
            seed=3,
        )
        assert len({r.nvalid for r in results}) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RoundTimeScheme(lambda c: None, slack_factor=0.5)
        with pytest.raises(ConfigurationError):
            RoundTimeScheme(lambda c: None, max_nrep=0)

    def test_durations_measure_collective(self):
        results = run_with_clock(
            lambda p: RoundTimeScheme(p, max_time_slice=5.0, max_nrep=20),
            seed=4,
        )
        # Global-clock durations from the common start: positive, bounded.
        for r in results:
            arr = np.asarray(r.durations)
            assert np.all(arr > 0)
            assert np.all(arr < 1e-3)


class TestSchemeResult:
    def test_stats_empty(self):
        from repro.bench.schemes import SchemeResult

        r = SchemeResult(scheme="x")
        assert np.isnan(r.mean())
        assert np.isnan(r.median())

    def test_stats_values(self):
        from repro.bench.schemes import SchemeResult

        r = SchemeResult(scheme="x", durations=[1.0, 2.0, 6.0])
        assert r.mean() == pytest.approx(3.0)
        assert r.median() == pytest.approx(2.0)
        assert r.nvalid == 3
