"""Tests for the tracing layer and the AMG mini-app workload."""


from repro.cluster.netmodels import infiniband_qdr
from repro.simtime.sources import CLOCK_GETTIME
from repro.trace.amg import AMGConfig, amg_iteration_loop
from repro.trace.tracer import Tracer
from tests.conftest import run_spmd

QUIET = CLOCK_GETTIME.with_(skew_walk_sigma=1e-9)


class TestTracer:
    def test_events_recorded_per_call(self):
        def main(ctx, comm):
            tracer = Tracer(ctx.hardware_clock, comm.rank)

            def op(c):
                yield from c.allreduce(1)

            for _ in range(3):
                yield from tracer.trace(comm, "MPI_Allreduce", op)
            return [
                (e.name, e.iteration) for e in tracer.events
            ]

        _, res = run_spmd(main, network=infiniband_qdr(),
                          time_source=QUIET)
        for events in res.values:
            assert events == [("MPI_Allreduce", 0), ("MPI_Allreduce", 1),
                              ("MPI_Allreduce", 2)]

    def test_event_timestamps_ordered(self):
        def main(ctx, comm):
            tracer = Tracer(ctx.hardware_clock, comm.rank)

            def op(c):
                yield from c.barrier()

            yield from tracer.trace(comm, "MPI_Barrier", op)
            e = tracer.events[0]
            return e.end > e.start and e.duration > 0

        _, res = run_spmd(main, network=infiniband_qdr(),
                          time_source=QUIET)
        assert all(res.values)

    def test_trace_returns_operation_result(self):
        def main(ctx, comm):
            tracer = Tracer(ctx.hardware_clock, comm.rank)

            def op(c):
                result = yield from c.allreduce(2)
                return result

            out = yield from tracer.trace(comm, "ar", op)
            return out

        _, res = run_spmd(main, num_nodes=2, ranks_per_node=2,
                          network=infiniband_qdr(), time_source=QUIET)
        assert res.values == [8, 8, 8, 8]

    def test_gather_events_merges_at_root(self):
        def main(ctx, comm):
            tracer = Tracer(ctx.hardware_clock, comm.rank)

            def op(c):
                yield from c.allreduce(1)

            yield from tracer.trace(comm, "ar", op)
            merged = yield from tracer.gather_events(comm)
            return merged

        _, res = run_spmd(main, network=infiniband_qdr(),
                          time_source=QUIET)
        merged = res.values[0]
        assert len(merged) == 4
        assert {e.rank for e in merged} == {0, 1, 2, 3}
        assert all(v is None for v in res.values[1:])


class TestAMG:
    def test_loop_runs_configured_iterations(self):
        config = AMGConfig(niterations=5)

        def main(ctx, comm):
            tracer = Tracer(ctx.hardware_clock, comm.rank)
            n = yield from amg_iteration_loop(comm, tracer, config)
            return (n, len(tracer.events))

        _, res = run_spmd(main, network=infiniband_qdr(),
                          time_source=QUIET)
        assert all(v == (5, 5) for v in res.values)

    def test_allreduce_dominates_runtime(self):
        """The paper's AMG profile: ~80% of time in MPI_Allreduce."""
        config = AMGConfig(niterations=10, compute_mean=2e-6,
                           compute_jitter=0.5e-6)

        def main(ctx, comm):
            tracer = Tracer(ctx.hardware_clock, comm.rank)
            t0 = ctx.now
            yield from amg_iteration_loop(comm, tracer, config)
            total = ctx.now - t0
            in_allreduce = sum(e.duration for e in tracer.events)
            return in_allreduce / total

        _, res = run_spmd(main, num_nodes=4, ranks_per_node=2,
                          network=infiniband_qdr(), time_source=QUIET,
                          seed=5)
        # Most ranks spend the majority of the loop inside the collective.
        assert sum(1 for f in res.values if f > 0.5) >= len(res.values) / 2
