"""Tests for trace export (Chrome trace JSON + ASCII Gantt)."""

import json

import pytest

from repro.trace.export import to_ascii_gantt, to_chrome_trace
from repro.trace.tracer import TraceEvent


def make_events():
    return [
        TraceEvent("MPI_Allreduce", rank=0, iteration=0, start=10.0,
                   end=10.00003),
        TraceEvent("MPI_Allreduce", rank=1, iteration=0, start=10.00001,
                   end=10.00004),
        TraceEvent("MPI_Allreduce", rank=0, iteration=1, start=10.1,
                   end=10.10002),
        TraceEvent("MPI_Allreduce", rank=1, iteration=1, start=10.1,
                   end=10.10003),
    ]


class TestChromeTrace:
    def test_valid_json_complete_events(self):
        records = json.loads(to_chrome_trace(make_events()))
        assert len(records) == 4
        for r in records:
            assert r["ph"] == "X"
            assert r["dur"] > 0
            assert r["ts"] >= 0

    def test_timestamps_rebased_to_zero(self):
        records = json.loads(to_chrome_trace(make_events()))
        assert min(r["ts"] for r in records) == 0.0

    def test_tid_is_rank(self):
        records = json.loads(to_chrome_trace(make_events()))
        assert {r["tid"] for r in records} == {0, 1}

    def test_empty(self):
        assert to_chrome_trace([]) == "[]"

    def test_microsecond_unit(self):
        records = json.loads(to_chrome_trace(make_events()))
        e0 = next(r for r in records
                  if r["tid"] == 0 and r["args"]["iteration"] == 0)
        assert e0["dur"] == pytest.approx(30.0, rel=1e-6)


class TestAsciiGantt:
    def test_renders_one_row_per_rank(self):
        out = to_ascii_gantt(make_events(), "MPI_Allreduce", 0)
        lines = out.splitlines()
        assert len(lines) == 3  # header + 2 ranks
        assert "rank    0" in lines[1]
        assert "#" in lines[1]

    def test_selects_iteration(self):
        out = to_ascii_gantt(make_events(), "MPI_Allreduce", 1)
        assert "iteration 1" in out

    def test_unknown_event_raises(self):
        with pytest.raises(ValueError):
            to_ascii_gantt(make_events(), "MPI_Bcast", 0)

    def test_bars_reflect_offsets(self):
        events = [
            TraceEvent("x", rank=0, iteration=0, start=0.0, end=1.0),
            TraceEvent("x", rank=1, iteration=0, start=9.0, end=10.0),
        ]
        out = to_ascii_gantt(events, "x", 0, width=40)
        row0, row1 = out.splitlines()[1:]
        # rank 0's bar starts at the left edge, rank 1's near the right.
        assert row0.index("#") < row1.index("#")
