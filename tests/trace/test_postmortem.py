"""Tests for post-mortem timestamp correction (Scalasca-style)."""

import pytest

from repro.cluster.netmodels import infiniband_qdr
from repro.errors import SyncError
from repro.simtime.sources import CLOCK_GETTIME
from repro.sync.offset import ClockOffset, SKaMPIOffset
from repro.trace.postmortem import PostMortemCorrector, record_sync_point
from repro.trace.tracer import TraceEvent
from tests.conftest import run_spmd

STABLE = CLOCK_GETTIME.with_(skew_walk_sigma=1e-10)
TWITCHY = CLOCK_GETTIME.with_(skew_walk_sigma=2e-6)


class TestCorrectorMath:
    def test_model_through_anchors(self):
        corr = PostMortemCorrector(
            ClockOffset(timestamp=100.0, offset=1.0),
            ClockOffset(timestamp=200.0, offset=2.0),
        )
        m = corr.model()
        assert m.offset_at(100.0) == pytest.approx(1.0)
        assert m.offset_at(200.0) == pytest.approx(2.0)

    def test_correct_timestamp_removes_offset(self):
        corr = PostMortemCorrector(
            ClockOffset(timestamp=0.0, offset=5.0),
            ClockOffset(timestamp=10.0, offset=5.0),
        )
        assert corr.correct_timestamp(4.0) == pytest.approx(-1.0)

    def test_correct_events(self):
        corr = PostMortemCorrector(
            ClockOffset(0.0, 1.0), ClockOffset(10.0, 1.0)
        )
        events = [TraceEvent("x", 1, 0, start=2.0, end=3.0)]
        fixed = corr.correct_events(events)
        assert fixed[0].start == pytest.approx(1.0)
        assert fixed[0].end == pytest.approx(2.0)
        assert fixed[0].duration == pytest.approx(1.0)

    def test_rejects_inverted_anchors(self):
        corr = PostMortemCorrector(
            ClockOffset(10.0, 0.0), ClockOffset(10.0, 0.0)
        )
        with pytest.raises(SyncError):
            corr.model()


def pipeline_main(run_seconds, time_source, seed=0, nodes=4):
    """Record two sync points around a run; return per-rank residuals."""

    def main(ctx, comm):
        alg = SKaMPIOffset(10)
        init = yield from record_sync_point(comm, ctx.hardware_clock, alg)
        yield from ctx.elapse(run_seconds)
        yield from comm.barrier()
        final = yield from record_sync_point(comm, ctx.hardware_clock,
                                             alg)
        # Residual: correct the midpoint-of-run local time and compare
        # with ground truth (rank 0's clock at the same true time).
        corr = PostMortemCorrector(init, final)
        t_mid_true = ctx.now - run_seconds / 2.0
        local_mid = ctx.hardware_clock.read(t_mid_true)
        corrected = corr.correct_timestamp(local_mid)
        return corrected, t_mid_true

    sim, res = run_spmd(main, num_nodes=nodes, ranks_per_node=1,
                        network=infiniband_qdr(),
                        time_source=time_source, seed=seed)
    # Compare corrected midpoint timestamps with rank 0's clock reading at
    # the same true instant.
    residuals = []
    for rank, (corrected, t_mid) in enumerate(res.values):
        if rank == 0:
            continue
        truth = sim.clocks[0].read_raw(t_mid)
        residuals.append(abs(corrected - truth))
    return residuals


class TestPipeline:
    def test_sync_point_every_rank_gets_anchor(self):
        def main(ctx, comm):
            anchor = yield from record_sync_point(
                comm, ctx.hardware_clock, SKaMPIOffset(5)
            )
            return anchor

        _, res = run_spmd(main, num_nodes=3, ranks_per_node=1,
                          network=infiniband_qdr(), time_source=STABLE)
        assert res.values[0].offset == 0.0
        assert all(isinstance(v, ClockOffset) for v in res.values)

    def test_accurate_under_linear_drift(self):
        residuals = pipeline_main(20.0, STABLE, seed=1)
        assert max(residuals) < 5e-6

    def test_degrades_under_nonconstant_drift(self):
        """The Becker/Doleschal claim the paper cites: linear post-mortem
        interpolation fails when drift is not constant."""
        stable = pipeline_main(60.0, STABLE, seed=2)
        twitchy = pipeline_main(60.0, TWITCHY, seed=2)
        assert max(twitchy) > 5 * max(stable)
