"""Chrome trace-event export: schema, ordering, clock remapping."""

import json

import pytest

from repro.cluster.netmodels import infiniband_qdr
from repro.obs.chrome_trace import (
    chrome_trace_json,
    engine_events_to_chrome,
    export_chrome_trace,
    trace_events_to_chrome,
)
from repro.obs.events import RecordingSink, default_sink
from repro.simtime.sources import CLOCK_GETTIME
from repro.sync.hierarchical import h2hca
from repro.trace.tracer import TraceEvent, Tracer
from tests.conftest import run_spmd

QUIET = CLOCK_GETTIME.with_(skew_walk_sigma=1e-9)


def traced_run(seed=2):
    """One synced+traced mini-run; returns (trace events, sink, clocks)."""
    alg = h2hca(nfitpoints=6, fitpoint_spacing=1e-3)
    sink = RecordingSink()

    def main(ctx, comm):
        clk = yield from alg.sync_clocks(comm, ctx.hardware_clock)
        tracer = Tracer(clk, comm.rank)

        def op(c):
            yield from c.allreduce(1)

        for _ in range(4):
            yield from tracer.trace(comm, "MPI_Allreduce", op)
        events = yield from tracer.gather_events(comm)
        return events, clk

    with default_sink(sink):
        sim, res = run_spmd(main, num_nodes=2, ranks_per_node=2,
                            network=infiniband_qdr(), time_source=QUIET,
                            seed=seed)
    merged = res.values[0][0]
    global_clocks = [clk for (_ev, clk) in res.values]
    return merged, sink, sim.clocks, global_clocks


def assert_valid_schema(records):
    assert records, "empty trace"
    for r in records:
        assert r["ph"] in {"B", "E", "X", "i", "C", "s", "f"}
        assert isinstance(r["ts"], (int, float))
        assert "pid" in r and "tid" in r
        if r["ph"] in {"B", "X", "i", "C"}:
            assert r["name"]
        if r["ph"] == "X":
            assert r["dur"] >= 0.0
        if r["ph"] in {"s", "f"}:
            # Flow events bind by id; a finish must attach to the
            # enclosing slice's end ("bp": "e") to anchor the arrow.
            assert isinstance(r["id"], int)
            if r["ph"] == "f":
                assert r["bp"] == "e"


class TestSchema:
    def test_export_both_forms_valid(self, tmp_path):
        merged, sink, hw_clocks, global_clocks = traced_run()
        raw = tmp_path / "raw.json"
        remapped = tmp_path / "global.json"
        n_raw = export_chrome_trace(
            raw, trace_events=merged, engine_events=sink.events,
            clock_of=lambda r: hw_clocks[r],
        )
        n_glob = export_chrome_trace(
            remapped, trace_events=merged, engine_events=sink.events,
            clock_of=lambda r: global_clocks[r],
        )
        assert n_raw == n_glob > 0
        for path in (raw, remapped):
            records = json.loads(path.read_text())
            assert len(records) == n_raw
            assert_valid_schema(records)

    def test_ts_monotone_per_tid_after_remap(self, tmp_path):
        merged, sink, _hw, global_clocks = traced_run()
        path = tmp_path / "global.json"
        export_chrome_trace(
            path, trace_events=merged, engine_events=sink.events,
            clock_of=lambda r: global_clocks[r],
        )
        records = json.loads(path.read_text())
        last: dict[tuple, float] = {}
        for r in records:
            key = (r["pid"], r["tid"])
            assert r["ts"] >= last.get(key, float("-inf"))
            last[key] = r["ts"]
        assert min(r["ts"] for r in records) == 0.0

    def test_collective_stacks_balanced(self):
        _merged, sink, _hw, _glob = traced_run()
        records = engine_events_to_chrome(sink.events)
        per_tid_depth: dict[int, int] = {}
        for r in sorted(records, key=lambda r: r["ts"]):
            if r["ph"] == "B":
                per_tid_depth[r["tid"]] = per_tid_depth.get(r["tid"], 0) + 1
            elif r["ph"] == "E":
                per_tid_depth[r["tid"]] -= 1
                assert per_tid_depth[r["tid"]] >= 0
        assert all(depth == 0 for depth in per_tid_depth.values())


class TestFlowEvents:
    def test_flows_absent_by_default(self):
        _merged, sink, _hw, _glob = traced_run()
        records = engine_events_to_chrome(sink.events)
        assert not [r for r in records if r["ph"] in {"s", "f"}]

    def test_flow_pairs_bind_send_to_deliver(self):
        _merged, sink, _hw, _glob = traced_run()
        records = engine_events_to_chrome(sink.events, include_flows=True)
        assert_valid_schema(records)
        starts = {r["id"]: r for r in records if r["ph"] == "s"}
        finishes = {r["id"]: r for r in records if r["ph"] == "f"}
        assert starts
        # Every finish pairs with a start of the same id (= message seq),
        # pointing from the sender's track to the receiver's, forward in
        # time; sends still in flight at the end have no finish.
        assert set(finishes) <= set(starts)
        deliver_seqs = {
            r["args"]["seq"] for r in records
            if r["ph"] == "i" and r["name"] == "deliver"
        }
        assert set(finishes) == deliver_seqs
        for seq, fin in finishes.items():
            start = starts[seq]
            assert fin["ts"] >= start["ts"]
            assert fin["cat"] == start["cat"] == "p2p.flow"

    def test_flow_sorting_keeps_arrows_after_instants(self, tmp_path):
        _merged, sink, _hw, _glob = traced_run()
        records = engine_events_to_chrome(sink.events, include_flows=True)
        ordered = json.loads(chrome_trace_json(records))
        assert_valid_schema(ordered)
        # On each track, a flow start/finish never precedes the instant
        # it annotates at the same timestamp.
        by_track: dict[tuple, list] = {}
        for r in ordered:
            by_track.setdefault((r["pid"], r["tid"]), []).append(r)
        for rows in by_track.values():
            for prev, nxt in zip(rows, rows[1:]):
                if nxt["ph"] in {"s", "f"} and nxt["ts"] == prev["ts"]:
                    assert prev["ph"] not in {"B", "E"} or prev["ph"] == "B"
        # export_chrome_trace passes the flag through.
        path = tmp_path / "flows.json"
        n = export_chrome_trace(
            path, engine_events=sink.events, include_flows=True
        )
        assert n == len(records)


class TestRemapSemantics:
    def test_remap_requires_true_times(self):
        stale = TraceEvent(name="op", rank=0, iteration=0,
                           start=1.0, end=2.0)
        with pytest.raises(ValueError):
            trace_events_to_chrome([stale], clock_of=lambda r: None)

    def test_raw_vs_remapped_differ_under_skew(self):
        merged, _sink, hw_clocks, global_clocks = traced_run()
        raw = trace_events_to_chrome(
            merged, clock_of=lambda r: hw_clocks[r]
        )
        corrected = trace_events_to_chrome(
            merged, clock_of=lambda r: global_clocks[r]
        )
        raw_ts = [r["ts"] for r in raw]
        corrected_ts = [r["ts"] for r in corrected]
        assert raw_ts != corrected_ts

    def test_empty_records_serialize(self):
        assert chrome_trace_json([]) == "[]"
