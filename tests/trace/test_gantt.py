"""Tests for Gantt-chart extraction and the visibility metric."""

import pytest

from repro.trace.gantt import (
    GanttBar,
    gantt_bars,
    start_spread,
    visibility_ratio,
)
from repro.trace.tracer import TraceEvent


def make_events(starts, duration=10e-6, name="ar", iteration=0):
    return [
        TraceEvent(name=name, rank=r, iteration=iteration, start=s,
                   end=s + duration)
        for r, s in enumerate(starts)
    ]


class TestGanttBars:
    def test_normalized_to_earliest(self):
        bars = gantt_bars(make_events([5.0, 5.1, 4.9]), "ar", 0)
        assert min(b.start for b in bars) == 0.0
        assert bars[2].start == 0.0  # rank 2 was earliest

    def test_sorted_by_rank(self):
        bars = gantt_bars(make_events([3.0, 1.0, 2.0]), "ar", 0)
        assert [b.rank for b in bars] == [0, 1, 2]

    def test_selects_name_and_iteration(self):
        events = make_events([0.0, 0.1]) + make_events(
            [7.0, 7.1], iteration=1
        )
        bars = gantt_bars(events, "ar", 1)
        assert len(bars) == 2
        assert bars[0].start == 0.0

    def test_missing_event_raises(self):
        with pytest.raises(ValueError):
            gantt_bars(make_events([0.0]), "nope", 0)


class TestVisibility:
    def test_spread(self):
        bars = [GanttBar(0, 0.0, 1.0), GanttBar(1, 5.0, 1.0)]
        assert start_spread(bars) == 5.0

    def test_visible_when_durations_dominate(self):
        bars = [GanttBar(0, 0.0, 30e-6), GanttBar(1, 5e-6, 30e-6)]
        assert visibility_ratio(bars) > 1.0

    def test_invisible_when_spread_dominates(self):
        # clock_gettime-style: starts differ by hours, events last 30 us.
        bars = [GanttBar(0, 0.0, 30e-6), GanttBar(1, 3600.0, 30e-6)]
        assert visibility_ratio(bars) < 1e-7

    def test_zero_spread_infinite(self):
        bars = [GanttBar(0, 0.0, 1e-6), GanttBar(1, 0.0, 1e-6)]
        assert visibility_ratio(bars) == float("inf")
