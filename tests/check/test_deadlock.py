"""Deadlock diagnosis: the sanitizer names the blocked-wait cycle."""

from __future__ import annotations

import pytest

from repro.check import checking
from repro.check.sanitizer import _find_cycle
from repro.errors import DeadlockError
from tests.conftest import run_spmd


class TestFindCycle:
    def test_two_cycle(self):
        assert _find_cycle({0: 1, 1: 0}) == [0, 1]

    def test_three_cycle_with_tail(self):
        cycle = _find_cycle({5: 0, 0: 1, 1: 2, 2: 0})
        assert sorted(cycle) == [0, 1, 2]

    def test_no_cycle(self):
        assert _find_cycle({0: 1, 1: 2}) is None

    def test_empty(self):
        assert _find_cycle({}) is None


class TestDeadlockDiagnosis:
    def test_recv_cycle_named(self):
        """Classic head-to-head recv deadlock: the cycle is spelled out."""

        def body(ctx, comm):
            peer = 1 - comm.rank if comm.rank < 2 else comm.rank
            if comm.rank < 2:
                yield from comm.recv(peer, tag=1)  # nobody ever sends
            return None

        with checking("strict"):
            with pytest.raises(DeadlockError) as info:
                run_spmd(body, num_nodes=2, ranks_per_node=1)
        text = str(info.value)
        assert "blocked-wait diagnosis" in text
        assert "rank 0: recv(source=rank 1, tag=" in text
        assert "wait cycle:" in text
        assert "rank 0 -> rank 1 -> rank 0" in text or (
            "rank 1 -> rank 0 -> rank 1" in text
        )

    def test_ssend_deadlock_named(self):
        """Head-to-head rendezvous sends: both blocked in ssend."""

        def body(ctx, comm):
            peer = 1 - comm.rank
            yield from comm.ssend(peer, tag=1, payload="x")
            yield from comm.recv(peer, tag=1)
            return None

        with checking("strict"):
            with pytest.raises(DeadlockError) as info:
                run_spmd(body, num_nodes=2, ranks_per_node=1)
        text = str(info.value)
        assert "ssend(dest=rank" in text
        assert "wait cycle:" in text

    def test_no_checker_still_reports_states(self):
        """Without a sanitizer the engine's raw deadlock error remains."""

        def body(ctx, comm):
            if comm.rank == 0:
                yield from comm.recv(1, tag=1)
            return None

        with pytest.raises(DeadlockError) as info:
            run_spmd(body, num_nodes=2, ranks_per_node=1)
        assert "deadlock: ranks [0]" in str(info.value)
        assert "blocked-wait diagnosis" not in str(info.value)

    def test_unsatisfiable_wait_without_cycle(self):
        """One rank waiting on an exited peer: diagnosed, no false cycle."""

        def body(ctx, comm):
            if comm.rank == 0:
                yield from comm.recv(1, tag=1)
            return None

        with checking("strict"):
            with pytest.raises(DeadlockError) as info:
                run_spmd(body, num_nodes=2, ranks_per_node=1)
        text = str(info.value)
        assert "rank 0: recv(source=rank 1" in text
        assert "no closed wait cycle" in text
