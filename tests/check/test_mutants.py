"""Engine-mutant suite: proof the sanitizer has teeth.

Each test installs one deliberately broken engine behaviour (a *mutant*)
on a live :class:`~repro.simmpi.engine.Engine` and asserts the strict
sanitizer kills the run with the expected rule.  If a refactor ever
neuters a check, the corresponding mutant survives and this suite fails
— the property/conformance tests only show clean runs pass; these show
dirty runs cannot.

Mutants (rule each must trip):

1. LIFO mailbox matching            → ``fifo-order``
2. message silently dropped         → ``stats-consistency``
3. message delivered twice          → ``conservation``
4. event stamped with a past time   → ``monotonic-time``
5. delivery counter not incremented → ``stats-consistency``
6. double ProcBlock on rendezvous   → ``lifecycle``
7. global clock with slope 2 / non-monotone → ``clock-sanity``
"""

from __future__ import annotations

import types

import pytest

from repro.check import InvariantViolation, assert_clock_sane, checking
from repro.cluster.netmodels import ideal_network
from repro.cluster.topology import Machine
from repro.obs import events as ev
from repro.simmpi.simulation import Simulation


def make_sim(check="strict"):
    machine = Machine(num_nodes=2, sockets_per_node=1, cores_per_socket=1,
                      ranks_per_node=1, name="mutantbox")
    return Simulation(machine=machine, network=ideal_network(), seed=3,
                      check=check)


def two_sends_then_recvs(ctx, comm):
    """Rank 0 sends twice on one channel; rank 1 queues both, then recvs."""
    if ctx.rank == 0:
        yield from comm.send(1, tag=1, payload="first")
        yield from comm.send(1, tag=1, payload="second")
        return None
    yield from ctx.elapse(0.1)  # both messages land in the mailbox
    a = yield from comm.recv(0, tag=1)
    b = yield from comm.recv(0, tag=1)
    return (a.payload, b.payload)


def fire_and_forget(ctx, comm):
    """Rank 0 sends a message rank 1 never receives (legal in MPI)."""
    if ctx.rank == 0:
        yield from comm.send(1, tag=1, payload="lost")
    else:
        yield from ctx.elapse(0.1)
    return None


def one_message(ctx, comm):
    if ctx.rank == 0:
        yield from comm.send(1, tag=1, payload="x")
        return None
    msg = yield from comm.recv(0, tag=1)
    return msg.payload


def rendezvous(ctx, comm):
    if ctx.rank == 0:
        yield from comm.ssend(1, tag=1, payload="x")
        return None
    yield from ctx.elapse(0.01)
    msg = yield from comm.recv(0, tag=1)
    return msg.payload


def run_mutated(sim, main):
    for rank in range(sim.machine.num_ranks):
        sim.engine.bind(rank, main(sim.contexts[rank], sim.world(rank)))
    values = sim.engine.run()
    sim.checker.finalize(sim.engine)
    return values


class TestEngineMutants:
    def test_lifo_matching_caught(self):
        """Mutant 1: mailbox matched newest-first (breaks non-overtaking)."""
        sim = make_sim()

        def lifo_match(self, proc, source, tag):
            for i in range(len(proc.mailbox) - 1, -1, -1):
                msg = proc.mailbox[i]
                if msg.matches(source, tag):
                    del proc.mailbox[i]
                    return msg
            return None

        sim.engine._match_mailbox = types.MethodType(lifo_match, sim.engine)
        with pytest.raises(InvariantViolation) as info:
            run_mutated(sim, two_sends_then_recvs)
        assert info.value.violation.rule == "fifo-order"

    def test_dropped_message_caught(self):
        """Mutant 2: a deposited message vanishes from the mailbox."""
        sim = make_sim()
        original = sim.engine._do_send

        def dropping_send(self, proc, cmd):
            original(proc, cmd)
            dest = self._procs[cmd.dest]
            if dest.mailbox:
                dest.mailbox.pop()  # the message is never seen again

        sim.engine._do_send = types.MethodType(dropping_send, sim.engine)
        with pytest.raises(InvariantViolation) as info:
            run_mutated(sim, fire_and_forget)
        assert info.value.violation.rule == "stats-consistency"

    def test_double_delivery_caught(self):
        """Mutant 3: the same message completes delivery twice."""
        sim = make_sim()
        original = sim.engine._finish_delivery

        def doubling_delivery(self, proc, msg):
            out = original(proc, msg)
            self.sink.emit(ev.MsgDeliver(
                time=proc.now, rank=proc.rank, source=msg.source,
                tag=msg.tag, size=msg.size, seq=msg.seq, latency=0.0,
            ))
            return out

        sim.engine._finish_delivery = types.MethodType(
            doubling_delivery, sim.engine
        )
        with pytest.raises(InvariantViolation) as info:
            run_mutated(sim, one_message)
        assert info.value.violation.rule == "conservation"

    def test_backwards_timestamp_caught(self):
        """Mutant 4: an event stamped before the rank's time line."""
        sim = make_sim()
        original = sim.engine._finish_delivery

        def misstamping_delivery(self, proc, msg):
            out = original(proc, msg)
            self.sink.emit(ev.ProcWake(time=-1.0, rank=proc.rank))
            return out

        sim.engine._finish_delivery = types.MethodType(
            misstamping_delivery, sim.engine
        )
        with pytest.raises(InvariantViolation) as info:
            run_mutated(sim, one_message)
        assert info.value.violation.rule == "monotonic-time"

    def test_lost_delivery_counter_caught(self):
        """Mutant 5: Engine.stats() undercounts deliveries by one."""
        sim = make_sim()
        original = sim.engine._finish_delivery

        def uncounted_delivery(self, proc, msg):
            out = original(proc, msg)
            self.messages_delivered -= 1
            return out

        sim.engine._finish_delivery = types.MethodType(
            uncounted_delivery, sim.engine
        )
        with pytest.raises(InvariantViolation) as info:
            run_mutated(sim, one_message)
        assert info.value.violation.rule == "stats-consistency"

    def test_double_block_caught(self):
        """Mutant 6: a rendezvous sender blocks twice without waking."""
        sim = make_sim()
        original = sim.engine._do_send

        def double_blocking_send(self, proc, cmd):
            if cmd.synchronous:
                self.sink.emit(ev.ProcBlock(
                    time=proc.now, rank=proc.rank, reason="recv",
                    source=cmd.dest, tag=cmd.tag,
                ))
            original(proc, cmd)

        sim.engine._do_send = types.MethodType(
            double_blocking_send, sim.engine
        )
        with pytest.raises(InvariantViolation) as info:
            run_mutated(sim, rendezvous)
        assert info.value.violation.rule == "lifecycle"

    def test_report_mode_flags_instead_of_raising(self):
        """The same mutant in report mode: run completes, report dirty."""
        sim = make_sim(check="report")

        def lifo_match(self, proc, source, tag):
            for i in range(len(proc.mailbox) - 1, -1, -1):
                msg = proc.mailbox[i]
                if msg.matches(source, tag):
                    del proc.mailbox[i]
                    return msg
            return None

        sim.engine._match_mailbox = types.MethodType(lifo_match, sim.engine)
        values = run_mutated(sim, two_sends_then_recvs)
        assert values[1] == ("second", "first")  # the mutant really fired
        report = sim.checker.report
        assert not report.ok
        assert "fifo-order" in [v.rule for v in report.violations]

    def test_unmutated_engine_is_clean(self):
        """Control: every mutant program is sanitizer-clean unmutated."""
        for body in (two_sends_then_recvs, fire_and_forget, one_message,
                     rendezvous):
            sim = make_sim()
            run_mutated(sim, body)
            assert sim.checker.report.ok


class TestClockMutants:
    class _SlopeTwoClock:
        def read(self, t: float) -> float:
            return 2.0 * t

    class _BackwardsClock:
        def read(self, t: float) -> float:
            return 10.0 - t

    def test_wrong_slope_caught(self):
        with pytest.raises(InvariantViolation) as info:
            assert_clock_sane(self._SlopeTwoClock(), 1.0, 2.0)
        assert info.value.violation.rule == "clock-sanity"

    def test_backwards_clock_caught(self):
        with pytest.raises(InvariantViolation) as info:
            assert_clock_sane(self._BackwardsClock(), 1.0, 2.0)
        assert info.value.violation.rule == "clock-sanity"

    def test_sane_clock_passes(self):
        class Identity:
            def read(self, t: float) -> float:
                return t + 0.5

        assert_clock_sane(Identity(), 1.0, 2.0)


class TestCheckingContextIsolation:
    def test_env_restored_after_block(self):
        import os

        from repro.check.config import MODE_ENV

        before = os.environ.get(MODE_ENV)
        with checking("strict"):
            assert os.environ[MODE_ENV] == "strict"
        assert os.environ.get(MODE_ENV) == before
