"""Tests for the simulation sanitizer (repro.check)."""
