"""Env-based check activation, report files, and the Simulation wiring."""

from __future__ import annotations

import json
import os

import pytest

from repro.check import (
    CheckReport,
    SanitizerSink,
    TeeSink,
    active_check_mode,
    append_report,
    check_report_dir,
    checking,
    load_reports,
    set_check_mode,
    write_aggregate,
)
from repro.check.config import DIR_ENV, MODE_ENV
from repro.obs.events import RecordingSink
from tests.conftest import run_spmd


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    monkeypatch.delenv(MODE_ENV, raising=False)
    monkeypatch.delenv(DIR_ENV, raising=False)


class TestActivation:
    def test_off_by_default(self):
        assert active_check_mode() is None
        assert check_report_dir() is None

    def test_env_variable_activates(self, monkeypatch):
        monkeypatch.setenv(MODE_ENV, "strict")
        assert active_check_mode() == "strict"

    def test_typo_is_off_not_strict(self, monkeypatch):
        monkeypatch.setenv(MODE_ENV, "strictt")
        assert active_check_mode() is None

    def test_case_and_whitespace_tolerant(self, monkeypatch):
        monkeypatch.setenv(MODE_ENV, " Report ")
        assert active_check_mode() == "report"

    def test_set_check_mode_round_trip(self, tmp_path):
        set_check_mode("report", report_dir=str(tmp_path / "r"))
        assert active_check_mode() == "report"
        assert check_report_dir() == str(tmp_path / "r")
        assert os.path.isdir(str(tmp_path / "r"))
        set_check_mode(None)
        assert active_check_mode() is None
        assert check_report_dir() is None

    def test_set_check_mode_rejects_unknown(self):
        with pytest.raises(ValueError):
            set_check_mode("loose")

    def test_checking_restores_previous(self, monkeypatch):
        monkeypatch.setenv(MODE_ENV, "report")
        with checking("strict"):
            assert active_check_mode() == "strict"
        assert active_check_mode() == "report"


class TestReportFiles:
    def test_append_and_aggregate(self, tmp_path):
        d = str(tmp_path)
        r1 = CheckReport(label="a", runs=1, events_checked=10)
        r2 = CheckReport(label="b", runs=1, events_checked=5)
        append_report(r1, d)
        append_report(r2, d)
        merged = load_reports(d)
        assert merged.runs == 2
        assert merged.events_checked == 15
        path, merged2 = write_aggregate(d)
        assert merged2.to_dict()["runs"] == 2
        data = json.loads(open(path).read())
        assert data["ok"] is True and data["runs"] == 2

    def test_load_missing_dir_is_empty(self, tmp_path):
        merged = load_reports(str(tmp_path / "nope"))
        assert merged.runs == 0 and merged.ok


class TestSimulationWiring:
    @staticmethod
    def body(ctx, comm):
        total = yield from comm.allreduce(1)
        return total

    def test_env_attaches_checker(self):
        with checking("strict"):
            sim, res = run_spmd(self.body)
        assert isinstance(sim.checker, SanitizerSink)
        assert res.check_report is not None
        assert res.check_report.ok and res.check_report.runs == 1

    def test_explicit_param_overrides_env(self):
        sim, res = run_spmd(self.body)  # env off, no explicit param
        assert sim.checker is None
        assert res.check_report is None

    def test_checker_tees_with_user_sink(self):
        """A user sink still records everything when checking is on."""
        from repro.cluster.netmodels import ideal_network
        from repro.cluster.topology import Machine
        from repro.simmpi.simulation import Simulation

        sink = RecordingSink()
        machine = Machine(num_nodes=2, sockets_per_node=1,
                          cores_per_socket=1, ranks_per_node=1,
                          name="teebox")
        sim = Simulation(machine=machine, network=ideal_network(), seed=0,
                         sink=sink, check="strict")
        assert isinstance(sim.engine.sink, TeeSink)
        res = sim.run(self.body)
        assert len(sink.events) == res.check_report.events_checked > 0

    def test_report_mode_appends_to_dir(self, tmp_path):
        d = str(tmp_path)
        with checking("report", report_dir=d):
            run_spmd(self.body)
            run_spmd(self.body, seed=1)
        merged = load_reports(d)
        assert merged.runs == 2 and merged.ok

    def test_results_identical_with_checking(self):
        """Checking is passive: values and stats are bit-identical."""
        _, plain = run_spmd(self.body, seed=7)
        with checking("strict"):
            _, checked = run_spmd(self.body, seed=7)
        assert plain.values == checked.values
        assert plain.engine_stats == checked.engine_stats
