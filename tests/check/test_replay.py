"""Tests for event-stream recording, replay, and the repro.check CLI."""

from __future__ import annotations

import json

import pytest

from repro.check import InvariantViolation
from repro.check.__main__ import main as check_main
from repro.check.replay import (
    EVENT_TYPES,
    dump_events,
    event_from_dict,
    event_to_dict,
    load_events,
    replay_events,
    replay_file,
)
from repro.cluster.netmodels import ideal_network
from repro.errors import SimulationError
from repro.obs import events as ev
from repro.obs.events import RecordingSink


def recorded_run(seed=0):
    """A small clean run with a RecordingSink attached."""
    sink = RecordingSink()

    def body(ctx, comm):
        total = yield from comm.allreduce(ctx.rank)
        yield from comm.barrier()
        return total

    from repro.cluster.topology import Machine
    from repro.simmpi.simulation import Simulation

    machine = Machine(num_nodes=2, sockets_per_node=1, cores_per_socket=2,
                      ranks_per_node=2, name="replaybox")
    sim = Simulation(machine=machine, network=ideal_network(), seed=seed,
                     sink=sink)
    sim.run(body)
    return sink.events


class TestEventRoundTrip:
    def test_every_type_round_trips(self):
        samples = [
            ev.MsgSend(time=1.0, rank=0, dest=1, tag=2, size=8, seq=0,
                       level="remote", synchronous=True),
            ev.MsgDeliver(time=2.0, rank=1, source=0, tag=2, size=8,
                          seq=0, latency=1.0),
            ev.ProcBlock(time=1.0, rank=0, reason="recv", source=1, tag=2),
            ev.ProcWake(time=2.0, rank=0),
            ev.NicQueue(time=1.0, rank=0, node=0, backlog=2.5,
                        inject_time=1.1),
            ev.FaultInject(time=5.0, rank=-1, kind="clock_step",
                           name="ntp", target="node 1", duration=0.0),
            ev.ResyncRound(time=3.0, rank=0, round_index=1, age=0.5),
            ev.PhaseBegin(time=1.0, rank=0, name="sync.learn",
                          algorithm="hca", level="GLOBAL", round_index=2,
                          ref=0, peer=3),
            ev.PhaseEnd(time=2.0, rank=0, name="sync.learn"),
            ev.CollectiveEnter(time=1.0, rank=0, name="MPI_Barrier",
                               comm_id=0, comm_rank=0, comm_size=4),
            ev.CollectiveExit(time=2.0, rank=0, name="MPI_Barrier",
                              comm_id=0, comm_rank=0, comm_size=4),
        ]
        assert {type(s).__name__ for s in samples} == set(EVENT_TYPES)
        for event in samples:
            assert event_from_dict(event_to_dict(event)) == event

    def test_unknown_type_rejected(self):
        with pytest.raises(SimulationError):
            event_from_dict({"type": "Bogus", "time": 1.0})

    def test_bad_fields_rejected(self):
        with pytest.raises(SimulationError):
            event_from_dict({"type": "ProcWake", "nonsense": True})

    def test_dump_load_file_round_trip(self, tmp_path):
        events = recorded_run()
        path = tmp_path / "run.jsonl"
        n = dump_events(events, path)
        assert n == len(events) > 0
        assert list(load_events(path)) == events


class TestReplay:
    def test_clean_stream_clean_report(self):
        report = replay_events(recorded_run())
        assert report.ok
        assert report.events_checked > 0

    def test_recorded_and_live_checks_agree(self, tmp_path):
        path = tmp_path / "run.jsonl"
        dump_events(recorded_run(), path)
        assert replay_file(path).ok

    def test_mutated_stream_flagged(self):
        events = recorded_run()
        deliveries = [e for e in events if isinstance(e, ev.MsgDeliver)]
        events.append(deliveries[0])  # duplicate one delivery at the end
        report = replay_events(events)
        assert not report.ok
        assert "conservation" in [v.rule for v in report.violations]

    def test_strict_replay_raises(self):
        events = recorded_run()
        deliveries = [e for e in events if isinstance(e, ev.MsgDeliver)]
        events.append(deliveries[0])
        with pytest.raises(InvariantViolation):
            replay_events(events, mode="strict")

    def test_truncated_stream_notes_undelivered(self):
        """Cutting a stream mid-flight is context, not a violation."""
        events = recorded_run()
        last_send = max(
            i for i, e in enumerate(events) if isinstance(e, ev.MsgSend)
        )
        report = replay_events(events[:last_send + 1])
        assert "undelivered" in report.label


class TestCheckCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        dump_events(recorded_run(), path)
        assert check_main([str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_dirty_file_exits_one_and_writes_json(self, tmp_path, capsys):
        events = recorded_run()
        deliveries = [e for e in events if isinstance(e, ev.MsgDeliver)]
        events.append(deliveries[0])
        path = tmp_path / "bad.jsonl"
        dump_events(events, path)
        out_json = tmp_path / "report.json"
        assert check_main([str(path), "--json", str(out_json)]) == 1
        assert "conservation" in capsys.readouterr().out
        data = json.loads(out_json.read_text())
        assert data["ok"] is False
        assert data["total_violations"] >= 1

    def test_multiple_files_merge(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        dump_events(recorded_run(seed=0), a)
        dump_events(recorded_run(seed=1), b)
        assert check_main([str(a), str(b)]) == 0
