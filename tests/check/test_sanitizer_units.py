"""Unit tests for every sanitizer rule, on synthetic event streams."""

from __future__ import annotations

import pytest

from repro.check import (
    MAX_VIOLATIONS,
    CheckReport,
    InvariantViolation,
    SanitizerSink,
    TeeSink,
    Violation,
)
from repro.obs import events as ev


def send(time=1.0, rank=0, dest=1, tag=5, size=8, seq=0, sync=False):
    return ev.MsgSend(time=time, rank=rank, dest=dest, tag=tag, size=size,
                      seq=seq, level="remote", synchronous=sync)


def deliver(time=2.0, rank=1, source=0, tag=5, size=8, seq=0):
    return ev.MsgDeliver(time=time, rank=rank, source=source, tag=tag,
                         size=size, seq=seq, latency=1.0)


def rules_of(report: CheckReport) -> list[str]:
    return [v.rule for v in report.violations]


def reporting() -> SanitizerSink:
    return SanitizerSink(mode="report")


class TestMonotonicTime:
    def test_backwards_event_flagged(self):
        s = reporting()
        s.emit(send(time=2.0, seq=0))
        s.emit(ev.ProcWake(time=1.0, rank=0))
        assert "monotonic-time" in rules_of(s.report)

    def test_per_rank_not_global(self):
        """Interleaved ranks may emit at non-monotone *global* times."""
        s = reporting()
        s.emit(send(time=5.0, rank=0, seq=0))
        s.emit(send(time=1.0, rank=1, dest=0, seq=1))
        s.finalize()
        assert "monotonic-time" not in rules_of(s.report)

    def test_fault_inject_exempt(self):
        """FaultInject is emitted a priori at future activation times."""
        s = reporting()
        s.emit(send(time=5.0, rank=0, seq=0))
        s.emit(ev.FaultInject(time=1.0, rank=0, kind="clock_step",
                              name="ntp", target="node 0"))
        s.emit(send(time=6.0, rank=0, seq=1))
        assert rules_of(s.report) == []

    def test_strict_raises_at_event(self):
        s = SanitizerSink(mode="strict")
        s.emit(send(time=2.0, seq=0))
        with pytest.raises(InvariantViolation) as info:
            s.emit(ev.ProcWake(time=1.0, rank=0))
        assert info.value.violation.rule == "monotonic-time"


class TestFifoOrder:
    def test_overtaking_flagged(self):
        s = reporting()
        s.emit(send(time=1.0, seq=0))
        s.emit(send(time=1.1, seq=1))
        s.emit(deliver(time=2.0, seq=1))
        s.emit(deliver(time=2.1, seq=0))
        assert "fifo-order" in rules_of(s.report)

    def test_in_order_clean(self):
        s = reporting()
        s.emit(send(time=1.0, seq=0))
        s.emit(send(time=1.1, seq=1))
        s.emit(deliver(time=2.0, seq=0))
        s.emit(deliver(time=2.1, seq=1))
        assert rules_of(s.report) == []

    def test_different_tags_are_different_channels(self):
        """Matching by a later tag first is legal (MPI non-overtaking is
        per (source, dest, tag))."""
        s = reporting()
        s.emit(send(time=1.0, seq=0, tag=5))
        s.emit(send(time=1.1, seq=1, tag=6))
        s.emit(deliver(time=2.0, seq=1, tag=6))
        s.emit(deliver(time=2.1, seq=0, tag=5))
        assert rules_of(s.report) == []


class TestConservation:
    def test_forged_delivery(self):
        s = reporting()
        s.emit(deliver(seq=42))
        assert "conservation" in rules_of(s.report)

    def test_double_delivery(self):
        s = reporting()
        s.emit(send(seq=0))
        s.emit(deliver(time=2.0, seq=0))
        s.emit(deliver(time=3.0, seq=0))
        assert rules_of(s.report).count("conservation") == 1

    def test_seq_reuse(self):
        s = reporting()
        s.emit(send(time=1.0, seq=0))
        s.emit(send(time=2.0, seq=0))
        assert "conservation" in rules_of(s.report)


class TestMsgIntegrity:
    def test_size_mismatch(self):
        s = reporting()
        s.emit(send(seq=0, size=8))
        s.emit(deliver(seq=0, size=16))
        assert "msg-integrity" in rules_of(s.report)

    def test_wrong_endpoints(self):
        s = reporting()
        s.emit(send(seq=0, rank=0, dest=1))
        s.emit(deliver(seq=0, rank=1, source=2))
        assert "msg-integrity" in rules_of(s.report)

    def test_delivery_before_send(self):
        s = reporting()
        s.emit(send(time=5.0, seq=0))
        s.emit(deliver(time=1.0, seq=0))
        assert "msg-integrity" in rules_of(s.report)


class TestLifecycle:
    def test_double_block(self):
        s = reporting()
        s.emit(ev.ProcBlock(time=1.0, rank=0, reason="recv", source=1))
        s.emit(ev.ProcBlock(time=2.0, rank=0, reason="recv", source=2))
        assert "lifecycle" in rules_of(s.report)

    def test_wake_without_block(self):
        s = reporting()
        s.emit(ev.ProcWake(time=1.0, rank=0))
        assert "lifecycle" in rules_of(s.report)

    def test_block_wake_block_clean(self):
        s = reporting()
        s.emit(ev.ProcBlock(time=1.0, rank=0, reason="recv", source=1))
        s.emit(ev.ProcWake(time=2.0, rank=0))
        s.emit(ev.ProcBlock(time=3.0, rank=0, reason="ssend", source=1))
        s.emit(ev.ProcWake(time=4.0, rank=0))
        s.finalize()
        assert rules_of(s.report) == []

    def test_resync_rounds_must_ascend(self):
        s = reporting()
        s.emit(ev.ResyncRound(time=1.0, rank=0, round_index=1))
        s.emit(ev.ResyncRound(time=2.0, rank=0, round_index=3))
        assert "lifecycle" in rules_of(s.report)

    def test_still_blocked_at_finalize(self):
        s = reporting()
        s.emit(ev.ProcBlock(time=1.0, rank=0, reason="recv", source=1))
        s.finalize()
        assert "lifecycle" in rules_of(s.report)


class TestCollectiveNesting:
    @staticmethod
    def enter(time, name="MPI_Barrier", comm_id=0, rank=0):
        return ev.CollectiveEnter(time=time, rank=rank, name=name,
                                  comm_id=comm_id, comm_rank=0, comm_size=2)

    @staticmethod
    def exit_(time, name="MPI_Barrier", comm_id=0, rank=0):
        return ev.CollectiveExit(time=time, rank=rank, name=name,
                                 comm_id=comm_id, comm_rank=0, comm_size=2)

    def test_exit_without_enter(self):
        s = reporting()
        s.emit(self.exit_(1.0))
        assert "collective-nesting" in rules_of(s.report)

    def test_mismatched_exit(self):
        s = reporting()
        s.emit(self.enter(1.0, name="MPI_Barrier"))
        s.emit(self.exit_(2.0, name="MPI_Bcast"))
        assert "collective-nesting" in rules_of(s.report)

    def test_nested_lifo_clean(self):
        """dup() runs a barrier inside: inner exits first (LIFO)."""
        s = reporting()
        s.emit(self.enter(1.0, name="MPI_Comm_dup"))
        s.emit(self.enter(1.5, name="MPI_Barrier"))
        s.emit(self.exit_(2.0, name="MPI_Barrier"))
        s.emit(self.exit_(2.5, name="MPI_Comm_dup"))
        s.finalize()
        assert rules_of(s.report) == []

    def test_unclosed_at_finalize(self):
        s = reporting()
        s.emit(self.enter(1.0))
        s.finalize()
        assert "collective-nesting" in rules_of(s.report)


class _FakeEngine:
    """Just enough engine surface for the finalize cross-checks."""

    def __init__(self, sent, delivered, unreceived):
        self._stats = {
            "messages_sent": sent,
            "messages_delivered": delivered,
            "messages_unreceived": unreceived,
        }
        self.metrics = None

    def stats(self):
        return dict(self._stats)


class TestStatsConsistency:
    def test_matching_stats_clean(self):
        s = reporting()
        s.emit(send(time=1.0, seq=0))
        s.emit(deliver(time=2.0, seq=0))
        s.emit(send(time=3.0, seq=1))  # never delivered: unreceived
        s.finalize(_FakeEngine(sent=2, delivered=1, unreceived=1))
        assert rules_of(s.report) == []

    def test_drifted_counter_flagged(self):
        s = reporting()
        s.emit(send(time=1.0, seq=0))
        s.emit(deliver(time=2.0, seq=0))
        s.finalize(_FakeEngine(sent=1, delivered=0, unreceived=0))
        assert "stats-consistency" in rules_of(s.report)


class TestSpanCrossCheck:
    """The sanitizer and a tee'd span recorder must agree on open edges."""

    def _pair(self, events):
        from repro.obs.spans import SpanRecorder

        s = reporting()
        recorder = SpanRecorder()
        tee = TeeSink(s, recorder)
        for event in events:
            tee.emit(event)
        return s, recorder

    def test_agreeing_layers_clean(self):
        s, recorder = self._pair([
            send(time=1.0, seq=0),
            deliver(time=2.0, seq=0),
            send(time=3.0, seq=1),  # still in flight — both layers see it
        ])
        s.finalize(
            _FakeEngine(sent=2, delivered=1, unreceived=1), spans=recorder
        )
        assert rules_of(s.report) == []

    def test_tampered_recorder_flagged(self):
        s, recorder = self._pair([
            send(time=1.0, seq=0),
            deliver(time=2.0, seq=0),
        ])
        # Simulate a recorder that mis-parsed the stream: an edge it
        # thinks is still open that the sanitizer saw delivered.
        recorder.run.open_sends[99] = send(time=1.5, seq=99)
        s.finalize(spans=recorder)
        found = [v for v in s.report.violations
                 if v.rule == "stats-consistency"]
        assert found
        assert found[0].details["stat"] == "open_edges"

    def test_engine_arbitrates_when_present(self):
        s, recorder = self._pair([send(time=1.0, seq=0)])
        # All three layers disagree-free except the engine stat.
        s.finalize(
            _FakeEngine(sent=1, delivered=0, unreceived=0), spans=recorder
        )
        stats_rules = [v.details.get("stat") for v in s.report.violations
                       if v.rule == "stats-consistency"]
        assert "messages_unreceived" in stats_rules


class TestReportMechanics:
    def test_violation_cap(self):
        s = reporting()
        for i in range(MAX_VIOLATIONS + 10):
            s.emit(deliver(time=float(i + 1), seq=i))  # all forged
        assert len(s.report.violations) == MAX_VIOLATIONS
        assert s.report.dropped == 10
        assert not s.report.ok
        assert s.report.total_violations == MAX_VIOLATIONS + 10

    def test_report_round_trip(self):
        s = reporting()
        s.emit(deliver(seq=7))
        s.finalize()
        clone = CheckReport.from_dict(s.report.to_dict())
        assert clone.to_dict() == s.report.to_dict()
        assert not clone.ok

    def test_merge_accumulates(self):
        a = CheckReport(runs=1, events_checked=10)
        a.violations.append(Violation(rule="fifo-order", message="x"))
        b = CheckReport(runs=2, events_checked=5)
        a.merge_from(b)
        assert a.runs == 3
        assert a.events_checked == 15
        assert len(a.violations) == 1

    def test_format_text_mentions_rule(self):
        s = reporting()
        s.emit(deliver(seq=9))
        text = s.report.format_text()
        assert "VIOLATIONS" in text and "conservation" in text

    def test_finalize_idempotent(self):
        s = reporting()
        s.emit(ev.ProcBlock(time=1.0, rank=0, reason="recv", source=1))
        s.finalize()
        s.finalize()
        assert s.report.runs == 1
        assert rules_of(s.report).count("lifecycle") == 1

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            SanitizerSink(mode="loose")


class TestTeeSink:
    def test_fans_out_and_skips_none(self):
        seen = []

        class Recorder:
            def emit(self, event):
                seen.append(event)

        checker = reporting()
        tee = TeeSink(checker, None, Recorder())
        e = send(seq=0)
        tee.emit(e)
        assert seen == [e]
        assert checker.report.events_checked == 1

    def test_forwards_deadlock_diagnosis(self):
        checker = reporting()
        checker.emit(ev.ProcBlock(time=1.0, rank=0, reason="recv", source=1))
        tee = TeeSink(checker)
        assert "rank 0" in tee.deadlock_diagnosis(engine=None)
