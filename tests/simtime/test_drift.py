"""Unit tests for the drift (skew) generators."""

import math

import numpy as np
import pytest

from repro.simtime.drift import ConstantDrift, RandomWalkDrift, SinusoidalDrift


class TestConstantDrift:
    def test_returns_fixed_skew(self):
        d = ConstantDrift(5e-6)
        assert d.skew_for_segment(0) == 5e-6
        assert d.skew_for_segment(1000) == 5e-6

    def test_zero_default(self):
        assert ConstantDrift().skew_for_segment(3) == 0.0

    def test_rejects_out_of_range_skew(self):
        with pytest.raises(ValueError):
            ConstantDrift(1.0)
        with pytest.raises(ValueError):
            ConstantDrift(-1.5)

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            ConstantDrift(0.0).skew_for_segment(-1)


class TestRandomWalkDrift:
    def _make(self, seed=0, **kw):
        kw.setdefault("initial_skew", 1e-6)
        kw.setdefault("sigma", 1e-8)
        return RandomWalkDrift(rng=np.random.default_rng(seed), **kw)

    def test_starts_at_initial_skew(self):
        d = self._make()
        assert d.skew_for_segment(0) == 1e-6

    def test_deterministic_per_index(self):
        d = self._make()
        a = d.skew_for_segment(500)
        b = d.skew_for_segment(500)
        assert a == b

    def test_same_seed_same_walk(self):
        d1, d2 = self._make(7), self._make(7)
        for i in (0, 3, 10, 99):
            assert d1.skew_for_segment(i) == d2.skew_for_segment(i)

    def test_out_of_order_queries_consistent(self):
        d1, d2 = self._make(3), self._make(3)
        late_first = d1.skew_for_segment(50)
        d2.skew_for_segment(10)
        assert d2.skew_for_segment(50) == late_first

    def test_respects_excursion_bound(self):
        d = self._make(seed=2, sigma=5e-7, max_excursion=1e-6)
        values = [d.skew_for_segment(i) for i in range(2000)]
        assert max(values) <= 1e-6 + 1e-6 + 1e-12
        assert min(values) >= 1e-6 - 1e-6 - 1e-12

    def test_zero_sigma_is_constant(self):
        d = self._make(sigma=0.0)
        assert d.skew_for_segment(100) == d.skew_for_segment(0)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            self._make(sigma=-1.0)

    def test_rejects_index_beyond_cap(self):
        d = self._make(max_segments=10)
        with pytest.raises(ValueError):
            d.skew_for_segment(10)

    def test_walk_actually_moves(self):
        d = self._make(seed=1, sigma=1e-7)
        assert d.skew_for_segment(100) != d.skew_for_segment(0)


class TestSinusoidalDrift:
    def test_oscillates_around_mean(self):
        d = SinusoidalDrift(
            mean_skew=2e-6, amplitude=1e-6, period=100.0, segment_length=1.0
        )
        values = [d.skew_for_segment(i) for i in range(100)]
        assert abs(np.mean(values) - 2e-6) < 1e-8
        assert max(values) <= 3e-6 + 1e-12
        assert min(values) >= 1e-6 - 1e-12

    def test_period_repeats(self):
        d = SinusoidalDrift(0.0, 1e-6, period=50.0, segment_length=1.0)
        assert d.skew_for_segment(0) == pytest.approx(d.skew_for_segment(50))

    def test_phase_shift(self):
        base = SinusoidalDrift(0.0, 1e-6, 100.0, 1.0, phase=0.0)
        shifted = SinusoidalDrift(0.0, 1e-6, 100.0, 1.0, phase=math.pi)
        assert base.skew_for_segment(0) == pytest.approx(
            -shifted.skew_for_segment(0)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SinusoidalDrift(0.0, 1e-6, period=0.0, segment_length=1.0)
        with pytest.raises(ValueError):
            SinusoidalDrift(0.0, -1e-6, period=10.0, segment_length=1.0)
        with pytest.raises(ValueError):
            SinusoidalDrift(0.0, 1e-6, period=10.0, segment_length=0.0)
        d = SinusoidalDrift(0.0, 1e-6, 10.0, 1.0)
        with pytest.raises(ValueError):
            d.skew_for_segment(-2)
