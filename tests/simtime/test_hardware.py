"""Unit tests for HardwareClock (piecewise-linear local time)."""

import numpy as np
import pytest

from repro.errors import ClockError
from repro.simtime.drift import ConstantDrift, RandomWalkDrift
from repro.simtime.hardware import HardwareClock


class TestReadRaw:
    def test_identity_clock(self):
        clk = HardwareClock()
        assert clk.read_raw(0.0) == 0.0
        assert clk.read_raw(12.5) == 12.5

    def test_offset_applied(self):
        clk = HardwareClock(offset=100.0)
        assert clk.read_raw(0.0) == 100.0
        assert clk.read_raw(3.0) == 103.0

    def test_constant_skew_accumulates(self):
        clk = HardwareClock(drift=ConstantDrift(1e-3))
        # After 10 true seconds the clock gained 10 ms.
        assert clk.read_raw(10.0) == pytest.approx(10.0 + 10.0 * 1e-3)

    def test_negative_skew(self):
        clk = HardwareClock(drift=ConstantDrift(-1e-3))
        assert clk.read_raw(10.0) == pytest.approx(10.0 - 0.01)

    def test_monotone_across_segments(self):
        rng = np.random.default_rng(0)
        clk = HardwareClock(
            drift=RandomWalkDrift(0.0, 1e-6, rng), segment_length=0.5
        )
        times = np.linspace(0.0, 20.0, 500)
        readings = [clk.read_raw(t) for t in times]
        assert all(b > a for a, b in zip(readings, readings[1:]))

    def test_continuous_at_segment_boundary(self):
        rng = np.random.default_rng(1)
        clk = HardwareClock(
            drift=RandomWalkDrift(0.0, 1e-5, rng), segment_length=1.0
        )
        eps = 1e-9
        for boundary in (1.0, 2.0, 5.0):
            below = clk.read_raw(boundary - eps)
            above = clk.read_raw(boundary + eps)
            assert above - below < 1e-6

    def test_rejects_negative_time(self):
        with pytest.raises(ClockError):
            HardwareClock().read_raw(-0.1)


class TestGranularity:
    def test_quantized_read(self):
        clk = HardwareClock(granularity=1e-6)
        assert clk.read(1.0000004) == pytest.approx(1.0, abs=1e-12)

    def test_zero_granularity_exact(self):
        clk = HardwareClock()
        assert clk.read(1.23456789) == 1.23456789

    def test_read_overhead_property(self):
        clk = HardwareClock(read_overhead=25e-9)
        assert clk.read_overhead == 25e-9


class TestInvert:
    def test_roundtrip_identity(self):
        clk = HardwareClock(offset=5.0)
        for t in (0.0, 0.5, 3.25, 100.0):
            assert clk.invert(clk.read_raw(t)) == pytest.approx(t, abs=1e-12)

    def test_roundtrip_with_drift(self):
        rng = np.random.default_rng(2)
        clk = HardwareClock(
            offset=42.0,
            drift=RandomWalkDrift(5e-6, 1e-7, rng),
            segment_length=0.25,
        )
        for t in np.linspace(0.0, 30.0, 50):
            assert clk.invert(clk.read_raw(t)) == pytest.approx(t, abs=1e-9)

    def test_invert_before_epoch_raises(self):
        clk = HardwareClock(offset=10.0)
        with pytest.raises(ClockError):
            clk.invert(9.0)

    def test_invert_extends_segments(self):
        clk = HardwareClock(drift=ConstantDrift(0.0))
        # Reading far beyond any generated segment must still invert.
        assert clk.invert(1000.0) == pytest.approx(1000.0)


class TestIntrospection:
    def test_skew_at(self):
        clk = HardwareClock(drift=ConstantDrift(3e-6))
        assert clk.skew_at(7.5) == 3e-6

    def test_offset_to(self):
        a = HardwareClock(offset=10.0)
        b = HardwareClock(offset=4.0)
        assert a.offset_to(b, 2.0) == pytest.approx(6.0)
        assert b.offset_to(a, 2.0) == pytest.approx(-6.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            HardwareClock(segment_length=0.0)
        with pytest.raises(ValueError):
            HardwareClock(granularity=-1.0)

    def test_bad_drift_value_rejected(self):
        class BadDrift:
            def skew_for_segment(self, index):
                return 2.0

        clk = HardwareClock(drift=BadDrift())
        with pytest.raises(ClockError):
            clk.read_raw(1.0)
