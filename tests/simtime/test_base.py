"""Unit tests for the Clock protocol helpers."""

import pytest

from repro.simtime.base import MICROSECOND, NANOSECOND, SECOND, quantize
from repro.simtime.hardware import HardwareClock


class TestUnits:
    def test_magnitudes(self):
        assert SECOND == 1.0
        assert MICROSECOND == pytest.approx(1e-6)
        assert NANOSECOND == pytest.approx(1e-9)


class TestQuantize:
    def test_floors_to_multiple(self):
        assert quantize(1.2345e-6, 1e-6) == pytest.approx(1e-6)

    def test_zero_granularity_noop(self):
        assert quantize(3.14159, 0.0) == 3.14159

    def test_exact_multiple_unchanged(self):
        assert quantize(5e-6, 1e-6) == pytest.approx(5e-6)

    def test_floor_not_round(self):
        # 1.9 us with 1 us granularity floors to 1 us (timer semantics).
        assert quantize(1.9e-6, 1e-6) == pytest.approx(1e-6)


class TestClockProtocol:
    def test_callable_shorthand(self):
        clk = HardwareClock(offset=2.0)
        assert clk(3.0) == clk.read(3.0)

    def test_default_properties(self):
        clk = HardwareClock()
        assert clk.granularity == 0.0
        assert clk.read_overhead == 0.0
