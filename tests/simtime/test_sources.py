"""Unit tests for time-source presets and clock factories."""

import numpy as np
import pytest

from repro.simtime.drift import RandomWalkDrift, SinusoidalDrift
from repro.simtime.sources import (
    CLOCK_GETTIME,
    GETTIMEOFDAY,
    MPI_WTIME,
    make_clock,
    make_node_clocks,
)


class TestPresets:
    def test_clock_gettime_is_monotonic_style(self):
        assert CLOCK_GETTIME.offset_is_uniform
        assert CLOCK_GETTIME.offset_scale > 1000.0  # boot-time scale
        assert CLOCK_GETTIME.granularity == 1e-9

    def test_gettimeofday_is_ntp_style(self):
        assert not GETTIMEOFDAY.offset_is_uniform
        assert GETTIMEOFDAY.offset_scale < 1e-3
        assert GETTIMEOFDAY.granularity == 1e-6

    def test_mpi_wtime_aliases_monotonic(self):
        assert MPI_WTIME.offset_is_uniform == CLOCK_GETTIME.offset_is_uniform
        assert MPI_WTIME.name == "MPI_Wtime"

    def test_with_replaces_fields(self):
        spec = CLOCK_GETTIME.with_(skew_walk_sigma=1e-9)
        assert spec.skew_walk_sigma == 1e-9
        assert spec.name == CLOCK_GETTIME.name


class TestSpecValidation:
    @pytest.mark.parametrize("field,value", [
        ("offset_scale", -1.0),
        ("skew_scale", -1e-6),
        ("skew_walk_sigma", -1e-9),
        ("segment_length", 0.0),
        ("segment_length", -1.0),
        ("granularity", -1e-9),
        ("read_overhead", -1e-9),
        ("sinus_amplitude", -1e-6),
        ("sinus_period", 0.0),
    ])
    def test_rejects_invalid_field(self, field, value):
        with pytest.raises(ValueError):
            CLOCK_GETTIME.with_(**{field: value})

    def test_zero_granularity_means_infinitely_fine(self):
        # conftest's PERFECT_TIME relies on granularity 0 skipping
        # quantization entirely; it must stay constructible.
        spec = CLOCK_GETTIME.with_(granularity=0.0, read_overhead=0.0)
        assert spec.granularity == 0.0


class TestMakeClock:
    def test_monotonic_offsets_positive(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            clk = make_clock(CLOCK_GETTIME, rng)
            assert clk.offset >= 0.0

    def test_ntp_offsets_small(self):
        rng = np.random.default_rng(0)
        offsets = [make_clock(GETTIMEOFDAY, rng).offset for _ in range(50)]
        assert max(abs(o) for o in offsets) < 1e-3

    def test_random_walk_drift_kind(self):
        rng = np.random.default_rng(0)
        clk = make_clock(CLOCK_GETTIME, rng)
        assert isinstance(clk.drift, RandomWalkDrift)

    def test_sinusoidal_drift_kind(self):
        rng = np.random.default_rng(0)
        spec = CLOCK_GETTIME.with_(drift_kind="sinusoidal")
        clk = make_clock(spec, rng)
        assert isinstance(clk.drift, SinusoidalDrift)

    def test_unknown_drift_kind_rejected(self):
        rng = np.random.default_rng(0)
        spec = CLOCK_GETTIME.with_(drift_kind="nope")
        with pytest.raises(ValueError):
            make_clock(spec, rng)


class TestMakeNodeClocks:
    def test_one_clock_per_node(self):
        clocks = make_node_clocks(5, CLOCK_GETTIME, seed=1)
        assert len(clocks) == 5
        assert len({id(c) for c in clocks}) == 5

    def test_deterministic_by_seed(self):
        a = make_node_clocks(3, CLOCK_GETTIME, seed=9)
        b = make_node_clocks(3, CLOCK_GETTIME, seed=9)
        for ca, cb in zip(a, b):
            assert ca.offset == cb.offset
            assert ca.read_raw(5.0) == cb.read_raw(5.0)

    def test_different_seeds_differ(self):
        a = make_node_clocks(3, CLOCK_GETTIME, seed=1)
        b = make_node_clocks(3, CLOCK_GETTIME, seed=2)
        assert any(ca.offset != cb.offset for ca, cb in zip(a, b))

    def test_rejects_nonpositive_nodes(self):
        with pytest.raises(ValueError):
            make_node_clocks(0, CLOCK_GETTIME)

    def test_accepts_generator(self):
        rng = np.random.default_rng(3)
        clocks = make_node_clocks(2, GETTIMEOFDAY, seed=rng)
        assert len(clocks) == 2
