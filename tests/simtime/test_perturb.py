"""Tests for clock perturbation wrappers (steps and excursions)."""

import pytest

from repro.errors import ClockError
from repro.simtime.drift import ConstantDrift
from repro.simtime.hardware import HardwareClock
from repro.simtime.perturb import ExcursionDrift, SteppedClock


def ideal_clock(offset: float = 0.0, skew: float = 0.0) -> HardwareClock:
    """An exactly readable clock: reading = offset + (1 + skew) * t."""
    return HardwareClock(
        offset=offset,
        drift=ConstantDrift(skew),
        segment_length=1.0,
        granularity=0.0,
        read_overhead=0.0,
    )


class TestSteppedClock:
    def test_reading_unchanged_before_step(self):
        clock = SteppedClock(ideal_clock(), [(10.0, 5.0)])
        assert clock.read(9.999) == pytest.approx(9.999)

    def test_step_applies_at_exact_time(self):
        clock = SteppedClock(ideal_clock(), [(10.0, 5.0)])
        assert clock.read(10.0) == pytest.approx(15.0)
        assert clock.read(12.0) == pytest.approx(17.0)

    def test_steps_accumulate(self):
        clock = SteppedClock(ideal_clock(), [(10.0, 5.0), (20.0, 2.0)])
        assert clock.read(25.0) == pytest.approx(32.0)

    def test_backward_step_makes_clock_non_monotonic(self):
        clock = SteppedClock(ideal_clock(), [(10.0, -5.0)])
        assert clock.read(9.5) == pytest.approx(9.5)
        assert clock.read(10.5) == pytest.approx(5.5)

    def test_invert_round_trip_each_region(self):
        clock = SteppedClock(ideal_clock(), [(10.0, 5.0), (20.0, -2.0)])
        # Readings first attained at these times invert exactly.
        for t in (0.0, 5.0, 10.0, 15.0, 23.0, 30.0):
            assert clock.invert(clock.read_raw(t)) == pytest.approx(t)
        # t=20 re-attains the reading first shown at t=18 (backward step),
        # so inversion returns the earliest occurrence.
        assert clock.invert(clock.read_raw(20.0)) == pytest.approx(18.0)

    def test_invert_inside_forward_jump_resolves_to_step_instant(self):
        clock = SteppedClock(ideal_clock(), [(10.0, 5.0)])
        # Readings in [10, 15) are skipped by the jump; the clock first
        # attains them exactly at the step time.
        assert clock.invert(12.0) == pytest.approx(10.0)

    def test_invert_repeated_reading_resolves_to_first_occurrence(self):
        clock = SteppedClock(ideal_clock(), [(10.0, -5.0)])
        # Reading 7 happens at t=7 and again at t=12; earliest wins.
        assert clock.invert(7.0) == pytest.approx(7.0)

    def test_invert_unattained_reading_raises(self):
        clock = SteppedClock(ideal_clock(offset=100.0), [(10.0, 5.0)])
        with pytest.raises(ClockError):
            clock.invert(50.0)

    def test_skew_and_granularity_delegate(self):
        inner = HardwareClock(
            offset=1.0, drift=ConstantDrift(1e-5), segment_length=1.0,
            granularity=1e-6, read_overhead=2e-8,
        )
        clock = SteppedClock(inner, [(5.0, 1.0)])
        assert clock.granularity == 1e-6
        assert clock.read_overhead == 2e-8
        assert clock.skew_at(3.0) == pytest.approx(1e-5)

    def test_validation(self):
        with pytest.raises(ValueError):
            SteppedClock(ideal_clock(), [])
        with pytest.raises(ValueError):
            SteppedClock(ideal_clock(), [(-1.0, 5.0)])


class TestExcursionDrift:
    def test_flat_excursion_integrates_linearly(self):
        drift = ExcursionDrift(
            ConstantDrift(0.0), [(10.0, 20.0, 1e-5, "flat")],
            segment_length=1.0,
        )
        clock = HardwareClock(
            offset=0.0, drift=drift, segment_length=1.0,
            granularity=0.0, read_overhead=0.0,
        )
        # 10 segments inside the window, each 1e-5 fast.
        assert clock.read(20.0) - 20.0 == pytest.approx(1e-4)
        # Nothing accumulates outside the window.
        assert clock.read(10.0) == pytest.approx(10.0)
        assert clock.read(30.0) - clock.read(20.0) == pytest.approx(10.0)

    def test_triangle_excursion_integrates_to_half_area(self):
        drift = ExcursionDrift(
            ConstantDrift(0.0), [(10.0, 20.0, 1e-5, "triangle")],
            segment_length=1.0,
        )
        clock = HardwareClock(
            offset=0.0, drift=drift, segment_length=1.0,
            granularity=0.0, read_overhead=0.0,
        )
        # Triangle of height delta over length 10 -> area delta * 10 / 2.
        assert clock.read(20.0) - 20.0 == pytest.approx(5e-5)

    def test_excursion_adds_to_inner_skew(self):
        drift = ExcursionDrift(
            ConstantDrift(2e-6), [(0.0, 10.0, 3e-6, "flat")],
            segment_length=1.0,
        )
        assert drift.skew_for_segment(0) == pytest.approx(5e-6)
        assert drift.skew_for_segment(10) == pytest.approx(2e-6)

    def test_clock_invert_still_exact(self):
        drift = ExcursionDrift(
            ConstantDrift(0.0), [(5.0, 15.0, 1e-5, "triangle")],
            segment_length=1.0,
        )
        clock = HardwareClock(
            offset=3.0, drift=drift, segment_length=1.0,
            granularity=0.0, read_overhead=0.0,
        )
        for t in (0.0, 7.5, 12.0, 20.0):
            assert clock.invert(clock.read_raw(t)) == pytest.approx(t)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExcursionDrift(ConstantDrift(0.0), [], segment_length=0.0)
        with pytest.raises(ValueError):
            ExcursionDrift(
                ConstantDrift(0.0), [(5.0, 5.0, 1e-5, "flat")],
                segment_length=1.0,
            )
        with pytest.raises(ValueError):
            ExcursionDrift(
                ConstantDrift(0.0), [(5.0, 10.0, 1e-5, "sawtooth")],
                segment_length=1.0,
            )
