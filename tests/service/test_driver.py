"""Tests for the end-to-end service driver (repro.service.driver)."""

import dataclasses
import json

import numpy as np
import pytest

from repro.check.config import checking
from repro.errors import ConfigurationError
from repro.obs.health import evaluate_health
from repro.obs.metrics import MetricsRegistry, default_metrics
from repro.obs.report import build_report
from repro.obs.timeseries import TimeSeriesBank, default_timeseries
from repro.parallel import JobSpec, job_seeds, run_jobs, seed_int
from repro.service import (
    ErrorBoundResyncPolicy,
    PeriodicResyncPolicy,
    ServiceConfig,
    SimulatedCluster,
    WorkloadSpec,
    run_service,
)
from repro.experiments.service_slo import _policy_job

QUICK = ServiceConfig(num_ranks=4)
SHORT = WorkloadSpec(mode="open", duration=12.0, rate=1500.0)


def volatile_free(result) -> dict:
    fields = dataclasses.asdict(result)
    fields.pop("wall_s")
    return fields


class TestSimulatedCluster:
    def test_sync_advances_the_generation(self):
        cluster = SimulatedCluster(QUICK, np.random.SeedSequence(0))
        assert cluster.generation == -1
        cluster.sync(2.0)
        assert cluster.generation == 0
        assert cluster.synced_at == 2.0
        assert 0.0 < cluster.base_error < 1e-4
        assert len(cluster.models()) == 4
        assert cluster.models()[0].slope == 0.0

    def test_fits_track_the_true_offsets(self):
        cluster = SimulatedCluster(QUICK, np.random.SeedSequence(1))
        cluster.sync(3.0)
        t = 3.5
        for rank in (1, 2, 3):
            local = cluster.clocks[rank].read(t)
            estimated = cluster.models()[rank].apply(local)
            truth = cluster.clocks[0].read_raw(t)
            assert abs(estimated - truth) < 20e-6

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(num_ranks=1)
        with pytest.raises(ConfigurationError):
            ServiceConfig(slo=0.0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(fit_points=1)


class TestRunService:
    def test_deterministic_across_runs(self):
        a = run_service(PeriodicResyncPolicy(4.0), SHORT, QUICK, seed=5)
        b = run_service(PeriodicResyncPolicy(4.0), SHORT, QUICK, seed=5)
        assert volatile_free(a) == volatile_free(b)

    def test_reports_sane_numbers(self):
        res = run_service(PeriodicResyncPolicy(4.0), SHORT, QUICK, seed=5)
        assert res.queries == pytest.approx(18_000, rel=0.1)
        assert res.syncs == 3
        assert res.policy == "periodic[4s]"
        assert res.workload == "open[1500/s]"
        assert 0.0 < res.latency_p50 < res.latency_p999 <= 0.01
        assert 0.0 <= res.clock_error_p50 <= res.clock_error_p99
        assert res.clock_error_p99 <= res.clock_error_max < 1e-3
        # The policy loop's epoch() call takes the one miss per
        # generation, so every query-path access is a hit.
        assert res.cache_misses == res.syncs
        assert res.cache_hits == res.queries

    def test_more_frequent_resync_reduces_error(self):
        often = run_service(
            PeriodicResyncPolicy(2.0), SHORT, QUICK, seed=5
        )
        rarely = run_service(
            PeriodicResyncPolicy(11.0), SHORT, QUICK, seed=5
        )
        assert often.syncs > rarely.syncs
        assert often.clock_error_p99 < rarely.clock_error_p99

    def test_errorbound_policy_meets_its_slo(self):
        res = run_service(
            ErrorBoundResyncPolicy(slo=QUICK.slo), SHORT, QUICK, seed=5
        )
        assert res.slo_met
        assert res.clock_error_p99 <= QUICK.slo

    def test_check_mode_passes_on_a_clean_run(self):
        with checking("strict"):
            res = run_service(
                PeriodicResyncPolicy(4.0), SHORT, QUICK, seed=5
            )
        assert res.queries > 0

    def test_emits_metrics_and_timeseries(self):
        registry = MetricsRegistry()
        bank = TimeSeriesBank()
        with default_metrics(registry), default_timeseries(bank):
            res = run_service(
                PeriodicResyncPolicy(4.0), SHORT, QUICK, seed=5
            )
        assert registry.counter("service.queries").value == res.queries
        assert registry.counter("service.resyncs").value == res.syncs
        hist = registry.histogram("service.latency")
        assert hist.count == res.queries
        assert hist.quantile(0.5) == res.latency_p50
        names = bank.names()
        assert "service.stale_rate" in names
        assert "service.error_bound" in names
        assert "clock.error" in names
        marks = bank.marks_named("resync")
        assert len(marks) == res.syncs - 1


class TestJobsMergeIdentity:
    def _report(self, jobs: int) -> dict:
        registry = MetricsRegistry()
        bank = TimeSeriesBank()
        entries = [
            (PeriodicResyncPolicy(3.0), "periodic[3s]"),
            (ErrorBoundResyncPolicy(slo=QUICK.slo), "errorbound"),
        ]
        seeds = job_seeds(0, len(entries))
        specs = [
            JobSpec(
                _policy_job,
                args=(policy, SHORT, QUICK, seed_int(child), scope),
                label=scope,
            )
            for (policy, scope), child in zip(entries, seeds)
        ]
        with default_metrics(registry), default_timeseries(bank):
            results = run_jobs(specs, jobs=jobs)
        report = build_report(
            bank=bank,
            metrics=registry,
            verdict=evaluate_health(bank),
            meta={"results": [volatile_free(r) for r in results]},
        )
        report.pop("generated_at", None)
        return report

    def test_report_identical_for_jobs_1_and_2(self):
        serial = self._report(jobs=1)
        parallel = self._report(jobs=2)
        assert json.dumps(serial, sort_keys=True) == \
            json.dumps(parallel, sort_keys=True)
