"""Tests for compiled model epochs (repro.service.epoch)."""

import numpy as np
import pytest

from repro.errors import SyncError
from repro.service.epoch import ModelEpoch, compile_epoch
from repro.simtime.drift import ConstantDrift, RandomWalkDrift
from repro.sync.linear_model import LinearDriftModel

MODELS = [
    LinearDriftModel.ZERO,
    LinearDriftModel(slope=2.5e-5, intercept=0.013),
    LinearDriftModel(slope=-1.1e-5, intercept=-0.4),
    LinearDriftModel(slope=8e-6, intercept=2.75),
]
DRIFTS = (
    ConstantDrift(0.0),
    ConstantDrift(2.5e-5),
    RandomWalkDrift(1e-5, sigma=1e-7, rng=np.random.default_rng(3)),
    1.5e-5,  # plain rate in s/s
)


def epoch(**kwargs):
    defaults = dict(
        generation=0, synced_at=10.0, models=MODELS, drifts=DRIFTS,
        base_error=2e-7, ref_rank=0,
    )
    defaults.update(kwargs)
    return compile_epoch(**defaults)


class TestCompile:
    def test_model_for_roundtrips_the_compiled_coefficients(self):
        ep = epoch()
        assert ep.num_ranks == 4
        for rank, model in enumerate(MODELS):
            assert ep.model_for(rank) == model

    def test_rejects_mismatched_drift_count(self):
        with pytest.raises(SyncError):
            epoch(drifts=DRIFTS[:2])

    def test_rejects_non_invertible_slope(self):
        bad = [LinearDriftModel(slope=1.0, intercept=0.0)] + MODELS[1:]
        with pytest.raises(SyncError):
            epoch(models=bad)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(SyncError):
            ModelEpoch(
                generation=0, synced_at=0.0,
                slopes=np.zeros(3), intercepts=np.zeros(2),
                drifts=(0.0, 0.0, 0.0),
            )


class TestVectorizedEvaluation:
    def test_global_of_bit_identical_to_scalar_apply(self):
        ep = epoch()
        rng = np.random.default_rng(7)
        readings = rng.uniform(0.0, 1e5, 500)
        ranks = rng.integers(0, 4, 500)
        values = ep.global_of(ranks, readings)
        for i in range(500):
            scalar = ep.model_for(int(ranks[i])).apply(float(readings[i]))
            assert values[i] == scalar

    def test_local_of_bit_identical_to_scalar_apply_inverse(self):
        ep = epoch()
        rng = np.random.default_rng(8)
        reference = rng.uniform(0.0, 1e5, 500)
        ranks = rng.integers(0, 4, 500)
        values = ep.local_of(ranks, reference)
        for i in range(500):
            scalar = ep.model_for(int(ranks[i])).apply_inverse(
                float(reference[i])
            )
            assert values[i] == scalar


class TestBounds:
    def test_reference_rank_bound_is_zero(self):
        ep = epoch()
        bounds = ep.bounds_for(np.zeros(5, dtype=int), np.linspace(0, 60, 5))
        assert np.all(bounds == 0.0)

    def test_nonref_bound_starts_at_base_error_and_grows(self):
        ep = epoch()
        ranks = np.full(4, 1)
        ages = np.array([0.0, 5.0, 20.0, 60.0])
        bounds = ep.bounds_for(ranks, ages)
        assert bounds[0] == pytest.approx(ep.base_error)
        assert np.all(np.diff(bounds) >= 0.0)

    def test_float_rate_drift_grows_linearly(self):
        ep = epoch()
        age = 12.0
        (bound,) = ep.bounds_for(np.array([3]), np.array([age]))
        scale = 1.0 + abs(MODELS[3].slope)
        # Rank 3 uses the plain-rate path; the reference drift is a
        # ConstantDrift whose growth is identically zero.
        assert bound == pytest.approx(
            ep.base_error + scale * (abs(DRIFTS[3]) * age)
        )

    def test_max_bound_is_the_worst_rank(self):
        ep = epoch()
        age = 30.0
        per_rank = ep.bounds_for(
            np.arange(4), np.full(4, age)
        )
        assert ep.max_bound(age) == per_rank.max()
