"""Tests for the ClockService (repro.service.core)."""

import numpy as np
import pytest

from repro.service.core import ClockService, ModelProvider
from repro.simtime.drift import ConstantDrift, RandomWalkDrift
from repro.sync.linear_model import LinearDriftModel


class StubProvider:
    """Hand-rolled ModelProvider with an explicit resync knob."""

    def __init__(self):
        self.generation = 0
        self.synced_at = 5.0
        self.base_error = 1e-7
        self.ref_rank = 0
        self._models = [
            LinearDriftModel.ZERO,
            LinearDriftModel(slope=2e-5, intercept=0.01),
            LinearDriftModel(slope=-3e-5, intercept=-0.2),
        ]
        self._drifts = (
            ConstantDrift(0.0),
            RandomWalkDrift(1e-5, sigma=1e-7, rng=np.random.default_rng(1)),
            RandomWalkDrift(-2e-5, sigma=2e-7, rng=np.random.default_rng(2)),
        )

    def models(self):
        return self._models

    def drifts(self):
        return self._drifts

    def resync(self, synced_at):
        self.generation += 1
        self.synced_at = synced_at
        self._models = [
            LinearDriftModel.ZERO,
            LinearDriftModel(slope=2.1e-5, intercept=0.011),
            LinearDriftModel(slope=-2.9e-5, intercept=-0.21),
        ]


@pytest.fixture
def provider():
    return StubProvider()


@pytest.fixture
def service(provider):
    return ClockService(provider, slo=25e-6)


class TestScalarQueries:
    def test_provider_protocol(self, provider):
        assert isinstance(provider, ModelProvider)

    def test_now_applies_the_rank_model(self, service, provider):
        resp = service.now(1, reading=100.0, at=6.0)
        assert resp.value == provider.models()[1].apply(100.0)
        assert resp.generation == 0
        assert resp.error_bound > 0.0

    def test_reference_rank_now_has_zero_bound(self, service):
        resp = service.now(0, reading=100.0, at=50.0)
        assert resp.error_bound == 0.0
        assert not resp.stale

    def test_translate_chains_apply_and_inverse(self, service, provider):
        resp = service.translate(100.0, src_rank=1, dst_rank=2, at=6.0)
        ref = provider.models()[1].apply(100.0)
        assert resp.value == provider.models()[2].apply_inverse(ref)

    def test_compare_subtracts_global_times(self, service, provider):
        resp = service.compare((1, 100.0), (2, 100.0), at=6.0)
        expected = (
            provider.models()[1].apply(100.0)
            - provider.models()[2].apply(100.0)
        )
        assert resp.value == expected

    def test_stale_flag_tracks_the_slo(self, service):
        fresh = service.now(1, reading=10.0, at=5.0)
        old = service.now(1, reading=10.0, at=5000.0)
        assert not fresh.stale
        assert old.stale
        assert old.error_bound > fresh.error_bound

    def test_rejects_nonpositive_slo(self, provider):
        with pytest.raises(ValueError):
            ClockService(provider, slo=0.0)


class TestMemo:
    def test_repeat_query_is_a_memo_hit_with_identical_answer(self, service):
        first = service.now(1, reading=42.0, at=6.0)
        hits = service.stats.memo_hits
        second = service.now(1, reading=42.0, at=6.0)
        assert service.stats.memo_hits == hits + 1
        assert second is first

    def test_distinct_args_do_not_collide(self, service):
        a = service.now(1, reading=42.0, at=6.0)
        b = service.now(1, reading=42.0, at=7.0)
        assert service.stats.memo_hits == 0
        assert b.error_bound > a.error_bound

    def test_memo_never_serves_across_resync(self, service, provider):
        before = service.now(1, reading=42.0, at=6.0)
        provider.resync(synced_at=8.0)
        after = service.now(1, reading=42.0, at=6.0)
        assert service.stats.memo_hits == 0
        assert after.generation == 1
        assert after.value == provider.models()[1].apply(42.0)
        assert after.value != before.value


class TestEpochCache:
    def test_one_miss_per_generation(self, service, provider):
        for _ in range(5):
            service.now(1, reading=1.0, at=6.0)
        assert service.stats.epoch_misses == 1
        provider.resync(synced_at=8.0)
        service.now(1, reading=1.0, at=9.0)
        assert service.stats.epoch_misses == 2

    def test_epoch_call_counts_the_compile_not_a_query(self, service):
        service.epoch()
        assert service.stats.epoch_misses == 1
        assert service.stats.queries == 0
        service.now(1, reading=1.0, at=6.0)
        assert service.stats.epoch_misses == 1
        assert service.stats.epoch_hits == 1

    def test_hit_ratio_and_stale_rate(self, service):
        for i in range(4):
            service.now(1, reading=float(i), at=6.0)
        stats = service.stats
        assert stats.queries == 4
        assert stats.epoch_hits + stats.epoch_misses == 4
        assert stats.cache_hit_ratio() == pytest.approx(3 / 4)
        assert stats.stale_rate() == 0.0
        assert stats.by_op == {"now": 4}


class TestBatchAPI:
    def test_now_batch_bit_identical_to_scalar(self, service):
        rng = np.random.default_rng(0)
        ranks = rng.integers(0, 3, 64)
        readings = rng.uniform(0.0, 1e4, 64)
        at = rng.uniform(5.0, 50.0, 64)
        values, bounds, stale = service.now_batch(ranks, readings, at)
        for i in range(64):
            resp = service.now(
                int(ranks[i]), float(readings[i]), float(at[i])
            )
            assert resp.value == values[i]
            assert resp.error_bound == bounds[i]
            assert resp.stale == stale[i]

    def test_translate_batch_bit_identical_to_scalar(self, service):
        rng = np.random.default_rng(1)
        src = rng.integers(0, 3, 32)
        dst = (src + 1) % 3
        readings = rng.uniform(0.0, 1e4, 32)
        at = np.full(32, 6.0)
        values, bounds, _ = service.translate_batch(readings, src, dst, at)
        for i in range(32):
            resp = service.translate(
                float(readings[i]), int(src[i]), int(dst[i]), 6.0
            )
            assert resp.value == values[i]
            assert resp.error_bound == bounds[i]

    def test_compare_batch_bit_identical_to_scalar(self, service):
        rng = np.random.default_rng(2)
        ra = rng.integers(0, 3, 32)
        rb = (ra + 1) % 3
        ta = rng.uniform(0.0, 1e4, 32)
        tb = rng.uniform(0.0, 1e4, 32)
        at = np.full(32, 6.0)
        values, bounds, _ = service.compare_batch(ra, ta, rb, tb, at)
        for i in range(32):
            resp = service.compare(
                (int(ra[i]), float(ta[i])), (int(rb[i]), float(tb[i])), 6.0
            )
            assert resp.value == values[i]
            assert resp.error_bound == bounds[i]

    def test_batch_counts_queries_and_stale(self, service):
        ranks = np.array([1, 1, 2])
        readings = np.array([1.0, 2.0, 3.0])
        at = np.array([6.0, 5000.0, 6.0])
        _, _, stale = service.now_batch(ranks, readings, at)
        assert service.stats.queries == 3
        assert service.stats.stale_served == int(stale.sum()) == 1
