"""Tests for workload generation (repro.service.workload)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.service.workload import (
    OP_COMPARE,
    OP_NOW,
    OP_TRANSLATE,
    BatchingModel,
    WorkloadSpec,
    generate,
)


class TestBatchingModel:
    def test_respond_batches_by_window(self):
        model = BatchingModel(window=1e-2, cost_base=1e-4,
                              cost_per_query=1e-6)
        times = np.array([0.001, 0.002, 0.009, 0.011, 0.025])
        done, sizes = model.respond(times)
        assert list(sizes) == [3, 3, 3, 1, 1]
        # First window closes at 0.01; batch of 3 costs 1e-4 + 3e-6.
        assert done[0] == pytest.approx(0.01 + 1e-4 + 3e-6)
        assert np.all(done > times)

    def test_empty_input(self):
        done, sizes = BatchingModel().respond(np.empty(0))
        assert done.size == 0 and sizes.size == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BatchingModel(window=0.0)
        with pytest.raises(ConfigurationError):
            BatchingModel(cost_base=-1.0)


class TestWorkloadSpec:
    def test_labels(self):
        assert WorkloadSpec(mode="open", rate=5000.0).label() == \
            "open[5000/s]"
        assert (
            WorkloadSpec(mode="closed", clients=10, think_time=2.0).label()
            == "closed[10c,2s]"
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(mode="bursty")
        with pytest.raises(ConfigurationError):
            WorkloadSpec(duration=0.0)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(mode="open", rate=0.0)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(mode="closed", clients=0)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(ops_mix=(1.0, 1.0, 1.0))


class TestGenerate:
    def test_same_seed_is_bit_identical(self):
        spec = WorkloadSpec(mode="open", duration=5.0, rate=2000.0)
        a = generate(spec, 4, seed=11)
        b = generate(spec, 4, seed=11)
        for field in ("times", "ops", "ranks", "ranks2"):
            assert np.array_equal(getattr(a, field), getattr(b, field))

    def test_open_loop_hits_the_requested_rate(self):
        spec = WorkloadSpec(mode="open", duration=20.0, rate=5000.0)
        stream = generate(spec, 4, seed=0)
        assert len(stream) == pytest.approx(100_000, rel=0.05)
        assert np.all(np.diff(stream.times) >= 0.0)
        assert stream.times[0] >= 0.0
        assert stream.times[-1] < spec.duration

    def test_closed_loop_respects_the_population(self):
        spec = WorkloadSpec(
            mode="closed", duration=10.0, clients=2000, think_time=2.0
        )
        stream = generate(spec, 4, seed=0)
        # ~ clients * duration / (think + latency) arrivals.
        assert len(stream) == pytest.approx(10_000, rel=0.25)
        assert np.all(np.diff(stream.times) >= 0.0)
        assert stream.times[-1] < spec.duration

    def test_ops_follow_the_mix(self):
        spec = WorkloadSpec(
            mode="open", duration=10.0, rate=5000.0,
            ops_mix=(0.5, 0.3, 0.2),
        )
        stream = generate(spec, 4, seed=1)
        fractions = np.bincount(stream.ops, minlength=3) / len(stream)
        assert fractions[OP_NOW] == pytest.approx(0.5, abs=0.02)
        assert fractions[OP_TRANSLATE] == pytest.approx(0.3, abs=0.02)
        assert fractions[OP_COMPARE] == pytest.approx(0.2, abs=0.02)

    def test_secondary_rank_is_always_distinct(self):
        spec = WorkloadSpec(mode="open", duration=5.0, rate=2000.0)
        for num_ranks in (2, 3, 8):
            stream = generate(spec, num_ranks, seed=2)
            assert np.all(stream.ranks != stream.ranks2)
            assert stream.ranks.max() < num_ranks
            assert stream.ranks2.max() < num_ranks

    def test_rejects_single_rank(self):
        with pytest.raises(ConfigurationError):
            generate(WorkloadSpec(), 1, seed=0)
