"""Tests for resync scheduling policies (repro.service.slo)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.service.epoch import compile_epoch
from repro.service.slo import ErrorBoundResyncPolicy, PeriodicResyncPolicy
from repro.simtime.drift import ConstantDrift, RandomWalkDrift
from repro.sync.linear_model import LinearDriftModel

MODELS = [
    LinearDriftModel.ZERO,
    LinearDriftModel(slope=1e-5, intercept=0.01),
]


def drifting_epoch(sigma=3e-7, synced_at=10.0, base_error=1e-7):
    return compile_epoch(
        generation=0, synced_at=synced_at, models=MODELS,
        drifts=(
            RandomWalkDrift(1e-5, sigma=sigma, rng=np.random.default_rng(1)),
            RandomWalkDrift(-2e-5, sigma=sigma, rng=np.random.default_rng(2)),
        ),
        base_error=base_error,
    )


def stable_epoch(synced_at=10.0):
    return compile_epoch(
        generation=0, synced_at=synced_at, models=MODELS,
        drifts=(ConstantDrift(0.0), ConstantDrift(1e-5)),
        base_error=1e-7,
    )


class TestPeriodic:
    def test_schedules_one_period_after_sync(self):
        policy = PeriodicResyncPolicy(8.0)
        assert policy.next_resync(drifting_epoch(synced_at=3.0)) == 11.0
        assert policy.label() == "periodic[8s]"

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ConfigurationError):
            PeriodicResyncPolicy(0.0)


class TestErrorBound:
    def test_schedules_at_the_bound_crossing(self):
        slo, margin = 25e-6, 0.8
        policy = ErrorBoundResyncPolicy(slo=slo, margin=margin)
        epoch = drifting_epoch()
        t_next = policy.next_resync(epoch)
        age = t_next - epoch.synced_at
        assert 0.0 < age < policy.max_age
        # At the scheduled age the predicted bound sits at the trigger.
        assert epoch.max_bound(age) == pytest.approx(
            margin * slo, rel=1e-6
        )

    def test_tighter_slo_resyncs_sooner(self):
        epoch = drifting_epoch()
        tight = ErrorBoundResyncPolicy(slo=5e-6).next_resync(epoch)
        loose = ErrorBoundResyncPolicy(slo=50e-6).next_resync(epoch)
        assert tight < loose

    def test_stable_cluster_falls_back_to_max_age(self):
        # Constant drift never accumulates bound growth, so the policy
        # settles on its schedule ceiling.
        policy = ErrorBoundResyncPolicy(slo=25e-6, max_age=120.0)
        epoch = stable_epoch(synced_at=7.0)
        assert policy.next_resync(epoch) == 127.0

    def test_label_carries_slo_and_margin(self):
        assert (
            ErrorBoundResyncPolicy(slo=25e-6, margin=0.5).label()
            == "errorbound[2.5e-05s@0.5]"
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ErrorBoundResyncPolicy(slo=0.0)
        with pytest.raises(ConfigurationError):
            ErrorBoundResyncPolicy(slo=1e-6, margin=1.5)
        with pytest.raises(ConfigurationError):
            ErrorBoundResyncPolicy(slo=1e-6, max_age=0.0)
