"""Exporter tests: speedscope schema, profile.json invariants, tables."""

from __future__ import annotations

import json

import pytest

from repro.prof.core import Profiler
from repro.prof.export import (
    PROFILE_JSON,
    SPEEDSCOPE_JSON,
    SPEEDSCOPE_SCHEMA,
    flatten,
    format_table,
    profile_dict,
    speedscope_document,
    top_zones,
    write_profile,
    zone_breakdown,
)
from tests.prof.test_core import FakeClock


@pytest.fixture
def prof() -> Profiler:
    p = Profiler(clock=FakeClock(step=100))
    with p.zone("sim.run"):
        with p.zone("engine.run"):
            with p.zone("engine.send"):
                pass
            p.add("net.delay", 250, count=5)
        with p.zone("check.finalize"):
            pass
    with p.zone("report"):
        pass
    return p


class TestProfileDict:
    def test_self_times_sum_to_total(self, prof):
        doc = profile_dict(prof)
        assert doc["format"] == "repro-profile"
        assert doc["unit"] == "nanoseconds"
        assert sum(z["self_ns"] for z in doc["zones"]) == doc["total_ns"]

    def test_rows_carry_path_and_depth(self, prof):
        rows = {r["path"]: r for r in flatten(prof)}
        assert rows["sim.run/engine.run/engine.send"]["depth"] == 2
        assert rows["sim.run/engine.run/net.delay"]["count"] == 5
        assert rows["sim.run"]["depth"] == 0

    def test_meta_embedded(self, prof):
        doc = profile_dict(prof, meta={"seed": 7})
        assert doc["meta"] == {"seed": 7}


def _validate_speedscope(doc: dict) -> None:
    """Structural checks from the published speedscope file format."""
    assert doc["$schema"] == SPEEDSCOPE_SCHEMA
    frames = doc["shared"]["frames"]
    assert frames and all("name" in f for f in frames)
    assert doc["activeProfileIndex"] == 0
    (profile,) = doc["profiles"]
    assert profile["type"] == "evented"
    assert profile["startValue"] == 0
    events = profile["events"]
    # Events reference valid frames, times are monotone, O/C balance.
    stack = []
    last = 0
    for event in events:
        assert event["type"] in ("O", "C")
        assert 0 <= event["frame"] < len(frames)
        assert event["at"] >= last
        last = event["at"]
        if event["type"] == "O":
            stack.append(event["frame"])
        else:
            assert stack.pop() == event["frame"]
    assert stack == []
    assert profile["endValue"] == last


class TestSpeedscope:
    def test_document_is_valid(self, prof):
        _validate_speedscope(speedscope_document(prof))

    def test_end_value_covers_total(self, prof):
        doc = speedscope_document(prof)
        assert doc["profiles"][0]["endValue"] >= prof.total_ns()

    def test_empty_profiler(self):
        doc = speedscope_document(Profiler())
        assert doc["profiles"][0]["events"] == []
        assert doc["profiles"][0]["endValue"] == 0

    def test_children_wider_than_parent_still_nest(self):
        # add() can account more child time than the parent's inclusive
        # time (e.g. counted against a zone that also self-reports); the
        # exporter must still emit a well-formed nesting.
        p = Profiler(clock=FakeClock())
        with p.zone("parent"):
            p.add("child", 10_000)
        _validate_speedscope(speedscope_document(p))


class TestTables:
    def test_format_table_orders_by_self_time(self, prof):
        lines = format_table(prof, top=3).splitlines()
        assert "zone" in lines[0]
        assert len(lines) == 5  # header + 3 rows + coverage footer
        assert "cover" in lines[-1]

    def test_top_zones_ranked(self, prof):
        rows = top_zones(prof, top=100)
        selfs = [r["self_ns"] for r in rows]
        assert selfs == sorted(selfs, reverse=True)

    def test_zone_breakdown_compact(self, prof):
        bd = zone_breakdown(prof, top=2)
        assert bd["total_ns"] == prof.total_ns()
        assert len(bd["zones"]) == 2
        for row in bd["zones"].values():
            assert set(row) == {"count", "total_ns", "self_ns"}


class TestWriteProfile:
    def test_writes_both_artifacts(self, prof, tmp_path):
        json_path, ss_path = write_profile(
            prof, str(tmp_path / "out"), meta={"targets": ["fig3"]}
        )
        assert json_path.endswith(PROFILE_JSON)
        assert ss_path.endswith(SPEEDSCOPE_JSON)
        with open(json_path) as fh:
            doc = json.load(fh)
        assert doc["meta"] == {"targets": ["fig3"]}
        assert sum(z["self_ns"] for z in doc["zones"]) == doc["total_ns"]
        with open(ss_path) as fh:
            _validate_speedscope(json.load(fh))
