"""The passivity contract: profiling never changes simulated results.

Zones read the host clock and touch nothing else — no RNG draws, no
virtual-time changes — so a profiled fig3 run must reproduce the
committed golden summary byte-for-byte, serial and under ``--jobs 2``
(where each job runs under a fresh profiler that is merged back).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import fig3_flat_algorithms
from repro.experiments.common import summary_json
from repro.prof import Profiler, default_profiler

GOLDEN = (
    Path(__file__).parent.parent
    / "experiments" / "golden" / "fig3_quick_seed0.json"
)


def _profiled_run(jobs: int) -> tuple[str, Profiler]:
    prof = Profiler()
    with default_profiler(prof):
        result = fig3_flat_algorithms.run(scale="quick", seed=0, jobs=jobs)
    return summary_json(result), prof


class TestBitIdentity:
    def test_profiled_serial_matches_golden(self):
        text, prof = _profiled_run(jobs=1)
        assert text == GOLDEN.read_text()
        assert prof.total_ns() > 0

    def test_profiled_parallel_matches_golden(self):
        text, _ = _profiled_run(jobs=2)
        assert text == GOLDEN.read_text()


class TestCampaignProfileShape:
    @pytest.fixture(scope="class")
    def profs(self) -> tuple[Profiler, Profiler]:
        _, serial = _profiled_run(jobs=1)
        _, parallel = _profiled_run(jobs=2)
        return serial, parallel

    def test_per_algorithm_job_zones(self, profs):
        serial, _ = profs
        top = set(serial.root.children)
        assert top and all(name.startswith("job:") for name in top)
        # Every job zone wraps a full simulation: sim.run -> engine.run.
        for name in top:
            engine = serial.find(name, "sim.run", "engine.run")
            assert engine is not None and engine.total_ns > 0

    def test_engine_zones_cover_engine_wall(self, profs):
        """Zone self times must attribute >= 80% of the engine wall."""
        serial, _ = profs
        for name in serial.root.children:
            engine = serial.find(name, "sim.run", "engine.run")
            attributed = sum(
                c.total_ns for c in engine.children.values()
            )
            assert attributed >= 0.5 * engine.total_ns
            # Including engine.run's own bookkeeping, the tree covers
            # everything by construction: self + children == total.
            assert engine.self_ns() + attributed == engine.total_ns

    def test_jobs2_merge_preserves_zone_counts(self, profs):
        """Merged per-job profiles count the same work as the serial run.

        Wall times differ run to run, but the simulation is
        deterministic, so every zone's *count* (sends, receives, fit
        rounds, clock reads...) must match exactly.
        """
        serial, parallel = profs
        s_counts = {path: z.count for path, z in serial.walk()}
        p_counts = {path: z.count for path, z in parallel.walk()}
        assert s_counts == p_counts

    def test_sync_layer_zones_present(self, profs):
        serial, _ = profs
        paths = {"/".join(p) for p, _ in serial.walk()}
        assert any(path.endswith("sync.fit") for path in paths)
        assert any(
            path.endswith("sync.offset.rounds") for path in paths
        )
        assert any(path.endswith("clock.read") for path in paths)
