"""Unit tests for the profiler zone tree (repro.prof.core).

A fake nanosecond clock (fixed step per read) makes every duration
deterministic, so the tests assert exact zone times instead of ranges.
"""

from __future__ import annotations

import pytest

from repro.prof.core import (
    Profiler,
    Zone,
    default_profiler,
    get_default_profiler,
    profiled,
    set_default_profiler,
)


class FakeClock:
    """perf_counter_ns stand-in: advances ``step`` ns per read."""

    def __init__(self, step: int = 10) -> None:
        self.now = 0
        self.step = step

    def __call__(self) -> int:
        self.now += self.step
        return self.now


@pytest.fixture
def prof() -> Profiler:
    return Profiler(clock=FakeClock())


class TestZoneStack:
    def test_push_pop_accumulates(self, prof):
        start = prof.push("a")
        prof.pop(start)
        zone = prof.find("a")
        assert zone.count == 1
        # One clock read at push, one at pop: 10ns elapsed.
        assert zone.total_ns == 10
        assert prof.depth == 0

    def test_nesting_builds_tree(self, prof):
        with prof.zone("outer"):
            with prof.zone("inner"):
                pass
            with prof.zone("inner"):
                pass
        outer = prof.find("outer")
        inner = prof.find("outer", "inner")
        assert outer.count == 1
        assert inner.count == 2
        assert prof.find("inner") is None  # nested, not top-level

    def test_self_ns_excludes_children(self, prof):
        with prof.zone("outer"):
            with prof.zone("inner"):
                pass
        outer = prof.find("outer")
        inner = prof.find("outer", "inner")
        assert outer.self_ns() == outer.total_ns - inner.total_ns
        assert inner.self_ns() == inner.total_ns

    def test_reentry_aggregates_same_node(self, prof):
        for _ in range(3):
            with prof.zone("hot"):
                pass
        assert prof.find("hot").count == 3
        assert prof.find("hot").total_ns == 30

    def test_total_ns_sums_top_level(self, prof):
        with prof.zone("a"):
            pass
        with prof.zone("b"):
            with prof.zone("c"):
                pass
        assert prof.total_ns() == (
            prof.find("a").total_ns + prof.find("b").total_ns
        )

    def test_add_accounts_leaf_without_stack(self, prof):
        with prof.zone("outer"):
            prof.add("leaf", 123, count=2)
        leaf = prof.find("outer", "leaf")
        assert leaf.total_ns == 123
        assert leaf.count == 2

    def test_tick_counts_without_time(self, prof):
        prof.tick("rounds")
        prof.tick("rounds", count=4)
        zone = prof.find("rounds")
        assert zone.count == 5
        assert zone.total_ns == 0

    def test_zone_closes_on_exception(self, prof):
        with pytest.raises(RuntimeError):
            with prof.zone("boom"):
                raise RuntimeError
        assert prof.depth == 0
        assert prof.find("boom").count == 1


class TestWalkAndSerialize:
    def test_walk_is_depth_first_sorted(self, prof):
        with prof.zone("b"):
            with prof.zone("z"):
                pass
            with prof.zone("a"):
                pass
        with prof.zone("a"):
            pass
        paths = [path for path, _ in prof.walk()]
        assert paths == [("a",), ("b",), ("b", "a"), ("b", "z")]

    def test_roundtrip_dict(self, prof):
        with prof.zone("outer"):
            with prof.zone("inner"):
                pass
        clone = Profiler.from_dict(prof.to_dict())
        assert clone.to_dict() == prof.to_dict()
        assert clone.find("outer", "inner").count == 1

    def test_merge_from_aggregates_paths(self):
        a, b = Profiler(clock=FakeClock()), Profiler(clock=FakeClock())
        with a.zone("run"):
            a.add("leaf", 100)
        with b.zone("run"):
            b.add("leaf", 50)
            b.add("other", 7)
        a.merge_from(b)
        assert a.find("run").count == 2
        assert a.find("run", "leaf").total_ns == 150
        assert a.find("run", "other").total_ns == 7
        # b is untouched by the merge.
        assert b.find("run", "leaf").total_ns == 50

    def test_zone_from_dict_tolerates_missing_fields(self):
        zone = Zone.from_dict({"name": "x"})
        assert (zone.count, zone.total_ns, zone.children) == (0, 0, {})


class TestDefaultProfiler:
    def test_default_is_none(self):
        assert get_default_profiler() is None

    def test_context_installs_and_restores(self):
        prof = Profiler()
        with default_profiler(prof) as installed:
            assert installed is prof
            assert get_default_profiler() is prof
        assert get_default_profiler() is None

    def test_set_returns_previous(self):
        prof = Profiler()
        assert set_default_profiler(prof) is None
        try:
            assert set_default_profiler(None) is prof
        finally:
            set_default_profiler(None)

    def test_profiled_decorator_noop_without_default(self):
        calls = []

        @profiled("deco.zone")
        def fn(x):
            calls.append(x)
            return x + 1

        assert fn(1) == 2
        assert calls == [1]

    def test_profiled_decorator_records_under_default(self):
        @profiled("deco.zone")
        def fn():
            return 42

        prof = Profiler(clock=FakeClock())
        with default_profiler(prof):
            assert fn() == 42
        assert prof.find("deco.zone").count == 1
        assert prof.find("deco.zone").total_ns == 10
