"""Tests for the reporting helpers."""


import pytest

from repro.analysis.reporting import Series, Table, fmt_us, format_table, us


class TestSeries:
    def test_add_and_summary(self):
        s = Series(name="lat", x_label="msize", y_label="us")
        s.add(4, 10.0)
        s.add(8, 12.0)
        assert "lat" in s.summary()
        assert "n=2" in s.summary()

    def test_summary_ignores_nan(self):
        s = Series(name="x")
        s.add(1, float("nan"))
        s.add(2, 5.0)
        assert "n=1" in s.summary()

    def test_empty_summary(self):
        assert "(no data)" in Series(name="e").summary()


class TestTable:
    def test_row_arity_checked(self):
        t = Table(title="t", columns=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_format_alignment(self):
        t = Table(title="Demo", columns=["name", "value"])
        t.add_row("x", 1)
        t.add_row("longer", 22)
        out = format_table(t)
        lines = out.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5


class TestUnits:
    def test_us(self):
        assert us(1.5e-6) == pytest.approx(1.5)

    def test_fmt_us(self):
        assert fmt_us(2.5e-6) == "2.50"
        assert fmt_us(2.5e-6, digits=0) == "2"
