"""Tests for CHECK_CLOCK_ACCURACY (Algorithm 6)."""

import pytest

from repro.analysis.accuracy import (
    check_clock_accuracy,
    ground_truth_accuracy,
    max_abs_offset,
)
from repro.cluster.netmodels import infiniband_qdr
from repro.simtime.sources import CLOCK_GETTIME
from repro.sync import HCA3Sync, SKaMPIOffset
from tests.conftest import run_spmd

QUIET = CLOCK_GETTIME.with_(skew_walk_sigma=1e-9)


def campaign(wait_times=(0.0, 1.0), sample_fraction=1.0, nodes=4, seed=0):
    def main(ctx, comm):
        alg = HCA3Sync(offset_alg=SKaMPIOffset(8), nfitpoints=10,
                       fitpoint_spacing=1e-3)
        g_clk = yield from alg.sync_clocks(comm, ctx.hardware_clock)
        out = yield from check_clock_accuracy(
            comm, g_clk, SKaMPIOffset(8), wait_times=wait_times,
            sample_fraction=sample_fraction,
        )
        return (g_clk, out, ctx.now)

    sim, res = run_spmd(main, num_nodes=nodes, ranks_per_node=1,
                        network=infiniband_qdr(), time_source=QUIET,
                        seed=seed)
    return sim, res


class TestCheckClockAccuracy:
    def test_root_reports_all_clients(self):
        _, res = campaign()
        _, offsets, _ = res.values[0]
        assert set(offsets) == {0.0, 1.0}
        assert set(offsets[0.0]) == {1, 2, 3}

    def test_clients_return_none(self):
        _, res = campaign()
        assert all(v[1] is None for v in res.values[1:])

    def test_measured_matches_ground_truth(self):
        sim, res = campaign(wait_times=(0.0,), seed=3)
        clocks = [v[0] for v in res.values]
        _, offsets, t_end = res.values[0]
        measured = max_abs_offset(offsets[0.0])
        truth = ground_truth_accuracy(clocks, t_end)
        # Both tiny; the measurement agrees within the ping-pong noise.
        assert measured == pytest.approx(truth, abs=2e-6)

    def test_offsets_grow_with_wait(self):
        spec = CLOCK_GETTIME.with_(skew_walk_sigma=3e-7)

        def main(ctx, comm):
            alg = HCA3Sync(offset_alg=SKaMPIOffset(8), nfitpoints=10,
                           fitpoint_spacing=1e-3)
            g_clk = yield from alg.sync_clocks(comm, ctx.hardware_clock)
            out = yield from check_clock_accuracy(
                comm, g_clk, SKaMPIOffset(8), wait_times=(0.0, 20.0)
            )
            return out

        _, res = run_spmd(main, num_nodes=4, ranks_per_node=1,
                          network=infiniband_qdr(), time_source=spec,
                          seed=5)
        offsets = res.values[0]
        assert max_abs_offset(offsets[20.0]) > max_abs_offset(offsets[0.0])

    def test_sampling_reduces_clients(self):
        _, res = campaign(sample_fraction=0.4, nodes=6, seed=7)
        _, offsets, _ = res.values[0]
        assert len(offsets[0.0]) == 2  # 40% of 5 clients


class TestGroundTruth:
    def test_identical_clocks_zero(self):
        from repro.simtime.hardware import HardwareClock

        clk = HardwareClock(offset=3.0)
        assert ground_truth_accuracy([clk, clk, clk], 1.0) == 0.0

    def test_max_over_ranks(self):
        from repro.simtime.hardware import HardwareClock

        clocks = [HardwareClock(offset=0.0), HardwareClock(offset=1.0),
                  HardwareClock(offset=-2.0)]
        assert ground_truth_accuracy(clocks, 0.5) == pytest.approx(2.0)


class TestErrorBound:
    """The reusable accuracy-analysis helper, pinned on constant drift.

    With constant drift everything is exactly linear, so the worst-case
    bound and the ground-truth error can be compared analytically.
    """

    def _clocks(self, skew):
        from repro.simtime.drift import ConstantDrift
        from repro.simtime.hardware import HardwareClock

        ref = HardwareClock(offset=0.0, drift=ConstantDrift(0.0))
        client = HardwareClock(offset=0.0, drift=ConstantDrift(skew))
        return ref, client

    def test_unsynced_constant_drift_matches_ground_truth(self):
        from repro.analysis.accuracy import error_bound
        from repro.sync.linear_model import LinearDriftModel

        skew = 2e-5
        ref, client = self._clocks(skew)
        # An identity "model" (no sync at all): the error is exactly the
        # accumulated skew, and so is the bound with drift = rate.
        for age in (1.0, 7.5, 30.0):
            truth = ground_truth_accuracy([ref, client], age)
            bound = error_bound(LinearDriftModel.ZERO, age, drift=skew)
            assert truth == pytest.approx(skew * age, rel=1e-9)
            assert bound == pytest.approx(truth, rel=1e-9)
            assert truth <= bound * (1.0 + 1e-12)

    def test_exact_fit_bounds_the_corrected_clock(self):
        from repro.analysis.accuracy import error_bound
        from repro.sync.clocks import GlobalClockLM
        from repro.sync.linear_model import LinearDriftModel

        skew = 2e-5
        ref, client = self._clocks(skew)
        # Fit the model from exact offset measurements: constant drift
        # makes the offset curve a perfect line, so the fit is exact.
        ts = [10.0 + 0.1 * i for i in range(8)]
        locals_ = [client.read(t) for t in ts]
        offsets = [client.read(t) - ref.read(t) for t in ts]
        model = LinearDriftModel.fit(locals_, offsets)
        corrected = GlobalClockLM(client, model)
        residual = max(
            abs(model.apply(loc) - (loc - off))
            for loc, off in zip(locals_, offsets)
        )
        for age in (0.0, 5.0, 60.0):
            truth = ground_truth_accuracy([ref, corrected], 10.7 + age)
            # ConstantDrift's error growth is identically zero, so the
            # bound never degrades with age — it is the fit residual.
            bound = error_bound(
                model, age, drift=client.drift, base_error=residual
            )
            assert bound == pytest.approx(residual)
            assert truth <= residual + 1e-12

    def test_negative_age_is_unbounded(self):
        from repro.analysis.accuracy import error_bound
        from repro.sync.linear_model import LinearDriftModel

        assert error_bound(
            LinearDriftModel.ZERO, -1.0, drift=1e-5
        ) == float("inf")

    def test_drift_model_growth_path(self):
        from repro.analysis.accuracy import error_bound
        from repro.simtime.drift import SinusoidalDrift

        drift = SinusoidalDrift(mean_skew=1e-5, amplitude=3e-6, period=60.0,
                                segment_length=1.0)
        model_slope = 1e-5
        from repro.sync.linear_model import LinearDriftModel

        model = LinearDriftModel(slope=model_slope, intercept=0.0)
        age = 1e6  # growth saturates at the excursion bound * age
        bound = error_bound(model, age, drift=drift, base_error=1e-7)
        assert bound == pytest.approx(
            1e-7 + (1.0 + model_slope) * drift.error_growth(age)
        )
