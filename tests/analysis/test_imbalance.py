"""Tests for barrier-exit imbalance measurement (Fig. 8 machinery)."""

import numpy as np

from repro.analysis.imbalance import measure_barrier_imbalance
from repro.cluster.netmodels import infiniband_qdr
from repro.errors import SyncError
from repro.simtime.sources import CLOCK_GETTIME
from repro.sync.hierarchical import h2hca
from tests.conftest import run_spmd

QUIET = CLOCK_GETTIME.with_(skew_walk_sigma=1e-9)


def run_imbalance(algorithm, nreps=30, nodes=2, rpn=4, seed=0):
    def main(ctx, comm):
        alg = main.algs.setdefault(
            ctx.rank, h2hca(nfitpoints=10, fitpoint_spacing=1e-3)
        )
        g_clk = yield from alg.sync_clocks(comm, ctx.hardware_clock)
        out = yield from measure_barrier_imbalance(
            comm, g_clk, algorithm, nreps=nreps
        )
        return out

    main.algs = {}
    _, res = run_spmd(main, num_nodes=nodes, ranks_per_node=rpn,
                      network=infiniband_qdr(), time_source=QUIET,
                      seed=seed)
    return res.values


class TestImbalance:
    def test_root_collects_samples(self):
        values = run_imbalance("tree", nreps=15)
        samples = values[0]
        assert len(samples) == 15
        assert all(v is None for v in values[1:])

    def test_samples_positive(self):
        samples = run_imbalance("bruck")[0]
        finite = [s for s in samples if np.isfinite(s)]
        assert finite and all(s > 0 for s in finite)

    def test_double_ring_worse_than_tree(self):
        tree = [s for s in run_imbalance("tree", seed=1)[0]
                if np.isfinite(s)]
        ring = [s for s in run_imbalance("double_ring", seed=1)[0]
                if np.isfinite(s)]
        assert np.mean(ring) > 2 * np.mean(tree)

    def test_rejects_zero_reps(self):
        def main(ctx, comm):
            try:
                yield from measure_barrier_imbalance(
                    comm, ctx.hardware_clock, "tree", nreps=0
                )
            except SyncError:
                return "raised"
            return "no"

        _, res = run_spmd(main, network=infiniband_qdr(),
                          time_source=QUIET)
        assert all(v == "raised" for v in res.values)
