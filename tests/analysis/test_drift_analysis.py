"""Tests for drift recording and linearity analysis (Fig. 2 machinery)."""

import numpy as np
import pytest

from repro.analysis.drift import (
    DriftTrace,
    detrended_range,
    drift_linearity,
    extrapolation_error,
    mean_r_squared,
    record_drift,
)
from repro.cluster.netmodels import infiniband_qdr
from repro.errors import SyncError
from repro.simtime.sources import CLOCK_GETTIME
from repro.sync.offset import SKaMPIOffset
from tests.conftest import run_spmd


def make_trace(offsets_fn, duration=100.0, step=1.0):
    t = np.arange(0.0, duration, step)
    return DriftTrace(rank=1, timestamps=t, offsets=offsets_fn(t))


class TestRecordDrift:
    def test_traces_shape(self):
        def main(ctx, comm):
            out = yield from record_drift(
                comm, ctx.hardware_clock, duration=5.0, interval=0.5,
                offset_alg=SKaMPIOffset(5),
            )
            return out

        _, res = run_spmd(main, num_nodes=3, ranks_per_node=1,
                          network=infiniband_qdr(),
                          time_source=CLOCK_GETTIME, seed=2)
        traces = res.values[0]
        assert set(traces) == {1, 2}
        for trace in traces.values():
            assert len(trace.timestamps) == 10
            assert np.all(np.diff(trace.timestamps) > 0)

    def test_offsets_track_ground_truth(self):
        def main(ctx, comm):
            out = yield from record_drift(
                comm, ctx.hardware_clock, duration=4.0, interval=1.0,
                offset_alg=SKaMPIOffset(8),
            )
            return out

        sim, res = run_spmd(main, num_nodes=2, ranks_per_node=1,
                            network=infiniband_qdr(),
                            time_source=CLOCK_GETTIME, seed=3)
        trace = res.values[0][1]
        # Compare the final measured offset with ground truth at the
        # corresponding true time (invert the client clock reading).
        t_true = sim.clocks[1].invert(trace.timestamps[-1])
        truth = sim.clocks[1].read_raw(t_true) - sim.clocks[0].read_raw(
            t_true
        )
        assert trace.offsets[-1] == pytest.approx(truth, abs=5e-6)

    def test_validation(self):
        def main(ctx, comm):
            try:
                yield from record_drift(
                    comm, ctx.hardware_clock, duration=0.0, interval=1.0,
                    offset_alg=SKaMPIOffset(2),
                )
            except SyncError:
                return "raised"
            return "no"

        _, res = run_spmd(main, network=infiniband_qdr())
        assert all(v == "raised" for v in res.values)


class TestLinearity:
    def test_linear_trace_r2_one(self):
        trace = make_trace(lambda t: 1e-5 * t + 2e-4)
        windows = drift_linearity(trace, window=10.0)
        assert windows
        assert all(r2 == pytest.approx(1.0) for _, r2 in windows)

    def test_curved_trace_lower_r2(self):
        trace = make_trace(lambda t: 1e-8 * (t - 50.0) ** 2)
        r2_long = mean_r_squared([trace], window=100.0)
        assert r2_long < 0.9

    def test_detrended_range_zero_for_line(self):
        trace = make_trace(lambda t: 3e-6 * t)
        assert detrended_range(trace) == pytest.approx(0.0, abs=1e-15)

    def test_detrended_range_positive_for_curve(self):
        trace = make_trace(lambda t: 1e-8 * (t - 50.0) ** 2)
        assert detrended_range(trace) > 1e-6

    def test_extrapolation_error_grows_with_curvature(self):
        line = make_trace(lambda t: 1e-6 * t)
        curve = make_trace(lambda t: 1e-6 * t + 5e-9 * t ** 2)
        assert extrapolation_error(line, 10.0) == pytest.approx(0.0,
                                                                abs=1e-12)
        assert extrapolation_error(curve, 10.0) > 1e-6

    def test_extrapolation_needs_points(self):
        trace = make_trace(lambda t: t, duration=100.0, step=50.0)
        with pytest.raises(SyncError):
            extrapolation_error(trace, 10.0)

    def test_windows_skip_sparse_segments(self):
        t = np.array([0.0, 1.0, 2.0, 50.0])
        trace = DriftTrace(rank=1, timestamps=t, offsets=t * 1e-6)
        windows = drift_linearity(trace, window=10.0)
        starts = [s for s, _ in windows]
        assert 0.0 in starts
        assert len(windows) == 1  # the sparse tail has < 3 points
