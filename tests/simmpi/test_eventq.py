"""Unit tests for the engine's event-queue kernels.

The contract (see ``repro.simmpi.eventq``): events are ``(time, seq,
rank)`` with ``seq`` a monotonic tie-breaker, so ``(time, seq)`` is a
total order and every kernel must pop in exactly that order — the queue
kind is a pure performance knob.  These tests pin the contract directly
on the queue objects; ``test_kernel_equivalence.py`` pins it end-to-end
through whole simulations.
"""

import math

import pytest

from repro.simmpi.eventq import (
    QUEUE_KINDS,
    CalendarQueue,
    HeapQueue,
    auto_bucket_width,
    make_queue,
)


def drain(queue):
    out = []
    while queue.size:
        out.append(queue.pop())
    return out


class TestMakeQueue:
    def test_kinds(self):
        assert isinstance(make_queue("calendar"), CalendarQueue)
        assert isinstance(make_queue("heap"), HeapQueue)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown event queue"):
            make_queue("fibonacci")

    def test_kinds_constant_covers_factory(self):
        for kind in QUEUE_KINDS:
            assert make_queue(kind) is not None

    def test_bad_width_raises(self):
        for width in (0.0, -1e-6, float("nan")):
            with pytest.raises(ValueError):
                CalendarQueue(width=width)

    def test_auto_width_scales_inversely_with_ranks(self):
        w32 = auto_bucket_width(1e-6, 32)
        w4096 = auto_bucket_width(1e-6, 4096)
        assert w32 > w4096 > 0.0
        assert w32 / w4096 == pytest.approx(4096 / 32)

    def test_auto_width_defends_degenerate_window(self):
        assert auto_bucket_width(0.0, 8) > 0.0
        assert auto_bucket_width(-1.0, 8) > 0.0


@pytest.mark.parametrize("kind", QUEUE_KINDS)
class TestQueueContract:
    """Behaviour every kernel must share, parametrized over kinds."""

    def test_pops_in_time_seq_order(self, kind):
        q = make_queue(kind, width=1e-6)
        events = [(3e-6, 0, 0), (1e-6, 1, 1), (2e-6, 2, 2), (1e-6, 3, 3)]
        for time, seq, rank in events:
            q.push(time, seq, rank)
        assert drain(q) == sorted(events)

    def test_ties_break_by_seq(self, kind):
        q = make_queue(kind, width=1e-6)
        for seq in (5, 1, 3, 2, 4):
            q.push(7e-6, seq, seq)
        assert [item[1] for item in drain(q)] == [1, 2, 3, 4, 5]

    def test_frontier_tracks_earliest(self, kind):
        q = make_queue(kind, width=1e-6)
        assert q.frontier == math.inf
        q.push(5e-6, 0, 0)
        assert q.frontier == 5e-6
        q.push(2e-6, 1, 1)
        assert q.frontier == 2e-6
        q.pop()
        assert q.frontier == 5e-6
        q.pop()
        assert q.frontier == math.inf

    def test_size_and_len(self, kind):
        q = make_queue(kind, width=1e-6)
        for i in range(5):
            q.push(i * 1e-6, i, i)
        assert q.size == len(q) == 5
        q.pop()
        assert q.size == len(q) == 4

    def test_cancelled_entries_never_surface(self, kind):
        q = make_queue(kind, width=1e-6)
        for i in range(4):
            q.push(i * 1e-6, i, i)
        q.cancel(0)  # head of the queue
        q.cancel(2)  # middle
        assert q.size == 2
        assert [item[1] for item in drain(q)] == [1, 3]

    def test_interleaved_push_pop(self, kind):
        q = make_queue(kind, width=1e-6)
        q.push(1e-6, 0, 0)
        q.push(4e-6, 1, 1)
        assert q.pop()[1] == 0
        # Pushes after a pop may land anywhere at/after the popped time,
        # including before the current frontier.
        q.push(2e-6, 2, 2)
        q.push(3e-6, 3, 3)
        assert [item[1] for item in drain(q)] == [2, 3, 1]

    def test_refill_after_empty(self, kind):
        q = make_queue(kind, width=1e-6)
        q.push(1e-6, 0, 0)
        assert q.pop()[1] == 0
        assert q.size == 0 and q.frontier == math.inf
        q.push(9e-6, 1, 1)
        q.push(8e-6, 2, 2)
        assert [item[1] for item in drain(q)] == [2, 1]


class TestCalendarSpecifics:
    def test_far_future_overflow_single_sparse_bucket(self):
        """Times thousands of widths apart stay O(occupied buckets)."""
        q = CalendarQueue(width=1e-9)
        times = [1e-6, 1.0, 3600.0, 86400.0]
        for seq, t in enumerate(times):
            q.push(t, seq, 0)
        # One sparse bucket per event, not one slot per elapsed width.
        assert len(q._buckets) + (1 if q._cur else 0) <= len(times)
        assert [item[0] for item in drain(q)] == times

    def test_same_bucket_push_lands_in_sorted_remainder(self):
        q = CalendarQueue(width=1e-3)  # everything in one bucket
        q.push(1e-6, 0, 0)
        q.push(5e-6, 1, 1)
        assert q.pop()[1] == 0
        q.push(2e-6, 2, 2)  # same bucket, before the remainder head
        assert q.frontier == 2e-6
        assert [item[1] for item in drain(q)] == [2, 1]

    def test_earlier_bucket_after_advance_still_ordered(self):
        """A push into an already-passed bucket index joins the remainder."""
        q = CalendarQueue(width=1e-6)
        q.push(0.5e-6, 0, 0)  # bucket 0
        q.push(5.5e-6, 1, 1)  # bucket 5
        assert q.pop()[1] == 0  # drains bucket 0, advances to bucket 5
        q.push(2.5e-6, 2, 2)   # bucket 2 < current bucket 5
        assert q.frontier == 2.5e-6
        assert [item[1] for item in drain(q)] == [2, 1]

    def test_width_never_changes_pop_order(self):
        events = [
            (i * 7919 % 13 * 1e-7 + (i % 3) * 1e-4, i, i % 5)
            for i in range(200)
        ]
        reference = None
        for width in (1e-9, 1e-7, 1e-5, 1e-3, 1.0):
            q = CalendarQueue(width=width)
            for time, seq, rank in events:
                q.push(time, seq, rank)
            order = drain(q)
            if reference is None:
                reference = order
            assert order == reference
        assert reference == sorted(events)
