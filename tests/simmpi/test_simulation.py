"""Unit tests for the Simulation facade."""

import pytest

from repro.cluster.netmodels import ideal_network, infiniband_qdr
from repro.cluster.topology import Machine
from repro.errors import SimulationError
from repro.simmpi.simulation import Simulation
from repro.simtime.sources import GETTIMEOFDAY


def machine(nodes=2, rpn=2):
    return Machine(num_nodes=nodes, sockets_per_node=2,
                   cores_per_socket=max(1, (rpn + 1) // 2),
                   ranks_per_node=rpn)


def trivial(ctx, comm):
    total = yield from comm.allreduce(1)
    return total


class TestClockDomains:
    def test_node_shared_clocks(self):
        sim = Simulation(machine(2, 4), ideal_network())
        assert sim.shared_time_source([0, 1, 2, 3])
        assert not sim.shared_time_source([0, 4])

    def test_socket_clocks(self):
        sim = Simulation(machine(1, 4), ideal_network(),
                         clocks_per="socket")
        # ranks 0,1 on socket 0; ranks 2,3 on socket 1.
        assert sim.shared_time_source([0, 1])
        assert not sim.shared_time_source([0, 2])

    def test_core_clocks(self):
        sim = Simulation(machine(1, 4), ideal_network(), clocks_per="core")
        assert not sim.shared_time_source([0, 1])

    def test_invalid_clock_domain(self):
        with pytest.raises(SimulationError):
            Simulation(machine(), ideal_network(), clocks_per="rack")


class TestRun:
    def test_values_per_rank(self):
        sim = Simulation(machine(2, 2), ideal_network())
        result = sim.run(trivial)
        assert result.values == [4, 4, 4, 4]
        assert result.messages > 0

    def test_true_offset_uses_ground_truth(self):
        sim = Simulation(machine(2, 1), ideal_network(),
                         time_source=GETTIMEOFDAY, seed=5)
        result = sim.run(trivial)
        off = result.true_offset(1, 0, 1.0)
        direct = sim.clocks[1].read_raw(1.0) - sim.clocks[0].read_raw(1.0)
        assert off == direct

    def test_reproducible_across_instances(self):
        def body(ctx, comm):
            yield from comm.barrier()
            return ctx.now

        r1 = Simulation(machine(), infiniband_qdr(), seed=3).run(body)
        r2 = Simulation(machine(), infiniband_qdr(), seed=3).run(body)
        assert r1.values == r2.values

    def test_seed_changes_outcome(self):
        def body(ctx, comm):
            yield from comm.barrier()
            return ctx.now

        r1 = Simulation(machine(), infiniband_qdr(), seed=3).run(body)
        r2 = Simulation(machine(), infiniband_qdr(), seed=4).run(body)
        assert r1.values != r2.values
