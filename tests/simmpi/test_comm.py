"""Unit tests for communicators: translation, tags, split."""


from repro.errors import CommunicatorError
from repro.simmpi.comm import MAX_USER_TAG, Communicator
from tests.conftest import run_spmd


class TestRankTranslation:
    def test_world_identity(self):
        def main(ctx, comm):
            yield from ()
            return (comm.rank, comm.global_rank(comm.rank))

        _, res = run_spmd(main, num_nodes=2, ranks_per_node=2)
        assert all(r == g for r, g in res.values)

    def test_out_of_range(self):
        def main(ctx, comm):
            yield from ()
            try:
                comm.global_rank(comm.size)
            except CommunicatorError:
                return "raised"
            return "no"

        _, res = run_spmd(main)
        assert all(v == "raised" for v in res.values)

    def test_comm_rank_of(self):
        def main(ctx, comm):
            yield from ()
            return comm.comm_rank_of(comm.global_rank(1))

        _, res = run_spmd(main)
        assert all(v == 1 for v in res.values)

    def test_nonmember_construction_rejected(self):
        def main(ctx, comm):
            yield from ()
            try:
                Communicator(ctx, [r for r in range(comm.size)
                                   if r != ctx.rank], comm_id=5)
            except CommunicatorError:
                return "raised"
            return "no"

        _, res = run_spmd(main)
        assert all(v == "raised" for v in res.values)


class TestTags:
    def test_user_tag_bounds(self):
        def main(ctx, comm):
            yield from ()
            try:
                comm._user_tag(MAX_USER_TAG)
            except CommunicatorError:
                return "raised"
            return "no"

        _, res = run_spmd(main)
        assert all(v == "raised" for v in res.values)

    def test_collective_tags_advance(self):
        def main(ctx, comm):
            yield from ()
            a = comm.next_collective_tag()
            b = comm.next_collective_tag()
            return b - a

        _, res = run_spmd(main)
        assert all(v == 1 for v in res.values)


class TestSplit:
    def test_split_by_parity(self):
        def main(ctx, comm):
            sub = yield from comm.split(color=comm.rank % 2)
            total = yield from sub.allreduce(1)
            return (sub.size, total, sub.rank)

        _, res = run_spmd(main, num_nodes=2, ranks_per_node=2)
        for size, total, _ in res.values:
            assert size == 2 and total == 2

    def test_split_none_color(self):
        def main(ctx, comm):
            color = 0 if comm.rank == 0 else None
            sub = yield from comm.split(color)
            return sub is None

        _, res = run_spmd(main, num_nodes=2, ranks_per_node=2)
        assert res.values[0] is False
        assert all(res.values[1:])

    def test_split_key_reorders(self):
        def main(ctx, comm):
            # Reverse the ordering within the new communicator.
            sub = yield from comm.split(color=0, key=-comm.rank)
            return sub.rank

        _, res = run_spmd(main, num_nodes=2, ranks_per_node=2)
        # world rank 3 gets key -3 -> lowest -> sub rank 0
        assert res.values == [3, 2, 1, 0]

    def test_split_type_shared(self):
        def main(ctx, comm):
            sub = yield from comm.split_type("shared")
            members = yield from sub.allgather(ctx.node)
            return (sub.size, set(members))

        _, res = run_spmd(main, num_nodes=3, ranks_per_node=2)
        for rank, (size, nodes) in enumerate(res.values):
            assert size == 2
            assert len(nodes) == 1

    def test_split_type_socket(self):
        def main(ctx, comm):
            sub = yield from comm.split_type("socket")
            keys = yield from sub.allgather((ctx.node, ctx.socket))
            return (sub.size, set(keys))

        _, res = run_spmd(main, num_nodes=2, ranks_per_node=4)
        for size, keys in res.values:
            assert len(keys) == 1

    def test_split_type_unknown(self):
        def main(ctx, comm):
            yield from ()
            try:
                gen = comm.split_type("bogus")
                # split_type raises before yielding anything
                next(gen)
            except CommunicatorError:
                return "raised"
            return "no"

        _, res = run_spmd(main)
        assert all(v == "raised" for v in res.values)

    def test_dup_preserves_group(self):
        def main(ctx, comm):
            dup = yield from comm.dup()
            return (dup.group == comm.group, dup.comm_id != comm.comm_id)

        _, res = run_spmd(main)
        assert all(a and b for a, b in res.values)

    def test_p2p_within_subcomm(self):
        def main(ctx, comm):
            sub = yield from comm.split(color=comm.rank % 2)
            if sub.rank == 0:
                yield from sub.send(1, 3, payload=f"from{comm.rank}")
                return None
            msg = yield from sub.recv(0, 3)
            return msg.payload

        _, res = run_spmd(main, num_nodes=2, ranks_per_node=2)
        assert res.values[2] == "from0"
        assert res.values[3] == "from1"
