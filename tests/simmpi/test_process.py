"""Unit tests for the process context (clock reads, waits, p2p helpers)."""

import pytest

from repro.simtime.hardware import HardwareClock
from repro.simtime.drift import ConstantDrift
from repro.sync.clocks import GlobalClockLM
from repro.sync.linear_model import LinearDriftModel
from tests.conftest import PERFECT_TIME, run_spmd


class TestClockReads:
    def test_wtime_reflects_local_clock(self):
        def main(ctx, comm):
            yield from ctx.elapse(2.0)
            return (ctx.wtime(), ctx.hardware_clock.read(ctx.now))

        _, res = run_spmd(main, time_source=PERFECT_TIME)
        for wtime, direct in res.values:
            assert wtime == pytest.approx(direct, abs=1e-9)

    def test_read_overhead_charged(self):
        spec = PERFECT_TIME.with_(read_overhead=1e-3)

        def main(ctx, comm):
            yield from ()
            before = ctx.now
            ctx.read_clock(ctx.hardware_clock)
            return ctx.now - before

        _, res = run_spmd(main, time_source=spec)
        assert all(v == pytest.approx(1e-3) for v in res.values)


class TestWaitUntilClock:
    def test_wait_reaches_reading(self):
        def main(ctx, comm):
            target = ctx.wtime() + 0.5
            yield from ctx.wait_until_clock(ctx.hardware_clock, target)
            return ctx.wtime() - target

        _, res = run_spmd(main, time_source=PERFECT_TIME)
        for lateness in res.values:
            assert 0.0 <= lateness < 1e-6  # within one poll interval

    def test_wait_on_global_clock_with_skew(self):
        def main(ctx, comm):
            clk = GlobalClockLM(
                HardwareClock(offset=10.0, drift=ConstantDrift(1e-4)),
                LinearDriftModel(slope=5e-5, intercept=2.0),
            )
            target = clk.read(ctx.now) + 1.0
            yield from ctx.wait_until_clock(clk, target)
            return clk.read(ctx.now) - target

        _, res = run_spmd(main, time_source=PERFECT_TIME)
        for lateness in res.values:
            assert 0.0 <= lateness < 1e-5

    def test_past_deadline_returns_immediately(self):
        def main(ctx, comm):
            yield from ctx.elapse(1.0)
            before = ctx.now
            yield from ctx.wait_until_clock(ctx.hardware_clock, 0.5)
            return ctx.now - before

        _, res = run_spmd(main, time_source=PERFECT_TIME)
        assert all(v == 0.0 for v in res.values)


class TestP2PHelpers:
    def test_sendrecv_exchange(self):
        def main(ctx, comm):
            partner = comm.rank ^ 1
            msg = yield from comm.sendrecv(partner, 4, payload=comm.rank)
            return msg.payload

        _, res = run_spmd(main, num_nodes=1, ranks_per_node=2)
        assert res.values == [1, 0]

    def test_compute_alias(self):
        def main(ctx, comm):
            yield from ctx.compute(0.25)
            return ctx.now

        _, res = run_spmd(main, num_nodes=1, ranks_per_node=1)
        assert res.values[0] >= 0.25
