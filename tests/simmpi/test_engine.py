"""Unit tests for the discrete-event engine."""

import pytest

from repro.cluster.netmodels import ideal_network
from repro.errors import DeadlockError, MatchingError, SimulationError
from repro.simmpi.engine import (
    ElapseCmd,
    Engine,
    RecvCmd,
    SendCmd,
    WaitUntilCmd,
)
from repro.simmpi.network import Level


def make_engine(n=2, seed=0, network=None, **kw):
    engine = Engine(
        network=network or ideal_network(latency=1e-6),
        level_of=lambda a, b: Level.REMOTE,
        seed=seed,
        **kw,
    )
    for _ in range(n):
        engine.add_process()
    return engine


class TestBasics:
    def test_two_rank_message(self):
        engine = make_engine()

        def sender():
            yield SendCmd(dest=1, tag=5, payload="hi", size=8)
            return "sent"

        def receiver():
            msg = yield RecvCmd(source=0, tag=5)
            return msg.payload

        engine.bind(0, sender())
        engine.bind(1, receiver())
        assert engine.run() == ["sent", "hi"]
        assert engine.messages_delivered == 1

    def test_message_arrival_advances_time(self):
        engine = make_engine()
        times = {}

        def sender():
            yield SendCmd(dest=1, tag=1, payload=None, size=8)
            times["send"] = engine.proc_now(0)

        def receiver():
            yield RecvCmd(source=0, tag=1)
            times["recv"] = engine.proc_now(1)

        engine.bind(0, sender())
        engine.bind(1, receiver())
        engine.run()
        assert times["recv"] >= 1e-6  # at least one latency

    def test_elapse_advances_only_local_time(self):
        engine = make_engine(1)

        def body():
            yield ElapseCmd(0.5)
            return engine.proc_now(0)

        engine.bind(0, body())
        assert engine.run() == [0.5]

    def test_wait_until_no_backward_jump(self):
        engine = make_engine(1)

        def body():
            yield ElapseCmd(1.0)
            yield WaitUntilCmd(0.5)  # already past: no-op
            return engine.proc_now(0)

        engine.bind(0, body())
        assert engine.run() == [1.0]

    def test_negative_elapse_rejected(self):
        engine = make_engine(1)

        def body():
            yield ElapseCmd(-1.0)

        engine.bind(0, body())
        with pytest.raises(SimulationError):
            engine.run()


class TestMatching:
    def test_fifo_per_pair(self):
        engine = make_engine()

        def sender():
            for i in range(5):
                yield SendCmd(dest=1, tag=1, payload=i, size=8)

        def receiver():
            got = []
            for _ in range(5):
                msg = yield RecvCmd(source=0, tag=1)
                got.append(msg.payload)
            return got

        engine.bind(0, sender())
        engine.bind(1, receiver())
        assert engine.run()[1] == [0, 1, 2, 3, 4]

    def test_tag_selective(self):
        engine = make_engine()

        def sender():
            yield SendCmd(dest=1, tag=1, payload="a", size=8)
            yield SendCmd(dest=1, tag=2, payload="b", size=8)

        def receiver():
            msg_b = yield RecvCmd(source=0, tag=2)
            msg_a = yield RecvCmd(source=0, tag=1)
            return (msg_b.payload, msg_a.payload)

        engine.bind(0, sender())
        engine.bind(1, receiver())
        assert engine.run()[1] == ("b", "a")

    def test_any_source(self):
        engine = make_engine(3)

        def sender(payload):
            def body():
                yield SendCmd(dest=2, tag=9, payload=payload, size=8)

            return body

        def receiver():
            got = set()
            for _ in range(2):
                msg = yield RecvCmd()  # ANY_SOURCE, ANY_TAG
                got.add(msg.payload)
            return got

        engine.bind(0, sender("x")())
        engine.bind(1, sender("y")())
        engine.bind(2, receiver())
        assert engine.run()[2] == {"x", "y"}

    def test_send_to_invalid_rank(self):
        engine = make_engine(1)

        def body():
            yield SendCmd(dest=5, tag=1)

        engine.bind(0, body())
        with pytest.raises(MatchingError):
            engine.run()


class TestSsend:
    def test_ssend_blocks_until_matched(self):
        engine = make_engine()
        order = []

        def sender():
            yield SendCmd(dest=1, tag=1, payload=None, size=8,
                          synchronous=True)
            order.append(("sender_resumed", engine.proc_now(0)))

        def receiver():
            yield ElapseCmd(5.0)  # receiver is busy for 5 s
            yield RecvCmd(source=0, tag=1)
            order.append(("received", engine.proc_now(1)))

        engine.bind(0, sender())
        engine.bind(1, receiver())
        engine.run()
        resumed = dict(order)["sender_resumed"]
        assert resumed >= 5.0  # the ack cannot precede the match

    def test_unmatched_ssend_deadlocks(self):
        engine = make_engine()

        def sender():
            yield SendCmd(dest=1, tag=1, synchronous=True)

        def receiver():
            yield RecvCmd(source=0, tag=999)  # never matches

        engine.bind(0, sender())
        engine.bind(1, receiver())
        with pytest.raises(DeadlockError):
            engine.run()


class TestLifecycle:
    def test_deadlock_detected(self):
        engine = make_engine()

        def body():
            yield RecvCmd(source=0, tag=1)

        def other():
            yield RecvCmd(source=1, tag=1)

        engine.bind(0, other())
        engine.bind(1, body())
        with pytest.raises(DeadlockError):
            engine.run()

    def test_cannot_run_twice(self):
        engine = make_engine(1)

        def body():
            return
            yield

        engine.bind(0, body())
        engine.run()
        with pytest.raises(SimulationError):
            engine.run()

    def test_unbound_rank_rejected(self):
        engine = make_engine(2)

        def body():
            return
            yield

        engine.bind(0, body())
        with pytest.raises(SimulationError):
            engine.run()

    def test_double_bind_rejected(self):
        engine = make_engine(1)

        def body():
            return
            yield

        engine.bind(0, body())
        with pytest.raises(SimulationError):
            engine.bind(0, body())

    def test_add_after_run_rejected(self):
        engine = make_engine(1)

        def body():
            return
            yield

        engine.bind(0, body())
        engine.run()
        with pytest.raises(SimulationError):
            engine.add_process()


class TestStats:
    def test_bytes_delivered_and_stats_snapshot(self):
        engine = make_engine()

        def sender():
            yield SendCmd(dest=1, tag=1, payload="a", size=100)
            yield SendCmd(dest=1, tag=1, payload="b", size=28)

        def receiver():
            yield RecvCmd(source=0, tag=1)
            yield RecvCmd(source=0, tag=1)

        engine.bind(0, sender())
        engine.bind(1, receiver())
        engine.run()
        assert engine.bytes_delivered == 128
        stats = engine.stats()
        assert stats == {
            "num_ranks": 2,
            "messages_sent": 2,
            "messages_delivered": 2,
            "messages_unreceived": 0,
            "bytes_sent": 128,
            "bytes_delivered": 128,
            "rendezvous_stalls": 0,
            "max_mailbox_depth": stats["max_mailbox_depth"],
            "gate_deferrals": stats["gate_deferrals"],
            "events_processed": stats["events_processed"],
            "max_queue_depth": stats["max_queue_depth"],
        }
        assert stats["max_mailbox_depth"] >= 0
        assert stats["gate_deferrals"] >= 0
        # Every delivery and wakeup pops the heap at least once.
        assert stats["events_processed"] >= stats["messages_delivered"]
        assert stats["max_queue_depth"] >= 1

    def test_unreceived_messages_counted(self):
        """Fire-and-forget sends end up in messages_unreceived."""
        engine = make_engine()

        def sender():
            yield SendCmd(dest=1, tag=1, payload="a", size=8)
            yield SendCmd(dest=1, tag=1, payload="b", size=8)

        def receiver():
            yield RecvCmd(source=0, tag=1)

        engine.bind(0, sender())
        engine.bind(1, receiver())
        engine.run()
        stats = engine.stats()
        assert stats["messages_sent"] == 2
        assert stats["messages_delivered"] == 1
        assert stats["messages_unreceived"] == 1
        assert (
            stats["messages_sent"]
            == stats["messages_delivered"] + stats["messages_unreceived"]
        )

    def test_metrics_counters_match_stats(self):
        """The documented engine.messages.* counters track the stats.

        Regression for the count drift where the metrics docstring
        promised engine.messages.sent/delivered but the engine never
        emitted them.
        """
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        engine = make_engine(metrics=registry)

        def sender():
            yield SendCmd(dest=1, tag=1, payload="a", size=100)
            yield SendCmd(dest=1, tag=1, payload="b", size=28)

        def receiver():
            yield RecvCmd(source=0, tag=1)
            yield RecvCmd(source=0, tag=1)

        engine.bind(0, sender())
        engine.bind(1, receiver())
        engine.run()
        stats = engine.stats()
        assert registry.merged_counter("engine.messages.sent") == (
            stats["messages_sent"]
        ) == 2
        assert registry.merged_counter("engine.messages.delivered") == (
            stats["messages_delivered"]
        ) == 2
        assert registry.merged_counter("engine.bytes.sent") == 128

    def test_rendezvous_stall_counted(self):
        engine = make_engine()

        def sender():
            yield SendCmd(dest=1, tag=1, payload=None, size=8,
                          synchronous=True)

        def receiver():
            yield ElapseCmd(1.0)
            yield RecvCmd(source=0, tag=1)

        engine.bind(0, sender())
        engine.bind(1, receiver())
        engine.run()
        assert engine.stats()["rendezvous_stalls"] == 1


class TestDeterminism:
    def _run_once(self, seed):
        from repro.cluster.netmodels import infiniband_qdr

        engine = make_engine(4, seed=seed, network=infiniband_qdr())
        log = []

        def body(rank):
            def gen():
                for i in range(3):
                    yield SendCmd(dest=(rank + 1) % 4, tag=1, payload=rank,
                                  size=8)
                    msg = yield RecvCmd(source=(rank - 1) % 4, tag=1)
                    log.append((rank, i, msg.payload, engine.proc_now(rank)))

            return gen()

        for r in range(4):
            engine.bind(r, body(r))
        engine.run()
        return log

    def test_same_seed_identical_history(self):
        assert self._run_once(11) == self._run_once(11)

    def test_different_seed_different_times(self):
        a = self._run_once(1)
        b = self._run_once(2)
        assert [t for *_, t in a] != [t for *_, t in b]
