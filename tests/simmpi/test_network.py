"""Unit tests for the network model."""

import numpy as np
import pytest

from repro.simmpi.network import Level, LinkParams, NetworkModel


class TestLinkParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            LinkParams(latency=-1.0, bandwidth=1e9)
        with pytest.raises(ValueError):
            LinkParams(latency=1e-6, bandwidth=0.0)
        with pytest.raises(ValueError):
            LinkParams(latency=1e-6, bandwidth=1e9, jitter_scale=-1.0)
        with pytest.raises(ValueError):
            LinkParams(latency=1e-6, bandwidth=1e9, outlier_prob=2.0)


class TestLevelFallback:
    def test_finer_levels_inherit_coarser(self):
        model = NetworkModel(
            levels={Level.REMOTE: LinkParams(latency=5e-6, bandwidth=1e9)}
        )
        for level in Level:
            assert model.params_for(level).latency == 5e-6

    def test_defined_levels_override(self):
        model = NetworkModel(
            levels={
                Level.NODE: LinkParams(latency=1e-6, bandwidth=1e9),
                Level.REMOTE: LinkParams(latency=5e-6, bandwidth=1e9),
            }
        )
        assert model.params_for(Level.REMOTE).latency == 5e-6
        assert model.params_for(Level.NODE).latency == 1e-6
        # SOCKET/SELF fall back to the finest defined (NODE).
        assert model.params_for(Level.SOCKET).latency == 1e-6

    def test_coarser_levels_fall_back_to_finest_defined(self):
        # Only SELF defined: coarser levels (SOCKET/NODE/REMOTE) have no
        # coarser source to inherit from and resolve to the finest
        # defined level instead.
        model = NetworkModel(
            levels={Level.SELF: LinkParams(latency=3e-7, bandwidth=5e9)}
        )
        for level in Level:
            assert model.params_for(level).latency == 3e-7

    def test_middle_gap_resolved_from_coarser(self):
        # SELF and REMOTE defined; the SOCKET/NODE gap inherits from the
        # next coarser defined level (REMOTE), not from SELF.
        model = NetworkModel(
            levels={
                Level.SELF: LinkParams(latency=3e-7, bandwidth=5e9),
                Level.REMOTE: LinkParams(latency=5e-6, bandwidth=1e9),
            }
        )
        assert model.params_for(Level.SOCKET).latency == 5e-6
        assert model.params_for(Level.NODE).latency == 5e-6
        assert model.params_for(Level.SELF).latency == 3e-7

    def test_empty_levels_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(levels={})

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(
                levels={Level.REMOTE: LinkParams(1e-6, 1e9)}, o_send=-1.0
            )


class TestDelay:
    def _model(self, **kw):
        return NetworkModel(
            levels={Level.REMOTE: LinkParams(latency=2e-6, bandwidth=1e9, **kw)}
        )

    def test_deterministic_without_jitter(self):
        model = self._model()
        rng = np.random.default_rng(0)
        d = model.delay(Level.REMOTE, 1000, rng)
        assert d == pytest.approx(2e-6 + 1000 / 1e9)

    def test_size_scales_delay(self):
        model = self._model()
        rng = np.random.default_rng(0)
        small = model.delay(Level.REMOTE, 8, rng)
        big = model.delay(Level.REMOTE, 1 << 20, rng)
        assert big > small

    def test_jitter_is_nonnegative_addition(self):
        model = self._model(jitter_scale=1e-6)
        rng = np.random.default_rng(0)
        delays = [model.delay(Level.REMOTE, 8, rng) for _ in range(1000)]
        base = 2e-6 + 8 / 1e9
        assert min(delays) >= base
        assert np.mean(delays) == pytest.approx(base + 1e-6, rel=0.15)

    def test_outliers_appear_at_configured_rate(self):
        model = self._model(outlier_prob=0.1, outlier_scale=100e-6)
        rng = np.random.default_rng(1)
        delays = np.array(
            [model.delay(Level.REMOTE, 8, rng) for _ in range(5000)]
        )
        frac_large = float(np.mean(delays > 20e-6))
        assert 0.05 < frac_large < 0.15

    def test_delay_never_below_wire_time(self):
        # latency + size/bandwidth is a hard floor: jitter and outliers
        # only ever add on top of the deterministic LogGP wire time.
        model = self._model(
            jitter_scale=1e-6, outlier_prob=0.2, outlier_scale=50e-6
        )
        rng = np.random.default_rng(42)
        for size in (0, 8, 4096, 1 << 20):
            floor = 2e-6 + size / 1e9
            draws = [
                model.delay(Level.REMOTE, size, rng) for _ in range(2000)
            ]
            assert min(draws) >= floor

    def test_negative_size_rejected_at_send_construction(self):
        # Validation moved out of the per-message delay() hot path: a
        # negative size can never reach the network model because SendCmd
        # construction rejects it (see engine.SendCmd.__post_init__).
        from repro.errors import SimulationError
        from repro.simmpi.engine import SendCmd

        with pytest.raises(SimulationError):
            SendCmd(dest=1, tag=0, size=-1)

    def test_pooled_delay_matches_scalar(self):
        # delay() and delay_from_pool() must consume uniforms in the same
        # order: identical seeds -> bit-identical delay sequences, for any
        # pool chunk size.
        from repro.simmpi.rngpool import UniformPool

        model = self._model(
            jitter_scale=1e-6, outlier_prob=0.3, outlier_scale=40e-6
        )
        for chunk in (1, 7, 256):
            scalar_rng = np.random.default_rng(123)
            pool = UniformPool(np.random.default_rng(123), chunk=chunk)
            scalar = [
                model.delay(Level.REMOTE, 64, scalar_rng)
                for _ in range(500)
            ]
            pooled = [
                model.delay_from_pool(Level.REMOTE, 64, pool)
                for _ in range(500)
            ]
            assert scalar == pooled

    def test_base_delay_cached(self):
        model = self._model()
        d1 = model.base_delay(Level.REMOTE, 4096)
        assert (Level.REMOTE, 4096) in model._base_cache
        assert model.base_delay(Level.REMOTE, 4096) == d1
        assert d1 == pytest.approx(2e-6 + 4096 / 1e9)

    def test_expected_delay_matches_empirical(self):
        model = self._model(jitter_scale=0.5e-6)
        rng = np.random.default_rng(2)
        delays = [model.delay(Level.REMOTE, 64, rng) for _ in range(20000)]
        assert np.mean(delays) == pytest.approx(
            model.expected_delay(Level.REMOTE, 64), rel=0.05
        )
