"""Tests for per-node NIC serialization (the Fig. 7/8 contention model)."""


from repro.simmpi.network import Level, LinkParams, NetworkModel
from tests.conftest import run_spmd


def gap_network(gap: float) -> NetworkModel:
    return NetworkModel(
        name="gap-test",
        levels={Level.REMOTE: LinkParams(latency=1e-6, bandwidth=1e12)},
        o_send=0.0,
        o_recv=0.0,
        nic_gap=gap,
    )


def fanin_main(ctx, comm):
    """Ranks 1..n-1 all send to rank 0 simultaneously."""
    if comm.rank == 0:
        arrivals = []
        for _ in range(comm.size - 1):
            yield from comm.recv_raw(None, 999999)
            arrivals.append(ctx.now)
        return arrivals
    yield from comm.send_raw(0, 999999, None, 8)
    return None


class TestNicGap:
    def test_ingress_serializes_concurrent_arrivals(self):
        gap = 2e-6
        _, res = run_spmd(fanin_main, num_nodes=5, ranks_per_node=1,
                          network=gap_network(gap))
        arrivals = sorted(res.values[0])
        # Four simultaneous senders: consecutive deliveries are at least
        # one gap apart at rank 0's node.
        diffs = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert all(d >= gap * 0.99 for d in diffs)

    def test_zero_gap_no_serialization(self):
        _, res = run_spmd(fanin_main, num_nodes=5, ranks_per_node=1,
                          network=gap_network(0.0))
        arrivals = sorted(res.values[0])
        spread = arrivals[-1] - arrivals[0]
        assert spread < 1e-9  # identical latency, no jitter, no gap

    def test_intra_node_traffic_unaffected(self):
        gap = 5e-6

        def main(ctx, comm):
            # All ranks on ONE node: NIC gap must not apply.
            if comm.rank == 0:
                ts = []
                for _ in range(comm.size - 1):
                    yield from comm.recv_raw(None, 999999)
                    ts.append(ctx.now)
                return ts
            yield from comm.send_raw(0, 999999, None, 8)
            return None

        net = NetworkModel(
            name="gap-test",
            levels={
                Level.NODE: LinkParams(latency=1e-6, bandwidth=1e12),
                Level.REMOTE: LinkParams(latency=1e-6, bandwidth=1e12),
            },
            o_send=0.0,
            o_recv=0.0,
            nic_gap=gap,
        )
        _, res = run_spmd(main, num_nodes=1, ranks_per_node=5, network=net)
        arrivals = sorted(res.values[0])
        assert arrivals[-1] - arrivals[0] < gap

    def test_egress_rate_limits_one_sender(self):
        gap = 3e-6

        def main(ctx, comm):
            if comm.rank == 0:
                for i in range(4):
                    yield from comm.send_raw(1, 999999, i, 8)
                return None
            arrivals = []
            for _ in range(4):
                yield from comm.recv_raw(0, 999999)
                arrivals.append(ctx.now)
            return arrivals

        _, res = run_spmd(main, num_nodes=2, ranks_per_node=1,
                          network=gap_network(gap))
        arrivals = res.values[1]
        diffs = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert all(d >= gap * 0.99 for d in diffs)
