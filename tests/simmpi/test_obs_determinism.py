"""Observability must be passive: a sink never perturbs the simulation.

The acceptance bar for the obs layer: a seeded run produces bit-identical
results with no sink, with a recording sink, and with metrics attached —
and event emission schedules no extra heap events.
"""

from repro.cluster.netmodels import infiniband_qdr
from repro.obs.events import RecordingSink
from repro.obs.metrics import MetricsRegistry
from repro.simtime.sources import CLOCK_GETTIME
from repro.sync import HCA3Sync
from tests.conftest import run_spmd

QUIET = CLOCK_GETTIME.with_(skew_walk_sigma=1e-9)


def sync_body(ctx, comm):
    """Fig. 3-style workload: one flat HCA3 synchronization + readings."""
    alg = HCA3Sync(nfitpoints=6, fitpoint_spacing=1e-3)
    clk = yield from alg.sync_clocks(comm, ctx.hardware_clock)
    readings = []
    for _ in range(5):
        yield from ctx.elapse(0.01)
        readings.append(ctx.read_clock(clk))
    return (readings, ctx.now)


def run_once(sink=None, metrics=None, seed=7):
    sim, res = run_spmd_with(sink, metrics, seed)
    return res.values, sim.engine._seq, sim.engine._msg_seq


def run_spmd_with(sink, metrics, seed):
    from repro.cluster.topology import Machine
    from repro.simmpi.simulation import Simulation

    machine = Machine(num_nodes=2, sockets_per_node=2,
                      cores_per_socket=1, ranks_per_node=2,
                      name="testbox")
    sim = Simulation(machine=machine, network=infiniband_qdr(),
                     time_source=QUIET, seed=seed,
                     sink=sink, metrics=metrics)
    return sim, sim.run(sync_body)


class TestObservabilityIsPassive:
    def test_no_sink_bit_identical_across_runs(self):
        assert run_once() == run_once()

    def test_sink_does_not_change_results(self):
        bare_values, bare_seq, bare_msgs = run_once()
        sink = RecordingSink()
        obs_values, obs_seq, obs_msgs = run_once(sink=sink)
        assert obs_values == bare_values
        # Event emission schedules no extra heap events and injects no
        # extra messages: the engine's internal counters line up exactly.
        assert obs_seq == bare_seq
        assert obs_msgs == bare_msgs
        assert len(sink) > 0

    def test_metrics_do_not_change_results(self):
        bare = run_once()
        registry = MetricsRegistry()
        observed = run_once(metrics=registry)
        assert observed == bare
        assert registry.merged_counter("engine.bytes.delivered") > 0

    def test_sink_and_metrics_together(self):
        bare = run_once()
        observed = run_once(sink=RecordingSink(),
                            metrics=MetricsRegistry())
        assert observed == bare
