"""Latency-shape tests: algorithm structure must show up in timing.

These tests assert relative *performance* facts the benchmark harness
relies on (not just value correctness): tree-shaped collectives beat flat
ones at scale, message size increases cost, and so on.
"""


from repro.simmpi.network import Level, LinkParams, NetworkModel
from tests.conftest import run_spmd


def overhead_network() -> NetworkModel:
    """Deterministic network with a real CPU send overhead.

    The o_send term is what makes flat (linear) collectives expensive at
    the root; without it a root could inject p-1 messages for free.
    """
    return NetworkModel(
        name="overhead",
        levels={Level.REMOTE: LinkParams(latency=2e-6, bandwidth=1e9)},
        o_send=1e-6,
        o_recv=0.2e-6,
    )


def timed_collective(op, nodes=8, rpn=1, seed=0):
    def main(ctx, comm):
        t0 = ctx.now
        yield from op(comm)
        return ctx.now - t0

    _, res = run_spmd(main, num_nodes=nodes, ranks_per_node=rpn,
                      network=overhead_network(), seed=seed)
    return max(res.values)


class TestLatencyShapes:
    def test_binomial_bcast_beats_linear(self):
        def binomial(comm):
            yield from comm.bcast(1, algorithm="binomial", size=8)

        def linear(comm):
            yield from comm.bcast(1, algorithm="linear", size=8)

        t_b = timed_collective(binomial, nodes=16)
        t_l = timed_collective(linear, nodes=16)
        assert t_b < t_l

    def test_bigger_payload_costs_more(self):
        def small(comm):
            yield from comm.allreduce(1, size=8)

        def big(comm):
            yield from comm.allreduce(1, size=1 << 20)

        assert timed_collective(big) > timed_collective(small)

    def test_allreduce_rd_beats_ring_small_payload(self):
        def rd(comm):
            yield from comm.allreduce(1, algorithm="recursive_doubling",
                                      size=8)

        def ring(comm):
            yield from comm.allreduce(1, algorithm="ring", size=8)

        # log p rounds vs 2(p-1) steps.
        assert timed_collective(rd, nodes=16) < timed_collective(
            ring, nodes=16
        )

    def test_double_ring_barrier_slowest(self):
        def barrier(algorithm):
            def op(comm):
                yield from comm.barrier(algorithm=algorithm)

            return op

        t_tree = timed_collective(barrier("tree"), nodes=16)
        t_ring = timed_collective(barrier("double_ring"), nodes=16)
        assert t_ring > 2 * t_tree

    def test_barrier_latency_grows_with_p(self):
        def op(comm):
            yield from comm.barrier(algorithm="bruck")

        assert timed_collective(op, nodes=32) > timed_collective(
            op, nodes=4
        )


class TestVariantTradeoffs:
    """The classic small/large-message trade-offs a tuner exploits."""

    def test_scatter_allgather_bcast_wins_large_payload(self):
        big = 4 << 20

        def seg(comm):
            yield from comm.bcast(1, algorithm="scatter_allgather",
                                  size=big)

        def binom(comm):
            yield from comm.bcast(1, algorithm="binomial", size=big)

        # Segmented pipeline carries ~2*size/p per link vs log p full-size
        # hops for the binomial tree.
        assert timed_collective(seg, nodes=8) < timed_collective(
            binom, nodes=8
        )

    def test_binomial_bcast_wins_small_payload(self):
        def seg(comm):
            yield from comm.bcast(1, algorithm="scatter_allgather", size=8)

        def binom(comm):
            yield from comm.bcast(1, algorithm="binomial", size=8)

        assert timed_collective(binom, nodes=8) < timed_collective(
            seg, nodes=8
        )

    def test_rabenseifner_wins_large_payload(self):
        big = 4 << 20

        def rab(comm):
            yield from comm.allreduce(1, algorithm="rabenseifner",
                                      size=big)

        def rd(comm):
            yield from comm.allreduce(1, algorithm="recursive_doubling",
                                      size=big)

        assert timed_collective(rab, nodes=8) < timed_collective(
            rd, nodes=8
        )

    def test_recursive_doubling_wins_small_payload(self):
        def rab(comm):
            yield from comm.allreduce(1, algorithm="rabenseifner", size=8)

        def rd(comm):
            yield from comm.allreduce(1, algorithm="recursive_doubling",
                                      size=8)

        # Same round count, but Rabenseifner's extra allgather phase is
        # pure overhead for latency-bound payloads.
        assert timed_collective(rd, nodes=8) <= timed_collective(
            rab, nodes=8
        )

    def test_bruck_alltoall_wins_small_payload_at_scale(self):
        def bruck(comm):
            values = list(range(comm.size))
            yield from comm.alltoall(values, algorithm="bruck", size=8)

        def pairwise(comm):
            values = list(range(comm.size))
            yield from comm.alltoall(values, algorithm="pairwise", size=8)

        # log p rounds vs p-1 rounds.
        assert timed_collective(bruck, nodes=16) < timed_collective(
            pairwise, nodes=16
        )
