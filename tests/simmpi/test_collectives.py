"""Correctness tests for every collective algorithm variant.

Each algorithm must produce the semantically correct result on every rank
for several communicator sizes, including non-powers of two.
"""

import operator

import pytest

from repro.errors import CommunicatorError
from repro.simmpi.collectives import (
    ALLGATHER_ALGORITHMS,
    ALLREDUCE_ALGORITHMS,
    BARRIER_ALGORITHMS,
    BCAST_ALGORITHMS,
    GATHER_ALGORITHMS,
    REDUCE_ALGORITHMS,
    SCATTER_ALGORITHMS,
)
from tests.conftest import run_spmd

SIZES = [(1, 1), (1, 2), (1, 3), (2, 2), (2, 3), (4, 4)]  # (nodes, rpn)


def spmd(main, nodes, rpn, **kw):
    _, res = run_spmd(main, num_nodes=nodes, ranks_per_node=rpn, **kw)
    return res.values


class TestBarrier:
    @pytest.mark.parametrize("algorithm", sorted(BARRIER_ALGORITHMS))
    @pytest.mark.parametrize("nodes,rpn", SIZES)
    def test_no_rank_exits_before_all_enter(self, algorithm, nodes, rpn):
        def main(ctx, comm):
            # Rank staggering: rank r enters the barrier at time r * 0.1.
            yield from ctx.elapse(comm.rank * 0.1)
            enter = ctx.now
            yield from comm.barrier(algorithm=algorithm)
            return (enter, ctx.now)

        values = spmd(main, nodes, rpn)
        last_entry = max(enter for enter, _ in values)
        for _, exit_time in values:
            assert exit_time >= last_entry

    def test_unknown_algorithm(self):
        def main(ctx, comm):
            try:
                yield from comm.barrier(algorithm="nope")
            except CommunicatorError:
                return "raised"
            return "no"

        assert spmd(main, 1, 2) == ["raised", "raised"]


class TestBcast:
    @pytest.mark.parametrize("algorithm", sorted(BCAST_ALGORITHMS))
    @pytest.mark.parametrize("nodes,rpn", SIZES)
    @pytest.mark.parametrize("root", [0, 1])
    def test_all_ranks_get_value(self, algorithm, nodes, rpn, root):
        if root >= nodes * rpn:
            pytest.skip("root out of range")

        def main(ctx, comm):
            value = {"data": 42} if comm.rank == root else None
            got = yield from comm.bcast(value, root=root,
                                        algorithm=algorithm)
            return got

        for v in spmd(main, nodes, rpn):
            assert v == {"data": 42}

    def test_invalid_root(self):
        def main(ctx, comm):
            try:
                yield from comm.bcast(1, root=99)
            except CommunicatorError:
                return "raised"
            return "no"

        assert all(v == "raised" for v in spmd(main, 1, 2))


class TestReduce:
    @pytest.mark.parametrize("algorithm", sorted(REDUCE_ALGORITHMS))
    @pytest.mark.parametrize("nodes,rpn", SIZES)
    @pytest.mark.parametrize("root", [0, 1])
    def test_sum_to_root(self, algorithm, nodes, rpn, root):
        n = nodes * rpn
        if root >= n:
            pytest.skip("root out of range")

        def main(ctx, comm):
            out = yield from comm.reduce(comm.rank, root=root,
                                         algorithm=algorithm)
            return out

        values = spmd(main, nodes, rpn)
        expected = sum(range(n))
        for rank, v in enumerate(values):
            if rank == root:
                assert v == expected
            else:
                assert v is None

    def test_custom_op_max(self):
        def main(ctx, comm):
            out = yield from comm.reduce(comm.rank * 10, op=max)
            return out

        values = spmd(main, 2, 2)
        assert values[0] == 30


class TestAllreduce:
    @pytest.mark.parametrize("algorithm", sorted(ALLREDUCE_ALGORITHMS))
    @pytest.mark.parametrize("nodes,rpn", SIZES)
    def test_sum_everywhere(self, algorithm, nodes, rpn):
        n = nodes * rpn

        def main(ctx, comm):
            out = yield from comm.allreduce(comm.rank + 1,
                                            algorithm=algorithm)
            return out

        expected = n * (n + 1) // 2
        assert spmd(main, nodes, rpn) == [expected] * n

    @pytest.mark.parametrize("algorithm", sorted(ALLREDUCE_ALGORITHMS))
    def test_logical_or_flags(self, algorithm):
        def main(ctx, comm):
            flag = 1 if comm.rank == 2 else 0
            out = yield from comm.allreduce(flag, op=operator.or_,
                                            algorithm=algorithm)
            return out

        assert spmd(main, 2, 2) == [1, 1, 1, 1]


class TestGatherScatter:
    @pytest.mark.parametrize("algorithm", sorted(GATHER_ALGORITHMS))
    @pytest.mark.parametrize("nodes,rpn", SIZES)
    @pytest.mark.parametrize("root", [0, 1])
    def test_gather_rank_order(self, algorithm, nodes, rpn, root):
        n = nodes * rpn
        if root >= n:
            pytest.skip("root out of range")

        def main(ctx, comm):
            out = yield from comm.gather(comm.rank * 2, root=root,
                                         algorithm=algorithm)
            return out

        values = spmd(main, nodes, rpn)
        assert values[root] == [r * 2 for r in range(n)]

    @pytest.mark.parametrize("algorithm", sorted(SCATTER_ALGORITHMS))
    @pytest.mark.parametrize("nodes,rpn", SIZES)
    @pytest.mark.parametrize("root", [0, 1])
    def test_scatter_blocks(self, algorithm, nodes, rpn, root):
        n = nodes * rpn
        if root >= n:
            pytest.skip("root out of range")

        def main(ctx, comm):
            values = (
                [f"v{r}" for r in range(comm.size)]
                if comm.rank == root
                else None
            )
            out = yield from comm.scatter(values, root=root,
                                          algorithm=algorithm)
            return out

        values = spmd(main, nodes, rpn)
        assert values == [f"v{r}" for r in range(n)]

    def test_scatter_requires_values_at_root(self):
        def main(ctx, comm):
            yield from ()
            if comm.rank != 0:
                return "skipped"
            try:
                # The root-side validation fires before any communication,
                # so no other rank needs to participate.
                gen = comm.scatter(None, root=0)
                next(gen)
            except CommunicatorError:
                return "raised"
            return "no"

        values = spmd(main, 1, 2)
        assert values[0] == "raised"


class TestAllgatherAlltoall:
    @pytest.mark.parametrize("algorithm", sorted(ALLGATHER_ALGORITHMS))
    @pytest.mark.parametrize("nodes,rpn", SIZES)
    def test_allgather_everywhere(self, algorithm, nodes, rpn):
        n = nodes * rpn

        def main(ctx, comm):
            out = yield from comm.allgather(comm.rank ** 2,
                                            algorithm=algorithm)
            return out

        expected = [r ** 2 for r in range(n)]
        assert spmd(main, nodes, rpn) == [expected] * n

    @pytest.mark.parametrize("nodes,rpn", SIZES)
    def test_alltoall_transpose(self, nodes, rpn):
        n = nodes * rpn

        def main(ctx, comm):
            values = [comm.rank * 100 + dest for dest in range(comm.size)]
            out = yield from comm.alltoall(values)
            return out

        values = spmd(main, nodes, rpn)
        for rank, got in enumerate(values):
            assert got == [src * 100 + rank for src in range(n)]

    def test_alltoall_wrong_length(self):
        def main(ctx, comm):
            try:
                yield from comm.alltoall([1])
            except CommunicatorError:
                return "raised"
            return "no"

        assert all(v == "raised" for v in spmd(main, 1, 2))
