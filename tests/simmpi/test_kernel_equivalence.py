"""End-to-end kernel equivalence: the event queue is a pure perf knob.

``test_eventq.py`` pins the ``(time, seq)`` pop-order contract on the
queue objects in isolation; these tests pin it through whole
simulations.  For every workload family the repo exercises — the perf
ring, a Fig. 3-style sync round, and a fault-recovery run — the
``"calendar"`` and ``"heap"`` kernels (and explicit bucket widths
spanning six orders of magnitude) must yield bit-identical results,
engine stats, observability event streams and metrics.

The one *intentional* divergence is ``delay_mode="burst"``: it draws
each message's latency uniforms in one vectorized pass, which changes
RNG draw *order* (not distribution).  It is gated behind an explicit
option, deterministic per seed, and pinned by its own goldens here.
"""

from __future__ import annotations

import pytest

from repro.cluster.netmodels import infiniband_qdr
from repro.errors import SimulationError
from repro.cluster.topology import Machine
from repro.faults.evaluate import run_recovery
from repro.faults.scenarios import make_scenario
from repro.obs.events import RecordingSink
from repro.obs.metrics import MetricsRegistry
from repro.perf.harness import _ring_main, ring_machine
from repro.simmpi.simulation import Simulation
from repro.simtime.sources import CLOCK_GETTIME
from repro.sync import HCA3Sync

QUIET = CLOCK_GETTIME.with_(skew_walk_sigma=1e-9)

#: Queue configurations that must all be observationally identical.
#: Widths straddle the auto width from both sides: 1e-9 forces heavy
#: bucket hopping, 1.0 degenerates to one bucket (an insort list).
VARIANTS = [
    ("heap", None),
    ("calendar", None),
    ("calendar", 1e-9),
    ("calendar", 1e-6),
    ("calendar", 1.0),
]


def _sync_body(ctx, comm):
    """Fig. 3-style workload: one flat HCA3 sync + clock readings."""
    alg = HCA3Sync(nfitpoints=6, fitpoint_spacing=1e-3)
    clk = yield from alg.sync_clocks(comm, ctx.hardware_clock)
    readings = []
    for _ in range(5):
        yield from ctx.elapse(0.01)
        readings.append(ctx.read_clock(clk))
    return (readings, ctx.now)


def _run_ring(event_queue, bucket_width=None, delay_mode="scalar",
              seed=3):
    sink = RecordingSink()
    metrics = MetricsRegistry()
    sim = Simulation(
        machine=ring_machine(4, 4),
        network=infiniband_qdr(),
        seed=seed,
        sink=sink,
        metrics=metrics,
        event_queue=event_queue,
        bucket_width=bucket_width,
        delay_mode=delay_mode,
    )
    res = sim.run(_ring_main(96))
    return {
        "values": res.values,
        "stats": res.engine_stats,
        "events": [repr(e) for e in sink.events],
        "counters": {
            name: metrics.merged_counter(name)
            for name in metrics.names()
        },
    }


def _run_fig3(event_queue, bucket_width=None, seed=7):
    machine = Machine(num_nodes=2, sockets_per_node=2,
                      cores_per_socket=1, ranks_per_node=2,
                      name="testbox")
    sim = Simulation(machine=machine, network=infiniband_qdr(),
                     time_source=QUIET, seed=seed,
                     event_queue=event_queue,
                     bucket_width=bucket_width)
    res = sim.run(_sync_body)
    return {"values": res.values, "stats": res.engine_stats}


def _run_fault(event_queue, seed=0):
    report = run_recovery(
        make_scenario("ntp_step"),
        resync_age=8.0,
        horizon=50.0,
        num_nodes=4,
        ranks_per_node=2,
        seed=seed,
        event_queue=event_queue,
    )
    return {
        "samples": report.samples,
        "resync_rounds": report.resync_rounds,
        "stats": report.engine_stats,
    }


class TestRingEquivalence:
    @pytest.fixture(scope="class")
    def reference(self):
        return _run_ring("heap")

    @pytest.mark.parametrize(
        "event_queue,bucket_width", VARIANTS[1:],
        ids=lambda v: str(v),
    )
    def test_matches_heap(self, reference, event_queue, bucket_width):
        assert _run_ring(event_queue, bucket_width) == reference

    def test_stats_counted_equivalently(self, reference):
        """Bucket-queue runs count gate deferrals / depth like heap runs."""
        stats = _run_ring("calendar")["stats"]
        for key in ("messages_sent", "events_processed",
                    "gate_deferrals", "max_queue_depth"):
            assert stats[key] == reference["stats"][key]


class TestFig3Equivalence:
    def test_calendar_matches_heap(self):
        assert _run_fig3("calendar") == _run_fig3("heap")

    @pytest.mark.parametrize("width", [1e-9, 1.0])
    def test_extreme_widths_match(self, width):
        assert _run_fig3("calendar", bucket_width=width) == \
            _run_fig3("heap")


class TestFaultRecoveryEquivalence:
    def test_calendar_matches_heap(self):
        assert _run_fault("calendar") == _run_fault("heap")


class TestBurstModeGating:
    """Burst delay sampling is opt-in, divergent, and deterministic."""

    def test_burst_differs_from_scalar(self):
        # Different RNG draw order => genuinely different message
        # timings.  (The ring's *return value* is an allreduce of ranks,
        # timing-independent by construction, so compare event streams.)
        scalar = _run_ring("calendar")
        burst = _run_ring("calendar", delay_mode="burst")
        assert burst["events"] != scalar["events"]
        assert burst["values"] == scalar["values"]

    def test_burst_is_deterministic_per_seed(self):
        a = _run_ring("calendar", delay_mode="burst")
        b = _run_ring("calendar", delay_mode="burst")
        assert a == b

    def test_burst_identical_across_queue_kinds(self):
        # The divergence comes from delay_mode alone; the queue kind
        # still never matters.
        a = _run_ring("calendar", delay_mode="burst")
        b = _run_ring("heap", delay_mode="burst")
        assert a == b

    def test_invalid_options_raise(self):
        with pytest.raises(SimulationError):
            _run_ring("fibonacci")
        with pytest.raises(SimulationError):
            _run_ring("calendar", delay_mode="vortex")
