"""Unit tests for message matching rules."""

from repro.simmpi.message import ANY_SOURCE, ANY_TAG, Message


def make_msg(source=1, tag=7):
    return Message(
        source=source,
        dest=0,
        tag=tag,
        payload=None,
        size=8,
        send_time=0.0,
        arrival=1.0,
        seq=0,
    )


class TestMatching:
    def test_exact_match(self):
        assert make_msg(1, 7).matches(1, 7)

    def test_source_mismatch(self):
        assert not make_msg(1, 7).matches(2, 7)

    def test_tag_mismatch(self):
        assert not make_msg(1, 7).matches(1, 8)

    def test_any_source(self):
        assert make_msg(3, 7).matches(ANY_SOURCE, 7)

    def test_any_tag(self):
        assert make_msg(3, 7).matches(3, ANY_TAG)

    def test_full_wildcard(self):
        assert make_msg(9, 123).matches(ANY_SOURCE, ANY_TAG)
