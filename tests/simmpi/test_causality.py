"""Causality tests for the engine's deferred-execution gate.

The regression these tests pin down: without the gate, a process running
ahead of global simulated time reserved future NIC slots, and processes
still executing "in the past" inherited multi-second delays from it.
"""

import pytest

from repro.simmpi.network import Level, LinkParams, NetworkModel
from tests.conftest import run_spmd


def gap_network(gap=1e-6, latency=1e-6):
    return NetworkModel(
        name="gap",
        levels={Level.REMOTE: LinkParams(latency=latency, bandwidth=1e12)},
        o_send=0.0,
        o_recv=0.0,
        nic_gap=gap,
    )


class TestCausalityGate:
    def test_runahead_does_not_poison_nic(self):
        """A rank that sleeps far ahead then sends must not delay a rank
        sending 'in the past'."""

        def main(ctx, comm):
            if comm.rank == 0:
                # Runs far ahead, then sends to node 2.
                yield from ctx.elapse(100.0)
                yield from comm.send_raw(2, 100, None, 8)
                return None
            if comm.rank == 1:
                # Sends to the same node at t ~ 0.
                yield from ctx.elapse(1e-3)
                yield from comm.send_raw(2, 101, None, 8)
                return None
            # Receiver on node 2.
            yield from comm.recv_raw(1, 101)
            t_early = ctx.now
            yield from comm.recv_raw(0, 100)
            t_late = ctx.now
            return (t_early, t_late)

        _, res = run_spmd(main, num_nodes=3, ranks_per_node=1,
                          network=gap_network())
        t_early, t_late = res.values[2]
        # Rank 1's message (sent at ~1 ms) must arrive at ~1 ms, NOT after
        # rank 0's future NIC reservation at ~100 s.
        assert t_early < 0.01
        assert t_late > 100.0

    def test_messages_never_arrive_before_sending(self):
        def main(ctx, comm):
            if comm.rank == 0:
                yield from ctx.elapse(0.5)
                yield from comm.send_raw(1, 9, ctx.now, 8)
                return None
            msg = yield from comm.recv_raw(0, 9)
            return ctx.now - msg.payload

        _, res = run_spmd(main, num_nodes=2, ranks_per_node=1,
                          network=gap_network())
        assert res.values[1] > 0

    def test_gate_preserves_results_and_termination(self):
        """A deep chain of mixed elapses/sends completes with the gate."""

        def main(ctx, comm):
            total = 0
            for i in range(20):
                yield from ctx.elapse(0.01 * ((comm.rank + i) % 3))
                total = yield from comm.allreduce(1)
            return total

        _, res = run_spmd(main, num_nodes=2, ranks_per_node=2,
                          network=gap_network())
        assert res.values == [4, 4, 4, 4]


class TestCongestionJitter:
    def _network(self, cj):
        return NetworkModel(
            name="congested",
            levels={Level.REMOTE: LinkParams(latency=1e-6,
                                             bandwidth=1e12)},
            o_send=0.0,
            o_recv=0.0,
            nic_gap=0.5e-6,
            congestion_jitter=cj,
        )

    def _burst_spread(self, cj, seed=0):
        """All ranks of node 0 blast node 1; return arrival spread."""

        def main(ctx, comm):
            n = comm.size // 2
            if ctx.node == 0:
                yield from comm.send_raw(comm.rank + n, 5, None, 8)
                return None
            yield from comm.recv_raw(comm.rank - n, 5)
            return ctx.now

        _, res = run_spmd(main, num_nodes=2, ranks_per_node=8,
                          network=self._network(cj), seed=seed)
        arrivals = [v for v in res.values if v is not None]
        return max(arrivals) - min(arrivals)

    def test_congestion_widens_burst_spread(self):
        calm = self._burst_spread(0.0)
        stormy = self._burst_spread(2e-6)
        assert stormy > calm

    def test_unqueued_message_unaffected(self):
        def main(ctx, comm):
            if comm.rank == 0:
                yield from comm.send_raw(1, 5, None, 8)
                return None
            yield from comm.recv_raw(0, 5)
            return ctx.now

        _, res = run_spmd(main, num_nodes=2, ranks_per_node=1,
                          network=self._network(5e-6))
        # Single message, no backlog: latency + gap only.
        assert res.values[1] == pytest.approx(1e-6 + 0.5e-6, abs=1e-9)
