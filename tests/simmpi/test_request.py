"""Unit tests for the nonblocking p2p layer."""


from repro.errors import SimulationError
from repro.simmpi.request import irecv, isend, waitall
from tests.conftest import run_spmd


class TestIsend:
    def test_isend_completes_immediately(self):
        def main(ctx, comm):
            if ctx.rank == 0:
                req = yield from isend(ctx, 1, 5, payload="x")
                return req.complete
            msg = yield from ctx.recv(0, 5)
            return msg.payload

        _, res = run_spmd(main, num_nodes=1, ranks_per_node=2)
        assert res.values == [True, "x"]

    def test_wait_on_send_request_returns_none(self):
        def main(ctx, comm):
            if ctx.rank == 0:
                req = yield from isend(ctx, 1, 5)
                out = yield from req.wait()
                return out
            yield from ctx.recv(0, 5)
            return None

        _, res = run_spmd(main, num_nodes=1, ranks_per_node=2)
        assert res.values[0] is None


class TestIrecv:
    def test_irecv_wait_gets_message(self):
        def main(ctx, comm):
            if ctx.rank == 0:
                yield from ctx.send(1, 9, payload=123)
                return None
            req = irecv(ctx, source=0, tag=9)
            assert not req.test()
            msg = yield from req.wait()
            assert req.test()
            return msg.payload

        _, res = run_spmd(main, num_nodes=1, ranks_per_node=2)
        assert res.values[1] == 123

    def test_double_wait_returns_cached(self):
        def main(ctx, comm):
            if ctx.rank == 0:
                yield from ctx.send(1, 9, payload="once")
                return None
            req = irecv(ctx, source=0, tag=9)
            first = yield from req.wait()
            second = yield from req.wait()
            return first is second

        _, res = run_spmd(main, num_nodes=1, ranks_per_node=2)
        assert res.values[1] is True

    def test_waitall_in_order(self):
        def main(ctx, comm):
            if ctx.rank == 0:
                for i in range(3):
                    yield from ctx.send(1, 10 + i, payload=i)
                return None
            reqs = [irecv(ctx, source=0, tag=10 + i) for i in range(3)]
            msgs = yield from waitall(reqs)
            return [m.payload for m in msgs]

        _, res = run_spmd(main, num_nodes=1, ranks_per_node=2)
        assert res.values[1] == [0, 1, 2]

    def test_wait_on_bad_kind(self):
        def main(ctx, comm):
            yield from ()
            req = irecv(ctx)
            req.kind = "bogus"
            try:
                gen = req.wait()
                next(gen)
            except SimulationError:
                return "raised"
            return "no"

        _, res = run_spmd(main, num_nodes=1, ranks_per_node=1)
        assert res.values[0] == "raised"
