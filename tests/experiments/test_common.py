"""Tests for the shared experiment machinery."""

from dataclasses import replace

import pytest

from repro.cluster.machines import JUPITER
from repro.experiments.common import (
    DEFAULT,
    QUICK,
    MACHINE_TIME_SOURCES,
    Scale,
    resolve_scale,
    run_sync_accuracy_campaign,
)


class TestScale:
    def test_presets(self):
        assert resolve_scale("quick") is QUICK
        assert resolve_scale("default") is DEFAULT

    def test_pass_through(self):
        custom = Scale(num_nodes=2, ranks_per_node=1, nfitpoints=5,
                       nexchanges=5, fitpoint_spacing=1e-3, nmpiruns=1)
        assert resolve_scale(custom) is custom

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            resolve_scale("galactic")

    def test_nprocs(self):
        assert QUICK.nprocs == QUICK.num_nodes * QUICK.ranks_per_node

    def test_machine_time_sources_cover_table1(self):
        assert set(MACHINE_TIME_SOURCES) == {"jupiter", "hydra", "titan"}
        # Jupiter's clocks are the most stable, Titan's the least.
        assert (MACHINE_TIME_SOURCES["jupiter"].skew_walk_sigma
                < MACHINE_TIME_SOURCES["hydra"].skew_walk_sigma
                <= MACHINE_TIME_SOURCES["titan"].skew_walk_sigma)


class TestCampaign:
    TINY = Scale(num_nodes=3, ranks_per_node=2, nfitpoints=8,
                 nexchanges=6, fitpoint_spacing=1e-3, nmpiruns=2)

    def test_runs_per_label(self):
        result = run_sync_accuracy_campaign(
            spec=JUPITER,
            labels=["hca3/8/skampi_offset/6", "jk/8/skampi_offset/6"],
            scale=self.TINY,
            wait_times=(0.0,),
            seed=1,
        )
        by = result.by_label()
        assert set(by) == {"hca3/8/skampi_offset/6", "jk/8/skampi_offset/6"}
        assert all(len(runs) == 2 for runs in by.values())
        for run in result.runs:
            assert run.duration > 0
            assert set(run.max_offsets) == {0.0}
            assert run.max_offsets[0.0] >= 0

    def test_deterministic_for_seed(self):
        kw = dict(
            spec=JUPITER,
            labels=["hca3/8/skampi_offset/6"],
            scale=self.TINY,
            wait_times=(0.0,),
            seed=3,
        )
        a = run_sync_accuracy_campaign(**kw)
        b = run_sync_accuracy_campaign(**kw)
        assert [r.duration for r in a.runs] == [r.duration for r in b.runs]
        assert [r.max_offsets for r in a.runs] == [
            r.max_offsets for r in b.runs
        ]

    def test_mpiruns_differ(self):
        result = run_sync_accuracy_campaign(
            spec=JUPITER,
            labels=["hca3/8/skampi_offset/6"],
            scale=self.TINY,
            wait_times=(0.0,),
            seed=4,
        )
        offsets = [r.max_offsets[0.0] for r in result.runs]
        assert offsets[0] != offsets[1]

    def test_jk_gets_reduced_spacing(self):
        # Indirect check: JK's duration must reflect the reduced per-fit
        # spacing (full spacing would make it ~2x slower than observed).
        sc = replace(self.TINY, nmpiruns=1)
        result = run_sync_accuracy_campaign(
            spec=JUPITER,
            labels=["jk/8/skampi_offset/6"],
            scale=sc,
            wait_times=(0.0,),
            seed=5,
        )
        jk_duration = result.runs[0].duration
        # 5 clients x 8 fitpoints x (0.5 x 1 ms) ~ 20 ms + ping-pong time.
        assert jk_duration < 5 * 8 * 1e-3 * 0.9
