"""Tests for the command-line experiment runner."""

import json

import pytest

from repro.experiments.__main__ import TARGETS, build_parser, main
from repro.prof import get_default_profiler


class TestParser:
    def test_all_targets_registered(self):
        expected = {"table1", "fig2", "fig3", "fig4", "fig5", "fig6",
                    "fig7", "fig8", "fig9", "fig10", "fault_recovery",
                    "service_slo"}
        assert set(TARGETS) == expected

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.scale == "quick"
        assert args.seed == 0

    def test_rejects_unknown_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig2", "--scale", "enormous"])


class TestMain:
    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "jupiter" in out
        assert "[table1:" in out

    def test_fig2_quick(self, capsys):
        assert main(["fig2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out


class TestProfileFlag:
    def test_profile_writes_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "prof"
        assert main(["fig3", "--profile", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "=== simulator self-profile ===" in out
        with open(out_dir / "profile.json") as fh:
            doc = json.load(fh)
        assert doc["format"] == "repro-profile"
        assert doc["meta"]["targets"] == ["fig3"]
        assert doc["total_ns"] > 0
        assert sum(z["self_ns"] for z in doc["zones"]) == doc["total_ns"]
        with open(out_dir / "profile.speedscope.json") as fh:
            ss = json.load(fh)
        assert ss["profiles"][0]["events"]
        # The default profiler is uninstalled after the run.
        assert get_default_profiler() is None

    def test_obs_summary_lists_slowest_zones(self, tmp_path, capsys):
        assert main([
            "fig3", "--profile", str(tmp_path / "p"), "--obs-summary",
        ]) == 0
        out = capsys.readouterr().out
        assert "slowest zones (self time):" in out

    def test_obs_summary_without_profile_omits_zones(self, capsys):
        assert main(["table1", "--obs-summary"]) == 0
        assert "slowest zones" not in capsys.readouterr().out
