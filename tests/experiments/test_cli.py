"""Tests for the command-line experiment runner."""

import pytest

from repro.experiments.__main__ import TARGETS, build_parser, main


class TestParser:
    def test_all_targets_registered(self):
        expected = {"table1", "fig2", "fig3", "fig4", "fig5", "fig6",
                    "fig7", "fig8", "fig9", "fig10", "fault_recovery"}
        assert set(TARGETS) == expected

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.scale == "quick"
        assert args.seed == 0

    def test_rejects_unknown_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig2", "--scale", "enormous"])


class TestMain:
    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "jupiter" in out
        assert "[table1:" in out

    def test_fig2_quick(self, capsys):
        assert main(["fig2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out
