"""Tests for the command-line experiment runner."""

import json

import pytest

from repro.experiments.__main__ import TARGETS, build_parser, main
from repro.prof import get_default_profiler


class TestParser:
    def test_all_targets_registered(self):
        expected = {"table1", "fig2", "fig3", "fig4", "fig5", "fig6",
                    "fig7", "fig8", "fig9", "fig10", "fault_recovery",
                    "service_slo", "scenario_degradation"}
        assert set(TARGETS) == expected

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.scale == "quick"
        assert args.seed == 0

    def test_rejects_unknown_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig2", "--scale", "enormous"])


class TestMain:
    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "jupiter" in out
        assert "[table1:" in out

    def test_fig2_quick(self, capsys):
        assert main(["fig2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out


class TestCriticalPathFlag:
    def test_writes_artifact_and_prints_table(self, tmp_path, capsys):
        cp_dir = tmp_path / "cp"
        report_dir = tmp_path / "health"
        assert main([
            "fig3", "--critical-path", str(cp_dir),
            "--health-report", str(report_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "=== sync-round critical path ===" in out
        assert "depth" in out

        with open(cp_dir / "critical_path.json") as fh:
            doc = json.load(fh)
        assert doc["critical_path_version"] == 1
        assert doc["meta"]["targets"] == ["fig3"]
        assert doc["runs"]
        for entry in doc["runs"]:
            assert entry["open_edges"] == 0
            assert entry["depth"]["level_depth"] >= 1

        # The measured depth ratios feed the health report: a depth
        # series and a rendered critical-path section must both land.
        with open(report_dir / "report.json") as fh:
            report = json.load(fh)
        series_names = {s["name"] for s in report["timeseries"]["series"]}
        assert "sync.critical.depth_ratio" in series_names
        assert report["critical_path"]
        html = (report_dir / "report.html").read_text()
        assert "Sync-round critical path" in html

    def test_traced_summary_matches_untraced(self, tmp_path, capsys):
        # --obs-summary composes with --critical-path via a tee; the
        # message counters must be identical to an untraced run.
        assert main(["fig3", "--obs-summary"]) == 0
        untraced = capsys.readouterr().out
        assert main([
            "fig3", "--obs-summary", "--critical-path", str(tmp_path),
        ]) == 0
        traced = capsys.readouterr().out
        section = "=== observability summary ==="
        tail = traced.split(section)[1].split("=== sync-round")[0]
        assert untraced.split(section)[1].startswith(tail.rstrip())

    def test_no_tracing_flag_leaves_output_clean(self, capsys):
        assert main(["fig3"]) == 0
        assert "critical path" not in capsys.readouterr().out


class TestProfileFlag:
    def test_profile_writes_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "prof"
        assert main(["fig3", "--profile", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "=== simulator self-profile ===" in out
        with open(out_dir / "profile.json") as fh:
            doc = json.load(fh)
        assert doc["format"] == "repro-profile"
        assert doc["meta"]["targets"] == ["fig3"]
        assert doc["total_ns"] > 0
        assert sum(z["self_ns"] for z in doc["zones"]) == doc["total_ns"]
        with open(out_dir / "profile.speedscope.json") as fh:
            ss = json.load(fh)
        assert ss["profiles"][0]["events"]
        # The default profiler is uninstalled after the run.
        assert get_default_profiler() is None

    def test_obs_summary_lists_slowest_zones(self, tmp_path, capsys):
        assert main([
            "fig3", "--profile", str(tmp_path / "p"), "--obs-summary",
        ]) == 0
        out = capsys.readouterr().out
        assert "slowest zones (self time):" in out

    def test_obs_summary_without_profile_omits_zones(self, capsys):
        assert main(["table1", "--obs-summary"]) == 0
        assert "slowest zones" not in capsys.readouterr().out
