"""Quick-scale smoke + shape tests for each paper experiment.

These assert the *qualitative* shapes the paper reports (who is faster,
who is more accurate, which barrier wins) — the absolute values are
simulator-scale, not testbed values.  EXPERIMENTS.md records both.
"""

from dataclasses import replace

import numpy as np

from repro.experiments import (
    fig2_drift,
    fig3_flat_algorithms,
    fig4_hier_jupiter,
    fig5_hier_hydra,
    fig6_hier_titan,
    fig7_barrier_impact,
    fig8_imbalance,
    fig9_roundtime,
    fig10_tracing,
    table1_machines,
)
from repro.experiments.common import QUICK


TINY = replace(QUICK, num_nodes=6, ranks_per_node=2, nmpiruns=2,
               nfitpoints=10)


class TestTable1:
    def test_rows_and_calibration(self):
        rows = table1_machines.run()
        assert [r.name for r in rows] == ["jupiter", "hydra", "titan"]
        jup = rows[0]
        # Paper: IB QDR ping-pong latency is 3-4 us on Jupiter.
        assert 2.5 < jup.measured_pingpong_us < 6.0
        out = table1_machines.format_result(rows)
        assert "jupiter" in out


class TestFig2:
    def test_drift_linear_short_nonlinear_long(self):
        res = fig2_drift.run(num_nodes=4, duration=60.0, interval=1.0,
                             seed=1)
        assert res.r2_short_window > 0.9
        # A 10 s fit extrapolated to 60 s misses by tens of microseconds.
        assert res.max_extrapolation_error > 5e-6
        assert "Fig. 2" in fig2_drift.format_result(res)


class TestFig3:
    def test_jk_slower_hca_family_fast(self):
        res = fig3_flat_algorithms.run(TINY, seed=2)
        by = res.by_label()
        jk = next(l for l in by if l.startswith("jk"))
        hca3 = next(l for l in by if l.startswith("hca3"))
        assert res.mean_duration(jk) > 1.3 * res.mean_duration(hca3)
        # Everyone is accurate right after the sync (well below 5 us).
        for label in by:
            assert res.mean_offset(label, 0.0) < 5e-6
        # Offsets grow as time passes.
        for label in by:
            assert res.mean_offset(label, 10.0) > res.mean_offset(label, 0.0)
        assert "Fig. 3" in fig3_flat_algorithms.format_result(res)


class TestFig4and5:
    def test_hierarchical_faster_than_flat(self):
        res = fig4_hier_jupiter.run(TINY, seed=3)
        by = res.by_label()
        flat = [l for l in by if not l.startswith("Top")]
        hier = [l for l in by if l.startswith("Top")]
        assert flat and hier
        # Compare matched fit-point budgets: hierarchical is faster.
        for f, h in zip(sorted(flat), sorted(hier)):
            assert res.mean_duration(h) < res.mean_duration(f)

    def test_hydra_variant_runs(self):
        res = fig5_hier_hydra.run(TINY, seed=4)
        assert res.machine == "hydra"
        assert res.nprocs == TINY.nprocs * 2  # doubled ranks per node
        assert "Fig. 5" in fig5_hier_hydra.format_result(res)


class TestFig6:
    def test_titan_scale_and_sampling(self):
        tiny6 = replace(TINY, num_nodes=4, nmpiruns=1)
        res = fig6_hier_titan.run(tiny6, seed=5)
        assert res.machine == "titan"
        assert res.nprocs == 4 * 4 * TINY.ranks_per_node
        assert "Fig. 6" in fig6_hier_titan.format_result(res)


class TestFig7:
    def test_barrier_algorithm_affects_reported_latency(self):
        res = fig7_barrier_impact.run(TINY, seed=6)
        # The same operation measured under different barriers differs by
        # far more than run-to-run noise for at least one suite.
        for suite in ("osu", "imb"):
            for msize in (4, 8, 16):
                cells = [res.cells[(suite, msize, b)]
                         for b in fig7_barrier_impact.BARRIERS]
                assert max(cells) > 1.05 * min(cells)

    def test_tree_wins_most_cells(self):
        res = fig7_barrier_impact.run(TINY, seed=6)
        wins = sum(
            res.best_barrier(s, m) == "tree"
            for s in fig7_barrier_impact.SUITES
            for m in fig7_barrier_impact.MSIZES
        )
        assert wins >= 5  # paper: 9/9; quick scale tolerates a few upsets


class TestFig8:
    def test_ordering_tree_best_double_ring_worst(self):
        res = fig8_imbalance.run(TINY, seed=7, ncalls=40, nmpiruns=2)
        means = {a: res.mean(a) for a in fig8_imbalance.ALGORITHMS}
        assert min(means, key=means.get) == "tree"
        assert max(means, key=means.get) == "double_ring"
        assert "Fig. 8" in fig8_imbalance.format_result(res)


class TestFig9:
    def test_osu_inflated_at_small_sizes(self):
        # Two mpiruns: the size-4 vs size-1024 inflation ordering is a
        # mean effect and too noisy to pin on a single simulated run.
        res = fig9_roundtime.run(TINY, seed=8, nmpiruns=2,
                                 msizes=(4, 8, 1024))
        assert res.inflation(4) > 1.1
        # Relative inflation shrinks for the largest payload.
        assert res.inflation(1024) < res.inflation(4)
        assert "Fig. 9" in fig9_roundtime.format_result(res)


class TestFig10:
    def test_visibility_matrix(self):
        res = fig10_tracing.run(TINY, seed=9)
        # Local clock_gettime: events invisible.
        assert res.visibility("clock_gettime", "local") < 1e-6
        # Global clocks: events visible regardless of source.
        assert res.visibility("clock_gettime", "global") > 0.05
        assert res.visibility("gettimeofday", "global") > 0.05
        # Local gettimeofday sits in between: visible but skewed.
        assert (res.spread("gettimeofday", "local")
                > 3 * res.spread("gettimeofday", "global"))
        assert "Fig. 10" in fig10_tracing.format_result(res)
