"""Seed-stability golden tests: fixed seed → byte-identical summaries.

The simulator promises bit-identical results for a fixed seed, across
process counts and (checked here) across code changes: the committed
golden files pin the full-precision campaign summaries of the fig3/fig4
quick targets.  A diff here means the random-stream layout or the
simulation semantics changed — if that is intentional, regenerate with::

    PYTHONPATH=src python - <<'EOF'
    from repro.experiments import fig3_flat_algorithms, fig4_hier_jupiter
    from repro.experiments.common import summary_json
    for mod, name in [(fig3_flat_algorithms, "fig3"),
                      (fig4_hier_jupiter, "fig4")]:
        path = f"tests/experiments/golden/{name}_quick_seed0.json"
        open(path, "w").write(summary_json(mod.run(scale="quick", seed=0)))
    EOF

and call the semantics change out in the commit message.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import fig3_flat_algorithms, fig4_hier_jupiter
from repro.experiments.common import campaign_summary, summary_json

GOLDEN_DIR = Path(__file__).parent / "golden"

TARGETS = {
    "fig3": fig3_flat_algorithms,
    "fig4": fig4_hier_jupiter,
}


@pytest.mark.parametrize("name", sorted(TARGETS))
class TestGoldenSummaries:
    def test_byte_identical_summary(self, name):
        golden = (GOLDEN_DIR / f"{name}_quick_seed0.json").read_text()
        result = TARGETS[name].run(scale="quick", seed=0)
        assert summary_json(result) == golden

    def test_parallel_jobs_match_golden(self, name):
        """--jobs N must be bit-identical to --jobs 1 (and the golden)."""
        golden = (GOLDEN_DIR / f"{name}_quick_seed0.json").read_text()
        result = TARGETS[name].run(scale="quick", seed=0, jobs=2)
        assert summary_json(result) == golden


class TestSummaryShape:
    def test_summary_is_canonical_json(self):
        result = fig3_flat_algorithms.run(scale="quick", seed=0)
        text = summary_json(result)
        data = json.loads(text)
        assert data == campaign_summary(result)
        # Canonical form: sorted keys, trailing newline, stable re-dump.
        assert text == json.dumps(data, indent=2, sort_keys=True) + "\n"
        assert len(data["runs"]) == len(result.runs)

    def test_different_seed_differs(self):
        """The golden test has teeth: another seed changes the bytes."""
        golden = (GOLDEN_DIR / "fig3_quick_seed0.json").read_text()
        other = fig3_flat_algorithms.run(scale="quick", seed=1)
        assert summary_json(other) != golden
