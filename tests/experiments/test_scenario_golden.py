"""Golden degradation tables: fixed seed → byte-identical cells.

Pins the full ``scenario_degradation`` quick summary (all preset ×
algorithm cells, baseline and adversarial twins at full precision) the
same way ``test_golden.py`` pins fig3/fig4.  A diff means the adversary
hooks, the seed-stream layout, or the simulation semantics changed — if
intentional, regenerate with::

    PYTHONPATH=src python - <<'EOF'
    from repro.experiments import scenario_degradation as sd
    path = "tests/experiments/golden/scenario_degradation_quick_seed0.json"
    open(path, "w").write(sd.summary_json(sd.run(scale="quick", seed=0)))
    EOF

and call the semantics change out in the commit message.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments import scenario_degradation as sd

GOLDEN = (
    Path(__file__).parent / "golden"
    / "scenario_degradation_quick_seed0.json"
)


def golden_text() -> str:
    return GOLDEN.read_text()


class TestGoldenDegradation:
    def test_byte_identical_summary(self):
        result = sd.run(scale="quick", seed=0)
        assert sd.summary_json(result) == golden_text()

    def test_parallel_jobs_match_golden(self):
        """--jobs 2 must be bit-identical to --jobs 1 (and the golden)."""
        result = sd.run(scale="quick", seed=0, jobs=2)
        assert sd.summary_json(result) == golden_text()

    def test_different_seed_differs(self):
        """The golden has teeth: another seed changes the bytes."""
        other = sd.run(scale="quick", seed=1)
        assert sd.summary_json(other) != golden_text()


class TestGoldenCells:
    """The two headline cells ISSUE-level docs point at, byte-pinned."""

    def _cells(self):
        return {
            (c["scenario"], c["label"]): c
            for c in json.loads(golden_text())["cells"]
        }

    def test_delay_attack_on_hca_degrades(self):
        cell = self._cells()[("delay_attack", "hca/6/skampi_offset/4")]
        assert cell["degradation"] > 1.0
        assert cell["adversarial_max_offset"] > cell["baseline_max_offset"]
        assert cell["violations"] == []

    def test_churn_on_jk_reshapes_rounds(self):
        cell = self._cells()[("rank_churn", "jk/6/skampi_offset/4")]
        base_nodes = [r["num_nodes"] for r in cell["baseline"]]
        adv_nodes = [r["num_nodes"] for r in cell["adversarial"]]
        assert base_nodes == [4, 4]
        assert adv_nodes == [4, 2]  # flap: full, then two nodes drop

    def test_grid_is_complete(self):
        cells = self._cells()
        data = json.loads(golden_text())
        assert len(cells) == len(data["cells"])  # no duplicate keys
        presets = {scenario for scenario, _ in cells}
        labels = {label for _, label in cells}
        assert presets == {
            "byzantine_rank", "congested_fabric", "delay_attack",
            "rank_churn", "region_tiers",
        }
        assert labels == set(data["labels"])
        assert len(cells) == len(presets) * len(labels)

    def test_summary_is_canonical_json(self):
        text = golden_text()
        data = json.loads(text)
        assert text == json.dumps(data, indent=2, sort_keys=True) + "\n"
