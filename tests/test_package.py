"""Package-level tests: exports, error hierarchy, version."""

import pytest

import repro
from repro import errors


class TestExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_api(self):
        assert callable(repro.Simulation)
        assert set(repro.MACHINES) == {"jupiter", "hydra", "titan"}
        assert repro.jupiter().name == "jupiter"

    def test_sync_package_exports(self):
        import repro.sync as sync

        for name in ("HCA3Sync", "HCA2Sync", "HCASync", "JKSync",
                     "ClockPropagationSync", "HierarchicalSync",
                     "SKaMPIOffset", "MeanRTTOffset", "LinearDriftModel",
                     "GlobalClockLM", "algorithm_from_label"):
            assert hasattr(sync, name), name

    def test_simmpi_package_exports(self):
        import repro.simmpi as simmpi

        for name in ("Simulation", "Communicator", "Engine",
                     "ProcessContext", "NetworkModel", "ANY_SOURCE"):
            assert hasattr(simmpi, name), name


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for cls in (errors.ClockError, errors.SimulationError,
                    errors.DeadlockError, errors.CommunicatorError,
                    errors.MatchingError, errors.SyncError,
                    errors.ConfigurationError):
            assert issubclass(cls, errors.ReproError)

    def test_deadlock_is_simulation_error(self):
        assert issubclass(errors.DeadlockError, errors.SimulationError)

    def test_matching_is_simulation_error(self):
        assert issubclass(errors.MatchingError, errors.SimulationError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.SyncError("x")
