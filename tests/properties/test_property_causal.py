"""Property tests: critical-path walk invariants over random traced runs.

Hypothesis drives small randomized synchronizations (machine shape,
seed, algorithm family) through a traced simulation and asserts the
walk's structural invariants on whatever DAG comes out:

* the path tiles the analysis window exactly — its length equals the
  run (or round) duration, segments are chronological and contiguous;
* the length dominates every single message delay it traversed *and*
  every waited edge in the window (a chain is at least as long as its
  longest link);
* depth never exceeds the algorithm's structural bound on these
  uncongested networks (ratio <= 1).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.netmodels import infiniband_qdr
from repro.obs.causal import analyze_run, critical_path
from repro.obs.spans import SpanRecorder
from repro.simmpi.simulation import Simulation
from tests.conftest import run_spmd

EPS = 1e-9

shapes = st.tuples(
    st.integers(min_value=2, max_value=4),  # nodes
    st.integers(min_value=1, max_value=4),  # ranks per node
)


def _traced_sync(nodes, rpn, seed, label):
    from repro.sync.registry import algorithm_from_label

    algorithm = algorithm_from_label(label, fitpoint_spacing=1e-3)

    def main(ctx, comm):
        yield from algorithm.sync_clocks(comm, ctx.hardware_clock)
        return ctx.now

    _, untraced = run_spmd(
        main, num_nodes=nodes, ranks_per_node=rpn,
        network=infiniband_qdr(), seed=seed,
    )
    # Identical run with the recorder attached: tracing is passive, so
    # the simulated results must be bit-identical (quiet path or not).
    from repro.cluster.topology import Machine

    recorder = SpanRecorder()
    machine = Machine(
        num_nodes=nodes, sockets_per_node=2,
        cores_per_socket=max(1, (rpn + 1) // 2),
        ranks_per_node=rpn, name="testbox",
    )
    sim = Simulation(
        machine=machine, network=infiniband_qdr(), seed=seed,
        sink=recorder,
    )
    traced = sim.run(main)
    assert traced.values == untraced.values
    recorder.finalize()
    (run,) = recorder.completed_runs()
    return run


class TestCriticalPathProperties:
    @given(
        shape=shapes,
        seed=st.integers(min_value=0, max_value=500),
        label=st.sampled_from([
            "hca/3/skampi_offset/2",
            "hca2/3/skampi_offset/2",
            "jk/3/skampi_offset/2",
        ]),
    )
    @settings(max_examples=12, deadline=None)
    def test_path_tiles_window_and_dominates_edges(self, shape, seed, label):
        nodes, rpn = shape
        run = _traced_sync(nodes, rpn, seed, label)
        segments = critical_path(run)
        assert segments

        # Chronological, contiguous, spanning [0, t_end].
        assert segments[0].start == 0.0
        assert segments[-1].end == run.t_end
        for prev, nxt in zip(segments, segments[1:]):
            assert abs(prev.end - nxt.start) < EPS
            assert prev.duration >= -EPS

        # length == run duration, >= any waited edge delay in the window.
        length = segments[-1].end - segments[0].start
        assert abs(length - run.duration()) < EPS
        max_waited = max(
            (e.deliver_time - e.send_time
             for e in run.edges.values() if e.waited),
            default=0.0,
        )
        assert length + EPS >= max_waited

    @given(
        shape=shapes,
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=8, deadline=None)
    def test_round_paths_bounded_by_round_duration(self, shape, seed):
        nodes, rpn = shape
        run = _traced_sync(nodes, rpn, seed, "hca/3/skampi_offset/2")
        analysis = analyze_run(run)
        for row in analysis["rounds"]:
            path_len = row["path_msg_s"] + row["path_compute_s"]
            # Path length == round duration (tiling), and at least the
            # slowest single hop the round waited on.
            assert path_len <= row["duration_s"] + 1e-6
            assert path_len + 1e-6 >= row["max_edge_s"]
        # Uncongested network: depth stays within the structural bound.
        assert analysis["depth"]["ratio"] <= 1.0 + EPS
