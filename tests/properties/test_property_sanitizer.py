"""Property tests: the whole stack runs sanitizer-clean.

Every collective, every registered sync algorithm, and the
fault-recovery path must satisfy the engine invariant catalog
(:mod:`repro.check`) under randomized topologies, drift models, and
fault schedules — with correct payloads where a ground truth exists.
Strict mode is used throughout: any violation raises
:class:`~repro.errors.InvariantViolation` and fails the test at the
exact faulty event.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.accuracy import ground_truth_accuracy
from repro.check import assert_clock_sane, checking
from repro.cluster.netmodels import infiniband_qdr
from repro.faults.evaluate import compare_recovery
from repro.sync.registry import algorithm_from_label
from tests.conftest import run_spmd
from tests.properties.strategies import (
    collective_programs,
    expected_collective_results,
    fault_schedules,
    machine_shapes,
    multi_node_shapes,
    run_collective_program,
    time_sources,
)

#: Every registered algorithm family (flat, propagation, hierarchical).
SYNC_LABELS = [
    "jk/5/skampi_offset/4",
    "hca/5/skampi_offset/4",
    "hca2/recompute_intercept/5/skampi_offset/4",
    "hca3/recompute_intercept/5/skampi_offset/4",
    "clockpropagation",
    # H2HCA / H3HCA as label-driven hierarchical compositions.
    "Top/hca3/5/skampi_offset/4/Bottom/clockpropagation",
    "Top/hca3/5/skampi_offset/4"
    "/Mid/hca2/5/skampi_offset/4/Bottom/clockpropagation",
]


class TestCollectivesSanitizerClean:
    @given(
        shape=machine_shapes,
        seed=st.integers(min_value=0, max_value=1000),
        program=collective_programs,
    )
    @settings(max_examples=25, deadline=None)
    def test_random_collective_program(self, shape, seed, program):
        """Any collective program: invariant-clean AND correct payloads."""
        nodes, rpn = shape
        n = nodes * rpn
        with checking("strict"):
            _, res = run_spmd(
                run_collective_program(program),
                num_nodes=nodes, ranks_per_node=rpn,
                network=infiniband_qdr(), seed=seed,
            )
        assert res.check_report is not None and res.check_report.ok
        for rank, got in enumerate(res.values):
            expected = expected_collective_results(program, n, rank)
            assert [
                list(v) if isinstance(v, (list, tuple)) else v
                for v in got
            ] == [
                list(v) if isinstance(v, (list, tuple)) else v
                for v in expected
            ]


class TestSyncAlgorithmsSanitizerClean:
    @given(
        label=st.sampled_from(SYNC_LABELS),
        shape=multi_node_shapes,
        seed=st.integers(min_value=0, max_value=1000),
        source=time_sources(),
    )
    @settings(max_examples=30, deadline=None)
    def test_sync_clean_and_clock_sane(self, label, shape, seed, source):
        """Every algorithm family: invariant-clean, sane global clocks."""
        nodes, rpn = shape
        algs = {}

        def main(ctx, comm):
            alg = algs.setdefault(
                ctx.rank,
                algorithm_from_label(label, fitpoint_spacing=1e-4),
            )
            t0 = ctx.now
            clk = yield from alg.sync_clocks(comm, ctx.hardware_clock)
            return (clk, ctx.now - t0)

        with checking("strict"):
            _, res = run_spmd(
                main, num_nodes=nodes, ranks_per_node=rpn,
                network=infiniband_qdr(), time_source=source, seed=seed,
            )
        assert res.check_report is not None and res.check_report.ok
        duration = max(v[1] for v in res.values)
        for rank, (clk, _) in enumerate(res.values):
            assert_clock_sane(
                clk, duration, duration + 2.0, rank=rank, npoints=32
            )


class TestFaultRecoverySanitizerClean:
    @given(
        shape=st.tuples(
            st.integers(min_value=2, max_value=3),
            st.integers(min_value=1, max_value=2),
        ),
        seed=st.integers(min_value=0, max_value=1000),
        data=st.data(),
    )
    @settings(max_examples=10, deadline=None)
    def test_recovery_paths_clean(self, shape, seed, data):
        """Baseline + resync through random fault scenarios, strict."""
        nodes, rpn = shape
        horizon = 12.0
        schedule = data.draw(
            fault_schedules(
                num_nodes=nodes, num_ranks=nodes * rpn, horizon=horizon
            )
        )
        with checking("strict"):
            reports = compare_recovery(
                schedule,
                resync_age=4.0,
                horizon=horizon,
                sample_interval=2.0,
                ensure_interval=3.0,
                num_nodes=nodes,
                ranks_per_node=rpn,
                seed=seed,
            )
        assert set(reports) == {"baseline", "resync"}
        for report in reports.values():
            assert report.phases  # scored, i.e. the runs completed


class TestSyncAccuracyStillHolds:
    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=5, deadline=None)
    def test_h2hca_accuracy_under_checking(self, seed):
        """Checking is passive: a sane config still syncs accurately."""
        algs = {}

        def main(ctx, comm):
            alg = algs.setdefault(
                ctx.rank,
                algorithm_from_label(
                    "Top/hca3/10/skampi_offset/8/Bottom/clockpropagation",
                    fitpoint_spacing=1e-3,
                ),
            )
            t0 = ctx.now
            clk = yield from alg.sync_clocks(comm, ctx.hardware_clock)
            return (clk, ctx.now - t0)

        from repro.simtime.sources import CLOCK_GETTIME

        with checking("strict"):
            _, res = run_spmd(
                main, num_nodes=3, ranks_per_node=2,
                network=infiniband_qdr(),
                time_source=CLOCK_GETTIME.with_(skew_walk_sigma=1e-9),
                seed=seed,
            )
        clocks = [v[0] for v in res.values]
        duration = max(v[1] for v in res.values)
        assert ground_truth_accuracy(clocks, duration + 0.1) < 5e-6
