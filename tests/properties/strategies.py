"""Reusable Hypothesis strategies for the simulator's input space.

Shared by the property suite (``tests/properties``): machine topologies,
hardware-clock drift/perturbation models, fault schedules, and random
collective programs.  Every strategy produces *valid* inputs — the
invariant under test is the simulator's behaviour, not its argument
validation (which has its own unit tests).
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.faults.model import (
    ClockFrequencyFault,
    ClockStepFault,
    LinkFault,
    NicStormFault,
    StragglerFault,
)
from repro.faults.schedule import FaultSchedule
from repro.simtime.sources import CLOCK_GETTIME

#: (num_nodes, ranks_per_node) pairs small enough for property runs.
machine_shapes = st.tuples(
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=4),
)

#: Shapes with at least two nodes (hierarchical algorithms need a real
#: inter-node level to be interesting).
multi_node_shapes = st.tuples(
    st.integers(min_value=2, max_value=3),
    st.integers(min_value=1, max_value=4),
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)


@st.composite
def time_sources(draw):
    """Drift/perturbation models around the CLOCK_GETTIME defaults.

    Spans stable (Jupiter-like) through fast-drifting (Titan-like)
    clocks, with and without read granularity — the knobs the paper's
    machines differ in.
    """
    return CLOCK_GETTIME.with_(
        offset_scale=draw(st.sampled_from([0.0, 1.0, 60_000.0])),
        skew_scale=draw(st.sampled_from([0.0, 1e-6, 5e-5])),
        skew_walk_sigma=draw(st.sampled_from([0.0, 4e-8, 5e-7])),
        granularity=draw(st.sampled_from([0.0, 1e-9, 1e-7])),
    )


@st.composite
def faults(draw, num_nodes: int, num_ranks: int, horizon: float):
    """One valid fault of any kind, targeted inside the job's shape."""
    start = draw(
        st.floats(
            min_value=horizon * 0.1,
            max_value=horizon * 0.9,
            allow_nan=False,
            allow_infinity=False,
        )
    )
    length = draw(
        st.floats(min_value=horizon * 0.05, max_value=horizon * 0.5)
    )
    node = draw(
        st.one_of(
            st.none(), st.integers(min_value=0, max_value=num_nodes - 1)
        )
    )
    kind = draw(
        st.sampled_from(
            ["clock_step", "clock_freq", "link", "nic_storm", "straggler"]
        )
    )
    if kind == "clock_step":
        return ClockStepFault(
            start=start,
            step=draw(st.sampled_from([-1e-3, -5e-6, 5e-6, 1e-3])),
            node=node,
        )
    if kind == "clock_freq":
        return ClockFrequencyFault(
            start=start,
            length=length,
            skew_delta=draw(st.sampled_from([1e-7, 8e-6])),
            node=node,
            shape=draw(st.sampled_from(["triangle", "flat"])),
        )
    if kind == "link":
        return LinkFault(
            start=start,
            length=length,
            latency_factor=draw(st.sampled_from([2.0, 10.0])),
            jitter=draw(st.sampled_from([0.0, 1e-6])),
        )
    if kind == "nic_storm":
        return NicStormFault(
            start=start,
            length=length,
            node=node,
            gap_factor=draw(st.sampled_from([2.0, 8.0])),
        )
    return StragglerFault(
        start=start,
        length=length,
        rank=draw(
            st.one_of(
                st.none(),
                st.integers(min_value=0, max_value=num_ranks - 1),
            )
        ),
        slowdown=draw(st.sampled_from([1.5, 4.0])),
        noise=draw(st.sampled_from([0.0, 1e-4])),
    )


@st.composite
def fault_schedules(
    draw,
    num_nodes: int,
    num_ranks: int,
    horizon: float,
    max_faults: int = 3,
):
    """A valid schedule of 1..max_faults faults inside the job shape."""
    n = draw(st.integers(min_value=1, max_value=max_faults))
    fs = [
        draw(faults(num_nodes, num_ranks, horizon)) for _ in range(n)
    ]
    return FaultSchedule(name="property", faults=fs)


#: One step of a random collective program: (op, payload salt).
_collective_ops = st.tuples(
    st.sampled_from(
        ["barrier", "allreduce", "allgather", "bcast", "reduce"]
    ),
    st.integers(min_value=-100, max_value=100),
)

#: A short random program of collectives every rank executes in order.
collective_programs = st.lists(_collective_ops, min_size=1, max_size=4)


def run_collective_program(program):
    """SPMD body executing ``program``; returns the per-op results.

    Deterministic payloads derived from (rank, salt) so callers can
    recompute the expected value of every op.
    """

    def main(ctx, comm):
        out = []
        for op, salt in program:
            if op == "barrier":
                yield from comm.barrier()
                out.append("barrier")
            elif op == "allreduce":
                out.append(
                    (yield from comm.allreduce(comm.rank * 7 + salt))
                )
            elif op == "allgather":
                out.append(
                    (yield from comm.allgather(comm.rank * 3 + salt))
                )
            elif op == "bcast":
                value = salt * 11 if comm.rank == 0 else None
                out.append((yield from comm.bcast(value, root=0)))
            else:  # reduce
                out.append(
                    (yield from comm.reduce(comm.rank + salt, root=0))
                )
        return out

    return main


def expected_collective_results(program, num_ranks: int, rank: int):
    """Ground-truth result list for ``run_collective_program``."""
    out = []
    for op, salt in program:
        if op == "barrier":
            out.append("barrier")
        elif op == "allreduce":
            out.append(sum(r * 7 + salt for r in range(num_ranks)))
        elif op == "allgather":
            out.append([r * 3 + salt for r in range(num_ranks)])
        elif op == "bcast":
            out.append(salt * 11)
        else:  # reduce: defined on the root only
            out.append(
                sum(r + salt for r in range(num_ranks))
                if rank == 0
                else None
            )
    return out
