"""Property tests for the adversarial scenario registry.

The fuzzer's own strategies (:mod:`repro.scenarios.strategies`) define
what "a random scenario" means, so the properties run over exactly that
distribution:

* every adversary and scenario round-trips through ``to_dict`` /
  ``from_dict`` (and JSON) unchanged — the contract that makes fuzzer
  repro files replayable;
* every strategy-produced instance validates against the job shape it
  was drawn for (the fuzzer never wastes budget on rejected inputs),
  and churn-keyed scenarios stay valid on every churned round shape;
* validation rejection is symmetric: shrinking the job below an
  adversary's keys always raises ``ConfigurationError``.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.errors import ConfigurationError
from repro.scenarios.adversaries import adversary_from_dict
from repro.scenarios.scenario import Scenario
from repro.scenarios.strategies import (
    CELL_LABELS,
    adversaries,
    byzantine_adversaries,
    cells,
    churn_adversaries,
    congestion_adversaries,
    delay_attack_adversaries,
    link_fault_schedules,
    region_adversaries,
    scenarios,
)
from repro.sync.registry import algorithm_from_label

#: Reference job shape the plain adversary strategies are keyed to.
NUM_NODES = 4
RANKS_PER_NODE = 2
NUM_RANKS = NUM_NODES * RANKS_PER_NODE

any_adversary = adversaries(NUM_RANKS, NUM_NODES)

SETTINGS = settings(max_examples=100, deadline=None)


class TestAdversaryRoundTrips:
    @given(adv=any_adversary)
    @SETTINGS
    def test_dict_round_trip(self, adv):
        assert adversary_from_dict(adv.to_dict()) == adv

    @given(adv=any_adversary)
    @SETTINGS
    def test_json_round_trip(self, adv):
        """to_dict output survives real JSON, not just dict copying."""
        data = json.loads(json.dumps(adv.to_dict()))
        assert adversary_from_dict(data) == adv

    @given(adv=any_adversary)
    @SETTINGS
    def test_round_trip_is_not_identity_blind(self, adv):
        """The reconstructed instance behaves, not just compares, the
        same: window membership agrees at the boundary instants."""
        twin = adversary_from_dict(adv.to_dict())
        for t in (0.0, adv.start, adv.start + 1e-9, 1.0, 1e9):
            assert twin.active(t) == adv.active(t)


class TestStrategyValidity:
    @given(adv=byzantine_adversaries(NUM_RANKS))
    @SETTINGS
    def test_byzantine_fit_their_shape(self, adv):
        assert adv.validate(num_ranks=NUM_RANKS) is adv
        assert all(1 <= r < NUM_RANKS for r in adv.ranks)

    @given(adv=delay_attack_adversaries(NUM_RANKS))
    @SETTINGS
    def test_delay_attacks_fit_their_shape(self, adv):
        assert adv.validate(num_ranks=NUM_RANKS) is adv
        assert all(src != dst for src, dst in adv.links)

    @given(adv=congestion_adversaries(NUM_RANKS))
    @SETTINGS
    def test_congestion_fits_its_shape(self, adv):
        assert adv.validate(num_ranks=NUM_RANKS) is adv
        assert adv.level is not None or adv.links

    @given(adv=region_adversaries(NUM_NODES))
    @SETTINGS
    def test_regions_partition_every_node(self, adv):
        assert adv.validate(num_nodes=NUM_NODES) is adv
        for node in range(NUM_NODES):
            region = adv.region_of(node, NUM_NODES)
            assert region in adv.regions
            assert adv.latency_between(region, region) == 0.0

    @given(adv=churn_adversaries(NUM_NODES))
    @SETTINGS
    def test_churn_stays_inside_bounds(self, adv):
        assert adv.validate(num_nodes=NUM_NODES) is adv
        for round_idx in range(8):
            nodes = adv.nodes_at(round_idx, NUM_NODES)
            assert adv.min_nodes <= nodes <= NUM_NODES

    @given(faults=link_fault_schedules(NUM_RANKS))
    @SETTINGS
    def test_fault_schedules_fit_their_shape(self, faults):
        assert faults.validate(
            num_ranks=NUM_RANKS, horizon=1.0
        ) is faults


class TestScenarioProperties:
    @given(scenario=scenarios(NUM_RANKS, NUM_NODES))
    @SETTINGS
    def test_scenarios_validate_and_round_trip(self, scenario):
        assert scenario.validate(
            num_ranks=NUM_RANKS, num_nodes=NUM_NODES
        ) is scenario
        assert Scenario.from_json(scenario.to_json()) == scenario

    @given(scenario=scenarios(NUM_RANKS, NUM_NODES))
    @SETTINGS
    def test_churned_scenarios_valid_on_floor_shape(self, scenario):
        """Rank/link keys drawn alongside churn stay valid on the
        smallest round the churn can produce."""
        for churn in scenario.churn:
            floor_nodes = min(
                churn.nodes_at(i, NUM_NODES) for i in range(8)
            )
            floor_ranks = floor_nodes * RANKS_PER_NODE
            for adv in scenario.adversaries:
                if adv.kind != "churn":
                    adv.validate(
                        num_ranks=floor_ranks, num_nodes=floor_nodes
                    )
            if scenario.faults is not None:
                scenario.faults.validate(num_ranks=floor_ranks)

    @given(scenario=scenarios(NUM_RANKS, NUM_NODES), shrink=st.just(1))
    @SETTINGS
    def test_rank_keyed_scenarios_reject_tiny_jobs(self, scenario, shrink):
        """Any scenario keying a rank >= 1 must refuse a 1-rank job."""
        keyed = any(
            getattr(adv, "ranks", ()) or getattr(adv, "links", ())
            for adv in scenario.adversaries
        )
        if not keyed:
            return
        with pytest.raises(ConfigurationError):
            scenario.validate(num_ranks=shrink)


class TestCellProperties:
    @given(cell=cells())
    @SETTINGS
    def test_cells_are_json_primitive_and_self_consistent(self, cell):
        """A drawn cell is exactly a repro-file payload: pure JSON, a
        known label, and a scenario valid for its own shape."""
        assert json.loads(json.dumps(cell)) == cell
        assert cell["label"] in CELL_LABELS
        num_ranks = cell["num_nodes"] * cell["ranks_per_node"]
        Scenario.from_dict(cell["scenario"]).validate(
            num_ranks=num_ranks, num_nodes=cell["num_nodes"]
        )

    @pytest.mark.parametrize("label", CELL_LABELS)
    def test_every_fuzzed_label_resolves(self, label):
        assert algorithm_from_label(label) is not None
