"""Property-based tests for hardware clocks and the clock stack."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simtime.drift import RandomWalkDrift
from repro.simtime.hardware import HardwareClock
from repro.sync.clocks import (
    GlobalClockLM,
    flatten_clock,
    unflatten_clock,
)
from repro.sync.linear_model import LinearDriftModel


def clocks():
    return st.builds(
        lambda offset, skew, seed, seglen: HardwareClock(
            offset=offset,
            drift=RandomWalkDrift(
                initial_skew=skew,
                sigma=1e-7,
                rng=np.random.default_rng(seed),
            ),
            segment_length=seglen,
        ),
        offset=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
        skew=st.floats(min_value=-1e-4, max_value=1e-4, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**31),
        seglen=st.floats(min_value=0.05, max_value=5.0),
    )


class TestHardwareClockProperties:
    @given(clk=clocks(), t=st.floats(min_value=0.0, max_value=500.0))
    @settings(max_examples=60)
    def test_invert_is_left_inverse_of_read(self, clk, t):
        assert abs(clk.invert(clk.read_raw(t)) - t) < 1e-6

    @given(
        clk=clocks(),
        t1=st.floats(min_value=0.0, max_value=200.0),
        t2=st.floats(min_value=0.0, max_value=200.0),
    )
    @settings(max_examples=60)
    def test_strictly_monotone(self, clk, t1, t2):
        lo, hi = sorted((t1, t2))
        if hi - lo < 1e-9:  # below float resolution at these magnitudes
            return
        assert clk.read_raw(lo) < clk.read_raw(hi)

    @given(clk=clocks(), t=st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=40)
    def test_rate_bounded_by_skew_envelope(self, clk, t):
        dt = 1e-3
        rate = (clk.read_raw(t + dt) - clk.read_raw(t)) / dt
        # |skew| stays within initial ± max_excursion (20 ppm default)
        # plus the ±1e-4 initial range.
        assert 1 - 2e-4 < rate < 1 + 2e-4


class TestClockStackProperties:
    @given(
        clk=clocks(),
        layers=st.lists(
            st.tuples(
                st.floats(min_value=-1e-4, max_value=1e-4,
                          allow_nan=False),
                st.floats(min_value=-10.0, max_value=10.0,
                          allow_nan=False),
            ),
            min_size=0,
            max_size=4,
        ),
        t=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=60)
    def test_flatten_unflatten_roundtrip(self, clk, layers, t):
        stacked = clk
        for slope, intercept in layers:
            stacked = GlobalClockLM(stacked,
                                    LinearDriftModel(slope, intercept))
        rebuilt = unflatten_clock(clk, flatten_clock(stacked))
        got = rebuilt.read(t)
        want = stacked.read(t)
        assert abs(got - want) <= 1e-9 * max(1.0, abs(want))

    @given(
        clk=clocks(),
        slope=st.floats(min_value=-1e-4, max_value=1e-4, allow_nan=False),
        intercept=st.floats(min_value=-10.0, max_value=10.0,
                            allow_nan=False),
        reading_offset=st.floats(min_value=0.1, max_value=100.0),
    )
    @settings(max_examples=60)
    def test_global_clock_invert_consistent(self, clk, slope, intercept,
                                            reading_offset):
        g = GlobalClockLM(clk, LinearDriftModel(slope, intercept))
        reading = g.read(0.0) + reading_offset
        t = g.invert(reading)
        assert abs(g.read(t) - reading) < 1e-5
