"""Property tests for the observability primitives.

Two deterministic downsamplers back every telemetry number the repo
reports, so their structural invariants get property coverage:

* :class:`~repro.obs.timeseries.TimeSeries` — stride-doubling
  decimation: retention is a pure function of the offered sample
  sequence (sample *i* is retained iff ``i % stride == 0`` for the
  final stride), bounded by ``max_points``, and invariant under
  arbitrary chunking and bank-merge splits.
* :class:`~repro.obs.metrics.Histogram` — the exact scalar summary
  (count/total/min/max) is invariant under splitting the observation
  stream across histograms that are then merged, the reservoir stays
  bounded, and quantiles stay inside ``[min, max]``.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import Histogram
from repro.obs.timeseries import TimeSeries, TimeSeriesBank

#: Integer-valued samples keep float sums exact under any grouping.
sample_values = st.lists(
    st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=300
)


def _chunked(items, sizes):
    """Split ``items`` into chunks of the given sizes (remainder last)."""
    out, i = [], 0
    for size in sizes:
        if i >= len(items):
            break
        out.append(items[i:i + size])
        i += size
    if i < len(items):
        out.append(items[i:])
    return out


class TestTimeSeriesDecimation:
    @given(
        values=sample_values,
        max_points=st.integers(min_value=2, max_value=32),
    )
    @settings(max_examples=100, deadline=None)
    def test_retention_invariant(self, values, max_points):
        """Retained points are exactly the stride-multiples of the stream."""
        series = TimeSeries("s", max_points=max_points)
        samples = [(float(i), float(v)) for i, v in enumerate(values)]
        series.extend(samples)
        stride = series.stride
        assert stride >= 1 and stride & (stride - 1) == 0  # power of two
        assert series.count == len(samples)
        assert len(series.points) <= max_points
        expected = [
            samples[i] for i in range(len(samples)) if i % stride == 0
        ]
        assert series.points == expected

    @given(
        values=sample_values,
        max_points=st.integers(min_value=2, max_value=32),
        sizes=st.lists(
            st.integers(min_value=1, max_value=50), max_size=10
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_chunking_invariance(self, values, max_points, sizes):
        """extend() in arbitrary chunks == append() one at a time."""
        samples = [(float(i), float(v)) for i, v in enumerate(values)]
        one = TimeSeries("s", max_points=max_points)
        for t, v in samples:
            one.append(t, v)
        many = TimeSeries("s", max_points=max_points)
        for chunk in _chunked(samples, sizes):
            many.extend(chunk)
        assert many.points == one.points
        assert many.stride == one.stride
        assert many.count == one.count

    @given(
        values=sample_values,
        max_points=st.integers(min_value=2, max_value=32),
    )
    @settings(max_examples=50, deadline=None)
    def test_bank_adoption_is_structural(self, values, max_points):
        """Merging into an empty bank preserves the series exactly."""
        src = TimeSeriesBank(max_points=max_points)
        for i, v in enumerate(values):
            src.sample("clock.error", float(i), float(v), rank=1)
        dst = TimeSeriesBank(max_points=max_points)
        dst.merge_from(src)
        mine = dst.get("clock.error", rank=1)
        theirs = src.get("clock.error", rank=1)
        assert mine is not theirs
        assert mine.points == theirs.points
        assert mine.stride == theirs.stride
        assert mine.count == theirs.count


class TestHistogramReservoirMerge:
    @given(
        values=sample_values,
        sizes=st.lists(
            st.integers(min_value=1, max_value=50),
            min_size=1, max_size=8,
        ),
        cap=st.integers(min_value=4, max_value=64),
    )
    @settings(max_examples=100, deadline=None)
    def test_summary_exact_under_splits(self, values, sizes, cap):
        """count/total/min/max survive any split-then-merge exactly."""
        whole = Histogram(max_samples=cap)
        for v in values:
            whole.observe(float(v))
        merged = Histogram(max_samples=cap)
        for chunk in _chunked(values, sizes):
            part = Histogram(max_samples=cap)
            for v in chunk:
                part.observe(float(v))
            merged.merge(part)
        assert merged.count == whole.count == len(values)
        assert merged.total == whole.total == float(sum(values))
        assert merged.min_value == whole.min_value == float(min(values))
        assert merged.max_value == whole.max_value == float(max(values))
        assert math.isclose(merged.mean, whole.mean)

    @given(values=sample_values, cap=st.integers(min_value=2, max_value=16))
    @settings(max_examples=100, deadline=None)
    def test_reservoir_bounded_and_quantiles_in_range(self, values, cap):
        hist = Histogram(max_samples=cap)
        for v in values:
            hist.observe(float(v))
        assert len(hist._samples) <= cap
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            est = hist.quantile(q)
            assert hist.min_value <= est <= hist.max_value

    @given(values=sample_values)
    @settings(max_examples=50, deadline=None)
    def test_quantiles_exact_below_cap(self, values):
        """With no reservoir overflow, q=0/1 are the exact min/max."""
        hist = Histogram(max_samples=1000)
        for v in values:
            hist.observe(float(v))
        assert hist.quantile(0.0) == float(min(values))
        assert hist.quantile(1.0) == float(max(values))
