"""Property-based tests for the offset algorithms' error bounds."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.netmodels import ideal_network
from repro.simtime.drift import ConstantDrift
from repro.simtime.hardware import HardwareClock
from repro.sync.offset import MeanRTTOffset, SKaMPIOffset
from repro.cluster.topology import Machine
from repro.simmpi.simulation import Simulation
from repro.simtime.sources import TimeSourceSpec

LATENCY = 2e-6


def measure_error(offset, skew, alg_factory, seed=0):
    """Run one measurement between clocks with exact (offset, skew)."""
    machine = Machine(num_nodes=2, sockets_per_node=1, cores_per_socket=1)
    spec = TimeSourceSpec(name="t", offset_scale=0.0,
                          offset_is_uniform=False, skew_scale=0.0,
                          skew_walk_sigma=0.0, granularity=0.0,
                          read_overhead=0.0)
    sim = Simulation(machine=machine, network=ideal_network(LATENCY),
                     time_source=spec, seed=seed)
    # Replace the generated clocks with exact ones.
    ref_clock = HardwareClock(offset=0.0)
    client_clock = HardwareClock(offset=offset, drift=ConstantDrift(skew))
    sim.clocks[0] = ref_clock
    sim.clocks[1] = client_clock
    sim.contexts[0].hardware_clock = ref_clock
    sim.contexts[1].hardware_clock = client_clock

    def main(ctx, comm):
        alg = alg_factory()
        result = yield from alg.measure_offset(
            comm, ctx.hardware_clock, 0, 1
        )
        return (result, ctx.now)

    values = sim.run(main).values
    measurement, t_end = values[1]
    truth = client_clock.read_raw(t_end) - ref_clock.read_raw(t_end)
    return abs(measurement.offset - truth)


class TestOffsetErrorBounds:
    @given(
        offset=st.floats(min_value=-100.0, max_value=100.0,
                         allow_nan=False),
        skew=st.floats(min_value=-1e-4, max_value=1e-4, allow_nan=False),
    )
    @settings(max_examples=20, deadline=None)
    def test_skampi_error_below_half_rtt(self, offset, skew):
        """Jitter-free symmetric network: the min-window midpoint is
        essentially exact; half the RTT is a very loose upper bound."""
        error = measure_error(offset, skew, lambda: SKaMPIOffset(5))
        assert error <= LATENCY + 1e-9

    @given(
        offset=st.floats(min_value=-100.0, max_value=100.0,
                         allow_nan=False),
        skew=st.floats(min_value=-1e-4, max_value=1e-4, allow_nan=False),
    )
    @settings(max_examples=20, deadline=None)
    def test_mean_rtt_error_below_half_rtt(self, offset, skew):
        error = measure_error(offset, skew, lambda: MeanRTTOffset(5))
        assert error <= LATENCY + 1e-9
