"""Property tests for the clock service's caching contract.

The service's two cache layers promise exactness, not approximation:

* within one sync generation, a memoized (cached) ``translate`` answer
  is **bit-identical** to the uncached scalar model arithmetic and to
  the vectorized batch path;
* a resync bumps the generation and must drop both caches — no answer
  computed against the old models may ever be served afterwards.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.core import ClockService
from repro.sync.linear_model import LinearDriftModel

slopes = st.floats(min_value=-1e-3, max_value=1e-3, allow_nan=False)
intercepts = st.floats(min_value=-1e2, max_value=1e2, allow_nan=False)
readings = st.floats(min_value=0.0, max_value=1e5, allow_nan=False)
ages = st.floats(min_value=0.0, max_value=600.0, allow_nan=False)
rates = st.floats(min_value=0.0, max_value=1e-4, allow_nan=False)


def models(n):
    return st.lists(
        st.builds(LinearDriftModel, slope=slopes, intercept=intercepts),
        min_size=n, max_size=n,
    )


class Provider:
    def __init__(self, model_sets, drifts):
        self._sets = list(model_sets)
        self._drifts = tuple(drifts)
        self.generation = 0
        self.synced_at = 0.0
        self.base_error = 1e-7
        self.ref_rank = 0

    def models(self):
        return [LinearDriftModel.ZERO] + self._sets[self.generation]

    def drifts(self):
        return self._drifts

    def resync(self):
        self.generation += 1
        self.synced_at += 1.0


class TestCachedTranslate:
    @given(ms=models(2), t=readings, age=ages, r1=rates, r2=rates)
    @settings(max_examples=100, deadline=None)
    def test_cached_answer_bit_identical_to_uncached(
        self, ms, t, age, r1, r2
    ):
        provider = Provider([ms], (0.0, r1, r2))
        service = ClockService(provider, slo=25e-6)
        at = provider.synced_at + age

        uncached = service.translate(t, 1, 2, at)
        cached = service.translate(t, 1, 2, at)
        assert cached is uncached  # second call served from the memo

        # Both equal the raw model arithmetic, bit for bit.
        expected = ms[1].apply_inverse(ms[0].apply(t))
        assert uncached.value == expected

        # And the vectorized path agrees element-exactly.
        values, bounds, _ = service.translate_batch(
            np.array([t]), np.array([1]), np.array([2]), np.array([at])
        )
        assert values[0] == uncached.value
        assert bounds[0] == uncached.error_bound

    @given(
        sets=st.tuples(models(2), models(2)),
        t=readings, age=ages, r1=rates, r2=rates,
    )
    @settings(max_examples=100, deadline=None)
    def test_memo_never_serves_across_a_resync(
        self, sets, t, age, r1, r2
    ):
        provider = Provider(list(sets), (0.0, r1, r2))
        service = ClockService(provider, slo=25e-6)
        at = provider.synced_at + age

        before = service.translate(t, 1, 2, at)
        provider.resync()
        after = service.translate(t, 1, 2, at)

        assert before.generation == 0
        assert after.generation == 1
        assert service.stats.memo_hits == 0
        # The post-resync answer comes from the NEW models, exactly.
        new = sets[1]
        assert after.value == new[1].apply_inverse(new[0].apply(t))
