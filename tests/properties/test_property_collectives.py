"""Property-based tests for collective correctness and engine invariants."""

import operator

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.netmodels import infiniband_qdr
from tests.conftest import run_spmd

sizes = st.tuples(
    st.integers(min_value=1, max_value=3),  # nodes
    st.integers(min_value=1, max_value=4),  # ranks per node
)


class TestCollectiveProperties:
    @given(
        shape=sizes,
        seed=st.integers(min_value=0, max_value=1000),
        values=st.lists(st.integers(min_value=-100, max_value=100),
                        min_size=12, max_size=12),
        algorithm=st.sampled_from(["recursive_doubling", "ring",
                                   "reduce_bcast"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_allreduce_equals_local_reduce(self, shape, seed, values,
                                           algorithm):
        nodes, rpn = shape
        n = nodes * rpn

        def main(ctx, comm):
            out = yield from comm.allreduce(values[comm.rank % 12],
                                            algorithm=algorithm)
            return out

        _, res = run_spmd(main, num_nodes=nodes, ranks_per_node=rpn,
                          network=infiniband_qdr(), seed=seed)
        expected = sum(values[r % 12] for r in range(n))
        assert res.values == [expected] * n

    @given(shape=sizes, seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_allgather_is_gather_of_everyone(self, shape, seed):
        nodes, rpn = shape

        def main(ctx, comm):
            out = yield from comm.allgather((comm.rank, ctx.node))
            return out

        _, res = run_spmd(main, num_nodes=nodes, ranks_per_node=rpn,
                          network=infiniband_qdr(), seed=seed)
        reference = res.values[0]
        assert all(v == reference for v in res.values)
        assert [r for r, _ in reference] == list(range(nodes * rpn))

    @given(
        shape=sizes,
        seed=st.integers(min_value=0, max_value=1000),
        algorithm=st.sampled_from(["linear", "tree", "double_ring",
                                   "bruck", "recursive_doubling"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_barrier_synchronizes(self, shape, seed, algorithm):
        nodes, rpn = shape

        def main(ctx, comm):
            yield from ctx.elapse((comm.rank % 5) * 0.01)
            entered = ctx.now
            yield from comm.barrier(algorithm=algorithm)
            return (entered, ctx.now)

        _, res = run_spmd(main, num_nodes=nodes, ranks_per_node=rpn,
                          network=infiniband_qdr(), seed=seed)
        last_entry = max(t for t, _ in res.values)
        assert all(exit_ >= last_entry for _, exit_ in res.values)

    @given(
        shape=sizes,
        seed=st.integers(min_value=0, max_value=500),
        op_name=st.sampled_from(["sum", "max", "min", "or"]),
    )
    @settings(max_examples=20, deadline=None)
    def test_reduce_matches_python_reduce(self, shape, seed, op_name):
        nodes, rpn = shape
        n = nodes * rpn
        ops = {
            "sum": operator.add,
            "max": max,
            "min": min,
            "or": operator.or_,
        }
        op = ops[op_name]

        def main(ctx, comm):
            out = yield from comm.reduce(comm.rank + 1, op=op, root=0,
                                         algorithm="binomial")
            return out

        _, res = run_spmd(main, num_nodes=nodes, ranks_per_node=rpn,
                          network=infiniband_qdr(), seed=seed)
        import functools

        expected = functools.reduce(op, range(2, n + 1), 1)
        assert res.values[0] == expected


class TestEngineProperties:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_simulation_reproducible(self, seed):
        def main(ctx, comm):
            yield from comm.barrier(algorithm="bruck")
            v = yield from comm.allreduce(ctx.rank)
            return (v, ctx.now)

        _, res1 = run_spmd(main, network=infiniband_qdr(), seed=seed)
        _, res2 = run_spmd(main, network=infiniband_qdr(), seed=seed)
        assert res1.values == res2.values

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        npairs=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=15, deadline=None)
    def test_message_conservation(self, seed, npairs):
        """Messages delivered == messages sent (no loss, no duplication)."""

        def main(ctx, comm):
            partner = comm.rank ^ 1
            for i in range(npairs):
                if comm.rank % 2 == 0:
                    yield from comm.send(partner, 1, payload=i)
                else:
                    msg = yield from comm.recv(partner, 1)
                    assert msg.payload == i
            return None

        sim, res = run_spmd(main, num_nodes=2, ranks_per_node=2,
                            network=infiniband_qdr(), seed=seed)
        assert res.messages == npairs * 2
