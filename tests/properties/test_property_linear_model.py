"""Property-based tests for the linear-model algebra."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sync.linear_model import LinearDriftModel

slopes = st.floats(min_value=-1e-3, max_value=1e-3, allow_nan=False)
intercepts = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)
times = st.floats(min_value=0.0, max_value=1e5, allow_nan=False)


def models():
    return st.builds(LinearDriftModel, slope=slopes, intercept=intercepts)


class TestModelAlgebra:
    @given(m=models(), t=times)
    def test_apply_inverse_roundtrip(self, m, t):
        assert abs(m.apply_inverse(m.apply(t)) - t) <= 1e-6 * max(1.0, t)

    @given(outer=models(), inner=models(), t=times)
    def test_compose_is_function_composition(self, outer, inner, t):
        merged = outer.compose(inner)
        direct = outer.apply(inner.apply(t))
        assert abs(merged.apply(t) - direct) <= 1e-9 * max(1.0, abs(direct))

    @given(a=models(), b=models(), c=models(), t=times)
    def test_compose_associative(self, a, b, c, t):
        left = a.compose(b).compose(c).apply(t)
        right = a.compose(b.compose(c)).apply(t)
        assert abs(left - right) <= 1e-6 * max(1.0, abs(left))

    @given(m=models())
    def test_zero_is_identity_element(self, m):
        assert m.compose(LinearDriftModel.ZERO) == m
        assert LinearDriftModel.ZERO.compose(m) == m

    @given(m=models(), t=times)
    def test_offset_consistent_with_apply(self, m, t):
        assert m.apply(t) == t - m.offset_at(t)


class TestFitProperties:
    @given(
        slope=slopes,
        intercept=intercepts,
        n=st.integers(min_value=2, max_value=60),
        span=st.floats(min_value=0.1, max_value=1e3),
        x0=st.floats(min_value=0.0, max_value=1e5),
    )
    @settings(max_examples=60)
    def test_fit_recovers_exact_line(self, slope, intercept, n, span, x0):
        x = np.linspace(x0, x0 + span, n)
        y = slope * x + intercept
        m = LinearDriftModel.fit(x, y)
        # Predicted values must match (slope/intercept individually can
        # trade off under float round-off at large x0).
        pred = m.slope * x + m.intercept
        assert np.allclose(pred, y, atol=1e-6, rtol=1e-9)

    @given(
        slope=slopes,
        intercept=intercepts,
        n=st.integers(min_value=3, max_value=50),
    )
    @settings(max_examples=40)
    def test_fit_invariant_to_point_order(self, slope, intercept, n):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 100, n)
        y = slope * x + intercept + rng.normal(0, 1e-6, n)
        m1 = LinearDriftModel.fit(x, y)
        perm = rng.permutation(n)
        m2 = LinearDriftModel.fit(x[perm], y[perm])
        # Summation order differs, so only near-equality is guaranteed.
        assert abs(m1.slope - m2.slope) < 1e-12
        assert abs(m1.intercept - m2.intercept) < 1e-9

    @given(n=st.integers(min_value=2, max_value=30))
    @settings(max_examples=20)
    def test_r_squared_in_unit_interval_for_lines_with_noise(self, n):
        rng = np.random.default_rng(n)
        x = np.linspace(0, 10, max(3, n))
        y = x * 1e-5 + rng.normal(0, 1e-6, x.size)
        r2 = LinearDriftModel.r_squared(x, y)
        assert r2 <= 1.0 + 1e-12
