"""Property tests: every event-queue kernel is the same priority queue.

Hypothesis drives randomized operation sequences — pushes with heavy
timestamp ties, far-future outliers that land thousands of bucket widths
ahead, interleaved pops, and lazy cancellations — through a
:class:`CalendarQueue` and the reference :class:`HeapQueue` in lockstep,
asserting identical pop streams, sizes and frontiers at every step.

Sequences respect the engine's contract: a push never predates the last
pop (the simulator cannot schedule into the consumed past), but pushes
*below the current frontier* are legal and exercised — deferred wakeups
and message deliveries land there routinely.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi.eventq import CalendarQueue, HeapQueue

#: Operation script: each element either pushes (time-delta from the
#: last pop, rank) or pops/cancels.  Deltas mix sub-width ties, in-bucket
#: offsets and far-future outliers so bucket boundaries get hammered.
_DELTAS = st.sampled_from(
    [0.0, 1e-12, 3e-9, 1e-7, 5e-7, 1e-6, 2.5e-6, 1e-4, 0.5, 7200.0]
)
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), _DELTAS, st.integers(0, 7)),
        st.tuples(st.just("pop"), st.just(0.0), st.just(0)),
        st.tuples(st.just("cancel"), st.just(0.0), st.just(0)),
    ),
    min_size=1,
    max_size=120,
)


def _run_script(ops, width):
    """Drive both kernels through ``ops``; return their pop streams."""
    cal = CalendarQueue(width=width)
    heap = HeapQueue()
    seq = 0
    floor = 0.0  # time of the last pop: pushes never go below it
    live = []  # seqs not yet popped or cancelled
    pops_cal = []
    pops_heap = []
    for op, delta, rank in ops:
        if op == "push":
            t = floor + delta
            cal.push(t, seq, rank)
            heap.push(t, seq, rank)
            live.append(seq)
            seq += 1
        elif op == "pop" and live:
            a = cal.pop()
            b = heap.pop()
            pops_cal.append(a)
            pops_heap.append(b)
            live.remove(a[1])
            floor = a[0]
        elif op == "cancel" and live:
            # Deterministically pick a live victim mid-queue.
            victim = live[len(live) // 2]
            cal.cancel(victim)
            heap.cancel(victim)
            live.remove(victim)
        assert cal.size == heap.size == len(live)
    # Drain whatever survived.
    while heap.size:
        pops_cal.append(cal.pop())
        pops_heap.append(heap.pop())
    return pops_cal, pops_heap


class TestKernelsAgree:
    @given(ops=_OPS, width=st.sampled_from([1e-9, 1e-7, 1e-6, 1e-3, 1.0]))
    @settings(max_examples=120)
    def test_pop_streams_identical(self, ops, width):
        pops_cal, pops_heap = _run_script(ops, width)
        assert pops_cal == pops_heap

    @given(ops=_OPS)
    @settings(max_examples=60)
    def test_pop_stream_is_time_seq_sorted(self, ops):
        pops_cal, _ = _run_script(ops, 1e-6)
        keys = [(t, s) for t, s, _ in pops_cal]
        assert keys == sorted(keys)

    @given(
        n=st.integers(2, 40),
        width=st.sampled_from([1e-9, 1e-6, 1.0]),
    )
    @settings(max_examples=60)
    def test_all_ties_pop_in_seq_order(self, n, width):
        cal = CalendarQueue(width=width)
        for s in range(n):
            cal.push(4.2e-6, s, s)
        assert [item[1] for item in _drain(cal)] == list(range(n))


def _drain(queue):
    out = []
    while queue.size:
        out.append(queue.pop())
    return out
