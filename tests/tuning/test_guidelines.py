"""Tests for the performance-guideline checker."""

import pytest

from repro.cluster.machines import JUPITER
from repro.errors import ConfigurationError
from repro.simtime.sources import CLOCK_GETTIME
from repro.tuning.guidelines import (
    STANDARD_GUIDELINES,
    GuidelineReport,
    check_guidelines,
)

QUIET = CLOCK_GETTIME.with_(skew_walk_sigma=1e-9)


class TestGuidelines:
    def test_standard_set_names(self):
        names = [g.name for g in STANDARD_GUIDELINES]
        assert "Allreduce <= Reduce + Bcast" in names
        assert "Bcast <= Scatter + Allgather" in names

    def test_report_covers_all_cells(self):
        report = check_guidelines(
            machine=JUPITER.machine(4, 2),
            network=JUPITER.network(),
            msizes=(8,),
            nreps=10,
            time_source=QUIET,
        )
        assert len(report.measured) == len(STANDARD_GUIDELINES)
        for spec, mock in report.measured.values():
            assert spec > 0 and mock > 0

    def test_well_tuned_library_has_few_violations(self):
        """Our substrate's specialized collectives should mostly hold the
        guidelines (the defaults are the sensible algorithms)."""
        report = check_guidelines(
            machine=JUPITER.machine(4, 2),
            network=JUPITER.network(),
            msizes=(8,),
            nreps=15,
            time_source=QUIET,
            seed=4,
        )
        assert len(report.violations(tolerance=0.25)) == 0

    def test_violation_detection_logic(self):
        report = GuidelineReport(scheme="round_time", msizes=(8,))
        report.measured[("fast is fine", 8)] = (1.0e-6, 2.0e-6)
        report.measured[("slow violates", 8)] = (3.0e-6, 2.0e-6)
        assert report.violations() == [("slow violates", 8)]

    def test_tolerance_applies(self):
        report = GuidelineReport(scheme="round_time", msizes=(8,))
        report.measured[("borderline", 8)] = (2.08e-6, 2.0e-6)
        assert report.violations(tolerance=0.05) == []
        assert report.violations(tolerance=0.01) == [("borderline", 8)]

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            check_guidelines(
                machine=JUPITER.machine(2, 1),
                network=JUPITER.network(),
                scheme="psychic",
            )
