"""Tests for the collective tuner."""

import pytest

from repro.cluster.machines import JUPITER
from repro.errors import ConfigurationError
from repro.simtime.sources import CLOCK_GETTIME
from repro.tuning.tuner import (
    collective_operation,
    tune_collective,
)

QUIET = CLOCK_GETTIME.with_(skew_walk_sigma=1e-9)


def small_tune(**kw):
    kw.setdefault("collective", "allreduce")
    kw.setdefault("machine", JUPITER.machine(4, 2))
    kw.setdefault("network", JUPITER.network())
    kw.setdefault("msizes", (8, 1 << 20))
    kw.setdefault("nreps", 10)
    kw.setdefault("time_source", QUIET)
    return tune_collective(**kw)


class TestTuner:
    def test_all_cells_measured(self):
        result = small_tune(
            algorithms=("recursive_doubling", "rabenseifner")
        )
        assert set(result.latency) == {
            (m, a)
            for m in (8, 1 << 20)
            for a in ("recursive_doubling", "rabenseifner")
        }
        assert all(v > 0 for v in result.latency.values())

    def test_selection_table_crossover(self):
        result = small_tune(
            algorithms=("recursive_doubling", "rabenseifner"),
            seed=2,
        )
        table = result.selection_table()
        assert table[8] == "recursive_doubling"
        assert table[1 << 20] == "rabenseifner"

    def test_barrier_scheme_also_works(self):
        result = small_tune(
            algorithms=("recursive_doubling",),
            scheme="barrier",
            msizes=(8,),
        )
        assert result.scheme == "barrier"
        assert result.winner(8) == "recursive_doubling"

    def test_defaults_to_all_variants(self):
        result = small_tune(msizes=(8,), nreps=5)
        from repro.simmpi.collectives import ALLREDUCE_ALGORITHMS

        assert set(result.algorithms) == set(ALLREDUCE_ALGORITHMS)

    def test_barrier_collective_tunable(self):
        result = small_tune(
            collective="barrier",
            algorithms=("tree", "double_ring"),
            msizes=(8,),
            nreps=5,
        )
        assert result.winner(8) == "tree"

    def test_unknown_collective(self):
        with pytest.raises(ConfigurationError):
            small_tune(collective="scan")

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            small_tune(scheme="vibes")

    def test_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            collective_operation("allreduce", "warp", 8)
