"""Fuzzer loop: archive format, replay determinism, CLI exit codes."""

from __future__ import annotations

import json

import pytest

from repro.errors import InvariantViolation
from repro.scenarios import fuzz as fuzz_mod
from repro.scenarios.fuzz import (
    REPRO_VERSION,
    archive,
    archive_path,
    fuzz,
    main,
    replay,
    run_cell,
)
from repro.scenarios.scenario import make_preset


def preset_cell(name="delay_attack", **overrides):
    return {
        "scenario": make_preset(name, **overrides).to_dict(),
        "label": "hca/4/skampi_offset/4",
        "num_nodes": 4,
        "ranks_per_node": 1,
        "rounds": 1,
        "seed": 0,
    }


class TestRunCell:
    def test_runs_a_preset_cell(self):
        result = run_cell(preset_cell())
        assert result.scenario == "delay_attack"
        assert result.violations == []
        assert result.degradation > 1.0

    def test_invariant_violation_folds_into_result(self, monkeypatch):
        def boom(*args, **kwargs):
            raise InvariantViolation("clock ran backwards")

        monkeypatch.setattr(fuzz_mod, "run_scenario_cell", boom)
        result = run_cell(preset_cell())
        assert result.violations == ["invariant:clock ran backwards"]
        assert result.scenario == "delay_attack"


class TestArchive:
    def test_content_addressed_and_stable(self, tmp_path):
        cell = preset_cell()
        path_a = archive_path(str(tmp_path), cell)
        path_b = archive_path(str(tmp_path), dict(cell))
        assert path_a == path_b
        assert path_a != archive_path(
            str(tmp_path), preset_cell(extra_delay=1.0)
        )

    def test_written_file_is_replay_ready(self, tmp_path):
        cell = preset_cell()
        path = archive(str(tmp_path), cell, ["error_budget:x"])
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
        assert data["repro_version"] == REPRO_VERSION
        assert data["cell"] == cell
        assert data["violations"] == ["error_budget:x"]


class TestReplay:
    def test_version_mismatch_refused(self, tmp_path, capsys):
        path = tmp_path / "repro_old.json"
        path.write_text(json.dumps({"repro_version": 0, "cell": {}}))
        assert replay(str(path)) == 2
        assert "unsupported repro_version" in capsys.readouterr().err

    def test_clean_cell_does_not_reproduce(self, tmp_path, capsys):
        # Archive a violation the cell never actually produces.
        path = archive(str(tmp_path), preset_cell(), ["error_budget:fake"])
        assert replay(path) == 0
        assert "did NOT reproduce" in capsys.readouterr().out


class TestFuzzEndToEnd:
    def test_hostile_fuzz_archives_and_replays(self, tmp_path, capsys):
        """The full loop: hostile mode finds a violation within a tiny
        budget, shrinks it, archives a repro file, and replaying that
        file reproduces the identical violations deterministically."""
        out = tmp_path / "repros"
        assert fuzz(budget=8, seed=0, out_dir=str(out), hostile=True) == 1
        stdout = capsys.readouterr().out
        assert "shrunk repro archived" in stdout
        repros = sorted(out.glob("repro_*.json"))
        assert len(repros) == 1
        data = json.loads(repros[0].read_text())
        assert data["violations"]
        assert replay(str(repros[0])) == 1
        assert "violation reproduced" in capsys.readouterr().out

    def test_friendly_fuzz_passes(self, tmp_path, capsys):
        out = tmp_path / "repros"
        assert fuzz(budget=6, seed=3, out_dir=str(out), hostile=False) == 0
        assert "no violations" in capsys.readouterr().out
        assert not out.exists()

    def test_cli_replay_round_trip(self, tmp_path):
        out = tmp_path / "repros"
        assert main([
            "--budget", "8", "--seed", "0", "--hostile",
            "--out", str(out),
        ]) == 1
        repro = sorted(out.glob("repro_*.json"))[0]
        assert main(["--replay", str(repro)]) == 1


@pytest.mark.parametrize("flag", ["--budget", "--seed", "--out",
                                  "--hostile", "--no-check", "--replay"])
def test_parser_knows_flag(flag):
    from repro.scenarios.fuzz import build_parser

    text = build_parser().format_help()
    assert flag in text
