"""Adversary registry: construction validation, windows, round-trips."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.scenarios.adversaries import (
    ADVERSARY_TYPES,
    ByzantineClockAdversary,
    ChurnAdversary,
    CongestionAdversary,
    DelayAttackAdversary,
    RegionTopologyAdversary,
    adversary_from_dict,
)
from repro.scenarios.scenario import (
    DEFAULT_ERROR_BUDGET,
    PRESETS,
    Scenario,
    make_preset,
)


class TestConstructionValidation:
    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError, match="start must be >= 0"):
            ByzantineClockAdversary(start=-1.0, bias=1e-3)

    def test_zero_length_rejected(self):
        with pytest.raises(ConfigurationError, match="length must be > 0"):
            ByzantineClockAdversary(length=0.0, bias=1e-3)

    def test_byzantine_must_lie(self):
        with pytest.raises(ConfigurationError, match="must lie somehow"):
            ByzantineClockAdversary(bias=0.0, noise=0.0)

    def test_byzantine_needs_ranks(self):
        with pytest.raises(ConfigurationError, match="needs ranks"):
            ByzantineClockAdversary(ranks=(), bias=1e-3)

    def test_byzantine_negative_rank_rejected(self):
        with pytest.raises(ConfigurationError, match="must be >= 0"):
            ByzantineClockAdversary(ranks=(-1,), bias=1e-3)

    def test_delay_attack_must_perturb(self):
        with pytest.raises(ConfigurationError, match="must perturb"):
            DelayAttackAdversary(extra_delay=0.0, factor=1.0, jitter=0.0)

    def test_delay_attack_needs_links(self):
        with pytest.raises(ConfigurationError, match="at least one link"):
            DelayAttackAdversary(links=(), extra_delay=1e-6)

    def test_delay_attack_self_link_rejected(self):
        with pytest.raises(ConfigurationError, match="self-link"):
            DelayAttackAdversary(links=((2, 2),), extra_delay=1e-6)

    def test_congestion_needs_target(self):
        with pytest.raises(ConfigurationError, match="level or explicit"):
            CongestionAdversary(level=None, links=())

    def test_region_must_price_something(self):
        with pytest.raises(ConfigurationError, match="must price"):
            RegionTopologyAdversary(cross_latency=0.0)

    def test_region_pair_key_must_be_sorted(self):
        with pytest.raises(ConfigurationError, match="A < B"):
            RegionTopologyAdversary(
                pair_latency=(("NA|EU", 1e-3),), cross_latency=1e-3
            )

    def test_region_pair_key_unknown_region(self):
        with pytest.raises(ConfigurationError, match="unknown regions"):
            RegionTopologyAdversary(
                regions=("EU", "NA"),
                pair_latency=(("AS|EU", 1e-3),),
                cross_latency=1e-3,
            )

    def test_churn_unknown_mode(self):
        with pytest.raises(ConfigurationError, match="unknown churn mode"):
            ChurnAdversary(mode="explode")


class TestWindows:
    def test_default_window_is_whole_run(self):
        adv = ByzantineClockAdversary(bias=1e-3)
        assert adv.active(0.0)
        assert adv.active(1e9)
        assert adv.end == float("inf")

    def test_bounded_window_half_open(self):
        adv = DelayAttackAdversary(start=1.0, length=2.0, extra_delay=1e-6)
        assert not adv.active(0.999)
        assert adv.active(1.0)
        assert adv.active(2.999)
        assert not adv.active(3.0)

    def test_start_beyond_horizon_rejected(self):
        adv = CongestionAdversary(start=10.0)
        with pytest.raises(ConfigurationError, match="would never act"):
            adv.validate(horizon=10.0)
        assert adv.validate(horizon=10.5) is adv


class TestJobShapeValidation:
    def test_byzantine_rank_out_of_range(self):
        adv = ByzantineClockAdversary(ranks=(5,), bias=1e-3)
        with pytest.raises(ConfigurationError, match="targets rank 5"):
            adv.validate(num_ranks=4)
        assert adv.validate(num_ranks=6) is adv

    def test_delay_attack_link_out_of_range(self):
        adv = DelayAttackAdversary(links=((4, 0),), extra_delay=1e-6)
        with pytest.raises(ConfigurationError, match=r"targets link \(4, 0\)"):
            adv.validate(num_ranks=4)

    def test_congestion_links_checked_only_when_keyed(self):
        by_level = CongestionAdversary(level="REMOTE")
        assert by_level.validate(num_ranks=2) is by_level
        keyed = CongestionAdversary(level=None, links=((7, 0),))
        with pytest.raises(ConfigurationError, match="targets link"):
            keyed.validate(num_ranks=4)

    def test_churn_floor_must_fit(self):
        adv = ChurnAdversary(min_nodes=4)
        with pytest.raises(ConfigurationError, match="keeps min 4 nodes"):
            adv.validate(num_nodes=2)
        assert adv.validate(num_nodes=4) is adv


class TestRegionGeometry:
    def test_blocked_assignment_contiguous(self):
        adv = RegionTopologyAdversary(
            regions=("NA", "EU"), cross_latency=1e-3
        )
        assert [adv.region_of(n, 4) for n in range(4)] == \
            ["NA", "NA", "EU", "EU"]

    def test_round_robin_assignment(self):
        adv = RegionTopologyAdversary(
            regions=("NA", "EU"), assignment="round_robin",
            cross_latency=1e-3,
        )
        assert [adv.region_of(n, 4) for n in range(4)] == \
            ["NA", "EU", "NA", "EU"]

    def test_latency_between_uses_pair_override(self):
        adv = RegionTopologyAdversary(
            regions=("NA", "EU", "AS"),
            cross_latency=5e-3,
            pair_latency=(("AS|NA", 20e-3),),
        )
        assert adv.latency_between("NA", "NA") == 0.0
        assert adv.latency_between("NA", "EU") == 5e-3
        # Order-insensitive, keyed by the sorted pair.
        assert adv.latency_between("NA", "AS") == 20e-3
        assert adv.latency_between("AS", "NA") == 20e-3


class TestChurnSchedule:
    def test_flap_alternates(self):
        adv = ChurnAdversary(mode="flap", period=1, drop=2, min_nodes=2)
        assert [adv.nodes_at(i, 4) for i in range(4)] == [4, 2, 4, 2]

    def test_flap_respects_period(self):
        adv = ChurnAdversary(mode="flap", period=2, drop=1, min_nodes=2)
        assert [adv.nodes_at(i, 4) for i in range(6)] == [4, 4, 3, 3, 4, 4]

    def test_shrink_floors_at_min_nodes(self):
        adv = ChurnAdversary(mode="shrink", period=1, drop=1, min_nodes=2)
        assert [adv.nodes_at(i, 5) for i in range(6)] == [5, 4, 3, 2, 2, 2]

    def test_grow_caps_at_base(self):
        adv = ChurnAdversary(mode="grow", period=1, drop=2, min_nodes=2)
        assert [adv.nodes_at(i, 5) for i in range(4)] == [2, 4, 5, 5]


class TestSerialization:
    EXAMPLES = [
        ByzantineClockAdversary(ranks=(1, 3), bias=2e-4, noise=1e-5),
        DelayAttackAdversary(
            links=((1, 0), (2, 0)), extra_delay=1e-4, factor=2.0,
            jitter=1e-5, start=0.5, length=3.0,
        ),
        CongestionAdversary(level=None, links=((0, 1),)),
        RegionTopologyAdversary(
            regions=("AS", "EU", "NA"),
            assignment="round_robin",
            cross_latency=5e-3,
            pair_latency=(("AS|NA", 20e-3),),
        ),
        ChurnAdversary(mode="shrink", period=2, drop=1, min_nodes=3),
    ]

    @pytest.mark.parametrize(
        "adv", EXAMPLES, ids=lambda a: a.kind
    )
    def test_round_trip(self, adv):
        data = adv.to_dict()
        assert data["kind"] == adv.kind
        assert adversary_from_dict(data) == adv

    @pytest.mark.parametrize(
        "adv", EXAMPLES, ids=lambda a: a.kind
    )
    def test_dict_is_json_primitive(self, adv):
        import json

        # to_dict must be JSON-serializable without custom encoders.
        assert adversary_from_dict(
            json.loads(json.dumps(adv.to_dict()))
        ) == adv

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown adversary"):
            adversary_from_dict({"kind": "gremlin"})

    def test_bad_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="bad fields"):
            adversary_from_dict(
                {"kind": "byzantine_clock", "bias": 1e-3, "bogus": 1}
            )

    def test_registry_covers_all_kinds(self):
        assert set(ADVERSARY_TYPES) == {
            "byzantine_clock", "delay_attack", "congestion",
            "region_topology", "churn",
        }


class TestScenario:
    def test_needs_name(self):
        with pytest.raises(ConfigurationError, match="needs a name"):
            Scenario(name="")

    def test_budget_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="budget must be > 0"):
            Scenario(name="s", error_budget=0.0)

    def test_adversaries_sorted_deterministically(self):
        late = DelayAttackAdversary(start=5.0, extra_delay=1e-6)
        early = CongestionAdversary(start=0.0)
        s = Scenario(name="s", adversaries=[late, early])
        assert s.adversaries == (early, late)
        # Construction order never matters.
        assert Scenario(name="s", adversaries=[early, late]) == s

    def test_kind_filters(self):
        s = Scenario(name="s", adversaries=[
            ByzantineClockAdversary(bias=1e-3),
            ChurnAdversary(),
        ])
        assert len(s.byzantine) == 1
        assert len(s.churn) == 1
        assert s.delay_attacks == []
        assert len(s) == 2

    def test_validate_names_first_offender(self):
        s = Scenario(name="s", adversaries=[
            ByzantineClockAdversary(ranks=(9,), bias=1e-3),
        ])
        with pytest.raises(ConfigurationError, match="targets rank 9"):
            s.validate(num_ranks=4)

    def test_json_round_trip(self):
        s = make_preset("region_tiers")
        assert Scenario.from_json(s.to_json()) == s

    def test_save_load_round_trip(self, tmp_path):
        s = make_preset("delay_attack", extra_delay=5e-4)
        path = tmp_path / "scenario.json"
        s.save(path)
        assert Scenario.load(path) == s

    def test_presets_all_valid_on_reference_shape(self):
        for name in PRESETS:
            s = make_preset(name)
            assert s.name == name
            assert s.error_budget == DEFAULT_ERROR_BUDGET
            s.validate(num_ranks=8, num_nodes=4, horizon=100.0)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            make_preset("nope")
