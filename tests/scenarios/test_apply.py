"""AdversaryInjector: mutant-style tests for every engine hook.

Each enabled hook must measurably perturb a pinned run, and a disabled
hook (empty scenario, inactive window, non-matching key) must leave the
run byte-identical to the unadversarial one — that identity is what
keeps the fig3/fig4 goldens stable while the scenario layer exists.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.netmodels import ideal_network
from repro.cluster.topology import Machine
from repro.scenarios.adversaries import (
    ByzantineClockAdversary,
    CongestionAdversary,
    DelayAttackAdversary,
    RegionTopologyAdversary,
)
from repro.scenarios.apply import AdversaryInjector, RegionFabric
from repro.scenarios.scenario import Scenario
from repro.simmpi.network import Level
from repro.simmpi.simulation import Simulation
from repro.sync.offset import PINGPONG_TAG
from tests.conftest import PERFECT_TIME


def injector(*adversaries, **kwargs):
    return AdversaryInjector(
        Scenario(name="t", adversaries=list(adversaries)), **kwargs
    )


class TestPayloadHook:
    def test_byzantine_shifts_pingpong_floats(self):
        inj = injector(ByzantineClockAdversary(ranks=(1,), bias=1e-3))
        rng = np.random.default_rng(0)
        out = inj.perturb_payload(0.5, 1, 0, PINGPONG_TAG, 2.0, rng)
        assert out == pytest.approx(2.0 + 1e-3)
        assert inj.payloads_perturbed == 1

    def test_applies_on_either_endpoint(self):
        """Outbound lies (as reference) and inbound mis-recording (as
        client) both go through the same wire point."""
        inj = injector(ByzantineClockAdversary(ranks=(1,), bias=1e-3))
        rng = np.random.default_rng(0)
        as_src = inj.perturb_payload(0.5, 1, 0, PINGPONG_TAG, 2.0, rng)
        as_dst = inj.perturb_payload(0.5, 0, 1, PINGPONG_TAG, 2.0, rng)
        assert as_src == pytest.approx(2.0 + 1e-3)
        assert as_dst == pytest.approx(2.0 + 1e-3)

    def test_numpy_float64_payloads_are_floats(self):
        """Clock reads cross the wire as np.float64 — a float subclass
        that an exact type check would wrongly skip."""
        inj = injector(ByzantineClockAdversary(ranks=(1,), bias=1e-3))
        rng = np.random.default_rng(0)
        out = inj.perturb_payload(
            0.5, 1, 0, PINGPONG_TAG, np.float64(2.0), rng
        )
        assert out == pytest.approx(2.0 + 1e-3)

    def test_honest_pairs_and_other_tags_pass_through(self):
        inj = injector(ByzantineClockAdversary(ranks=(1,), bias=1e-3))
        rng = np.random.default_rng(0)
        # Honest pair: identical object back, no RNG drawn, no count.
        assert inj.perturb_payload(0.5, 2, 3, PINGPONG_TAG, 2.0, rng) == 2.0
        # Wrong tag and non-float payloads pass through untouched.
        assert inj.perturb_payload(0.5, 1, 0, 99, 2.0, rng) == 2.0
        payload = {"not": "a timestamp"}
        assert inj.perturb_payload(
            0.5, 1, 0, PINGPONG_TAG, payload, rng
        ) is payload
        assert inj.payloads_perturbed == 0

    def test_window_gates_the_lie(self):
        inj = injector(
            ByzantineClockAdversary(
                ranks=(1,), bias=1e-3, start=1.0, length=1.0
            )
        )
        rng = np.random.default_rng(0)
        assert inj.perturb_payload(0.5, 1, 0, PINGPONG_TAG, 2.0, rng) == 2.0
        assert inj.perturb_payload(
            1.5, 1, 0, PINGPONG_TAG, 2.0, rng
        ) == pytest.approx(2.0 + 1e-3)

    def test_perturbs_payloads_flag(self):
        """The engine only routes payloads through injectors that ask."""
        assert injector(
            ByzantineClockAdversary(ranks=(1,), bias=1e-3)
        ).perturbs_payloads
        assert not injector(
            DelayAttackAdversary(extra_delay=1e-6)
        ).perturbs_payloads
        assert not injector().perturbs_payloads


class TestDelayAttackHook:
    def test_matching_direction_only(self):
        inj = injector(
            DelayAttackAdversary(links=((1, 0),), extra_delay=1e-4)
        )
        rng = np.random.default_rng(0)
        hit = inj.perturb_delay(
            0.5, Level.REMOTE, 2e-6, rng, src=1, dst=0
        )
        assert hit == pytest.approx(2e-6 + 1e-4)
        # Reverse direction and unkeyed calls untouched.
        assert inj.perturb_delay(
            0.5, Level.REMOTE, 2e-6, rng, src=0, dst=1
        ) == 2e-6
        assert inj.perturb_delay(0.5, Level.REMOTE, 2e-6, rng) == 2e-6
        assert inj.attack_delays_applied == 1

    def test_factor_and_jitter(self):
        inj = injector(
            DelayAttackAdversary(
                links=((1, 0),), extra_delay=1e-4, factor=3.0, jitter=1e-5
            )
        )
        rng = np.random.default_rng(0)
        draws = [
            inj.perturb_delay(0.5, Level.REMOTE, 2e-6, rng, src=1, dst=0)
            for _ in range(200)
        ]
        # Deterministic floor: delay*factor + extra; jitter only adds.
        assert min(draws) >= 3 * 2e-6 + 1e-4
        assert np.mean(draws) == pytest.approx(
            3 * 2e-6 + 1e-4 + 1e-5, rel=0.25
        )


class TestCongestionHook:
    def test_queue_builds_sojourn_under_sustained_traffic(self):
        adv = CongestionAdversary(
            service_time=10e-6, codel_target=1.0, codel_interval=10.0
        )
        inj = injector(adv)
        rng = np.random.default_rng(0)
        # Messages arriving faster than the service rate queue up.
        delays = [
            inj.perturb_delay(i * 1e-6, Level.REMOTE, 2e-6, rng,
                              src=0, dst=2)
            for i in range(5)
        ]
        assert delays[0] == 2e-6  # empty queue: no sojourn
        sojourns = [d - 2e-6 for d in delays]
        assert sojourns == pytest.approx(
            [0.0, 9e-6, 18e-6, 27e-6, 36e-6]
        )
        assert inj.queue_delays_applied == 4

    def test_codel_drains_standing_backlog(self):
        adv = CongestionAdversary(
            service_time=10e-6, codel_target=5e-6, codel_interval=30e-6
        )
        inj = injector(adv)
        rng = np.random.default_rng(0)
        sojourns = [
            inj.perturb_delay(i * 1e-6, Level.REMOTE, 2e-6, rng,
                              src=0, dst=2) - 2e-6
            for i in range(40)
        ]
        assert inj.codel_drains >= 1
        # After a drain the message sails through, then builds again.
        peak = max(sojourns)
        drain_idx = next(
            i for i in range(1, len(sojourns)) if sojourns[i] == 0.0
        )
        assert sojourns[drain_idx - 1] > adv.codel_target
        assert peak > sojourns[drain_idx]

    def test_level_and_link_keying(self):
        by_level = injector(CongestionAdversary(level="REMOTE"))
        rng = np.random.default_rng(0)
        assert by_level.perturb_delay(
            0.0, Level.NODE, 2e-6, rng, src=0, dst=1
        ) == 2e-6
        keyed = injector(
            CongestionAdversary(level=None, links=((0, 2),),
                                service_time=10e-6)
        )
        # Only the keyed link shares the bottleneck queue.
        keyed.perturb_delay(0.0, Level.REMOTE, 2e-6, rng, src=0, dst=2)
        assert keyed.perturb_delay(
            1e-6, Level.REMOTE, 2e-6, rng, src=2, dst=0
        ) == 2e-6
        assert keyed.perturb_delay(
            1e-6, Level.REMOTE, 2e-6, rng, src=0, dst=2
        ) > 2e-6


class TestRegionHook:
    def _injector(self):
        adv = RegionTopologyAdversary(
            regions=("NA", "EU"), cross_latency=5e-3
        )
        return injector(adv, node_of=lambda r: r // 2, num_nodes=4)

    def test_cross_region_remote_traffic_priced(self):
        inj = self._injector()
        rng = np.random.default_rng(0)
        # Rank 0 (node 0, NA) -> rank 7 (node 3, EU): priced.
        assert inj.perturb_delay(
            0.0, Level.REMOTE, 2e-6, rng, src=0, dst=7
        ) == pytest.approx(2e-6 + 5e-3)
        assert inj.region_delays_applied == 1

    def test_same_region_and_lower_levels_free(self):
        inj = self._injector()
        rng = np.random.default_rng(0)
        # Rank 0 (node 0) -> rank 3 (node 1): both NA.
        assert inj.perturb_delay(
            0.0, Level.REMOTE, 2e-6, rng, src=0, dst=3
        ) == 2e-6
        # Cross-region pair, but intra-node level: fabric-only pricing.
        assert inj.perturb_delay(
            0.0, Level.NODE, 2e-6, rng, src=0, dst=7
        ) == 2e-6
        assert inj.region_delays_applied == 0

    def test_region_fabric_adapter(self):
        adv = RegionTopologyAdversary(
            regions=("NA", "EU"), cross_latency=5e-3
        )
        fabric = RegionFabric(adv, num_nodes=4)
        assert fabric.extra_latency(0, 3) == pytest.approx(5e-3)
        assert fabric.extra_latency(0, 1) == 0.0


class TestEngineIdentity:
    """An inert injector leaves runs byte-identical to no injector."""

    def _sim(self, inj=None, seed=0):
        machine = Machine(
            num_nodes=2, sockets_per_node=1, cores_per_socket=2,
            ranks_per_node=2, name="advbox",
        )
        return Simulation(
            machine=machine, network=ideal_network(),
            time_source=PERFECT_TIME, seed=seed, injector=inj,
        )

    @staticmethod
    def _body(ctx, comm):
        for _ in range(8):
            yield from comm.bcast(
                ctx.rank if comm.rank == 0 else None, root=0
            )
        return ctx.now

    def test_empty_scenario_is_byte_identical(self):
        plain = self._sim().run(self._body)
        empty = self._sim(injector()).run(self._body)
        assert empty.values == plain.values

    def test_nonmatching_adversary_is_byte_identical(self):
        """A delay attack on a link the traffic never uses draws no RNG
        and must not shift anything."""
        plain = self._sim().run(self._body)
        # Bcast from rank 0 never sends 3 -> 1 (only 0->r and acks r->0).
        cold = injector(
            DelayAttackAdversary(links=((3, 1),), extra_delay=1e-3)
        )
        inert = self._sim(cold).run(self._body)
        assert inert.values == plain.values

    def test_matching_adversary_perturbs(self):
        plain = self._sim().run(self._body)
        hot = injector(
            DelayAttackAdversary(links=((0, 2),), extra_delay=1e-3)
        )
        sim = self._sim(hot)
        degraded = sim.run(self._body)
        assert max(degraded.values) > max(plain.values)
        assert sim.engine.injector.attack_delays_applied > 0
