"""Degradation harness: cell structure, twin identity, preset teeth."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.scenarios.runner import CellResult, RoundResult, run_scenario_cell
from repro.scenarios.scenario import Scenario, make_preset

QUICK = dict(num_nodes=4, ranks_per_node=1, nexchanges=4, rounds=1)
LABEL = "hca/4/skampi_offset/4"


def run_cell(scenario, label=LABEL, **overrides):
    kwargs = {**QUICK, **overrides}
    return run_scenario_cell(scenario, label, seed=0, **kwargs)


class TestCellStructure:
    def test_round_and_cell_shapes(self):
        cell = run_cell(make_preset("delay_attack"))
        assert cell.scenario == "delay_attack"
        assert cell.label == LABEL
        assert len(cell.baseline) == 1
        assert len(cell.adversarial) == 1
        for r in cell.baseline + cell.adversarial:
            assert r.num_nodes == 4
            assert r.num_ranks == 4
            assert r.duration > 0.0
            assert math.isfinite(r.worst_offset())
        d = cell.to_dict()
        assert d["degradation"] == cell.degradation
        assert d["violations"] == []

    def test_accepts_scenario_dict(self):
        """Repro files feed plain dicts straight into the runner."""
        cell = run_cell(make_preset("delay_attack").to_dict())
        assert cell.scenario == "delay_attack"

    def test_invalid_shape_rejected_before_running(self):
        bad = make_preset("byzantine_rank", ranks=(9,))
        with pytest.raises(ConfigurationError, match="targets rank 9"):
            run_cell(bad)


class TestTwinIdentity:
    def test_noop_scenario_matches_baseline_byte_for_byte(self):
        """With no adversaries the injector-bearing adversarial run must
        reproduce the baseline exactly — the identity every degradation
        number is measured against."""
        cell = run_cell(Scenario(name="noop"), rounds=2)
        assert [r.to_dict() for r in cell.adversarial] == \
            [r.to_dict() for r in cell.baseline]
        assert cell.degradation == pytest.approx(1.0)

    def test_same_seed_reproduces_cell(self):
        a = run_cell(make_preset("delay_attack"))
        b = run_cell(make_preset("delay_attack"))
        assert a.to_dict() == b.to_dict()

    def test_different_seed_differs(self):
        a = run_scenario_cell(
            make_preset("delay_attack"), LABEL, seed=0, **QUICK
        )
        b = run_scenario_cell(
            make_preset("delay_attack"), LABEL, seed=1, **QUICK
        )
        assert a.to_dict() != b.to_dict()


class TestPresetTeeth:
    """Each preset must measurably damage (or reshape) the run."""

    @pytest.mark.parametrize(
        "name", ["delay_attack", "byzantine_rank", "congested_fabric",
                 "region_tiers"],
    )
    def test_in_run_presets_degrade_accuracy(self, name):
        cell = run_cell(make_preset(name))
        assert cell.adversarial_max_offset > cell.baseline_max_offset
        assert cell.degradation > 1.0

    def test_byzantine_poisons_ground_truth_by_about_bias(self):
        """A pure-bias lie is self-consistent — it poisons the sync fit
        and the accuracy check's ping-pongs identically, so it cancels
        out of the *measured* offset and only the oracle sees the
        damage.  This is why cells are scored on both axes."""
        cell = run_cell(make_preset("byzantine_rank", bias=2e-4, noise=0.0))
        truth = cell.ground_truth_error
        base_truth = max(r.ground_truth_error for r in cell.baseline)
        assert truth == pytest.approx(2e-4, rel=0.5)
        assert truth > 10 * base_truth
        assert cell.adversarial_max_offset == pytest.approx(
            cell.baseline_max_offset, rel=0.5
        )

    def test_churn_reshapes_rounds(self):
        cell = run_cell(make_preset("rank_churn"), rounds=2)
        assert [r.num_nodes for r in cell.baseline] == [4, 4]
        assert [r.num_nodes for r in cell.adversarial] == [4, 2]
        # Round 0 is unreshaped and carries no in-run adversary, so it
        # is byte-identical to its baseline twin.
        assert cell.adversarial[0].to_dict() == cell.baseline[0].to_dict()


class TestScoring:
    def test_blown_budget_recorded(self):
        # Noise keeps the lie inconsistent between the sync fit and the
        # accuracy check, so the measured axis blows its budget too.
        hot = make_preset("byzantine_rank", bias=5e-3, noise=5e-4)
        tight = Scenario(
            name="tight", adversaries=hot.adversaries, error_budget=1e-6
        )
        cell = run_cell(tight)
        assert any(
            v.startswith("error_budget:measured=") for v in cell.violations
        )
        assert any(
            v.startswith("error_budget:ground_truth=")
            for v in cell.violations
        )

    def test_within_budget_is_clean(self):
        cell = run_cell(make_preset("delay_attack"))
        assert cell.violations == []

    def test_nonfinite_rounds_flagged(self):
        cell = CellResult(
            scenario="s", label=LABEL, seed=0, error_budget=1.0
        )
        cell.adversarial.append(RoundResult(
            num_nodes=2, num_ranks=2, duration=float("nan"),
        ))
        from repro.scenarios.runner import _score

        _score(cell)
        assert cell.violations == ["nonfinite:adversarial"]
