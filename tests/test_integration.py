"""End-to-end integration tests: the paper's full story in one run.

These tests chain the layers the way a real benchmarking campaign does:
build a machine → synchronize clocks hierarchically → measure collectives
with several schemes → trace an application — all inside one simulated
job, asserting cross-layer consistency.
"""

import numpy as np
import pytest

from repro.analysis.accuracy import check_clock_accuracy, max_abs_offset
from repro.analysis.imbalance import measure_barrier_imbalance
from repro.bench.schemes import BarrierScheme, RoundTimeScheme
from repro.cluster.machines import JUPITER
from repro.experiments.common import MACHINE_TIME_SOURCES
from repro.simmpi.simulation import Simulation
from repro.sync.hierarchical import h2hca
from repro.sync.offset import SKaMPIOffset
from repro.trace.amg import AMGConfig, amg_iteration_loop
from repro.trace.gantt import gantt_bars, visibility_ratio
from repro.trace.tracer import Tracer


@pytest.fixture(scope="module")
def full_campaign():
    """One simulated job running the whole pipeline; shared by the tests."""
    machine = JUPITER.machine(4, 4)

    def main(ctx, comm):
        out = {}
        sync = h2hca(nfitpoints=15, fitpoint_spacing=1e-3)
        t0 = ctx.now
        g_clk = yield from sync.sync_clocks(comm, ctx.hardware_clock)
        out["sync_duration"] = ctx.now - t0

        out["accuracy"] = yield from check_clock_accuracy(
            comm, g_clk, SKaMPIOffset(10), wait_times=(0.0, 5.0)
        )

        def op(c):
            yield from c.allreduce(1.0, size=8)

        barrier = BarrierScheme(barrier_algorithm="linear", nreps=30)
        out["barrier_result"] = yield from barrier.run(comm, op)
        rt = RoundTimeScheme(lambda c: g_clk, max_time_slice=1.0,
                             max_nrep=30)
        out["rt_result"] = yield from rt.run(comm, op)

        out["imbalance"] = yield from measure_barrier_imbalance(
            comm, g_clk, "double_ring", nreps=20
        )

        tracer = Tracer(g_clk, comm.rank)
        yield from amg_iteration_loop(
            comm, tracer, AMGConfig(niterations=5)
        )
        out["events"] = yield from tracer.gather_events(comm)
        return out

    sim = Simulation(
        machine=machine,
        network=JUPITER.network(),
        time_source=MACHINE_TIME_SOURCES["jupiter"],
        seed=42,
    )
    return sim, sim.run(main)


class TestFullCampaign:
    def test_clock_accurate_after_sync(self, full_campaign):
        _, result = full_campaign
        accuracy = result.values[0]["accuracy"]
        assert max_abs_offset(accuracy[0.0]) < 2e-6

    def test_roundtime_collects_everywhere(self, full_campaign):
        _, result = full_campaign
        counts = {v["rt_result"].nvalid for v in result.values}
        assert counts == {30}

    def test_barrier_scheme_positive_durations(self, full_campaign):
        _, result = full_campaign
        for v in result.values:
            assert all(d > 0 for d in v["barrier_result"].durations)

    def test_imbalance_measured_at_root(self, full_campaign):
        _, result = full_campaign
        samples = result.values[0]["imbalance"]
        finite = [s for s in samples if np.isfinite(s)]
        assert len(finite) >= 15
        # Double ring at 16 ranks: a full two-lap token circulation.
        assert np.mean(finite) > 5e-6

    def test_trace_visible_under_global_clock(self, full_campaign):
        _, result = full_campaign
        events = result.values[0]["events"]
        bars = gantt_bars(events, "MPI_Allreduce", 3)
        assert visibility_ratio(bars) > 0.05

    def test_everything_happened_in_order(self, full_campaign):
        _, result = full_campaign
        # Trace events (global-clock readings) postdate the sync by
        # construction: their start readings exceed the sync duration.
        v = result.values[0]
        first_event = min(e.start for e in v["events"])
        assert first_event > 0

    def test_job_is_reproducible(self, full_campaign):
        sim, result = full_campaign
        machine = JUPITER.machine(4, 4)

        def probe(ctx, comm):
            sync = h2hca(nfitpoints=15, fitpoint_spacing=1e-3)
            yield from sync.sync_clocks(comm, ctx.hardware_clock)
            return ctx.now

        sim_a = Simulation(machine=machine, network=JUPITER.network(),
                           time_source=MACHINE_TIME_SOURCES["jupiter"],
                           seed=7)
        sim_b = Simulation(machine=machine, network=JUPITER.network(),
                           time_source=MACHINE_TIME_SOURCES["jupiter"],
                           seed=7)
        assert sim_a.run(probe).values == sim_b.run(probe).values
