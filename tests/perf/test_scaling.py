"""Scaling probe: sweep structure, determinism, trajectory round-trip."""

from __future__ import annotations

import json

import pytest

from repro.perf.harness import load_bench
from repro.perf.regress import DEFAULT_TOLERANCE, check_bench
from repro.perf.scaling import (
    compare_to_trajectory,
    depth_probe,
    main,
    probe_point,
    scaling_probe,
)

# Tiny sweep: keeps the whole module in CI-smoke territory.
TINY_P = (8, 16)
TINY_BUDGET = 512


class TestProbePoint:
    @pytest.fixture(scope="class")
    def point(self) -> dict:
        return probe_point(8, budget=TINY_BUDGET, seed=0, zones=True)

    def test_throughput_fields(self, point):
        assert point["p"] == 8
        assert point["workload"] == "ring"
        assert point["messages"] > 0
        assert point["msgs_per_sec"] > 0
        assert point["events_processed"] >= point["messages"]
        assert point["max_queue_depth"] >= 1

    def test_zone_breakdown_attached(self, point):
        zones = point["zones"]
        assert zones["total_ns"] > 0
        assert any(
            path.endswith("engine.run") for path in zones["zones"]
        )

    def test_rank_count_must_fit_nodes(self):
        with pytest.raises(ValueError):
            probe_point(6, budget=TINY_BUDGET)

    def test_fig3_workload_runs(self):
        point = probe_point(
            8, workload="fig3", budget=TINY_BUDGET, seed=0, zones=False
        )
        assert point["workload"] == "fig3"
        assert point["label"].startswith("hca")
        assert point["messages"] > 0

    def test_profiled_run_is_bit_identical(self):
        """zones=True reruns the workload; same seed -> same counts."""
        a = probe_point(8, budget=TINY_BUDGET, seed=0, zones=False)
        b = probe_point(8, budget=TINY_BUDGET, seed=0, zones=True)
        assert a["messages"] == b["messages"]
        assert a["events_processed"] == b["events_processed"]


class TestSweep:
    def test_sweep_shape(self):
        section = scaling_probe(
            p_values=TINY_P, budget=TINY_BUDGET, zones=False
        )
        assert section["workload"] == "ring"
        assert section["budget"] == TINY_BUDGET
        assert [pt["p"] for pt in section["points"]] == list(TINY_P)

    def test_budget_splits_rounds(self):
        section = scaling_probe(
            p_values=TINY_P, budget=TINY_BUDGET, zones=False
        )
        for pt in section["points"]:
            assert pt["nrounds"] == max(4, TINY_BUDGET // pt["p"])


class TestTrajectoryRoundTrip:
    def test_record_then_regress(self, tmp_path, capsys):
        """Two recorded sweeps gate per-p through the extended regress."""
        bench = str(tmp_path / "bench.json")
        for _ in range(2):
            assert main([
                "--p", "8", "--budget", str(TINY_BUDGET), "--no-zones",
                "--record", "scaling", "--output", bench,
            ]) == 0
        capsys.readouterr()
        data = load_bench(bench)
        assert [e["label"] for e in data["entries"]] == [
            "scaling", "scaling"
        ]
        checks = check_bench(data, tolerance=DEFAULT_TOLERANCE)
        assert [c.name for c in checks] == [
            f"scaling[ring/{TINY_BUDGET},q=calendar,p=8].msgs_per_sec"
        ]

    def test_json_output(self, capsys):
        assert main([
            "--p", "8", "--budget", str(TINY_BUDGET), "--no-zones",
            "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["points"][0]["p"] == 8


class TestQueueSelection:
    def test_point_records_queue_kind(self):
        pt = probe_point(
            8, budget=TINY_BUDGET, zones=False, event_queue="heap"
        )
        assert pt["event_queue"] == "heap"
        assert pt["gate_deferrals"] >= 0

    def test_queue_kinds_bit_identical(self):
        """The queue kernel is a pure perf knob: same counts either way."""
        cal = probe_point(
            8, budget=TINY_BUDGET, zones=False, event_queue="calendar"
        )
        heap = probe_point(
            8, budget=TINY_BUDGET, zones=False, event_queue="heap"
        )
        for key in ("messages", "events_processed", "max_queue_depth",
                    "gate_deferrals"):
            assert cal[key] == heap[key]

    def test_cli_queue_flag(self, capsys):
        assert main([
            "--p", "8", "--budget", str(TINY_BUDGET), "--no-zones",
            "--queue", "heap", "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["event_queue"] == "heap"
        assert doc["points"][0]["event_queue"] == "heap"


class TestDepthProbe:
    def test_tree_vs_flat_depth_shape(self):
        """The probe separates O(log p) tree depth from Theta(p) flat."""
        hca, _ = depth_probe(16, label="hca/4/skampi_offset/2")
        jk, _ = depth_probe(16, label="jk/4/skampi_offset/2")
        assert hca["level_depth"] == 4   # ceil(log2 16)
        assert jk["level_depth"] == 15   # p - 1
        assert hca["depth_ratio"] <= 1.0
        assert jk["expected_depth"] == 15
        assert 0.0 < hca["duration_s"] < jk["duration_s"]
        assert 0.0 < hca["path_msg_fraction"] <= 1.0

    def test_sweep_attaches_sync_depth_and_analyses(self):
        analyses: list = []
        section = scaling_probe(
            p_values=(8,), workload="fig3", zones=False,
            label="hca/4/skampi_offset/2", depth=True,
            depth_analyses=analyses,
        )
        (point,) = section["points"]
        assert section["label"] == "hca/4/skampi_offset/2"
        assert point["sync_depth"]["level_depth"] == 3
        assert len(analyses) == 1
        assert analyses[0]["depth"]["level_depth"] == 3

    def test_depth_summary_is_deterministic(self):
        a, _ = depth_probe(8, label="hca/4/skampi_offset/2", seed=1)
        b, _ = depth_probe(8, label="hca/4/skampi_offset/2", seed=1)
        a.pop("wall_s"), b.pop("wall_s")
        assert a == b

    def test_cli_depth_flag_and_artifact(self, tmp_path, capsys):
        cp_dir = str(tmp_path / "cp")
        assert main([
            "--workload", "fig3", "--p", "8", "--no-zones", "--depth",
            "--label", "hca/4/skampi_offset/2",
            "--critical-path", cp_dir, "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["points"][0]["sync_depth"]["level_depth"] == 3
        artifact = json.loads(
            (tmp_path / "cp" / "critical_path.json").read_text()
        )
        assert artifact["critical_path_version"] == 1
        assert artifact["meta"]["label"] == "hca/4/skampi_offset/2"
        assert len(artifact["runs"]) == 1

    def test_cli_depth_requires_fig3(self, capsys):
        assert main(["--workload", "ring", "--p", "8", "--depth"]) == 2


class TestCompare:
    def test_compare_against_recorded_trajectory(self, tmp_path, capsys):
        bench = str(tmp_path / "bench.json")
        assert main([
            "--p", "8", "16", "--budget", str(TINY_BUDGET), "--no-zones",
            "--queue", "heap", "--record", "prior", "--output", bench,
        ]) == 0
        capsys.readouterr()
        fresh = scaling_probe(
            p_values=(8, 16), budget=TINY_BUDGET, zones=False
        )
        rows = compare_to_trajectory(fresh, bench)
        assert [r["p"] for r in rows] == [8, 16]
        for row in rows:
            # Best prior is the recorded heap sweep, any queue kind.
            assert row["prior"]["event_queue"] == "heap"
            assert row["prior"]["label"] == "prior"
            assert row["speedup"] == pytest.approx(
                row["msgs_per_sec"] / row["prior"]["msgs_per_sec"]
            )

    def test_compare_with_no_prior(self, tmp_path):
        bench = str(tmp_path / "empty.json")
        fresh = scaling_probe(
            p_values=(8,), budget=TINY_BUDGET, zones=False
        )
        (row,) = compare_to_trajectory(fresh, bench)
        assert row["prior"] is None and row["speedup"] is None

    def test_compare_cli_prints_speedup(self, tmp_path, capsys):
        bench = str(tmp_path / "bench.json")
        assert main([
            "--p", "8", "--budget", str(TINY_BUDGET), "--no-zones",
            "--record", "prior", "--output", bench,
        ]) == 0
        capsys.readouterr()
        assert main([
            "--p", "8", "--budget", str(TINY_BUDGET), "--no-zones",
            "--compare", "--output", bench,
        ]) == 0
        out = capsys.readouterr().out
        assert "compare: p=    8:" in out
        assert "x" in out.rsplit("->", 1)[-1]
