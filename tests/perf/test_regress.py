"""Perf-regression gate: exit codes and check math against bench files."""

from __future__ import annotations

import copy
import json

import pytest

from repro.perf.harness import BENCH_FILE
from repro.perf.regress import (
    DEFAULT_TOLERANCE,
    check_bench,
    main,
)


def _bench_data() -> dict:
    with open(BENCH_FILE) as fh:
        return json.load(fh)


def _write(tmp_path, data) -> str:
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(data))
    return str(path)


class TestCheckBench:
    def test_committed_baseline_passes(self):
        checks = check_bench(_bench_data(), tolerance=DEFAULT_TOLERANCE)
        assert {c.name for c in checks} == {
            "engine.msgs_per_sec", "campaign.wall_s"
        }
        assert all(c.ok for c in checks)

    def test_throughput_drop_fails(self):
        data = copy.deepcopy(_bench_data())
        eng = data["entries"]["current"]["engine"]
        eng["msgs_per_sec"] = (
            data["entries"]["baseline"]["engine"]["msgs_per_sec"] * 0.80
        )
        checks = check_bench(data, tolerance=DEFAULT_TOLERANCE)
        bad = [c for c in checks if not c.ok]
        assert [c.name for c in bad] == ["engine.msgs_per_sec"]
        assert bad[0].regression == pytest.approx(0.20)
        assert "REGRESSION" in bad[0].describe()

    def test_campaign_uses_fastest_configuration(self):
        # campaign_parallel is slower than campaign in the committed file;
        # the gate must compare the best current wall time, so slowing the
        # parallel entry alone cannot fail the check.
        data = copy.deepcopy(_bench_data())
        data["entries"]["current"]["campaign_parallel"]["wall_s"] = 99.0
        checks = {c.name: c for c in check_bench(data, DEFAULT_TOLERANCE)}
        assert checks["campaign.wall_s"].ok

    def test_missing_entries_raise(self):
        with pytest.raises(KeyError):
            check_bench({"entries": {}}, DEFAULT_TOLERANCE)


class TestCli:
    def test_committed_file_exits_zero(self, capsys):
        assert main(["--file", BENCH_FILE]) == 0
        assert "ok" in capsys.readouterr().out

    def test_doctored_drop_exits_one(self, tmp_path, capsys):
        data = copy.deepcopy(_bench_data())
        data["entries"]["current"]["engine"]["msgs_per_sec"] *= 0.5
        assert main(["--file", _write(tmp_path, data)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_soft_fail_masks_regression(self, tmp_path):
        data = copy.deepcopy(_bench_data())
        data["entries"]["current"]["engine"]["msgs_per_sec"] *= 0.5
        assert main(["--file", _write(tmp_path, data), "--soft-fail"]) == 0

    def test_missing_entries_exit_two(self, tmp_path, capsys):
        assert main(["--file", _write(tmp_path, {"entries": {}})]) == 2
        assert main(
            ["--file", _write(tmp_path, {"entries": {}}), "--soft-fail"]
        ) == 0

    def test_tighter_tolerance_flags_small_drop(self, tmp_path):
        data = copy.deepcopy(_bench_data())
        base = data["entries"]["baseline"]["engine"]["msgs_per_sec"]
        data["entries"]["current"]["engine"]["msgs_per_sec"] = base * 0.95
        path = _write(tmp_path, data)
        assert main(["--file", path]) == 0  # within default 15%
        assert main(["--file", path, "--tolerance", "0.02"]) == 1
