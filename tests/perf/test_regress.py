"""Perf-regression gate: exit codes and check math over the trajectory."""

from __future__ import annotations

import copy
import json

import pytest

from repro.perf.harness import BENCH_FILE, load_bench, upgrade_bench
from repro.perf.regress import (
    DEFAULT_TOLERANCE,
    check_bench,
    main,
)


def _bench_data() -> dict:
    with open(BENCH_FILE) as fh:
        return json.load(fh)


def _entry(label: str, **sections) -> dict:
    return {"label": label, "recorded_at": "2026-01-01T00:00:00",
            **sections}


def _write(tmp_path, data) -> str:
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(data))
    return str(path)


class TestTrajectoryFormat:
    def test_committed_file_is_format_2(self):
        data = _bench_data()
        assert data["format"] == 2
        assert isinstance(data["entries"], list)
        assert len(data["entries"]) >= 2
        for entry in data["entries"]:
            assert entry["label"]
            assert entry["recorded_at"]

    def test_v1_upgrade_orders_baseline_first(self):
        v1 = {"benchmark": "engine_perf", "entries": {
            "current": {"recorded_at": "2026-01-02T00:00:00",
                        "engine": {"msgs_per_sec": 2.0}},
            "baseline": {"recorded_at": "2026-01-01T00:00:00",
                         "engine": {"msgs_per_sec": 1.0}},
        }}
        up = upgrade_bench(v1)
        assert up["format"] == 2
        assert [e["label"] for e in up["entries"]] == [
            "baseline", "current"
        ]

    def test_v1_file_loads_and_checks(self, tmp_path):
        v1 = {"entries": {
            "baseline": {"engine": {"msgs_per_sec": 100.0}},
            "current": {"engine": {"msgs_per_sec": 99.0}},
        }}
        path = _write(tmp_path, v1)
        checks = check_bench(load_bench(path), DEFAULT_TOLERANCE)
        assert [c.name for c in checks] == ["engine.msgs_per_sec"]
        assert checks[0].ok


class TestCheckBench:
    def test_committed_trajectory_passes(self):
        checks = check_bench(_bench_data(), tolerance=DEFAULT_TOLERANCE)
        names = {c.name for c in checks}
        assert {"engine.msgs_per_sec", "campaign.wall_s"} <= names
        assert all(c.ok for c in checks)

    def test_latest_vs_best_prior(self):
        data = {"format": 2, "entries": [
            _entry("a", engine={"msgs_per_sec": 100.0}),
            _entry("b", engine={"msgs_per_sec": 120.0}),
            _entry("c", engine={"msgs_per_sec": 110.0}),
        ]}
        (check,) = check_bench(data, tolerance=0.15)
        # Gate compares against the best prior (120), not the first.
        assert check.baseline == 120.0
        assert check.current == 110.0
        assert check.ok

    def test_throughput_drop_fails(self):
        data = {"format": 2, "entries": [
            _entry("a", engine={"msgs_per_sec": 100.0}),
            _entry("b", engine={"msgs_per_sec": 80.0}),
        ]}
        (check,) = check_bench(data, tolerance=DEFAULT_TOLERANCE)
        assert not check.ok
        assert check.regression == pytest.approx(0.20)
        assert "REGRESSION" in check.describe()

    def test_campaign_uses_fastest_configuration(self):
        data = {"format": 2, "entries": [
            _entry("a", campaign={"wall_s": 1.0}),
            _entry("b", campaign={"wall_s": 99.0},
                   campaign_parallel={"wall_s": 1.05}),
        ]}
        (check,) = check_bench(data, DEFAULT_TOLERANCE)
        assert check.name == "campaign.wall_s"
        assert check.current == 1.05
        assert check.ok

    def test_tolerates_entries_missing_sections(self):
        """A 1-CPU host's entry without campaign_parallel, or a
        scaling-only entry, must not break the other checks."""
        data = {"format": 2, "entries": [
            _entry("a", engine={"msgs_per_sec": 100.0},
                   campaign={"wall_s": 1.0},
                   campaign_parallel={"wall_s": 0.5}),
            _entry("b", engine={"msgs_per_sec": 101.0},
                   campaign={"wall_s": 0.49}),
            _entry("scaling", scaling={
                "workload": "ring", "budget": 1024,
                "points": [{"p": 8, "msgs_per_sec": 50.0}],
            }),
        ]}
        checks = {c.name: c for c in check_bench(data, DEFAULT_TOLERANCE)}
        # Engine and campaign still gate (latest entry carrying each),
        # scaling has no prior point yet so no scaling check appears.
        assert set(checks) == {"engine.msgs_per_sec", "campaign.wall_s"}
        assert checks["campaign.wall_s"].baseline == 0.5
        assert checks["campaign.wall_s"].current == 0.49

    def test_scaling_points_gate_per_p(self):
        section = {"workload": "ring", "budget": 1024}
        data = {"format": 2, "entries": [
            _entry("s1", scaling={**section, "points": [
                {"p": 8, "msgs_per_sec": 100.0},
                {"p": 32, "msgs_per_sec": 60.0},
            ]}),
            _entry("s2", scaling={**section, "points": [
                {"p": 8, "msgs_per_sec": 99.0},
                {"p": 32, "msgs_per_sec": 30.0},
            ]}),
        ]}
        checks = check_bench(data, DEFAULT_TOLERANCE)
        by_name = {c.name: c for c in checks}
        # Points without an event_queue field are legacy heap sweeps.
        assert by_name["scaling[ring/1024,q=heap,p=8].msgs_per_sec"].ok
        assert not by_name["scaling[ring/1024,q=heap,p=32].msgs_per_sec"].ok

    def test_engine_gates_per_queue_kind(self):
        """Engine entries partition by kernel: a calendar entry neither
        regresses against a heap prior nor hides a heap drop."""
        data = {"format": 2, "entries": [
            _entry("a", engine={"msgs_per_sec": 100.0}),  # legacy heap
            _entry("b", engine={"msgs_per_sec": 10.0,
                                "event_queue": "calendar"}),
            _entry("c", engine={"msgs_per_sec": 12.0,
                                "event_queue": "calendar"}),
        ]}
        checks = {c.name: c for c in check_bench(data, DEFAULT_TOLERANCE)}
        # Heap has one entry -> no heap check; calendar gates c vs b.
        assert set(checks) == {"engine[q=calendar].msgs_per_sec"}
        assert checks["engine[q=calendar].msgs_per_sec"].ok

    def test_different_queue_kinds_never_compare(self):
        """A calendar-queue sweep must not gate against a heap sweep."""
        section = {"workload": "ring", "budget": 1024}
        data = {"format": 2, "entries": [
            _entry("s1", scaling={**section, "points": [
                {"p": 8, "msgs_per_sec": 100.0, "event_queue": "heap"},
            ]}),
            _entry("s2", scaling={**section, "points": [
                {"p": 8, "msgs_per_sec": 10.0, "event_queue": "calendar"},
            ]}),
        ]}
        # Different kernels -> no comparable metric at all.
        assert check_bench(data, DEFAULT_TOLERANCE) == []

    def test_mismatched_scaling_configs_never_compare(self):
        data = {"format": 2, "entries": [
            _entry("s1", scaling={"workload": "ring", "budget": 1024,
                                  "points": [{"p": 8,
                                              "msgs_per_sec": 100.0}]}),
            _entry("s2", scaling={"workload": "ring", "budget": 64,
                                  "points": [{"p": 8,
                                              "msgs_per_sec": 10.0}]}),
        ]}
        # Different budgets -> no comparable metric at all.
        assert check_bench(data, DEFAULT_TOLERANCE) == []

    def test_single_entry_raises(self):
        with pytest.raises(KeyError):
            check_bench(
                {"format": 2, "entries": [_entry("only")]},
                DEFAULT_TOLERANCE,
            )

    def test_empty_raises(self):
        with pytest.raises(KeyError):
            check_bench({"entries": {}}, DEFAULT_TOLERANCE)


class TestCli:
    def test_committed_file_exits_zero(self, capsys):
        assert main(["--file", BENCH_FILE]) == 0
        assert "ok" in capsys.readouterr().out

    def test_doctored_drop_exits_one(self, tmp_path, capsys):
        data = copy.deepcopy(upgrade_bench(_bench_data()))
        # Doctor the newest entry of the trajectory's *heap* engine
        # series — the one kind guaranteed to have a prior to gate
        # against (the committed baseline/current entries).
        for entry in data["entries"]:
            engine = entry.get("engine", {})
            if engine and engine.get("event_queue", "heap") == "heap":
                last = entry
        last["engine"]["msgs_per_sec"] *= 0.5
        data["entries"].append(data["entries"].pop(
            data["entries"].index(last)
        ))
        assert main(["--file", _write(tmp_path, data)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_soft_fail_masks_regression(self, tmp_path):
        data = {"format": 2, "entries": [
            _entry("a", engine={"msgs_per_sec": 100.0}),
            _entry("b", engine={"msgs_per_sec": 10.0}),
        ]}
        assert main(["--file", _write(tmp_path, data), "--soft-fail"]) == 0

    def test_missing_entries_exit_two(self, tmp_path):
        assert main(["--file", _write(tmp_path, {"entries": {}})]) == 2
        assert main(
            ["--file", _write(tmp_path, {"entries": {}}), "--soft-fail"]
        ) == 0

    def test_tighter_tolerance_flags_small_drop(self, tmp_path):
        data = {"format": 2, "entries": [
            _entry("a", engine={"msgs_per_sec": 100.0}),
            _entry("b", engine={"msgs_per_sec": 95.0}),
        ]}
        path = _write(tmp_path, data)
        assert main(["--file", path]) == 0  # within default 15%
        assert main(["--file", path, "--tolerance", "0.02"]) == 1
