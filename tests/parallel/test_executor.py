"""Unit tests for the parallel job executor and seed derivation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.events import CountingSink
from repro.obs.metrics import MetricsRegistry
from repro.parallel import (
    JobSpec,
    job_seeds,
    resolve_jobs,
    run_jobs,
    seed_int,
)


def _draw(seedseq: np.random.SeedSequence, n: int) -> list[float]:
    """Module-level job function: picklable, deterministic per seed."""
    rng = np.random.default_rng(seedseq)
    return rng.random(n).tolist()


def _fail() -> None:
    raise RuntimeError("worker job failed")


class TestResolveJobs:
    def test_explicit_value_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_none_and_zero_mean_all_cores(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) == resolve_jobs(None)


class TestJobSeeds:
    def test_deterministic_and_distinct(self):
        a = job_seeds(42, 8)
        b = job_seeds(42, 8)
        assert len(a) == 8
        states = {s.generate_state(2).tobytes() for s in a}
        assert len(states) == 8  # spawn children never collide
        for x, y in zip(a, b):
            assert (
                x.generate_state(2).tobytes() == y.generate_state(2).tobytes()
            )

    def test_prefix_stable_under_larger_spawns(self):
        # Growing a campaign keeps the seeds of the existing jobs.
        small = job_seeds(7, 3)
        large = job_seeds(7, 10)
        for x, y in zip(small, large):
            assert (
                x.generate_state(2).tobytes() == y.generate_state(2).tobytes()
            )

    def test_seed_int_deterministic(self):
        s = job_seeds(0, 1)[0]
        assert seed_int(s) == seed_int(job_seeds(0, 1)[0])
        # seed_int must not consume the sequence's spawn/draw state.
        assert seed_int(s) == seed_int(s)


class TestRunJobs:
    def _specs(self, n=6):
        return [
            JobSpec(fn=_draw, args=(seed, 4), label=f"job{i}")
            for i, seed in enumerate(job_seeds(0, n))
        ]

    def test_serial_matches_parallel(self):
        serial = run_jobs(self._specs(), jobs=1)
        parallel = run_jobs(self._specs(), jobs=3)
        assert serial == parallel  # bit-identical, submission order

    def test_observability_merged(self):
        sink = CountingSink()
        metrics = MetricsRegistry()
        run_jobs(self._specs(), jobs=2, sink=sink, metrics=metrics)
        assert metrics.counter("parallel.jobs.completed").value == 6
        assert metrics.gauge("parallel.workers").value == 2

    def test_serial_publishes_metrics_too(self):
        metrics = MetricsRegistry()
        run_jobs(self._specs(), jobs=1, metrics=metrics)
        assert metrics.counter("parallel.jobs.completed").value == 6
        assert metrics.gauge("parallel.workers").value == 1

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="worker job failed"):
            run_jobs([JobSpec(fn=_fail)], jobs=2)

    def test_empty_specs(self):
        assert run_jobs([], jobs=4) == []
