"""Determinism contracts of this repo's performance machinery.

Two bit-identity guarantees gate every optimization here:

* the parallel campaign executor must reproduce the serial campaign
  exactly (same seeds, same submission order, same floats), and
* the engine's chunked uniform pools must reproduce the unbatched
  (chunk=1) delay stream exactly — chunk size is a pure perf knob.

CI runs this module with ``-rs`` and fails if anything was skipped, so
the equivalence evidence cannot silently disappear.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cluster.machines import JUPITER
from repro.experiments.common import (
    QUICK,
    run_sync_accuracy_campaign,
)
from repro.obs.events import MsgDeliver, RecordingSink
from repro.simmpi.simulation import Simulation


TINY = replace(QUICK, num_nodes=4, ranks_per_node=2, nfitpoints=8,
               nexchanges=6, nmpiruns=2)

LABELS = ["hca3/recompute_intercept/8/skampi_offset/6",
          "jk/8/skampi_offset/3"]


class TestCampaignSerialParallelIdentity:
    def test_parallel_campaign_bit_identical_to_serial(self):
        serial = run_sync_accuracy_campaign(
            JUPITER, LABELS, scale=TINY, seed=3, jobs=1
        )
        parallel = run_sync_accuracy_campaign(
            JUPITER, LABELS, scale=TINY, seed=3, jobs=3
        )
        assert len(serial.runs) == len(LABELS) * TINY.nmpiruns
        assert len(serial.runs) == len(parallel.runs)
        for s, p in zip(serial.runs, parallel.runs):
            assert s.label == p.label
            assert s.duration == p.duration  # exact, not approx
            assert s.max_offsets == p.max_offsets

    def test_campaign_reproducible_across_calls(self):
        a = run_sync_accuracy_campaign(
            JUPITER, LABELS, scale=TINY, seed=5, jobs=2
        )
        b = run_sync_accuracy_campaign(
            JUPITER, LABELS, scale=TINY, seed=5, jobs=2
        )
        for x, y in zip(a.runs, b.runs):
            assert x.duration == y.duration
            assert x.max_offsets == y.max_offsets


def _ring_job(chunk: int | None):
    """Run one message-heavy job recording every delivery event."""
    sink = RecordingSink()
    machine = JUPITER.machine(4, 2)
    sim = Simulation(
        machine=machine,
        network=JUPITER.network(),
        seed=11,
        sink=sink,
        rng_pool_chunk=chunk,
    )

    def main(ctx, comm):
        n = ctx.nprocs
        for r in range(40):
            yield from comm.sendrecv(
                dest=(ctx.rank + 1) % n,
                send_tag=r,
                size=64 if r % 3 else 4096,
                source=(ctx.rank - 1) % n,
            )
        total = yield from comm.allreduce(ctx.rank)
        return total

    result = sim.run(main)
    return result, sink.of_type(MsgDeliver)


class TestRngPoolChunkInvariance:
    def test_chunked_pool_matches_unbatched_stream(self):
        # chunk=1 refills one draw at a time — the unbatched reference;
        # the default chunk batches ~1k draws per refill.  Every delivery
        # (time, latency, order) must agree exactly.
        result_ref, deliveries_ref = _ring_job(chunk=1)
        result_big, deliveries_big = _ring_job(chunk=None)
        assert result_ref.values == result_big.values
        assert len(deliveries_ref) == len(deliveries_big)
        assert deliveries_ref == deliveries_big

    def test_intermediate_chunk_sizes_agree(self):
        _, ref = _ring_job(chunk=1)
        for chunk in (7, 64):
            _, got = _ring_job(chunk=chunk)
            assert got == ref
