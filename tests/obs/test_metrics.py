"""Metrics primitives, registry aggregation, and engine integration."""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_metrics,
    format_summary,
    get_default_metrics,
)
from tests.conftest import run_spmd


class TestPrimitives:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_gauge_tracks_extremes(self):
        g = Gauge()
        for v in (3.0, -1.0, 2.0):
            g.set(v)
        assert g.value == 2.0
        assert g.max_value == 3.0
        assert g.min_value == -1.0

    def test_histogram_summary(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        assert h.count == 100
        assert h.mean == 50.5
        assert h.min_value == 1.0
        assert h.max_value == 100.0
        assert h.quantile(0.5) == 50.5  # interpolated midpoint
        assert h.quantile(1.0) == 100.0
        assert h.quantile(0.0) == 1.0

    def test_histogram_sample_buffer_bounded(self):
        h = Histogram(max_samples=10)
        for v in range(1000):
            h.observe(float(v))
        assert h.count == 1000
        assert len(h._samples) == 10
        assert h.max_value == 999.0

    def test_histogram_merge(self):
        a, b = Histogram(), Histogram()
        a.observe(1.0)
        b.observe(3.0)
        a.merge(b)
        assert a.count == 2
        assert a.total == 4.0
        assert a.max_value == 3.0

    def test_histogram_reservoir_is_unbiased_across_merge(self):
        # Regression: merge used to keep only the head of the other
        # buffer, so a full receiver ignored the other side entirely and
        # quantiles favored first-worker samples.  With the reservoir,
        # late samples must be represented after a merge.
        a, b = Histogram(max_samples=50), Histogram(max_samples=50)
        for v in range(100):
            a.observe(float(v))  # 0..99
        for v in range(100, 200):
            b.observe(float(v))  # 100..199
        a.merge(b)
        assert a.count == 200
        assert len(a._samples) == 50
        assert any(v >= 100.0 for v in a._samples)
        assert a.quantile(0.5) > 50.0

    def test_histogram_reservoir_deterministic(self):
        def build():
            h = Histogram(max_samples=16)
            for v in range(500):
                h.observe(float(v % 37))
            return h

        assert build()._samples == build()._samples

    def test_gauge_set_count_protects_merge(self):
        # Regression: a worker gauge that was created but never set
        # (value 0.0) used to clobber the parent's last-set value.
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.gauge("g").set(7.0)
        worker.gauge("g")  # created, never set
        parent.merge_from(worker)
        assert parent.gauge("g").value == 7.0
        assert parent.gauge("g").set_count == 1
        worker.gauge("g").set(0.0)  # a *real* zero must win
        parent.merge_from(worker)
        assert parent.gauge("g").value == 0.0
        assert parent.gauge("g").set_count == 2


class TestRegistry:
    def test_create_on_first_use_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.counter("x", rank=1) is not reg.counter("x", rank=2)

    def test_merged_counter_folds_ranks(self):
        reg = MetricsRegistry()
        reg.counter("bytes", rank=0).inc(10)
        reg.counter("bytes", rank=1).inc(20)
        reg.counter("bytes").inc(5)
        assert reg.merged_counter("bytes") == 35
        assert reg.ranks_of("bytes") == [0, 1]

    def test_merged_histogram(self):
        reg = MetricsRegistry()
        reg.histogram("lat", rank=0).observe(1.0)
        reg.histogram("lat", rank=1).observe(5.0)
        merged = reg.merged_histogram("lat")
        assert merged.count == 2
        assert merged.max_value == 5.0

    def test_snapshot_labels(self):
        reg = MetricsRegistry()
        reg.counter("a", rank=3).inc()
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe(2.0)
        snap = reg.snapshot()
        assert snap["counters"]["a[rank=3]"] == 1.0
        assert snap["gauges"]["g"]["value"] == 1.0
        assert snap["histograms"]["h"]["count"] == 1

    def test_format_summary_filters(self):
        reg = MetricsRegistry()
        reg.counter("keep", rank=0).inc(7)
        reg.counter("drop").inc(9)
        text = format_summary(reg, names=["keep"])
        assert "keep[rank=0]: 7" in text
        assert "drop" not in text


class TestEngineIntegration:
    def test_engine_publishes_byte_counters(self):
        reg = MetricsRegistry()

        def body(ctx, comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            yield from comm.send(right, 3, None, 256)
            yield from comm.recv(left, 3)

        with default_metrics(reg):
            run_spmd(body)
        assert reg.merged_counter("engine.bytes.sent") == 4 * 256
        assert reg.merged_counter("engine.bytes.delivered") == 4 * 256
        assert reg.ranks_of("engine.bytes.sent") == [0, 1, 2, 3]

    def test_default_registry_restored(self):
        assert get_default_metrics() is None
        with default_metrics(MetricsRegistry()):
            assert get_default_metrics() is not None
        assert get_default_metrics() is None
