"""Engine/communicator event emission and sink plumbing."""

from repro.cluster.netmodels import infiniband_qdr
from repro.obs.events import (
    CollectiveEnter,
    CollectiveExit,
    CountingSink,
    EventSink,
    MsgDeliver,
    MsgSend,
    ProcBlock,
    ProcWake,
    RecordingSink,
    default_sink,
    get_default_sink,
    set_default_sink,
)
from tests.conftest import run_spmd


def ring_body(ctx, comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    yield from comm.send(right, 7, comm.rank, 64)
    msg = yield from comm.recv(left, 7)
    return msg.payload


class TestEngineEmission:
    def test_send_deliver_pairing(self):
        sink = RecordingSink()
        with default_sink(sink):
            _, res = run_spmd(ring_body)
        sends = sink.of_type(MsgSend)
        delivers = sink.of_type(MsgDeliver)
        assert len(sends) == 4
        assert len(delivers) == 4
        assert {s.seq for s in sends} == {d.seq for d in delivers}
        for d in delivers:
            assert d.latency >= 0.0
        assert res.values == [3, 0, 1, 2]

    def test_block_wake_on_recv(self):
        sink = RecordingSink()

        def body(ctx, comm):
            if comm.rank == 0:
                yield from ctx.elapse(1.0)  # receiver arrives first
                yield from comm.send(1, 1, None, 8)
            else:
                yield from comm.recv(0, 1)

        with default_sink(sink):
            run_spmd(body, num_nodes=1, ranks_per_node=2)
        blocks = [e for e in sink.of_type(ProcBlock) if e.rank == 1]
        assert blocks and blocks[0].reason == "recv"
        assert any(e.rank == 1 for e in sink.of_type(ProcWake))

    def test_collective_enter_exit_balanced(self):
        sink = RecordingSink()

        def body(ctx, comm):
            yield from comm.barrier()
            total = yield from comm.allreduce(1)
            return total

        with default_sink(sink):
            _, res = run_spmd(body)
        enters = sink.of_type(CollectiveEnter)
        exits = sink.of_type(CollectiveExit)
        names = {e.name for e in enters}
        assert names == {"MPI_Barrier", "MPI_Allreduce"}
        # Every rank enters and exits each collective exactly once.
        for name in names:
            ranks_in = sorted(e.rank for e in enters if e.name == name)
            ranks_out = sorted(e.rank for e in exits if e.name == name)
            assert ranks_in == ranks_out == [0, 1, 2, 3]
        assert res.values == [4, 4, 4, 4]

    def test_emission_order_is_time_sorted_per_rank(self):
        sink = RecordingSink()
        with default_sink(sink):
            run_spmd(ring_body, network=infiniband_qdr())
        by_rank = {}
        for e in sink.events:
            by_rank.setdefault(e.rank, []).append(e.time)
        for times in by_rank.values():
            assert times == sorted(times)


class TestSinks:
    def test_counting_sink(self):
        sink = CountingSink()
        with default_sink(sink):
            run_spmd(ring_body)
        assert sink.counts["MsgSend"] == 4
        assert sink.counts["MsgDeliver"] == 4
        assert sink.total == sum(sink.counts.values())
        sink.clear()
        assert sink.total == 0

    def test_recording_sink_is_event_sink(self):
        assert isinstance(RecordingSink(), EventSink)
        assert isinstance(CountingSink(), EventSink)

    def test_default_sink_restored(self):
        assert get_default_sink() is None
        sink = RecordingSink()
        with default_sink(sink) as s:
            assert s is sink
            assert get_default_sink() is sink
        assert get_default_sink() is None

    def test_set_default_sink_explicit(self):
        sink = CountingSink()
        set_default_sink(sink)
        try:
            assert get_default_sink() is sink
        finally:
            set_default_sink(None)
        assert get_default_sink() is None

    def test_explicit_sink_wins_over_default(self):
        explicit = RecordingSink()
        ambient = RecordingSink()

        def body(ctx, comm):
            yield from comm.barrier()

        from repro.cluster.netmodels import ideal_network
        from repro.cluster.topology import Machine
        from repro.simmpi.simulation import Simulation

        machine = Machine(num_nodes=2, sockets_per_node=1,
                          cores_per_socket=1, ranks_per_node=1,
                          name="t")
        with default_sink(ambient):
            sim = Simulation(machine=machine, network=ideal_network(),
                             sink=explicit)
            sim.run(body)
        assert len(explicit) > 0
        assert len(ambient) == 0
