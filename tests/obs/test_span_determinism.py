"""Traced campaigns: determinism across --jobs and vs untraced goldens.

Two contracts at once:

* attaching a span recorder must not perturb the simulation — a traced
  fig3/fig4 quick campaign reproduces the committed untraced goldens
  byte-for-byte;
* the recorder's own output is deterministic under the parallel
  executor — the analyzed critical paths from ``--jobs 1`` and
  ``--jobs 2`` serialize identically (run segmentation via
  ``run_break`` keeps per-job seq namespaces apart in both modes).
"""

from __future__ import annotations

import json
from functools import lru_cache
from pathlib import Path

import pytest

from repro.experiments import fig3_flat_algorithms, fig4_hier_jupiter
from repro.experiments.common import summary_json
from repro.obs.causal import analyze_recorder
from repro.obs.events import default_sink
from repro.obs.spans import SpanRecorder

GOLDEN_DIR = Path(__file__).parent.parent / "experiments" / "golden"

TARGETS = {
    "fig3": fig3_flat_algorithms,
    "fig4": fig4_hier_jupiter,
}


@lru_cache(maxsize=None)
def _traced(name: str, jobs: int) -> tuple[str, str]:
    """(campaign summary json, analyses json) of a traced quick run."""
    recorder = SpanRecorder()
    with default_sink(recorder):
        result = TARGETS[name].run(scale="quick", seed=0, jobs=jobs)
    analyses = analyze_recorder(recorder)
    return (
        summary_json(result),
        json.dumps(analyses, indent=2, sort_keys=True),
    )


@pytest.mark.parametrize("name", sorted(TARGETS))
class TestTracedDeterminism:
    def test_tracing_reproduces_untraced_golden(self, name):
        golden = (GOLDEN_DIR / f"{name}_quick_seed0.json").read_text()
        summary, analyses_text = _traced(name, jobs=1)
        assert summary == golden
        analyses = json.loads(analyses_text)
        assert analyses, "a traced campaign must yield analyzed runs"
        assert all(a["open_edges"] == 0 for a in analyses)
        assert all(a["edges"] > 0 for a in analyses)

    def test_jobs_2_matches_jobs_1_bytes(self, name):
        summary_1, analyses_1 = _traced(name, jobs=1)
        summary_2, analyses_2 = _traced(name, jobs=2)
        assert summary_2 == summary_1
        assert analyses_2 == analyses_1


class TestTracedDepthShape:
    def test_fig3_separates_tree_from_flat(self):
        analyses = json.loads(_traced("fig3", jobs=1)[1])
        by_alg: dict[str, list[dict]] = {}
        for entry in analyses:
            for alg in entry["depth"]["algorithms"]:
                by_alg.setdefault(alg, []).append(entry["depth"])
        assert "jk" in by_alg
        tree_algs = [a for a in by_alg if a != "jk"]
        assert tree_algs
        p = analyses[0]["p"]
        for depth in by_alg["jk"]:
            assert depth["level_depth"] == p - 1
        for alg in tree_algs:
            for depth in by_alg[alg]:
                assert depth["level_depth"] < p - 1
                assert depth["ratio"] <= 1.0
