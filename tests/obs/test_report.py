"""Run reports: serial/parallel byte-identity and artifact shape."""

from __future__ import annotations

import json
from dataclasses import replace

from repro.cluster.machines import JUPITER
from repro.experiments.common import QUICK, run_sync_accuracy_campaign
from repro.obs.health import evaluate_health
from repro.obs.metrics import MetricsRegistry, default_metrics
from repro.obs.report import (
    VOLATILE_FIELDS,
    build_report,
    render_html,
    sparkline_svg,
    write_report,
)
from repro.obs.timeseries import TimeSeriesBank, default_timeseries

TINY = replace(QUICK, num_nodes=4, ranks_per_node=2, nfitpoints=8,
               nexchanges=6, nmpiruns=2)

LABELS = ["hca3/recompute_intercept/8/skampi_offset/6",
          "jk/8/skampi_offset/3"]


def _campaign_report(jobs: int) -> dict:
    bank = TimeSeriesBank()
    registry = MetricsRegistry()
    with default_timeseries(bank), default_metrics(registry):
        run_sync_accuracy_campaign(
            JUPITER, LABELS, scale=TINY, seed=3, jobs=jobs
        )
    return build_report(
        bank=bank,
        metrics=registry,
        verdict=evaluate_health(bank),
        meta={"targets": ["fig3"], "scale": "tiny", "seed": 3},
    )


class TestReportIdentity:
    def test_serial_and_parallel_reports_byte_identical(self):
        # The acceptance bar: report.json from --jobs 1 and --jobs 2 must
        # be byte-identical (generated_at is only added by write_report).
        serial = _campaign_report(jobs=1)
        parallel = _campaign_report(jobs=2)
        text_s = json.dumps(serial, indent=2, sort_keys=True)
        text_p = json.dumps(parallel, indent=2, sort_keys=True)
        assert text_s == text_p

    def test_report_has_per_rank_error_series_and_detectors(self):
        report = _campaign_report(jobs=1)
        names = {s["name"] for s in report["timeseries"]["series"]}
        error_series = [
            s for s in report["timeseries"]["series"]
            if s["name"].endswith("clock.error") and s["rank"] is not None
        ]
        assert error_series, f"no per-rank clock.error series in {names}"
        # One scope per (label, run) pair, ranks 1..7 per scope.
        ranks = {s["rank"] for s in error_series}
        assert ranks == set(range(1, TINY.nprocs))
        assert set(report["health"]["detectors"]) == {
            "drift_excursion", "desync_breach",
            "resync_latency", "stuck_clock", "stale_read",
            "depth_anomaly", "byzantine_suspect", "congestion_desync",
        }
        assert "parallel.workers" not in report["metrics"]["gauges"]


class TestArtifacts:
    def test_write_report_emits_both_files(self, tmp_path):
        report = _campaign_report(jobs=1)
        json_path, html_path = write_report(report, str(tmp_path))
        with open(json_path) as fh:
            loaded = json.load(fh)
        for field in VOLATILE_FIELDS:
            assert field in loaded
            del loaded[field]
        assert loaded == report
        html = open(html_path).read()
        assert html.lstrip().startswith("<!DOCTYPE html>")
        assert "<svg" in html  # sparklines inlined
        assert "clock-health report" in html.lower()
        # Self-contained: no external fetches.
        assert "http://" not in html
        assert "https://" not in html

    def test_critical_path_section_renders(self):
        analyses = [{
            "run": 0, "p": 16, "duration_s": 10.1,
            "critical_path": {
                "length_s": 10.1,
                "by_kind_s": {"compute": 10.0, "msg": 0.08, "ack": 0.02},
            },
            "depth": {"level_depth": 4, "expected": 6, "ratio": 0.67,
                      "round_depth": 4, "algorithms": ["hca"]},
            "rounds": [{
                "algorithm": "hca", "level": "", "round_index": 1,
                "ref": 0, "peer": 5, "duration_s": 0.01,
                "path_msg_s": 0.004, "path_compute_s": 0.006,
                "segments": 12, "max_edge_s": 0.001,
            }],
        }]
        report = build_report(
            verdict=evaluate_health(TimeSeriesBank()),
            meta={"targets": ["fig3"]},
            critical_path=analyses,
        )
        assert report["critical_path"] == analyses
        html = render_html(report)
        assert "Sync-round critical path" in html
        assert "Slowest sync rounds" in html
        assert "hca" in html
        # Without analyses the section is absent entirely.
        bare = render_html(build_report(meta={"targets": ["fig3"]}))
        assert "Sync-round critical path" not in bare

    def test_render_html_on_empty_report(self):
        empty = build_report(
            bank=TimeSeriesBank(),
            metrics=MetricsRegistry(),
            verdict=evaluate_health(TimeSeriesBank()),
            meta={"targets": ["fig2"]},
        )
        html = render_html(empty)
        assert "OK" in html

    def test_sparkline_svg_shapes(self):
        points = [(float(i), (i % 5) * 1e-5) for i in range(30)]
        svg = sparkline_svg(points, marks=[15.0], tolerance=2e-5)
        assert svg.startswith("<svg")
        assert svg.count("<path") >= 1
        # Degenerate input degrades to a text placeholder, not a crash.
        assert "<svg" not in sparkline_svg([], marks=[])
