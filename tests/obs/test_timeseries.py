"""Decimating time-series buffer and bank: determinism, scoping, merge."""

from __future__ import annotations

import pytest

from repro.obs.timeseries import (
    SCOPE_SEP,
    TimeSeries,
    TimeSeriesBank,
    default_timeseries,
    get_default_timeseries,
    split_scope,
)


def _samples(n: int) -> list[tuple[float, float]]:
    return [(float(i), float(i * i % 101)) for i in range(n)]


class TestTimeSeries:
    def test_keeps_everything_until_full(self):
        ts = TimeSeries("x", max_points=8)
        ts.extend(_samples(8))
        assert len(ts) == 8
        assert ts.stride == 1
        assert ts.count == 8

    def test_stride_doubles_on_overflow(self):
        ts = TimeSeries("x", max_points=8)
        ts.extend(_samples(9))
        # Compaction kept offered indices 0, 2, 4, 6 and then accepted 8.
        assert ts.stride == 2
        assert ts.times() == [0.0, 2.0, 4.0, 6.0, 8.0]

    def test_bounded_forever(self):
        ts = TimeSeries("x", max_points=16)
        ts.extend(_samples(10_000))
        assert len(ts) <= 16
        assert ts.count == 10_000
        # Retained offered indices are exactly the stride multiples.
        assert all(t % ts.stride == 0 for t in ts.times())

    def test_decimation_is_flush_boundary_independent(self):
        # The determinism contract: retention is a pure function of the
        # offered sequence, so one-by-one and arbitrarily-chunked feeds
        # retain identical points.
        data = _samples(1337)
        one_by_one = TimeSeries("x", max_points=32)
        for t, v in data:
            one_by_one.append(t, v)
        chunked = TimeSeries("x", max_points=32)
        i, step = 0, 1
        while i < len(data):
            chunked.extend(data[i:i + step])
            i += step
            step = step % 7 + 1  # irregular chunk sizes
        assert one_by_one.points == chunked.points
        assert one_by_one.stride == chunked.stride

    def test_rejects_tiny_buffers(self):
        with pytest.raises(ValueError):
            TimeSeries("x", max_points=1)


class TestScopes:
    def test_split_scope(self):
        assert split_scope("clock.error") == ("", "clock.error")
        assert split_scope(f"hca/15#0{SCOPE_SEP}clock.error") == (
            "hca/15#0", "clock.error"
        )

    def test_scoped_sampling_and_nesting(self):
        bank = TimeSeriesBank()
        bank.sample("m", 0.0, 1.0)
        with bank.scoped("outer"):
            bank.sample("m", 0.0, 2.0)
            with bank.scoped("inner"):
                bank.sample("m", 0.0, 3.0)
        assert bank.get("m").values() == [1.0]
        assert bank.get(f"outer{SCOPE_SEP}m").values() == [2.0]
        assert bank.get(
            f"outer{SCOPE_SEP}inner{SCOPE_SEP}m"
        ).values() == [3.0]
        assert bank.scope == ""  # restored


class TestBank:
    def test_series_create_on_first_use(self):
        bank = TimeSeriesBank()
        assert bank.series("a") is bank.series("a")
        assert bank.series("a", rank=0) is not bank.series("a", rank=1)

    def test_items_deterministic_order(self):
        bank = TimeSeriesBank()
        bank.sample("b", 0.0, 1.0, rank=1)
        bank.sample("a", 0.0, 1.0)
        bank.sample("b", 0.0, 1.0)
        bank.sample("b", 0.0, 1.0, rank=0)
        keys = [key for key, _ in bank.items()]
        assert keys == [("a", None), ("b", None), ("b", 0), ("b", 1)]

    def test_markers_bounded_and_sorted(self):
        bank = TimeSeriesBank(max_marks=3)
        for i in range(10):
            bank.mark("fault", float(10 - i), f"f{i}")
        marks = bank.marks_named("fault")
        assert len(marks) == 3
        assert [t for _, t, _ in marks] == sorted(t for _, t, _ in marks)

    def test_merge_matches_direct_feed(self):
        # Parent-merge of per-job banks must equal direct sequential
        # sampling when the parent key already exists (replay path).
        direct = TimeSeriesBank(max_points=16)
        split_a = TimeSeriesBank(max_points=16)
        split_b = TimeSeriesBank(max_points=16)
        data = _samples(15)  # fits: merge replay sees every point
        for t, v in data[:7]:
            direct.sample("m", t, v)
            split_a.sample("m", t, v)
        for t, v in data[7:]:
            direct.sample("m", t, v)
            split_b.sample("m", t, v)
        merged = TimeSeriesBank(max_points=16)
        merged.merge_from(split_a)
        merged.merge_from(split_b)
        assert merged.get("m").points == direct.get("m").points

    def test_merge_adopts_absent_keys_structurally(self):
        child = TimeSeriesBank(max_points=8)
        child.sample("m", 0.0, 1.0, rank=2)
        child.mark("fault", 1.0, "boom")
        parent = TimeSeriesBank(max_points=8)
        parent.merge_from(child)
        assert parent.get("m", rank=2).points == [(0.0, 1.0)]
        assert parent.get("m", rank=2) is not child.get("m", rank=2)
        assert parent.marks_named("fault") == [(None, 1.0, "boom")]

    def test_to_dict_round_shape(self):
        bank = TimeSeriesBank()
        bank.sample("m", 1.0, 2.0, rank=0)
        bank.mark("fault", 3.0, "x", rank=1)
        d = bank.to_dict()
        assert d["series"] == [{
            "name": "m", "rank": 0, "count": 1, "stride": 1,
            "points": [[1.0, 2.0]],
        }]
        assert d["markers"] == [
            {"name": "fault", "rank": 1, "marks": [[3.0, "x"]]}
        ]


class TestDefaultBank:
    def test_default_installed_and_restored(self):
        assert get_default_timeseries() is None
        with default_timeseries(TimeSeriesBank()) as bank:
            assert get_default_timeseries() is bank
        assert get_default_timeseries() is None
