"""Anomaly detectors: unit behaviour + golden files on fault scenarios.

Each detector has one golden-file test pinned against a synthetic fault
scenario from :mod:`repro.faults.scenarios` (or a hand-built bank for
the stuck-clock case).  The simulator is deterministic per seed and
finding floats are rounded to 12 decimals, so the goldens are stable.

Regenerate after an intentional detector/threshold change::

    PYTHONPATH=src python tests/obs/test_health.py --regen
"""

from __future__ import annotations

import json
import os

from repro.faults.evaluate import run_recovery
from repro.faults.scenarios import make_scenario
from repro.obs.health import (
    DEPTH_METRIC,
    QUEUE_METRIC,
    HealthThresholds,
    detect_byzantine_suspects,
    detect_congestion_desync,
    detect_depth_anomalies,
    detect_desync_breaches,
    detect_drift_excursions,
    detect_resync_latency,
    detect_stale_reads,
    detect_stuck_clocks,
    evaluate_health,
)
from repro.obs.timeseries import TimeSeriesBank

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: Small-but-real recovery runs shared by the scenario-driven goldens.
_RUN_KWARGS = dict(
    horizon=40.0,
    sample_interval=1.0,
    ensure_interval=2.0,
    num_nodes=2,
    ranks_per_node=1,
    seed=0,
)


def _bank_ntp_step(resync_age: float | None) -> TimeSeriesBank:
    bank = TimeSeriesBank()
    run_recovery(
        make_scenario("ntp_step"),
        resync_age=resync_age,
        timeseries=bank,
        **_RUN_KWARGS,
    )
    return bank


def _bank_thermal() -> TimeSeriesBank:
    # Amplified skew ramp so the accumulated error slope clears the
    # drift threshold well within the 40 s horizon.
    bank = TimeSeriesBank()
    run_recovery(
        make_scenario("thermal_cycle", skew_delta=4e-5),
        resync_age=None,
        timeseries=bank,
        **_RUN_KWARGS,
    )
    return bank


def _bank_stuck() -> TimeSeriesBank:
    # A frozen estimator: constant non-zero error for 10 samples, then a
    # healthy tail.  Rank 2 flat-lines at exactly 0.0 — legitimate exact
    # agreement that must NOT fire.
    bank = TimeSeriesBank()
    for i in range(10):
        bank.sample("clock.error", float(i), 42e-6, rank=1)
        bank.sample("clock.error", float(i), 0.0, rank=2)
    for i in range(10, 14):
        bank.sample("clock.error", float(i), 1e-6 * i, rank=1)
        bank.sample("clock.error", float(i), 0.0, rank=2)
    return bank


def _bank_stale() -> TimeSeriesBank:
    # A service run where a mid-run drift episode pushes the stale-read
    # rate out of tolerance for ~6 s (warning), with a one-sample blip
    # at t=20 that the sustain window must ignore.  The second series
    # crosses the critical rate.
    bank = TimeSeriesBank()
    for i in range(30):
        t = float(i)
        rate = 0.08 if 8 <= i <= 14 else (0.05 if i == 20 else 0.0)
        bank.sample("service.stale_rate", t, rate)
        crit = 0.6 if 8 <= i <= 14 else 0.0
        bank.sample("service.stale_rate", t, crit, rank=1)
    return bank


def _bank_depth() -> TimeSeriesBank:
    # Depth ratios from four traced runs: a healthy tree round (0.67),
    # one exactly at the bound (1.0, must NOT fire), one zig-zagging
    # past it (1.4 → warning), and one twice the bound (2.5 → critical).
    # A single sample per run is the normal case.
    bank = TimeSeriesBank()
    for t, ratio in ((10.1, 0.67), (10.2, 1.0), (10.3, 1.4), (10.4, 2.5)):
        bank.sample(DEPTH_METRIC, t, ratio)
    return bank


def _bank_byzantine() -> TimeSeriesBank:
    # A six-rank cohort: four converged at the ~2-3 us level, rank 6
    # parked at 150 us (12x the floored baseline → warning) and rank 3
    # at 800 us (64x → critical).  The "tiny" scope has only two series
    # — below the minimum cohort — so its huge outlier must NOT fire.
    bank = TimeSeriesBank()
    for i in range(6):
        t = float(i)
        for rank, err in ((1, 2e-6), (2, -3e-6), (4, 2.5e-6), (5, -2e-6)):
            bank.sample("clock.error", t, err, rank=rank)
        bank.sample("clock.error", t, 8e-4, rank=3)
        bank.sample("clock.error", t, 150e-6, rank=6)
        with bank.scoped("tiny"):
            bank.sample("clock.error", t, 1e-6, rank=1)
            bank.sample("clock.error", t, 5e-3, rank=2)
    return bank


def _bank_congestion() -> TimeSeriesBank:
    # Three scopes of queueing sojourns: "hot" sustains a standing
    # queue while its clock errors breach tolerance (critical), "warm"
    # sustains one with healthy clocks (warning), and "cool" has a
    # two-sample blip shorter than the window (no finding).
    bank = TimeSeriesBank()
    with bank.scoped("hot"):
        for i in range(16):
            t = 0.002 * i
            bank.sample(QUEUE_METRIC, t, 80e-6, rank=0)
            bank.sample("clock.error", t, 250e-6, rank=1)
    with bank.scoped("warm"):
        for i in range(16):
            t = 0.002 * i
            bank.sample(QUEUE_METRIC, t, 60e-6, rank=0)
            bank.sample("clock.error", t, 1e-6, rank=1)
    with bank.scoped("cool"):
        for t in (0.0, 0.004):
            bank.sample(QUEUE_METRIC, t, 90e-6, rank=0)
            bank.sample("clock.error", t, 1e-6, rank=1)
    return bank


def _findings(case: str) -> list[dict]:
    if case == "desync_breach":
        found = detect_desync_breaches(_bank_ntp_step(None))
    elif case == "resync_latency":
        found = detect_resync_latency(_bank_ntp_step(8.0))
    elif case == "drift_excursion":
        found = detect_drift_excursions(_bank_thermal())
    elif case == "stuck_clock":
        found = detect_stuck_clocks(_bank_stuck())
    elif case == "stale_read":
        found = detect_stale_reads(_bank_stale())
    elif case == "depth_anomaly":
        found = detect_depth_anomalies(_bank_depth())
    elif case == "byzantine_suspect":
        found = detect_byzantine_suspects(_bank_byzantine())
    elif case == "congestion_desync":
        found = detect_congestion_desync(_bank_congestion())
    else:  # pragma: no cover - test bookkeeping
        raise ValueError(case)
    return [f.to_dict() for f in found]


CASES = (
    "desync_breach", "resync_latency", "drift_excursion", "stuck_clock",
    "stale_read", "depth_anomaly", "byzantine_suspect",
    "congestion_desync",
)


def _golden_path(case: str) -> str:
    return os.path.join(GOLDEN_DIR, f"health_{case}.json")


def _assert_matches_golden(case: str) -> None:
    path = _golden_path(case)
    assert os.path.exists(path), (
        f"missing golden {path}; regenerate with "
        "`PYTHONPATH=src python tests/obs/test_health.py --regen`"
    )
    with open(path) as fh:
        golden = json.load(fh)
    assert _findings(case) == golden


class TestGoldenFindings:
    def test_desync_breach_golden(self):
        _assert_matches_golden("desync_breach")

    def test_resync_latency_golden(self):
        _assert_matches_golden("resync_latency")

    def test_drift_excursion_golden(self):
        _assert_matches_golden("drift_excursion")

    def test_stuck_clock_golden(self):
        _assert_matches_golden("stuck_clock")

    def test_stale_read_golden(self):
        _assert_matches_golden("stale_read")

    def test_depth_anomaly_golden(self):
        _assert_matches_golden("depth_anomaly")

    def test_byzantine_suspect_golden(self):
        _assert_matches_golden("byzantine_suspect")

    def test_congestion_desync_golden(self):
        _assert_matches_golden("congestion_desync")


class TestDetectorSemantics:
    def test_ntp_step_baseline_breaches_but_resync_recovers(self):
        baseline = detect_desync_breaches(_bank_ntp_step(None))
        assert baseline, "a 500us step with no resync must breach"
        assert all(f.severity == "critical" for f in baseline)

        resynced = _bank_ntp_step(8.0)
        latencies = detect_resync_latency(resynced)
        assert latencies, "the fault marker must produce a latency finding"
        assert any(f.severity in ("info", "warning") for f in latencies), (
            "periodic resync must re-enter tolerance before the horizon"
        )

    def test_stuck_ignores_exact_zero_plateaus(self):
        found = detect_stuck_clocks(_bank_stuck())
        assert found
        assert all(f.rank == 1 for f in found), (
            "rank 2's constant-zero series is exact agreement, not a "
            "stuck estimator"
        )

    def test_thresholds_are_tunable(self):
        bank = _bank_stuck()
        strict = HealthThresholds(stuck_min_points=3, stuck_span=0.5)
        lax = HealthThresholds(stuck_min_points=100)
        assert detect_stuck_clocks(bank, strict)
        assert not detect_stuck_clocks(bank, lax)

    def test_stale_read_severity_and_sustain_window(self):
        found = detect_stale_reads(_bank_stale())
        # The blip at t=20 spans 0 s: filtered by the sustain window.
        assert len(found) == 2
        by_rank = {f.rank: f for f in found}
        assert by_rank[None].severity == "warning"
        assert by_rank[1].severity == "critical"
        # A lax tolerance silences the warning-level series.
        lax = HealthThresholds(stale_rate_tolerance=0.1)
        assert all(f.rank == 1 for f in detect_stale_reads(_bank_stale(), lax))

    def test_depth_anomaly_thresholds_and_severity(self):
        found = detect_depth_anomalies(_bank_depth())
        # 0.67 and exactly-1.0 are healthy; 1.4 warns, 2.5 is critical.
        assert [(f.value, f.severity) for f in found] == [
            (1.4, "warning"), (2.5, "critical"),
        ]
        assert all(f.detector == "depth_anomaly" for f in found)
        # A single sample is enough for this detector (one per traced
        # run is the normal case) and thresholds stay tunable.
        lax = HealthThresholds(depth_ratio=3.0)
        assert not detect_depth_anomalies(_bank_depth(), lax)

    def test_byzantine_outlier_ranks_and_cohort_minimum(self):
        found = detect_byzantine_suspects(_bank_byzantine())
        # The two-series "tiny" scope is below the cohort minimum, so
        # only the main scope's outliers fire: rank 6 warns, rank 3 is
        # critical.
        assert [(f.rank, f.severity) for f in found] == [
            (3, "critical"), (6, "warning"),
        ]
        lax = HealthThresholds(byzantine_min_series=7)
        assert not detect_byzantine_suspects(_bank_byzantine(), lax)

    def test_byzantine_ignores_converged_cohorts(self):
        bank = TimeSeriesBank()
        for i in range(6):
            for rank in range(1, 6):
                bank.sample(
                    "clock.error", float(i), 1e-6 * rank, rank=rank
                )
        assert not detect_byzantine_suspects(bank), (
            "a converged cohort below desync tolerance has no suspects"
        )

    def test_congestion_escalates_when_scope_desyncs(self):
        found = detect_congestion_desync(_bank_congestion())
        by_scope = {f.series.split("::")[0]: f for f in found}
        # The "cool" blip spans less than the window: filtered.
        assert set(by_scope) == {"hot", "warm"}
        assert by_scope["hot"].severity == "critical"
        assert by_scope["warm"].severity == "warning"
        lax = HealthThresholds(queue_delay_tolerance=1e-3)
        assert not detect_congestion_desync(_bank_congestion(), lax)

    def test_verdict_always_reports_all_detectors(self):
        verdict = evaluate_health(TimeSeriesBank())
        assert set(verdict.detectors) == set(CASES)
        assert verdict.status == "ok"
        assert verdict.series_scanned == 0

    def test_verdict_status_is_worst_severity(self):
        verdict = evaluate_health(_bank_ntp_step(None))
        assert verdict.status == "critical"
        assert verdict.detectors["desync_breach"]["worst"] == "critical"
        # Sorted most-severe first.
        sevs = [f.severity for f in verdict.findings]
        order = {"critical": 0, "warning": 1, "info": 2}
        assert sevs == sorted(sevs, key=order.__getitem__)


def _regen() -> None:  # pragma: no cover - manual tool
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for case in CASES:
        path = _golden_path(case)
        with open(path, "w") as fh:
            json.dump(_findings(case), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
