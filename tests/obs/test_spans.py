"""Span recorder: edge pairing, phase spans, run segmentation."""

from __future__ import annotations

from repro.cluster.netmodels import infiniband_qdr
from repro.cluster.topology import Machine
from repro.obs import events as obs_events
from repro.obs.spans import SpanRecorder
from repro.simmpi.simulation import Simulation
from repro.simtime.sources import CLOCK_GETTIME
from repro.sync.hierarchical import h2hca

#: Tiny skew so clocks differ but sync rounds stay fast.
QUIET = CLOCK_GETTIME.with_(skew_walk_sigma=1e-9)


def traced_sync(num_nodes=4, ranks_per_node=2, seed=2, check=None):
    """One H2HCA synchronization with a span recorder attached."""
    recorder = SpanRecorder()
    algorithm = h2hca(nfitpoints=4, fitpoint_spacing=1e-3)

    def main(ctx, comm):
        yield from algorithm.sync_clocks(comm, ctx.hardware_clock)
        return ctx.now

    machine = Machine(
        num_nodes=num_nodes,
        sockets_per_node=2,
        cores_per_socket=max(1, (ranks_per_node + 1) // 2),
        ranks_per_node=ranks_per_node,
        name="testbox",
    )
    sim = Simulation(
        machine=machine, network=infiniband_qdr(), time_source=QUIET,
        seed=seed, sink=recorder, check=check,
    )
    sim.run(main)
    return sim, recorder


class TestRecorderAgainstEngine:
    def test_edges_match_engine_counters(self):
        sim, recorder = traced_sync()
        recorder.finalize()
        (run,) = recorder.completed_runs()
        stats = sim.engine.stats()
        assert len(run.edges) == stats["messages_delivered"]
        assert run.open_edge_count == stats["messages_unreceived"]
        assert run.ranks == set(range(stats["num_ranks"]))
        # Per-rank deliver lists partition the closed edges.
        assert sum(len(v) for v in run.delivers.values()) == len(run.edges)

    def test_edge_time_ordering_and_binding_bits(self):
        _, recorder = traced_sync()
        run = recorder.run
        waited = 0
        for edge in run.edges.values():
            assert edge.send_time <= edge.arrival <= edge.deliver_time
            assert edge.latency > 0.0
            assert edge.src != edge.dst
            waited += edge.waited
        # Ping-pong offset measurement makes most receives blocking.
        assert waited > 0
        assert waited <= len(run.edges)

    def test_learn_and_offset_phases_recorded(self):
        _, recorder = traced_sync()
        recorder.finalize()
        (run,) = recorder.completed_runs()
        spans = [s for spans in run.phases.values() for s in spans]
        names = {s.name for s in spans}
        assert {"sync.learn", "sync.offset"} <= names
        learn = [s for s in spans if s.name == "sync.learn"]
        for span in learn:
            assert span.end >= span.begin
            assert span.algorithm
            assert span.ref >= 0 and span.peer >= 0
            assert span.rank in (span.ref, span.peer)
        # Both sides of every pairwise round emit the same instance key.
        by_instance: dict[tuple, set[int]] = {}
        for span in learn:
            by_instance.setdefault(span.instance_key, set()).add(span.rank)
        assert by_instance
        for key, ranks in by_instance.items():
            assert ranks <= {key[4], key[5]}

    def test_strict_sanitizer_cross_validates_recorder(self):
        # End-to-end: Simulation.run hands the tee'd recorder to the
        # sanitizer's finalize, which cross-checks the recorder's open
        # edges against its own ledger and the engine's counters.  An
        # honest traced run must survive strict mode.
        sim, recorder = traced_sync(check="strict")
        assert recorder.open_edge_count == 0
        assert sim.checker is not None
        assert sim.checker.report.ok


class TestRunSegmentation:
    def test_seq_collision_starts_a_new_run(self):
        recorder = SpanRecorder()
        send = obs_events.MsgSend(
            time=1.0, rank=0, dest=1, tag=7, size=8, seq=0, level="LOCAL"
        )
        recorder.emit(send)
        recorder.emit(obs_events.MsgDeliver(
            time=1.5, rank=1, source=0, tag=7, size=8, seq=0,
            latency=0.5, arrival=1.5, waited=True,
        ))
        # Same seq again: a fresh engine run began.
        recorder.emit(send)
        assert len(recorder.runs) == 2
        assert len(recorder.runs[0].edges) == 1
        assert recorder.runs[1].open_edge_count == 1

    def test_run_break_is_noop_while_empty(self):
        recorder = SpanRecorder()
        recorder.run_break()
        recorder.run_break()
        assert len(recorder.runs) == 1
        recorder.emit(obs_events.ProcBlock(time=0.5, rank=0, reason="recv"))
        recorder.run_break()
        recorder.run_break()
        assert len(recorder.runs) == 2
        assert len(recorder) == 1

    def test_finalize_closes_open_phases_at_run_end(self):
        recorder = SpanRecorder()
        recorder.emit(obs_events.PhaseBegin(
            time=1.0, rank=0, name="sync.learn", algorithm="hca",
        ))
        recorder.emit(obs_events.ProcBlock(time=3.0, rank=0, reason="recv"))
        recorder.finalize()
        (run,) = recorder.completed_runs()
        (span,) = run.phases[0]
        assert span.begin == 1.0
        assert span.end == 3.0  # closed at the run's last event time
        recorder.finalize()  # idempotent
        assert len(run.phases[0]) == 1

    def test_fault_inject_does_not_extend_the_run(self):
        recorder = SpanRecorder()
        recorder.emit(obs_events.ProcBlock(time=2.0, rank=0, reason="recv"))
        recorder.emit(obs_events.FaultInject(
            time=99.0, rank=-1, kind="clock_step", name="f", target="node0",
        ))
        assert recorder.run.t_end == 2.0
        assert len(recorder) == 1
