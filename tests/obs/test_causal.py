"""Critical-path extraction: walk invariants + round-depth pins.

The depth pins are the PR's acceptance bar: a traced p=2048 HCA run
must measure a critical path whose level depth equals the binomial
tree's ceil(log2 p), while flat JK measures Theta(p) — the paper's
structural O(log p) vs O(p) separation, observed empirically from the
causal DAG rather than asserted from the formula.
"""

from __future__ import annotations

from math import ceil, log2

import pytest

from repro.cluster.netmodels import infiniband_qdr
from repro.obs.causal import (
    analyze_run,
    critical_path,
    expected_depth,
)
from repro.obs.spans import SpanRecorder, SpanRun
from repro.perf.harness import ring_machine
from repro.perf.scaling import depth_probe
from repro.simmpi.simulation import Simulation

EPS = 1e-9


def traced_flat(p: int, label: str, seed: int = 0) -> SpanRun:
    """One traced synchronization of a flat (single-level) algorithm."""
    from repro.sync.registry import algorithm_from_label

    algorithm = algorithm_from_label(label, fitpoint_spacing=1e-3)

    def main(ctx, comm):
        yield from algorithm.sync_clocks(comm, ctx.hardware_clock)
        return ctx.now

    recorder = SpanRecorder()
    sim = Simulation(
        machine=ring_machine(p // 4, 4), network=infiniband_qdr(),
        seed=seed, sink=recorder,
    )
    sim.run(main)
    recorder.finalize()
    (run,) = recorder.completed_runs()
    return run


class TestDepthPins:
    @pytest.mark.parametrize("p", [16, 64])
    def test_hca_level_depth_is_log2_p(self, p):
        run = traced_flat(p, "hca/4/skampi_offset/2")
        depth = analyze_run(run)["depth"]
        assert depth["level_depth"] == ceil(log2(p))
        assert depth["round_depth"] == depth["level_depth"]
        assert depth["algorithms"] == ["hca"]
        assert depth["ratio"] <= 1.0

    def test_jk_level_depth_is_p_minus_1(self):
        run = traced_flat(16, "jk/4/skampi_offset/2")
        depth = analyze_run(run)["depth"]
        assert depth["level_depth"] == 15
        assert depth["expected"] == 15
        assert depth["ratio"] == 1.0

    def test_hca_depth_at_p_2048_matches_tree_depth(self):
        # Acceptance: traced p=2048 HCA, measured depth == ceil(log2 p).
        summary, analysis = depth_probe(2048, label="hca/4/skampi_offset/2")
        assert summary["level_depth"] == ceil(log2(2048)) == 11
        assert summary["depth_ratio"] <= 1.0
        assert analysis["depth"]["algorithms"] == ["hca"]
        assert analysis["open_edges"] == 0

    def test_jk_depth_at_p_2048_is_theta_p(self):
        # Acceptance: flat JK's path visits every one of the p-1 rounds.
        summary, _ = depth_probe(2048, label="jk/4/skampi_offset/2")
        assert summary["level_depth"] == 2047
        assert summary["expected_depth"] == 2047
        assert summary["depth_ratio"] == 1.0


class TestWalkInvariants:
    @pytest.fixture(scope="class")
    def run(self):
        return traced_flat(16, "hca/4/skampi_offset/2")

    def test_segments_tile_the_run_window_exactly(self, run):
        segments = critical_path(run)
        assert segments
        assert segments[0].start == 0.0
        assert segments[-1].end == run.t_end
        assert segments[-1].rank == run.end_rank
        for prev, nxt in zip(segments, segments[1:]):
            assert abs(prev.end - nxt.start) < EPS
            assert prev.duration >= -EPS
        length = segments[-1].end - segments[0].start
        assert abs(length - run.duration()) < EPS

    def test_path_dominates_every_on_path_edge(self, run):
        segments = critical_path(run)
        length = segments[-1].end - segments[0].start
        msg_segments = [s for s in segments if s.kind == "msg"]
        assert msg_segments, "a sync round must put messages on the path"
        for seg in msg_segments:
            edge = run.edges[seg.seq]
            assert edge.waited
            assert seg.rank == edge.dst and seg.src == edge.src
            assert length + EPS >= seg.duration

    def test_round_windows_are_self_consistent(self, run):
        analysis = analyze_run(run)
        assert analysis["rounds"]
        for row in analysis["rounds"]:
            total = row["path_msg_s"] + row["path_compute_s"]
            assert abs(total - row["duration_s"]) < 1e-6
            assert row["duration_s"] + EPS >= row["max_edge_s"]
            assert row["segments"] >= 1

    def test_analysis_is_json_ready_and_attributed(self, run):
        import json

        analysis = analyze_run(run)
        json.dumps(analysis)  # no exotic types
        cp = analysis["critical_path"]
        total_kinds = sum(cp["by_kind_s"].values())
        assert abs(total_kinds - cp["length_s"]) < 1e-6
        assert cp["top_links"] == sorted(
            cp["top_links"], key=lambda r: (-r["seconds"], r["link"])
        )
        # Attribution is innermost-phase: the offset measurement nests
        # inside the learn round, so it owns the path's sync time.
        assert "sync.offset" in cp["by_phase_s"]


class TestExpectedDepth:
    def test_tree_vs_flat_bounds(self):
        assert expected_depth(16, {("hca", "")}) == 6   # log2(16) + 2
        assert expected_depth(16, {("jk", "")}) == 15   # p - 1
        assert expected_depth(2048, {("hca", "")}) == 13

    def test_mixed_levels_sum(self):
        pairs = {("hca2", "intranode"), ("hca2", "internode")}
        assert expected_depth(16, pairs) == 12

    def test_degenerate_inputs(self):
        assert expected_depth(1, {("hca", "")}) == 1
        assert expected_depth(16, set()) == 1


class TestEmptyRun:
    def test_analyze_empty_run_is_stable(self):
        run = SpanRun(0)
        analysis = analyze_run(run)
        assert analysis["critical_path"]["length_s"] == 0.0
        assert analysis["depth"]["level_depth"] == 0
        assert analysis["rounds"] == []
        assert critical_path(run) == []
