"""Sync-round instrumentation: collectors and algorithm integration."""

import math

from repro.cluster.netmodels import infiniband_qdr
from repro.obs.sync_stats import (
    FitpointSample,
    SyncRoundRecord,
    SyncStatsCollector,
)
from repro.simtime.sources import CLOCK_GETTIME
from repro.sync import HCA3Sync
from repro.sync.hierarchical import h2hca
from tests.conftest import run_spmd

QUIET = CLOCK_GETTIME.with_(skew_walk_sigma=1e-9)


def make_record(level="", client=1, residuals=(1e-7, -2e-7)):
    fitpoints = tuple(
        FitpointSample(timestamp=float(i), offset=1e-6 * i, rtt=2e-6 + i * 1e-7)
        for i in range(3)
    )
    return SyncRoundRecord(
        algorithm="hca3",
        level=level,
        round_index=0,
        ref_rank=0,
        client_rank=client,
        fitpoints=fitpoints,
        slope=1e-6,
        intercept=0.5e-6,
        residuals=residuals,
    )


class TestRecord:
    def test_derived_statistics(self):
        rec = make_record()
        assert rec.nfitpoints == 3
        assert rec.min_rtt == 2e-6
        assert abs(rec.mean_rtt - 2.1e-6) < 1e-12
        assert rec.max_abs_residual == 2e-7
        assert abs(rec.rms_residual - math.sqrt(2.5e-14)) < 1e-20

    def test_empty_residuals(self):
        rec = make_record(residuals=())
        assert rec.max_abs_residual == 0.0
        assert rec.rms_residual == 0.0


class TestCollector:
    def test_filters_and_levels(self):
        coll = SyncStatsCollector()
        coll.record(make_record(level="internode", client=1))
        coll.record(make_record(level="intranode", client=2))
        coll.record(make_record(level="internode", client=3))
        assert len(coll) == 3
        assert coll.levels() == ["internode", "intranode"]
        assert len(coll.for_level("internode")) == 2
        assert [r.client_rank for r in coll.for_client(2)] == [2]

    def test_summary_per_level(self):
        coll = SyncStatsCollector()
        coll.record(make_record(level="internode"))
        coll.record(make_record(level=""))
        summary = coll.summary()
        assert set(summary) == {"internode", "flat"}
        inter = summary["internode"]
        assert inter["rounds"] == 1.0
        assert inter["fitpoints"] == 3.0
        assert inter["min_rtt"] == 2e-6
        assert inter["max_abs_residual"] == 2e-7


class TestAlgorithmIntegration:
    def test_hca3_records_rounds(self):
        alg = HCA3Sync(nfitpoints=8, fitpoint_spacing=1e-3)

        def main(ctx, comm):
            yield from alg.sync_clocks(comm, ctx.hardware_clock)

        run_spmd(main, num_nodes=2, ranks_per_node=2,
                 network=infiniband_qdr(), time_source=QUIET, seed=3)
        # Every non-reference rank completed at least one learning round.
        clients = {r.client_rank for r in alg.stats.rounds}
        assert clients == {1, 2, 3}
        for rec in alg.stats.rounds:
            assert rec.algorithm == "hca3"
            assert rec.nfitpoints == 8
            assert rec.min_rtt > 0.0
            assert all(math.isfinite(res) for res in rec.residuals)
            assert rec.max_abs_residual < 1e-3
        summary = alg.sync_stats_summary()
        assert set(summary) == {"flat"}
        assert summary["flat"]["mean_rtt"] > 0.0

    def test_h2hca_labels_levels(self):
        alg = h2hca(nfitpoints=8, fitpoint_spacing=1e-3)

        def main(ctx, comm):
            yield from alg.sync_clocks(comm, ctx.hardware_clock)

        run_spmd(main, num_nodes=2, ranks_per_node=2,
                 network=infiniband_qdr(), time_source=QUIET, seed=4)
        summary = alg.sync_stats_summary()
        # The model-learning level is inter-node; ClockPropSync inside a
        # node clones clocks and learns no models.
        assert set(summary) == {"internode"}
        assert summary["internode"]["rounds"] >= 1.0
        # Only node leaders are clients of the inter-node level.
        clients = {r.client_rank for r in alg.inter_node.stats.rounds}
        assert clients == {2}
