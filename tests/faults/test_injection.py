"""Tests for engine-level fault injection (links, NICs, stragglers)."""

import numpy as np
import pytest

from repro.cluster.netmodels import ideal_network, infiniband_qdr
from repro.cluster.topology import Machine
from repro.faults.injector import FaultInjector
from repro.faults.model import LinkFault, NicStormFault, StragglerFault
from repro.faults.schedule import FaultSchedule
from repro.faults.scenarios import make_scenario
from repro.obs.events import FaultInject, RecordingSink
from repro.simmpi.network import Level
from repro.simmpi.simulation import Simulation
from tests.conftest import PERFECT_TIME


def make_sim(faults=None, network=None, sink=None, seed=0):
    machine = Machine(
        num_nodes=2,
        sockets_per_node=1,
        cores_per_socket=2,
        ranks_per_node=2,
        name="faultbox",
    )
    return Simulation(
        machine=machine,
        network=network or ideal_network(),
        time_source=PERFECT_TIME,
        seed=seed,
        faults=faults,
        sink=sink,
    )


class TestFaultInjectorUnit:
    def test_link_fault_multiplies_inside_window_only(self):
        injector = FaultInjector(FaultSchedule(name="s", faults=[
            LinkFault(start=10.0, length=5.0, latency_factor=3.0),
        ]))
        rng = np.random.default_rng(0)
        assert injector.perturb_delay(9.0, Level.REMOTE, 2e-6, rng) == 2e-6
        assert injector.perturb_delay(12.0, Level.REMOTE, 2e-6, rng) == \
            pytest.approx(6e-6)
        assert injector.perturb_delay(15.0, Level.REMOTE, 2e-6, rng) == 2e-6
        assert injector.delays_perturbed == 1

    def test_link_fault_level_filter(self):
        injector = FaultInjector(FaultSchedule(name="s", faults=[
            LinkFault(start=0.0, length=5.0, level="REMOTE",
                      latency_factor=3.0),
        ]))
        rng = np.random.default_rng(0)
        assert injector.perturb_delay(1.0, Level.NODE, 2e-6, rng) == 2e-6
        assert injector.perturb_delay(1.0, Level.REMOTE, 2e-6, rng) == \
            pytest.approx(6e-6)

    def test_link_fault_jitter_only_adds(self):
        injector = FaultInjector(FaultSchedule(name="s", faults=[
            LinkFault(start=0.0, length=5.0, jitter=1e-6),
        ]))
        rng = np.random.default_rng(0)
        draws = [
            injector.perturb_delay(1.0, Level.REMOTE, 2e-6, rng)
            for _ in range(200)
        ]
        assert min(draws) >= 2e-6
        assert np.mean(draws) == pytest.approx(3e-6, rel=0.25)

    def test_nic_gap_factor_targets_node(self):
        injector = FaultInjector(FaultSchedule(name="s", faults=[
            NicStormFault(start=10.0, length=5.0, node=1, gap_factor=6.0),
        ]))
        assert injector.nic_gap_factor(12.0, node=1) == 6.0
        assert injector.nic_gap_factor(12.0, node=0) == 1.0
        assert injector.nic_gap_factor(9.0, node=1) == 1.0

    def test_perturb_compute_slowdown_and_matching(self):
        injector = FaultInjector(
            FaultSchedule(name="s", faults=[
                StragglerFault(start=0.0, length=10.0, rank=1, slowdown=2.0),
            ]),
            node_of=lambda rank: 0,
        )
        rng = np.random.default_rng(0)
        assert injector.perturb_compute(1.0, 1, 1.0, rng) == 2.0
        assert injector.perturb_compute(1.0, 0, 1.0, rng) == 1.0
        assert injector.perturb_compute(11.0, 1, 1.0, rng) == 1.0
        assert injector.computes_perturbed == 1

    def test_directed_link_fault_matches_one_direction(self):
        injector = FaultInjector(FaultSchedule(name="s", faults=[
            LinkFault(start=0.0, length=5.0, latency_factor=3.0,
                      src=1, dst=0),
        ]))
        rng = np.random.default_rng(0)
        hit = injector.perturb_delay(
            1.0, Level.REMOTE, 2e-6, rng, src=1, dst=0
        )
        assert hit == pytest.approx(6e-6)
        # The reverse direction and unrelated links are untouched.
        assert injector.perturb_delay(
            1.0, Level.REMOTE, 2e-6, rng, src=0, dst=1
        ) == 2e-6
        assert injector.perturb_delay(
            1.0, Level.REMOTE, 2e-6, rng, src=2, dst=3
        ) == 2e-6
        assert injector.delays_perturbed == 1

    def test_directed_link_fault_ignores_unkeyed_calls(self):
        """Callers that pass no endpoints never match a directed fault."""
        injector = FaultInjector(FaultSchedule(name="s", faults=[
            LinkFault(start=0.0, length=5.0, latency_factor=3.0,
                      src=1, dst=0),
        ]))
        rng = np.random.default_rng(0)
        assert injector.perturb_delay(1.0, Level.REMOTE, 2e-6, rng) == 2e-6

    def test_broadcast_link_fault_matches_any_link(self):
        injector = FaultInjector(FaultSchedule(name="s", faults=[
            LinkFault(start=0.0, length=5.0, latency_factor=3.0),
        ]))
        rng = np.random.default_rng(0)
        assert injector.perturb_delay(
            1.0, Level.REMOTE, 2e-6, rng, src=2, dst=3
        ) == pytest.approx(6e-6)

    def test_schedule_events_carry_exact_times(self):
        sched = make_scenario("congestion_burst", start=20.0, length=10.0)
        events = FaultInjector(sched).schedule_events()
        assert len(events) == len(sched)
        assert all(e.time == 20.0 and e.duration == 10.0 for e in events)
        assert {e.kind for e in events} == {"link", "nic_storm"}


class TestEngineIntegration:
    def test_straggler_stretches_elapse(self):
        faults = FaultSchedule(name="s", faults=[
            StragglerFault(start=0.0, length=100.0, rank=1, slowdown=2.0),
        ])

        def body(ctx, comm):
            yield from ctx.elapse(1.0)
            return ctx.now

        res = make_sim(faults).run(body)
        assert res.values[1] == pytest.approx(2.0)
        assert all(
            res.values[r] == pytest.approx(1.0) for r in (0, 2, 3)
        )

    def test_straggler_node_targeting(self):
        faults = FaultSchedule(name="s", faults=[
            StragglerFault(start=0.0, length=100.0, node=1, slowdown=3.0),
        ])

        def body(ctx, comm):
            yield from ctx.elapse(1.0)
            return ctx.now

        res = make_sim(faults).run(body)
        # Ranks 2 and 3 live on node 1.
        assert res.values[0] == pytest.approx(1.0)
        assert res.values[2] == pytest.approx(3.0)
        assert res.values[3] == pytest.approx(3.0)

    def test_link_fault_delays_traffic(self):
        def body(ctx, comm):
            for _ in range(10):
                yield from comm.bcast(
                    ctx.rank if comm.rank == 0 else None, root=0
                )
            return ctx.now

        clean = make_sim(None).run(body)
        faults = FaultSchedule(name="s", faults=[
            LinkFault(start=0.0, length=100.0, level="REMOTE",
                      latency_factor=5.0),
        ])
        sim = make_sim(faults)
        degraded = sim.run(body)
        assert max(degraded.values) > max(clean.values)
        assert sim.engine.injector.delays_perturbed > 0

    def test_directed_link_fault_only_hits_its_direction(self):
        def body(ctx, comm):
            for _ in range(10):
                yield from comm.bcast(
                    ctx.rank if comm.rank == 0 else None, root=0
                )
            return ctx.now

        clean = make_sim(None).run(body)
        # A bcast from rank 0 sends 0->r with acks r->0: the 0->2 link
        # carries real traffic, the 3->2 link never occurs.
        hot = FaultSchedule(name="s", faults=[
            LinkFault(start=0.0, length=100.0, latency_factor=50.0,
                      src=0, dst=2),
        ])
        degraded = make_sim(hot).run(body)
        assert max(degraded.values) > max(clean.values)
        # An unused direction leaves the run byte-identical to clean
        # (non-matching faults draw no RNG, and the injector-bearing
        # full path is pinned bit-identical to the quiet path).
        cold = FaultSchedule(name="s", faults=[
            LinkFault(start=0.0, length=100.0, latency_factor=50.0,
                      src=3, dst=2),
        ])
        inert = make_sim(cold).run(body)
        assert inert.values == clean.values

    def test_nic_storm_slows_internode_traffic(self):
        def body(ctx, comm):
            for _ in range(20):
                yield from comm.bcast(
                    ctx.rank if comm.rank == 0 else None, root=0
                )
            return ctx.now

        clean = make_sim(None, network=infiniband_qdr()).run(body)
        faults = FaultSchedule(name="s", faults=[
            NicStormFault(start=0.0, length=100.0, gap_factor=50.0),
        ])
        stormy = make_sim(faults, network=infiniband_qdr()).run(body)
        assert max(stormy.values) > max(clean.values)

    def test_fault_events_emitted_with_exact_times(self):
        sink = RecordingSink()
        faults = make_scenario("congestion_burst", start=2.0, length=1.0)

        def body(ctx, comm):
            yield from ctx.elapse(0.1)
            return 0

        make_sim(faults, sink=sink).run(body)
        events = sink.of_type(FaultInject)
        assert len(events) == 2
        assert all(e.time == 2.0 and e.duration == 1.0 for e in events)

    def test_engine_faults_deterministic_per_seed(self):
        faults = FaultSchedule(name="s", faults=[
            StragglerFault(start=0.0, length=100.0, node=1, slowdown=2.0,
                           noise=1e-3),
            LinkFault(start=0.0, length=100.0, latency_factor=2.0,
                      jitter=5e-6),
        ])

        def body(ctx, comm):
            for _ in range(5):
                yield from comm.bcast(
                    ctx.rank if comm.rank == 0 else None, root=0
                )
                yield from ctx.elapse(0.01)
            return ctx.now

        first = make_sim(faults, network=infiniband_qdr(), seed=7).run(body)
        second = make_sim(faults, network=infiniband_qdr(), seed=7).run(body)
        assert first.values == second.values
        other = make_sim(faults, network=infiniband_qdr(), seed=8).run(body)
        assert first.values != other.values
