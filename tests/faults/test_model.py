"""Tests for fault types, schedules, and preset scenarios."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.model import (
    ClockFrequencyFault,
    ClockStepFault,
    LinkFault,
    NicStormFault,
    StragglerFault,
    fault_from_dict,
)
from repro.faults.schedule import FaultSchedule
from repro.faults.scenarios import SCENARIOS, make_scenario

ALL_FAULTS = [
    ClockStepFault(start=20.0, step=500e-6, node=1),
    ClockFrequencyFault(start=15.0, length=30.0, skew_delta=8e-6, node=0),
    LinkFault(start=20.0, length=10.0, level="REMOTE", latency_factor=3.0),
    NicStormFault(start=20.0, length=10.0, node=2, gap_factor=6.0),
    StragglerFault(start=20.0, length=15.0, node=1, slowdown=4.0),
]


class TestFaultTypes:
    def test_window_semantics(self):
        f = LinkFault(start=10.0, length=5.0, latency_factor=2.0)
        assert f.end == 15.0
        assert not f.active(9.999)
        assert f.active(10.0)
        assert f.active(14.999)
        assert not f.active(15.0)

    def test_instantaneous_fault_has_zero_duration(self):
        f = ClockStepFault(start=10.0, step=1e-3)
        assert f.duration == 0.0
        assert f.end == 10.0

    def test_targets(self):
        assert ClockStepFault(start=0.0, step=1e-3).target() == "cluster"
        assert ClockStepFault(start=0.0, step=1e-3, node=3).target() == \
            "node:3"
        assert NicStormFault(start=0.0, length=1.0).target() == "all-nics"
        assert LinkFault(start=0.0, length=1.0, level="REMOTE",
                         latency_factor=2.0).target() == "level:REMOTE"
        assert StragglerFault(start=0.0, length=1.0, rank=5, node=1,
                              slowdown=2.0).target() == "rank:5"

    def test_straggler_matching(self):
        by_rank = StragglerFault(start=0.0, length=1.0, rank=2, node=0,
                                 slowdown=2.0)
        assert by_rank.matches(rank=2, node=9)
        assert not by_rank.matches(rank=3, node=0)  # rank wins over node
        by_node = StragglerFault(start=0.0, length=1.0, node=1, slowdown=2.0)
        assert by_node.matches(rank=7, node=1)
        assert not by_node.matches(rank=7, node=0)
        everyone = StragglerFault(start=0.0, length=1.0, slowdown=2.0)
        assert everyone.matches(rank=0, node=0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClockStepFault(start=-1.0, step=1e-3)
        with pytest.raises(ConfigurationError):
            ClockStepFault(start=1.0, step=0.0)
        with pytest.raises(ConfigurationError):
            ClockFrequencyFault(start=1.0, length=0.0, skew_delta=1e-6)
        with pytest.raises(ConfigurationError):
            ClockFrequencyFault(start=1.0, length=5.0, skew_delta=1e-6,
                                shape="sawtooth")
        with pytest.raises(ConfigurationError):
            LinkFault(start=1.0, length=5.0)  # perturbs nothing
        with pytest.raises(ConfigurationError):
            LinkFault(start=1.0, length=5.0, latency_factor=2.0,
                      outlier_prob=1.5)
        with pytest.raises(ConfigurationError):
            NicStormFault(start=1.0, length=5.0, gap_factor=1.0)
        with pytest.raises(ConfigurationError):
            StragglerFault(start=1.0, length=5.0)  # slows nothing

    @pytest.mark.parametrize("fault", ALL_FAULTS, ids=lambda f: f.kind)
    def test_dict_round_trip(self, fault):
        assert fault_from_dict(fault.to_dict()) == fault

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            fault_from_dict({"kind": "meteor_strike", "start": 1.0})

    def test_from_dict_rejects_unknown_field(self):
        with pytest.raises(ConfigurationError):
            fault_from_dict({"kind": "clock_step", "start": 1.0,
                             "step": 1e-3, "warp": 9})


class TestFaultSchedule:
    def test_sorted_by_start(self):
        sched = FaultSchedule(name="s", faults=list(reversed(ALL_FAULTS)))
        starts = [f.start for f in sched]
        assert starts == sorted(starts)

    def test_window_spans_all_faults(self):
        sched = FaultSchedule(name="s", faults=ALL_FAULTS)
        assert sched.window() == (15.0, 45.0)
        assert FaultSchedule(name="empty").window() is None

    def test_selectors(self):
        sched = FaultSchedule(name="s", faults=ALL_FAULTS)
        assert len(sched.clock_faults(node=1)) == 1  # step targets node 1
        assert len(sched.clock_faults(node=0)) == 1  # freq targets node 0
        cluster_step = FaultSchedule(
            name="c", faults=[ClockStepFault(start=1.0, step=1e-3)]
        )
        assert len(cluster_step.clock_faults(node=7)) == 1
        assert len(sched.link_faults()) == 1
        assert len(sched.nic_faults()) == 1
        assert len(sched.straggler_faults()) == 1
        assert sched.has_engine_faults
        assert not cluster_step.has_engine_faults

    def test_json_round_trip(self):
        sched = FaultSchedule(name="s", description="d", faults=ALL_FAULTS)
        assert FaultSchedule.from_json(sched.to_json()) == sched

    def test_save_load(self, tmp_path):
        sched = FaultSchedule(name="s", faults=ALL_FAULTS)
        path = tmp_path / "scenario.json"
        sched.save(path)
        assert FaultSchedule.load(path) == sched

    def test_needs_name(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule(name="")

    def test_from_dict_missing_name(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule.from_dict({"faults": []})


class TestScenarios:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_presets_build_and_round_trip(self, name):
        sched = make_scenario(name)
        assert sched.name == name
        assert len(sched) >= 1
        assert FaultSchedule.from_json(sched.to_json()) == sched

    def test_overrides(self):
        sched = make_scenario("ntp_step", at=5.0, step=-1e-3, node=0)
        (fault,) = sched
        assert fault.start == 5.0
        assert fault.step == -1e-3
        assert fault.node == 0

    def test_unknown_scenario(self):
        with pytest.raises(ConfigurationError):
            make_scenario("solar_flare")
