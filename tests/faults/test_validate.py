"""FaultSchedule.validate: one test per rejection path."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults.evaluate import run_recovery
from repro.faults.model import (
    ClockStepFault,
    LinkFault,
    NicStormFault,
    StragglerFault,
)
from repro.faults.schedule import FaultSchedule
from repro.faults.scenarios import ntp_step


def schedule(*faults):
    return FaultSchedule(name="s", faults=list(faults))


class TestValidate:
    def test_valid_schedule_chains(self):
        s = schedule(ClockStepFault(start=1.0, step=1e-3, node=0))
        assert s.validate(num_ranks=4, num_nodes=2, horizon=10.0) is s

    def test_rank_out_of_range_rejected(self):
        s = schedule(StragglerFault(start=1.0, length=1.0, rank=7, slowdown=2.0))
        with pytest.raises(ConfigurationError, match="rank 7"):
            s.validate(num_ranks=4)

    def test_negative_rank_rejected(self):
        s = schedule(StragglerFault(start=1.0, length=1.0, rank=-1, slowdown=2.0))
        with pytest.raises(ConfigurationError, match="rank -1"):
            s.validate(num_ranks=4)

    def test_node_out_of_range_rejected(self):
        s = schedule(NicStormFault(start=1.0, length=1.0, node=5))
        with pytest.raises(ConfigurationError, match="node 5"):
            s.validate(num_nodes=2)

    def test_start_beyond_horizon_rejected(self):
        s = schedule(LinkFault(start=50.0, length=1.0, latency_factor=2.0))
        with pytest.raises(ConfigurationError, match="never fire"):
            s.validate(horizon=30.0)

    def test_start_at_horizon_rejected(self):
        s = schedule(LinkFault(start=30.0, length=1.0, latency_factor=2.0))
        with pytest.raises(ConfigurationError, match="never fire"):
            s.validate(horizon=30.0)

    def test_none_bounds_skip_checks(self):
        """Unbounded validation accepts anything (all checks opt-in)."""
        s = schedule(
            StragglerFault(start=1e9, length=1.0, rank=999, node=999,
                           slowdown=2.0)
        )
        assert s.validate() is s
        assert s.validate(num_ranks=None, num_nodes=None, horizon=None) is s

    def test_untargeted_faults_ignore_shape(self):
        """Cluster-wide faults (rank/node None) pass any job shape."""
        s = schedule(
            LinkFault(start=1.0, length=1.0, latency_factor=2.0),
            ClockStepFault(start=2.0, step=1e-3, node=None),
        )
        assert s.validate(num_ranks=1, num_nodes=1, horizon=10.0) is s

    def test_link_src_out_of_range_rejected(self):
        s = schedule(
            LinkFault(start=1.0, length=1.0, latency_factor=2.0,
                      src=9, dst=0, name="directed")
        )
        with pytest.raises(ConfigurationError, match="src to rank 9"):
            s.validate(num_ranks=4)

    def test_link_dst_out_of_range_rejected(self):
        s = schedule(
            LinkFault(start=1.0, length=1.0, latency_factor=2.0,
                      src=0, dst=4, name="directed")
        )
        with pytest.raises(ConfigurationError, match="dst to rank 4"):
            s.validate(num_ranks=4)

    def test_link_endpoints_in_range_accepted(self):
        s = schedule(
            LinkFault(start=1.0, length=1.0, latency_factor=2.0,
                      src=3, dst=0)
        )
        assert s.validate(num_ranks=4, horizon=10.0) is s

    def test_broadcast_link_ignores_rank_count(self):
        """An undirected link fault is valid on any shape."""
        s = schedule(LinkFault(start=1.0, length=1.0, latency_factor=2.0))
        assert s.validate(num_ranks=1) is s

    def test_first_offender_named(self):
        s = schedule(
            ClockStepFault(start=1.0, step=1e-3, node=0, name="fine"),
            NicStormFault(start=2.0, length=1.0, node=9, name="broken"),
        )
        with pytest.raises(ConfigurationError, match="broken"):
            s.validate(num_nodes=2)


class TestValidationWiring:
    def test_simulation_rejects_bad_node(self):
        from repro.cluster.netmodels import ideal_network
        from repro.cluster.topology import Machine
        from repro.simmpi.simulation import Simulation

        machine = Machine(num_nodes=2, sockets_per_node=1,
                          cores_per_socket=1, ranks_per_node=1,
                          name="valbox")
        with pytest.raises(ConfigurationError, match="node 7"):
            Simulation(
                machine=machine, network=ideal_network(), seed=0,
                faults=schedule(
                    ClockStepFault(start=1.0, step=1e-3, node=7)
                ),
            )

    def test_run_recovery_rejects_beyond_horizon(self):
        """The evaluation validates against its own (small) horizon."""
        with pytest.raises(ConfigurationError, match="never fire"):
            run_recovery(
                ntp_step(at=500.0), resync_age=None, horizon=20.0,
                num_nodes=2, ranks_per_node=1,
            )

    def test_run_recovery_accepts_valid_scenario(self):
        report = run_recovery(
            ntp_step(at=5.0), resync_age=None, horizon=15.0,
            num_nodes=2, ranks_per_node=1,
        )
        assert report.phases
