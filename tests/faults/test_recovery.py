"""Acceptance tests: determinism, recovery bound, and trace export."""

import json

from repro.faults.evaluate import compare_recovery, run_recovery
from repro.faults.scenarios import make_scenario
from repro.obs.chrome_trace import engine_events_to_chrome
from repro.obs.events import FaultInject, RecordingSink

QUICK = dict(horizon=50.0, num_nodes=4, ranks_per_node=2, seed=0)


class TestDeterminism:
    def test_same_scenario_and_seed_reproduce_bit_identically(self):
        scenario = make_scenario("ntp_step")
        sinks = [RecordingSink(), RecordingSink()]
        reports = [
            run_recovery(scenario, resync_age=8.0, sink=sink, **QUICK)
            for sink in sinks
        ]
        assert reports[0].samples == reports[1].samples
        assert reports[0].resync_rounds == reports[1].resync_rounds
        assert reports[0].engine_stats == reports[1].engine_stats
        fault_times = [
            [(e.time, e.kind, e.target) for e in sink.of_type(FaultInject)]
            for sink in sinks
        ]
        assert fault_times[0] == fault_times[1]

    def test_different_seed_differs(self):
        scenario = make_scenario("ntp_step")
        a = run_recovery(scenario, resync_age=8.0, **QUICK)
        b = run_recovery(scenario, resync_age=8.0,
                         **{**QUICK, "seed": 1})
        assert a.samples != b.samples


class TestRecovery:
    def test_resync_bounds_ntp_step_error_but_baseline_grows(self):
        reports = compare_recovery(
            make_scenario("ntp_step"), resync_age=8.0, **QUICK
        )
        base, resync = reports["baseline"], reports["resync"]
        # Without resync the 500 us step lands in the error permanently:
        # the after-fault max exceeds both the pre-fault error and the
        # step size itself (step + accumulated drift).
        assert base.phases["after"].max_error > base.phases["before"].max_error
        assert base.tail_max() > 4e-4
        # With periodic resync the post-fault error returns to the
        # pre-fault scale well before the end of the horizon.
        assert resync.tail_max() < 2e-4
        assert resync.tail_max() < base.tail_max() / 2
        assert resync.resync_rounds > 1

    def test_report_dict_shape(self):
        report = run_recovery(
            make_scenario("ntp_step"), resync_age=8.0, **QUICK
        )
        data = report.to_dict()
        assert data["scenario"] == "ntp_step"
        assert set(data["phases"]) == {"before", "during", "after"}
        assert data["resync_rounds"] == report.resync_rounds


class TestTraceExport:
    def test_fault_spans_present_in_chrome_records(self):
        scenario = make_scenario("congestion_burst")
        sink = RecordingSink()
        run_recovery(scenario, resync_age=8.0, sink=sink, **QUICK)
        records = engine_events_to_chrome(sink.events)
        spans = [r for r in records if r.get("cat") == "fault"]
        assert len(spans) == 2
        for span in spans:
            assert span["ph"] == "X"
            assert span["ts"] == 20.0 * 1e6  # true-time microseconds
            assert span["dur"] == 10.0 * 1e6
            assert span["args"]["kind"] in ("link", "nic_storm")
        resyncs = [r for r in records if r.get("name") == "resync_round"]
        assert resyncs and all(r["ph"] == "i" for r in resyncs)

    def test_cli_export_writes_fault_track(self, tmp_path):
        from repro.experiments.fault_recovery import export_chrome_traces

        info = export_chrome_traces(
            str(tmp_path), scale="quick", seed=0,
            scenario="congestion_burst",
        )
        assert info["fault_events"] == 2
        assert info["resync_events"] > 0
        with open(info["path"], encoding="utf-8") as fh:
            records = json.load(fh)
        assert any(r.get("cat") == "fault" for r in records)
