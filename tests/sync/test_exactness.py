"""Exactness tests: with noise-free clocks and a symmetric network, every
synchronization algorithm must recover the clock relationship essentially
exactly (the only residual error is timestamping asymmetry and float
round-off).  This isolates algorithmic correctness from statistics.
"""

import pytest

from repro.analysis.accuracy import ground_truth_accuracy
from repro.cluster.netmodels import ideal_network
from repro.sync import (
    HCA2Sync,
    HCA3Sync,
    HCASync,
    JKSync,
    SKaMPIOffset,
)
from repro.sync.clocks import stack_depth
from tests.conftest import PERFECT_TIME, run_spmd

#: Clocks with big constant offsets and ppm-scale constant skews — a
#: perfectly linear world where the model class is exactly right.
LINEAR_WORLD = PERFECT_TIME.with_(
    offset_scale=100.0,
    offset_is_uniform=True,
    skew_scale=20e-6,
)

ALGOS = [JKSync, HCASync, HCA2Sync, HCA3Sync]


def sync_all(cls, nprocs, seed=0, spacing=2e-3):
    def main(ctx, comm):
        alg = cls(offset_alg=SKaMPIOffset(4), nfitpoints=10,
                  fitpoint_spacing=spacing)
        t0 = ctx.now
        clk = yield from alg.sync_clocks(comm, ctx.hardware_clock)
        return clk, ctx.now - t0

    _, res = run_spmd(main, num_nodes=nprocs, ranks_per_node=1,
                      network=ideal_network(latency=1e-6),
                      time_source=LINEAR_WORLD, seed=seed)
    clocks = [v[0] for v in res.values]
    duration = max(v[1] for v in res.values)
    return clocks, duration


class TestLinearWorldExactness:
    @pytest.mark.parametrize("cls", ALGOS)
    @pytest.mark.parametrize("nprocs", [2, 3, 5, 8])
    def test_recovers_relationship_exactly(self, cls, nprocs):
        clocks, duration = sync_all(cls, nprocs)
        # Evaluate far in the future: any slope error would be amplified
        # 100x; exact models stay at the ns level.
        err = ground_truth_accuracy(clocks, duration + 100.0)
        assert err < 50e-9, f"{cls.__name__}: {err * 1e9:.1f} ns"

    @pytest.mark.parametrize("cls", ALGOS)
    def test_single_model_layer(self, cls):
        clocks, _ = sync_all(cls, 4)
        assert all(stack_depth(c) == 1 for c in clocks)

    def test_offsets_learned_despite_huge_initial_offset(self):
        clocks, duration = sync_all(HCA3Sync, 4, seed=2)
        # The raw clocks disagree by up to 100 s; the global clocks agree.
        raw_spread = ground_truth_accuracy(
            [c.base for c in clocks], duration
        )
        synced = ground_truth_accuracy(clocks, duration)
        assert raw_spread > 1.0
        assert synced < 1e-6
