"""Unit tests for linear drift models (fit, compose, invert)."""

import numpy as np
import pytest

from repro.errors import SyncError
from repro.sync.linear_model import LinearDriftModel


class TestFit:
    def test_exact_line_recovered(self):
        x = np.linspace(0.0, 10.0, 50)
        y = 3e-6 * x + 0.5
        m = LinearDriftModel.fit(x, y)
        assert m.slope == pytest.approx(3e-6, rel=1e-9)
        assert m.intercept == pytest.approx(0.5, rel=1e-9)

    def test_large_timestamps_numerically_stable(self):
        # clock_gettime-scale x values (tens of thousands of seconds).
        x = 50_000.0 + np.linspace(0.0, 1.0, 100)
        y = 1e-5 * x - 0.123
        m = LinearDriftModel.fit(x, y)
        assert m.slope == pytest.approx(1e-5, rel=1e-6)
        assert m.offset_at(50_000.5) == pytest.approx(
            1e-5 * 50_000.5 - 0.123, abs=1e-12
        )

    def test_noisy_fit_close(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0.0, 100.0, 200)
        y = -2e-6 * x + 1e-3 + rng.normal(0.0, 1e-7, x.size)
        m = LinearDriftModel.fit(x, y)
        assert m.slope == pytest.approx(-2e-6, abs=5e-9)

    def test_single_point_constant_model(self):
        m = LinearDriftModel.fit([1.0], [0.25])
        assert m.slope == 0.0
        assert m.intercept == 0.25

    def test_identical_timestamps_constant_model(self):
        m = LinearDriftModel.fit([2.0, 2.0, 2.0], [1.0, 3.0, 5.0])
        assert m.slope == 0.0
        assert m.intercept == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(SyncError):
            LinearDriftModel.fit([], [])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SyncError):
            LinearDriftModel.fit([1.0, 2.0], [1.0])


class TestApply:
    def test_apply_subtracts_predicted_offset(self):
        m = LinearDriftModel(slope=1e-5, intercept=2.0)
        t = 100.0
        assert m.apply(t) == pytest.approx(t - (1e-5 * t + 2.0))

    def test_apply_inverse_roundtrip(self):
        m = LinearDriftModel(slope=-3e-6, intercept=0.7)
        for t in (0.0, 1.0, 5e4):
            assert m.apply_inverse(m.apply(t)) == pytest.approx(t, rel=1e-12)

    def test_noninvertible_slope(self):
        m = LinearDriftModel(slope=1.0, intercept=0.0)
        with pytest.raises(SyncError):
            m.apply_inverse(1.0)


class TestCompose:
    def test_compose_equals_function_composition(self):
        outer = LinearDriftModel(slope=2e-6, intercept=0.1)
        inner = LinearDriftModel(slope=-1e-6, intercept=0.3)
        merged = outer.compose(inner)
        for t in (0.0, 10.0, 12345.6):
            assert merged.apply(t) == pytest.approx(
                outer.apply(inner.apply(t)), rel=1e-12, abs=1e-12
            )

    def test_compose_with_zero_is_identity(self):
        m = LinearDriftModel(slope=5e-6, intercept=-0.2)
        assert m.compose(LinearDriftModel.ZERO) == m
        z = LinearDriftModel.ZERO.compose(m)
        assert z.slope == pytest.approx(m.slope)
        assert z.intercept == pytest.approx(m.intercept)

    def test_compose_associative(self):
        a = LinearDriftModel(1e-6, 0.1)
        b = LinearDriftModel(-2e-6, 0.2)
        c = LinearDriftModel(3e-6, -0.3)
        left = a.compose(b).compose(c)
        right = a.compose(b.compose(c))
        assert left.slope == pytest.approx(right.slope, rel=1e-12)
        assert left.intercept == pytest.approx(right.intercept, rel=1e-12)


class TestUtilities:
    def test_with_intercept(self):
        m = LinearDriftModel(1e-6, 5.0).with_intercept(7.0)
        assert m == LinearDriftModel(1e-6, 7.0)

    def test_r_squared_perfect(self):
        x = np.linspace(0, 10, 20)
        assert LinearDriftModel.r_squared(x, 2 * x + 1) == pytest.approx(1.0)

    def test_r_squared_poor_for_curvature(self):
        x = np.linspace(0, 10, 50)
        y = (x - 5.0) ** 2
        assert LinearDriftModel.r_squared(x, y) < 0.3

    def test_r_squared_constant_series(self):
        assert LinearDriftModel.r_squared([1, 2, 3], [5, 5, 5]) == 1.0

    def test_as_tuple(self):
        assert LinearDriftModel(1.5, 2.5).as_tuple() == (1.5, 2.5)
