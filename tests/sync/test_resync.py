"""Tests for the periodic re-synchronization extension."""

import pytest

from repro.analysis.accuracy import ground_truth_accuracy
from repro.cluster.netmodels import infiniband_qdr
from repro.errors import SyncError
from repro.simtime.sources import CLOCK_GETTIME
from repro.sync.hierarchical import h2hca
from repro.sync.resync import ErrorBoundResyncClock, PeriodicResyncClock
from tests.conftest import run_spmd

#: Fast-drifting clocks so staleness matters within seconds.
TWITCHY = CLOCK_GETTIME.with_(skew_walk_sigma=1e-6)


def resync_main(max_age, waits, per_rank_state):
    def main(ctx, comm):
        resync = per_rank_state.setdefault(
            ctx.rank,
            PeriodicResyncClock(
                h2hca(nfitpoints=10, fitpoint_spacing=1e-4),
                max_model_age=max_age,
            ),
        )
        clocks = []
        for wait in waits:
            clock = yield from resync.ensure(comm, ctx)
            clocks.append(clock)
            yield from ctx.elapse(wait)
        return clocks, resync.resync_count

    return main


class TestPeriodicResync:
    def test_first_ensure_syncs(self):
        state = {}
        _, res = run_spmd(resync_main(10.0, [0.0], state),
                          network=infiniband_qdr(),
                          time_source=TWITCHY, seed=1)
        assert all(count == 1 for _, count in res.values)

    def test_fresh_model_not_resynced(self):
        state = {}
        _, res = run_spmd(resync_main(10.0, [1.0, 1.0, 1.0], state),
                          network=infiniband_qdr(),
                          time_source=TWITCHY, seed=2)
        assert all(count == 1 for _, count in res.values)

    def test_stale_model_resynced(self):
        state = {}
        _, res = run_spmd(resync_main(5.0, [6.0, 6.0, 0.0], state),
                          network=infiniband_qdr(),
                          time_source=TWITCHY, seed=3)
        # ensure #1 syncs; #2 (age 6 > 5) resyncs; #3 (age 6) resyncs.
        assert all(count == 3 for _, count in res.values)

    def test_all_ranks_agree_on_resync(self):
        state = {}
        _, res = run_spmd(resync_main(5.0, [6.0, 1.0, 6.0, 0.0], state),
                          network=infiniband_qdr(),
                          time_source=TWITCHY, seed=4)
        counts = {count for _, count in res.values}
        assert len(counts) == 1

    def test_accuracy_maintained_over_long_horizon(self):
        """The headline: with resync the error stays bounded; the
        original model degrades over the same horizon."""
        state = {}
        _, res = run_spmd(
            resync_main(8.0, [20.0, 20.0, 0.0], state),
            network=infiniband_qdr(), time_source=TWITCHY, seed=5,
            num_nodes=4, ranks_per_node=2,
        )
        # Final clocks (freshly resynced) vs the ORIGINAL first clocks,
        # both evaluated at the end of the run (~40 s in).
        t_eval = 41.0
        first = [v[0][0] for v in res.values]
        last = [v[0][-1] for v in res.values]
        err_original = ground_truth_accuracy(first, t_eval)
        err_resynced = ground_truth_accuracy(last, t_eval)
        assert err_resynced < err_original

    def test_resync_rounds_are_observable(self):
        from repro.obs.events import RecordingSink, ResyncRound, default_sink
        from repro.obs.metrics import MetricsRegistry, default_metrics

        state = {}
        sink = RecordingSink()
        registry = MetricsRegistry()
        with default_sink(sink), default_metrics(registry):
            _, res = run_spmd(resync_main(5.0, [6.0, 6.0, 0.0], state),
                              network=infiniband_qdr(),
                              time_source=TWITCHY, seed=3)
        counts = [count for _, count in res.values]
        events = sink.of_type(ResyncRound)
        # One event per rank per round, numbered 1..resync_count.
        assert len(events) == sum(counts)
        for rank, count in enumerate(counts):
            rounds = [e.round_index for e in events if e.rank == rank]
            assert rounds == list(range(1, count + 1))
        # Re-sync rounds (not the initial sync) report the model age on
        # EVERY rank — the age rides along with the broadcast decision.
        for rank in range(len(counts)):
            later = [e for e in events
                     if e.rank == rank and e.round_index >= 2]
            assert later and all(e.age >= 5.0 for e in later)
        assert registry.merged_counter("resync.rounds") == sum(counts)

    def test_clock_property_before_sync_raises(self):
        resync = PeriodicResyncClock(h2hca(nfitpoints=5))
        with pytest.raises(SyncError):
            _ = resync.clock

    def test_validation(self):
        with pytest.raises(SyncError):
            PeriodicResyncClock(h2hca(nfitpoints=5), max_model_age=0.0)

    def test_label(self):
        resync = PeriodicResyncClock(h2hca(nfitpoints=5),
                                     max_model_age=10.0)
        assert resync.label().startswith("resync[10s]/Top/hca3")


def slo_resync_main(slo, waits, per_rank_state, **policy_kwargs):
    def main(ctx, comm):
        resync = per_rank_state.setdefault(
            ctx.rank,
            ErrorBoundResyncClock(
                h2hca(nfitpoints=10, fitpoint_spacing=1e-4),
                slo=slo, **policy_kwargs,
            ),
        )
        ages = []
        for wait in waits:
            yield from resync.ensure(comm, ctx)
            ages.append(resync.last_age)
            yield from ctx.elapse(wait)
        return ages, resync.resync_count

    return main


class TestErrorBoundResync:
    def test_tight_slo_resyncs(self):
        # 1 µs/s drift rate against a 3 µs SLO at margin 0.8: the bound
        # crosses 2.4 µs within ~2.4 s, so 6 s waits force a round each
        # ensure.
        state = {}
        _, res = run_spmd(
            slo_resync_main(3e-6, [6.0, 6.0, 0.0], state, drift=1e-6),
            network=infiniband_qdr(), time_source=TWITCHY, seed=3,
        )
        assert all(count == 3 for _, count in res.values)

    def test_loose_slo_syncs_once(self):
        state = {}
        _, res = run_spmd(
            slo_resync_main(1.0, [6.0, 6.0, 0.0], state, drift=1e-6),
            network=infiniband_qdr(), time_source=TWITCHY, seed=3,
        )
        assert all(count == 1 for _, count in res.values)

    def test_drift_defaults_to_hardware_model(self):
        # No explicit drift: rank 0's RandomWalkDrift error_growth drives
        # the decision; the tight SLO still forces resync rounds.
        state = {}
        _, res = run_spmd(
            slo_resync_main(1e-6, [8.0, 8.0, 0.0], state, margin=0.5),
            network=infiniband_qdr(), time_source=TWITCHY, seed=3,
        )
        assert all(count >= 2 for _, count in res.values)

    def test_age_known_on_all_ranks(self):
        state = {}
        _, res = run_spmd(
            slo_resync_main(3e-6, [6.0, 0.0], state, drift=1e-6),
            network=infiniband_qdr(), time_source=TWITCHY, seed=4,
        )
        for ages, _count in res.values:
            assert ages[0] == -1.0  # before the first sync
            assert ages[1] >= 5.0   # broadcast with the decision

    def test_validation(self):
        alg = h2hca(nfitpoints=5)
        with pytest.raises(SyncError):
            ErrorBoundResyncClock(alg, slo=0.0)
        with pytest.raises(SyncError):
            ErrorBoundResyncClock(alg, slo=1e-6, margin=0.0)
        with pytest.raises(SyncError):
            ErrorBoundResyncClock(alg, slo=1e-6, margin=1.5)
        with pytest.raises(SyncError):
            ErrorBoundResyncClock(alg, slo=1e-6, base_error=-1.0)

    def test_label(self):
        resync = ErrorBoundResyncClock(h2hca(nfitpoints=5), slo=25e-6)
        assert resync.label().startswith("slo[2.5e-05s@0.8]/Top/hca3")
