"""Behavioural tests for the synchronization algorithms (JK/HCA*/HCA3).

Each algorithm must produce, on every rank, a global clock whose readings
agree with rank 0's within a small error, for power-of-two and
non-power-of-two process counts.
"""

import pytest

from repro.analysis.accuracy import ground_truth_accuracy
from repro.cluster.netmodels import infiniband_qdr
from repro.simtime.sources import CLOCK_GETTIME
from repro.sync import (
    HCA2Sync,
    HCA3Sync,
    HCASync,
    JKSync,
    SKaMPIOffset,
)
from tests.conftest import run_spmd

ALGOS = {
    "jk": JKSync,
    "hca": HCASync,
    "hca2": HCA2Sync,
    "hca3": HCA3Sync,
}

#: Quiet clocks so accuracy assertions are tight.
QUIET = CLOCK_GETTIME.with_(skew_walk_sigma=1e-9)


def sync_and_eval(cls, nodes=4, rpn=1, seed=0, network=None,
                  nfitpoints=12, spacing=1e-3, **alg_kw):
    def main(ctx, comm):
        alg = cls(offset_alg=SKaMPIOffset(8), nfitpoints=nfitpoints,
                  fitpoint_spacing=spacing, **alg_kw)
        t0 = ctx.now
        clk = yield from alg.sync_clocks(comm, ctx.hardware_clock)
        return (clk, ctx.now - t0)

    sim, res = run_spmd(main, num_nodes=nodes, ranks_per_node=rpn,
                        network=network or infiniband_qdr(),
                        time_source=QUIET, seed=seed)
    clocks = [v[0] for v in res.values]
    duration = max(v[1] for v in res.values)
    return clocks, duration


class TestAccuracy:
    @pytest.mark.parametrize("name", sorted(ALGOS))
    @pytest.mark.parametrize("nprocs", [2, 3, 4, 7, 8])
    def test_global_clocks_agree(self, name, nprocs):
        clocks, duration = sync_and_eval(
            ALGOS[name], nodes=nprocs, rpn=1, seed=1
        )
        err = ground_truth_accuracy(clocks, duration + 0.01)
        assert err < 5e-6, f"{name} at p={nprocs}: {err * 1e6:.2f} us"

    @pytest.mark.parametrize("name", sorted(ALGOS))
    def test_still_accurate_after_wait(self, name):
        clocks, duration = sync_and_eval(ALGOS[name], nodes=4, seed=2,
                                         nfitpoints=20, spacing=5e-3)
        err = ground_truth_accuracy(clocks, duration + 5.0)
        assert err < 30e-6

    @pytest.mark.parametrize("name", sorted(ALGOS))
    def test_rank0_clock_is_identity(self, name):
        clocks, duration = sync_and_eval(ALGOS[name], nodes=2, seed=3)
        t = duration + 1.0
        # Rank 0 is the time source: its global clock equals its hw clock.
        from repro.sync.clocks import base_hardware_clock

        base = base_hardware_clock(clocks[0])
        assert clocks[0].read(t) == pytest.approx(base.read(t), abs=1e-9)

    def test_single_process_noop(self):
        clocks, duration = sync_and_eval(HCA3Sync, nodes=1, rpn=1)
        assert duration < 1e-3


class TestDuration:
    def test_jk_slower_than_hca3(self):
        _, d_jk = sync_and_eval(JKSync, nodes=8, seed=4)
        _, d_hca3 = sync_and_eval(HCA3Sync, nodes=8, seed=4)
        # JK: 7 sequential clients; HCA3: 3 rounds.
        assert d_jk > 1.5 * d_hca3

    def test_hca3_scales_logarithmically(self):
        _, d8 = sync_and_eval(HCA3Sync, nodes=8, seed=5)
        _, d16 = sync_and_eval(HCA3Sync, nodes=16, seed=5)
        # log2(16)/log2(8) = 4/3; allow generous slack.
        assert d16 < 2.0 * d8

    def test_jk_scales_linearly(self):
        _, d4 = sync_and_eval(JKSync, nodes=4, seed=6)
        _, d8 = sync_and_eval(JKSync, nodes=8, seed=6)
        assert d8 > 1.6 * d4


class TestLabels:
    def test_labels_roundtrip_structure(self):
        alg = HCA3Sync(offset_alg=SKaMPIOffset(100), nfitpoints=1000,
                       recompute_intercept=True)
        assert alg.label() == (
            "hca3/recompute_intercept/1000/skampi_offset/100"
        )

    def test_label_without_recompute(self):
        alg = JKSync(offset_alg=SKaMPIOffset(20), nfitpoints=1000)
        assert alg.label() == "jk/1000/skampi_offset/20"
