"""Unit tests for the algorithm-label parser."""

import pytest

from repro.errors import ConfigurationError
from repro.sync.clockprop import ClockPropagationSync
from repro.sync.hca import HCA2Sync, HCASync
from repro.sync.hca3 import HCA3Sync
from repro.sync.hierarchical import HierarchicalSync
from repro.sync.jk import JKSync
from repro.sync.offset import MeanRTTOffset, SKaMPIOffset
from repro.sync.registry import algorithm_from_label, label_of


class TestFlatLabels:
    def test_paper_hca_label(self):
        alg = algorithm_from_label("hca/1000/skampi offset/100")
        assert isinstance(alg, HCASync)
        assert alg.nfitpoints == 1000
        assert isinstance(alg.offset_alg, SKaMPIOffset)
        assert alg.offset_alg.nexchanges == 100
        assert not alg.recompute_intercept

    def test_paper_hca2_recompute_label(self):
        alg = algorithm_from_label(
            "hca2/recompute intercept/1000/skampi offset/100"
        )
        assert isinstance(alg, HCA2Sync)
        assert alg.recompute_intercept

    def test_paper_hca3_label_case_insensitive(self):
        alg = algorithm_from_label(
            "HCA3/Recompute_Intercept/500/SKaMPI-Offset/100"
        )
        assert isinstance(alg, HCA3Sync)
        assert alg.nfitpoints == 500

    def test_jk_with_mean_rtt(self):
        alg = algorithm_from_label("jk/1000/mean_rtt_offset/20")
        assert isinstance(alg, JKSync)
        assert isinstance(alg.offset_alg, MeanRTTOffset)

    def test_clockprop_alone(self):
        alg = algorithm_from_label("ClockPropagation")
        assert isinstance(alg, ClockPropagationSync)

    def test_fitpoint_spacing_forwarded(self):
        alg = algorithm_from_label("hca3/10/skampi_offset/5",
                                   fitpoint_spacing=2e-3)
        assert alg.fitpoint_spacing == 2e-3

    def test_roundtrip(self):
        label = "hca3/recompute_intercept/1000/skampi_offset/100"
        assert label_of(algorithm_from_label(label)) == label


class TestHierarchicalLabels:
    def test_paper_top_bottom_label(self):
        alg = algorithm_from_label(
            "Top/hca3/1000/SKaMPI-Offset/100/Bottom/ClockPropagation"
        )
        assert isinstance(alg, HierarchicalSync)
        assert isinstance(alg.inter_node, HCA3Sync)
        assert isinstance(alg.intra_node, ClockPropagationSync)
        assert alg.inter_socket is None

    def test_top_mid_bottom(self):
        alg = algorithm_from_label(
            "Top/hca3/100/skampi_offset/10"
            "/Mid/hca2/50/skampi_offset/10"
            "/Bottom/ClockPropagation"
        )
        assert isinstance(alg.inter_socket, HCA2Sync)

    def test_missing_bottom_rejected(self):
        with pytest.raises(ConfigurationError):
            algorithm_from_label("Top/hca3/100/skampi_offset/10")

    def test_tokens_before_top_rejected(self):
        with pytest.raises(ConfigurationError):
            algorithm_from_label("hca3/Top/100/skampi_offset/10/Bottom/x")


class TestErrors:
    def test_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            algorithm_from_label("warpspeed/100/skampi_offset/10")

    def test_unknown_offset(self):
        with pytest.raises(ConfigurationError):
            algorithm_from_label("hca3/100/quantum_offset/10")

    def test_bad_numeric(self):
        with pytest.raises(ConfigurationError):
            algorithm_from_label("hca3/many/skampi_offset/10")

    def test_wrong_arity(self):
        with pytest.raises(ConfigurationError):
            algorithm_from_label("hca3/100/skampi_offset")

    def test_clockprop_with_params_rejected(self):
        with pytest.raises(ConfigurationError):
            algorithm_from_label("clockpropagation/100")

    def test_empty_label(self):
        with pytest.raises(ConfigurationError):
            algorithm_from_label("")
