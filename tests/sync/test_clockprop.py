"""Unit tests for ClockPropSync (Algorithm 3)."""

import pytest

from repro.analysis.accuracy import ground_truth_accuracy
from repro.cluster.netmodels import ideal_network
from repro.errors import SyncError
from repro.simtime.sources import CLOCK_GETTIME
from repro.sync.clockprop import ClockPropagationSync
from repro.sync.clocks import GlobalClockLM, dummy_global_clock
from repro.sync.linear_model import LinearDriftModel
from tests.conftest import run_spmd


def clone_main(model=LinearDriftModel(1e-5, 0.25)):
    def main(ctx, comm):
        alg = ClockPropagationSync()
        if comm.rank == 0:
            clk = GlobalClockLM(ctx.hardware_clock, model)
        else:
            clk = dummy_global_clock(ctx.hardware_clock)
        out = yield from alg.sync_clocks(comm, clk)
        return out

    return main


class TestClone:
    def test_all_ranks_get_identical_readings_shared_source(self):
        _, res = run_spmd(clone_main(), num_nodes=1, ranks_per_node=4,
                          network=ideal_network(),
                          time_source=CLOCK_GETTIME, seed=1)
        clocks = res.values
        err = ground_truth_accuracy(clocks, 5.0)
        assert err < 1e-12

    def test_identity_model_propagates(self):
        _, res = run_spmd(clone_main(LinearDriftModel.ZERO), num_nodes=1,
                          ranks_per_node=3, network=ideal_network(),
                          time_source=CLOCK_GETTIME, seed=2)
        clocks = res.values
        base = clocks[0]
        for c in clocks[1:]:
            assert c.read(3.0) == base.read(3.0)

    def test_nested_stack_survives_clone(self):
        def main(ctx, comm):
            alg = ClockPropagationSync()
            if comm.rank == 0:
                inner = GlobalClockLM(ctx.hardware_clock,
                                      LinearDriftModel(2e-6, 1.0))
                clk = GlobalClockLM(inner, LinearDriftModel(-1e-6, 0.5))
            else:
                clk = dummy_global_clock(ctx.hardware_clock)
            out = yield from alg.sync_clocks(comm, clk)
            from repro.sync.clocks import stack_depth

            return (out, stack_depth(out))

        _, res = run_spmd(main, num_nodes=1, ranks_per_node=3,
                          network=ideal_network(),
                          time_source=CLOCK_GETTIME, seed=3)
        depths = [d for _, d in res.values]
        assert depths == [2, 2, 2]
        clocks = [c for c, _ in res.values]
        for c in clocks[1:]:
            assert c.read(2.0) == pytest.approx(clocks[0].read(2.0))

    def test_incorrect_when_sources_differ(self):
        """Violating the shared-source precondition gives a wrong clock."""
        _, res = run_spmd(clone_main(), num_nodes=2, ranks_per_node=1,
                          network=ideal_network(),
                          time_source=CLOCK_GETTIME, seed=4,
                          clocks_per="node")
        clocks = res.values
        # Nodes have different hardware clocks; cloning rank 0's model onto
        # rank 1's clock does NOT produce agreement.
        err = ground_truth_accuracy(clocks, 5.0)
        assert err > 1e-3

    def test_p_ref_out_of_range(self):
        def main(ctx, comm):
            alg = ClockPropagationSync(p_ref=10)
            try:
                yield from alg.sync_clocks(
                    comm, dummy_global_clock(ctx.hardware_clock)
                )
            except SyncError:
                return "raised"
            return "no"

        _, res = run_spmd(main, num_nodes=1, ranks_per_node=2,
                          network=ideal_network())
        assert all(v == "raised" for v in res.values)

    def test_label(self):
        assert ClockPropagationSync().label() == "clockpropagation"
