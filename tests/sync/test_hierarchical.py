"""Tests for the HlHCA hierarchical synchronization scheme."""

import pytest

from repro.analysis.accuracy import ground_truth_accuracy
from repro.cluster.netmodels import infiniband_qdr
from repro.simtime.sources import CLOCK_GETTIME
from repro.sync import HCA3Sync, SKaMPIOffset
from repro.sync.clockprop import ClockPropagationSync
from repro.sync.hierarchical import HierarchicalSync, h2hca, h3hca
from tests.conftest import run_spmd

QUIET = CLOCK_GETTIME.with_(skew_walk_sigma=1e-9)


def sync_main(alg_factory):
    def main(ctx, comm):
        alg = main.algs.setdefault(ctx.rank, alg_factory())
        t0 = ctx.now
        clk = yield from alg.sync_clocks(comm, ctx.hardware_clock)
        return (clk, ctx.now - t0)

    main.algs = {}
    return main


class TestH2HCA:
    @pytest.mark.parametrize("nodes,rpn", [(2, 2), (4, 4), (3, 2)])
    def test_accurate_global_clock(self, nodes, rpn):
        main = sync_main(lambda: h2hca(nfitpoints=12,
                                       fitpoint_spacing=1e-3))
        _, res = run_spmd(main, num_nodes=nodes, ranks_per_node=rpn,
                          network=infiniband_qdr(), time_source=QUIET,
                          seed=5)
        clocks = [v[0] for v in res.values]
        duration = max(v[1] for v in res.values)
        assert ground_truth_accuracy(clocks, duration + 0.1) < 5e-6

    def test_intranode_clocks_identical(self):
        """ClockPropSync clones: all ranks of a node read identically."""
        main = sync_main(lambda: h2hca(nfitpoints=10,
                                       fitpoint_spacing=1e-3))
        _, res = run_spmd(main, num_nodes=2, ranks_per_node=4,
                          network=infiniband_qdr(), time_source=QUIET,
                          seed=6)
        clocks = [v[0] for v in res.values]
        t = 3.0
        for node_start in (0, 4):
            readings = {clocks[node_start + i].read(t) for i in range(4)}
            assert len(readings) == 1

    def test_faster_than_flat_hca3(self):
        flat = sync_main(
            lambda: HCA3Sync(offset_alg=SKaMPIOffset(10), nfitpoints=12,
                             fitpoint_spacing=1e-3)
        )
        hier = sync_main(lambda: h2hca(nfitpoints=12,
                                       fitpoint_spacing=1e-3))
        _, res_flat = run_spmd(flat, num_nodes=4, ranks_per_node=4,
                               network=infiniband_qdr(), time_source=QUIET,
                               seed=7)
        _, res_hier = run_spmd(hier, num_nodes=4, ranks_per_node=4,
                               network=infiniband_qdr(), time_source=QUIET,
                               seed=7)
        d_flat = max(v[1] for v in res_flat.values)
        d_hier = max(v[1] for v in res_hier.values)
        # 4 rounds (log2 16) vs 2 rounds (log2 4) + comm creation + bcast.
        assert d_hier < d_flat

    def test_single_node_degenerates_to_intranode_only(self):
        main = sync_main(lambda: h2hca(nfitpoints=8, fitpoint_spacing=1e-3))
        _, res = run_spmd(main, num_nodes=1, ranks_per_node=4,
                          network=infiniband_qdr(), time_source=QUIET,
                          seed=8)
        clocks = [v[0] for v in res.values]
        assert ground_truth_accuracy(clocks, 1.0) < 1e-9

    def test_comm_cache_reused_within_engine(self):
        def main(ctx, comm):
            alg = main.algs.setdefault(
                ctx.rank, h2hca(nfitpoints=6, fitpoint_spacing=1e-4)
            )
            yield from alg.sync_clocks(comm, ctx.hardware_clock)
            t_mid = ctx.now
            yield from alg.sync_clocks(comm, ctx.hardware_clock)
            return (t_mid, ctx.now - t_mid)

        main.algs = {}
        _, res = run_spmd(main, num_nodes=2, ranks_per_node=2,
                          network=infiniband_qdr(), time_source=QUIET,
                          seed=9)
        # Second sync skips communicator creation: strictly cheaper than
        # the first (which paid for two splits).
        first = max(v[0] for v in res.values)
        second = max(v[1] for v in res.values)
        assert second < first


class TestH3HCA:
    def test_three_level_accuracy_with_socket_clocks(self):
        main = sync_main(lambda: h3hca(nfitpoints=10,
                                       fitpoint_spacing=1e-3))
        _, res = run_spmd(main, num_nodes=2, ranks_per_node=4,
                          network=infiniband_qdr(), time_source=QUIET,
                          seed=10, clocks_per="socket")
        clocks = [v[0] for v in res.values]
        duration = max(v[1] for v in res.values)
        assert ground_truth_accuracy(clocks, duration + 0.1) < 10e-6

    def test_h2_clockprop_wrong_with_socket_clocks(self):
        """Paper's semantic-correctness warning: ClockPropSync across
        sockets with per-socket time sources yields an incorrect clock."""
        main = sync_main(lambda: h2hca(nfitpoints=10,
                                       fitpoint_spacing=1e-3))
        _, res = run_spmd(main, num_nodes=2, ranks_per_node=4,
                          network=infiniband_qdr(),
                          time_source=CLOCK_GETTIME,
                          seed=11, clocks_per="socket")
        clocks = [v[0] for v in res.values]
        duration = max(v[1] for v in res.values)
        assert ground_truth_accuracy(clocks, duration + 0.1) > 1e-3


class TestLabels:
    def test_h2_label(self):
        alg = h2hca(nfitpoints=500)
        assert alg.label() == (
            "Top/hca3/500/skampi_offset/10/Bottom/clockpropagation"
        )

    def test_h3_label_has_mid(self):
        alg = h3hca(nfitpoints=100)
        assert "/Mid/" in alg.label()

    def test_custom_levels(self):
        alg = HierarchicalSync(
            inter_node=HCA3Sync(nfitpoints=5),
            intra_node=ClockPropagationSync(),
        )
        assert alg.label().startswith("Top/hca3/")
