"""Unit tests for LEARN_CLOCK_MODEL (Algorithm 2)."""

import pytest

from repro.cluster.netmodels import ideal_network
from repro.errors import SyncError
from repro.sync.learn import learn_clock_model
from repro.sync.linear_model import LinearDriftModel
from repro.sync.offset import SKaMPIOffset
from tests.conftest import PERFECT_TIME, run_spmd


def learn_between(time_source, nfitpoints=20, spacing=5e-3,
                  recompute=False, seed=0):
    def main(ctx, comm):
        alg = SKaMPIOffset(5)
        lm = yield from learn_clock_model(
            comm, 0, 1, ctx.hardware_clock, alg, nfitpoints,
            recompute_intercept=recompute, fitpoint_spacing=spacing,
        )
        return lm

    _, res = run_spmd(main, num_nodes=2, ranks_per_node=1,
                      network=ideal_network(latency=1e-6),
                      time_source=time_source, seed=seed)
    return res


class TestLearn:
    def test_ref_gets_none_client_gets_model(self):
        res = learn_between(PERFECT_TIME)
        assert res.values[0] is None
        assert isinstance(res.values[1], LinearDriftModel)

    def test_learns_constant_offset(self):
        spec = PERFECT_TIME.with_(offset_scale=1e-3)
        res = learn_between(spec, seed=2)
        lm = res.values[1]
        assert lm.slope == pytest.approx(0.0, abs=1e-9)
        # intercept approximates the (client - ref) offset.
        assert abs(lm.intercept) > 0.0

    def test_learns_skew(self):
        # Deterministic clocks with a known relative skew.
        spec = PERFECT_TIME.with_(skew_scale=2e-5)
        res = learn_between(spec, nfitpoints=30, spacing=10e-3, seed=4)
        lm = res.values[1]
        # slope should approximate relative skew (client - ref) which, with
        # skew_scale 2e-5, is within a few 1e-5.
        assert abs(lm.slope) < 2e-4
        assert lm.slope != 0.0

    def test_model_predicts_offset(self):
        spec = PERFECT_TIME.with_(offset_scale=1e-3, skew_scale=1e-5)

        def main(ctx, comm):
            alg = SKaMPIOffset(5)
            lm = yield from learn_clock_model(
                comm, 0, 1, ctx.hardware_clock, alg, 25,
                fitpoint_spacing=5e-3,
            )
            return (lm, ctx.now)

        sim, res = run_spmd(main, num_nodes=2, ranks_per_node=1,
                            network=ideal_network(latency=1e-6),
                            time_source=spec, seed=7)
        lm, t_end = res.values[1]
        true_offset = sim.clocks[1].read_raw(t_end) - sim.clocks[0].read_raw(
            t_end
        )
        predicted = lm.offset_at(sim.clocks[1].read_raw(t_end))
        assert predicted == pytest.approx(true_offset, abs=1e-6)

    def test_recompute_intercept_anchors_at_measurement(self):
        spec = PERFECT_TIME.with_(offset_scale=1e-3)
        plain = learn_between(spec, recompute=False, seed=9).values[1]
        anchored = learn_between(spec, recompute=True, seed=9).values[1]
        # Same slope regime; intercept re-anchored (may coincide only if
        # the fit was already perfect).
        assert anchored.slope == pytest.approx(plain.slope, abs=1e-6)

    def test_invalid_nfitpoints(self):
        def main(ctx, comm):
            try:
                yield from learn_clock_model(
                    comm, 0, 1, ctx.hardware_clock, SKaMPIOffset(2), 0
                )
            except SyncError:
                return "raised"
            return "no"

        _, res = run_spmd(main, num_nodes=2, ranks_per_node=1,
                          network=ideal_network(), time_source=PERFECT_TIME)
        assert all(v == "raised" for v in res.values)

    def test_third_rank_rejected(self):
        def main(ctx, comm):
            if comm.rank == 2:
                try:
                    yield from learn_clock_model(
                        comm, 0, 1, ctx.hardware_clock, SKaMPIOffset(2), 2
                    )
                except SyncError:
                    return "raised"
                return "no"
            if comm.rank < 2:
                yield from learn_clock_model(
                    comm, 0, 1, ctx.hardware_clock, SKaMPIOffset(2), 2
                )
            return None

        _, res = run_spmd(main, num_nodes=3, ranks_per_node=1,
                          network=ideal_network(), time_source=PERFECT_TIME)
        assert res.values[2] == "raised"
