"""Unit tests for GlobalClockLM and flatten/unflatten."""

import pytest

from repro.errors import ClockError
from repro.simtime.drift import ConstantDrift
from repro.simtime.hardware import HardwareClock
from repro.sync.clocks import (
    GlobalClockLM,
    base_hardware_clock,
    dummy_global_clock,
    effective_model,
    flatten_clock,
    flattened_size_bytes,
    stack_depth,
    unflatten_clock,
)
from repro.sync.linear_model import LinearDriftModel


def hw(offset=100.0, skew=1e-5):
    return HardwareClock(offset=offset, drift=ConstantDrift(skew))


class TestGlobalClockLM:
    def test_dummy_is_identity(self):
        base = hw()
        clk = dummy_global_clock(base)
        assert clk.is_identity
        for t in (0.0, 5.0, 50.0):
            assert clk.read(t) == base.read(t)

    def test_model_applied(self):
        base = hw(offset=0.0, skew=0.0)
        clk = GlobalClockLM(base, LinearDriftModel(slope=0.0, intercept=2.0))
        assert clk.read(10.0) == pytest.approx(8.0)

    def test_invert_roundtrip(self):
        clk = GlobalClockLM(
            hw(offset=42.0, skew=2e-5),
            LinearDriftModel(slope=1e-5, intercept=-3.0),
        )
        for t in (0.0, 1.0, 123.456):
            assert clk.invert(clk.read(t)) == pytest.approx(t, abs=1e-9)

    def test_nested_invert_roundtrip(self):
        clk = GlobalClockLM(
            GlobalClockLM(hw(), LinearDriftModel(5e-6, 1.0)),
            LinearDriftModel(-2e-6, 0.5),
        )
        for t in (0.0, 7.7, 300.0):
            assert clk.invert(clk.read(t)) == pytest.approx(t, abs=1e-9)

    def test_properties_delegate(self):
        base = HardwareClock(granularity=1e-9, read_overhead=3e-8)
        clk = dummy_global_clock(base)
        assert clk.granularity == 1e-9
        assert clk.read_overhead == 3e-8


class TestFlattenUnflatten:
    def test_flatten_orders_outermost_first(self):
        inner = LinearDriftModel(1e-6, 1.0)
        outer = LinearDriftModel(2e-6, 2.0)
        clk = GlobalClockLM(GlobalClockLM(hw(), inner), outer)
        assert flatten_clock(clk) == [outer.as_tuple(), inner.as_tuple()]

    def test_flatten_hardware_clock_empty(self):
        assert flatten_clock(hw()) == []

    def test_roundtrip_same_readings(self):
        base = hw(offset=77.0, skew=-1e-5)
        clk = GlobalClockLM(
            GlobalClockLM(base, LinearDriftModel(1e-6, 0.5)),
            LinearDriftModel(-3e-6, -0.25),
        )
        rebuilt = unflatten_clock(base, flatten_clock(clk))
        for t in (0.0, 2.5, 60.0):
            assert rebuilt.read(t) == pytest.approx(clk.read(t), abs=1e-12)

    def test_unflatten_onto_other_base(self):
        # The whole point of ClockPropSync: same models, receiver's base.
        base_a = hw(offset=10.0)
        base_b = hw(offset=10.0)
        clk = GlobalClockLM(base_a, LinearDriftModel(1e-6, 0.1))
        rebuilt = unflatten_clock(base_b, flatten_clock(clk))
        assert base_hardware_clock(rebuilt) is base_b
        assert rebuilt.read(5.0) == pytest.approx(clk.read(5.0))

    def test_size_bytes(self):
        assert flattened_size_bytes([]) == 8
        assert flattened_size_bytes([(0.0, 0.0)] * 3) == 48


class TestStackHelpers:
    def test_stack_depth(self):
        base = hw()
        assert stack_depth(base) == 0
        assert stack_depth(dummy_global_clock(base)) == 1
        assert stack_depth(
            GlobalClockLM(dummy_global_clock(base), LinearDriftModel.ZERO)
        ) == 2

    def test_effective_model_matches_nested_read(self):
        base = hw(offset=0.0, skew=0.0)
        clk = GlobalClockLM(
            GlobalClockLM(base, LinearDriftModel(1e-5, 0.5)),
            LinearDriftModel(-2e-5, 0.25),
        )
        collapsed = effective_model(clk)
        for t in (0.0, 3.0, 100.0):
            assert GlobalClockLM(base, collapsed).read(t) == pytest.approx(
                clk.read(t), abs=1e-9
            )

    def test_effective_model_requires_layers(self):
        with pytest.raises(ClockError):
            effective_model(hw())
