"""Sign-convention tests: offset = client - reference, everywhere.

A wrong sign anywhere in the stack would still often "work" (the fit just
flips), so these tests pin the convention explicitly with asymmetric
ground truth.
"""

import pytest

from repro.cluster.netmodels import ideal_network
from repro.sync.clocks import GlobalClockLM
from repro.sync.linear_model import LinearDriftModel
from repro.sync.offset import MeanRTTOffset, SKaMPIOffset
from tests.conftest import PERFECT_TIME, run_spmd


def measure(alg_factory, client_ahead: bool, seed=0):
    """Client clock deliberately ahead (or behind) the reference."""

    def main(ctx, comm):
        # Rank 1 (client) gets +1 s or -1 s via a wrapper model.
        shift = -1.0 if client_ahead else 1.0  # apply() subtracts
        if comm.rank == 1:
            clock = GlobalClockLM(
                ctx.hardware_clock, LinearDriftModel(0.0, shift)
            )
        else:
            clock = ctx.hardware_clock
        alg = alg_factory()
        result = yield from alg.measure_offset(comm, clock, 0, 1)
        return result

    _, res = run_spmd(main, num_nodes=2, ranks_per_node=1,
                      network=ideal_network(latency=1e-6),
                      time_source=PERFECT_TIME, seed=seed)
    return res.values[1]


class TestSignConvention:
    @pytest.mark.parametrize("alg_factory", [
        lambda: SKaMPIOffset(8),
        lambda: MeanRTTOffset(8),
    ])
    def test_client_ahead_positive_offset(self, alg_factory):
        measurement = measure(alg_factory, client_ahead=True)
        assert measurement.offset == pytest.approx(1.0, abs=1e-5)

    @pytest.mark.parametrize("alg_factory", [
        lambda: SKaMPIOffset(8),
        lambda: MeanRTTOffset(8),
    ])
    def test_client_behind_negative_offset(self, alg_factory):
        measurement = measure(alg_factory, client_ahead=False)
        assert measurement.offset == pytest.approx(-1.0, abs=1e-5)

    def test_global_clock_subtracts_offset(self):
        """global(t) = local(t) - offset must bring a fast client back."""
        from repro.simtime.hardware import HardwareClock

        client = HardwareClock(offset=5.0)
        ref = HardwareClock(offset=0.0)
        # offset(client - ref) = 5.0 at all times.
        model = LinearDriftModel(slope=0.0, intercept=5.0)
        adjusted = GlobalClockLM(client, model)
        assert adjusted.read(3.0) == pytest.approx(ref.read(3.0))
