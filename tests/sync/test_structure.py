"""Structural tests: the pairing order of each algorithm vs the paper.

These record every LEARN_CLOCK_MODEL invocation (reference, client, and
the order in which each process participates) and compare against the
paper's Fig. 1 / Algorithm 1 structure — so a refactor cannot silently
turn HCA3 back into HCA2.
"""

import pytest

import repro.sync.hca as hca_mod
import repro.sync.hca3 as hca3_mod
import repro.sync.jk as jk_mod
from repro.cluster.netmodels import ideal_network
from repro.sync import HCA2Sync, HCA3Sync, JKSync, SKaMPIOffset
from tests.conftest import PERFECT_TIME, run_spmd


@pytest.fixture
def record_pairs(monkeypatch):
    """Patch learn_clock_model in every algorithm module to log pairs."""
    calls = []
    import repro.sync.learn as learn_mod

    original = learn_mod.learn_clock_model

    def spy(comm, p_ref, client, clock, *args, **kwargs):
        if comm.rank == client:
            calls.append((p_ref, client))
        result = yield from original(
            comm, p_ref, client, clock, *args, **kwargs
        )
        return result

    for module in (hca_mod, hca3_mod, jk_mod):
        monkeypatch.setattr(module, "learn_clock_model", spy)
    return calls


def run_algorithm(cls, nprocs, seed=0):
    def main(ctx, comm):
        alg = cls(offset_alg=SKaMPIOffset(2), nfitpoints=2)
        clk = yield from alg.sync_clocks(comm, ctx.hardware_clock)
        return clk

    run_spmd(main, num_nodes=nprocs, ranks_per_node=1,
             network=ideal_network(), time_source=PERFECT_TIME, seed=seed)


class TestHCA3Structure:
    def test_every_rank_client_exactly_once(self, record_pairs):
        run_algorithm(HCA3Sync, 8)
        clients = [c for _, c in record_pairs]
        assert sorted(clients) == list(range(1, 8))

    def test_reference_flows_down_binomial_tree(self, record_pairs):
        run_algorithm(HCA3Sync, 8)
        pairs = set(record_pairs)
        # Algorithm 1's pairings for p = 8: strides 4, 2, 1.
        assert pairs == {(0, 4), (0, 2), (4, 6), (0, 1), (2, 3), (4, 5),
                         (6, 7)}

    def test_parent_is_synced_before_serving(self, record_pairs):
        run_algorithm(HCA3Sync, 8)
        synced_order = [c for _, c in record_pairs]
        for ref, client in record_pairs:
            if ref == 0:
                continue
            # A non-root reference must appear as a client before its
            # own client does (it needs a global model to emulate).
            assert synced_order.index(ref) < synced_order.index(client)

    def test_non_power_of_two_remainder(self, record_pairs):
        run_algorithm(HCA3Sync, 6)
        pairs = set(record_pairs)
        # max_power = 4: tree over 0-3, then 4 <- 0 and 5 <- 1.
        assert (0, 4) in pairs and (1, 5) in pairs


class TestHCA2Structure:
    def test_models_learned_up_the_tree(self, record_pairs):
        run_algorithm(HCA2Sync, 8)
        pairs = set(record_pairs)
        # Inverted binomial tree: stride-1 pairs, then 2, then 4.
        assert pairs == {(0, 1), (2, 3), (4, 5), (6, 7), (0, 2), (4, 6),
                         (0, 4)}

    def test_smallest_strides_first(self, record_pairs):
        run_algorithm(HCA2Sync, 8)
        strides = [client - ref for ref, client in record_pairs]
        # Strides must be non-decreasing over time (1,1,1,1,2,2,4) — the
        # opposite round order of HCA3.
        assert strides == sorted(strides)


class TestJKStructure:
    def test_every_client_direct_to_root(self, record_pairs):
        run_algorithm(JKSync, 6)
        assert all(ref == 0 for ref, _ in record_pairs)
        assert [c for _, c in record_pairs] == [1, 2, 3, 4, 5]
