"""Unit tests for the clock-offset algorithms (SKaMPI, Mean-RTT)."""

import numpy as np
import pytest

from repro.cluster.netmodels import ideal_network
from repro.errors import SyncError
from repro.sync.offset import ClockOffset, MeanRTTOffset, SKaMPIOffset
from tests.conftest import PERFECT_TIME, run_spmd


def measure_with(alg_factory, offset_scale=500e-6, seed=0, network=None,
                 pair=(0, 1)):
    """Run one offset measurement between ranks pair=(ref, client)."""
    spec = PERFECT_TIME.with_(offset_scale=offset_scale, name="t")

    def main(ctx, comm):
        alg = main.algs.setdefault(ctx.rank, alg_factory())
        if comm.rank in pair:
            result = yield from alg.measure_offset(
                comm, ctx.hardware_clock, pair[0], pair[1]
            )
            return result
        return None

    main.algs = {}
    sim, res = run_spmd(
        main,
        num_nodes=2,
        ranks_per_node=1,
        network=network or ideal_network(latency=2e-6),
        time_source=spec,
        seed=seed,
    )
    return sim, res


class TestSKaMPIOffset:
    def test_client_returns_offset_ref_returns_none(self):
        sim, res = measure_with(lambda: SKaMPIOffset(10))
        assert res.values[0] is None
        assert isinstance(res.values[1], ClockOffset)

    def test_estimates_true_offset(self):
        sim, res = measure_with(lambda: SKaMPIOffset(10), seed=3)
        measured = res.values[1].offset
        truth = sim.clocks[1].read_raw(0.0) - sim.clocks[0].read_raw(0.0)
        # Jitter-free network: the estimate is essentially exact.
        assert measured == pytest.approx(truth, abs=1e-7)

    def test_error_bounded_by_half_rtt_with_jitter(self, jitter_network):
        errors = []
        for seed in range(5):
            sim, res = measure_with(
                lambda: SKaMPIOffset(20), seed=seed, network=jitter_network
            )
            truth = sim.clocks[1].read_raw(0.0) - sim.clocks[0].read_raw(0.0)
            errors.append(abs(res.values[1].offset - truth))
        # Half of a ~4 us RTT is a very loose bound; min-filtering does
        # much better in practice.
        assert max(errors) < 2e-6

    def test_timestamp_is_recent_client_reading(self):
        sim, res = measure_with(lambda: SKaMPIOffset(5))
        ts = res.values[1].timestamp
        client_clock = sim.clocks[1]
        # Timestamp must correspond to some recent true time (>= 0).
        assert ts >= client_clock.read_raw(0.0)

    def test_wrong_rank_raises(self):
        def main(ctx, comm):
            alg = SKaMPIOffset(2)
            if comm.rank == 2:
                try:
                    yield from alg.measure_offset(
                        comm, ctx.hardware_clock, 0, 1
                    )
                except SyncError:
                    return "raised"
            elif comm.rank in (0, 1):
                yield from alg.measure_offset(comm, ctx.hardware_clock, 0, 1)
            return None

        _, res = run_spmd(main, num_nodes=3, ranks_per_node=1,
                          network=ideal_network(), time_source=PERFECT_TIME)
        assert res.values[2] == "raised"

    def test_rejects_zero_exchanges(self):
        with pytest.raises(SyncError):
            SKaMPIOffset(0)

    def test_label(self):
        assert SKaMPIOffset(25).label() == "skampi_offset/25"


class TestMeanRTTOffset:
    def test_estimates_true_offset(self):
        sim, res = measure_with(lambda: MeanRTTOffset(10), seed=1)
        measured = res.values[1].offset
        truth = sim.clocks[1].read_raw(0.0) - sim.clocks[0].read_raw(0.0)
        assert measured == pytest.approx(truth, abs=1e-6)

    def test_rtt_cached_per_pair(self):
        spec = PERFECT_TIME.with_(offset_scale=1e-4)

        def main(ctx, comm):
            alg = MeanRTTOffset(4, rtt_pingpongs=6)
            if comm.rank in (0, 1):
                yield from alg.measure_offset(comm, ctx.hardware_clock, 0, 1)
                before = len(alg._rtt_cache)
                yield from alg.measure_offset(comm, ctx.hardware_clock, 0, 1)
                return (before, len(alg._rtt_cache))
            return None

        _, res = run_spmd(main, num_nodes=2, ranks_per_node=1,
                          network=ideal_network(), time_source=spec)
        assert res.values[1] == (1, 1)

    def test_validation(self):
        with pytest.raises(SyncError):
            MeanRTTOffset(5, rtt_pingpongs=0)

    def test_skampi_beats_mean_rtt_under_jitter(self, jitter_network):
        """The paper's observation: min-filtering beats averaging."""
        sk_err, mr_err = [], []
        for seed in range(8):
            sim, res = measure_with(lambda: SKaMPIOffset(15), seed=seed,
                                    network=jitter_network)
            truth = sim.clocks[1].read_raw(0.0) - sim.clocks[0].read_raw(0.0)
            sk_err.append(abs(res.values[1].offset - truth))
            sim, res = measure_with(lambda: MeanRTTOffset(15), seed=seed,
                                    network=jitter_network)
            truth = sim.clocks[1].read_raw(0.0) - sim.clocks[0].read_raw(0.0)
            mr_err.append(abs(res.values[1].offset - truth))
        assert np.mean(sk_err) < np.mean(mr_err)
