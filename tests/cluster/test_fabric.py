"""Tests for interconnect fabrics (torus hop latency)."""

import pytest

from repro.cluster.fabric import FlatFabric, TorusFabric
from repro.cluster.topology import Machine
from repro.simmpi.network import Level, LinkParams, NetworkModel
from repro.simmpi.simulation import Simulation


class TestTorusGeometry:
    def test_coords_row_major(self):
        t = TorusFabric((2, 3, 4))
        assert t.coords(0) == (0, 0, 0)
        assert t.coords(1) == (0, 0, 1)
        assert t.coords(4) == (0, 1, 0)
        assert t.coords(12) == (1, 0, 0)
        assert t.num_nodes == 24

    def test_hops_wraparound(self):
        t = TorusFabric((4,))
        # 0 -> 3 wraps: distance 1, not 3.
        assert t.hops(0, 3) == 1
        assert t.hops(0, 2) == 2

    def test_hops_symmetric(self):
        t = TorusFabric((3, 3, 3))
        for a in range(0, 27, 5):
            for b in range(0, 27, 7):
                assert t.hops(a, b) == t.hops(b, a)

    def test_self_distance_zero(self):
        t = TorusFabric((3, 3))
        assert t.hops(4, 4) == 0
        assert t.extra_latency(4, 4) == 0.0

    def test_extra_latency_scales_with_hops(self):
        t = TorusFabric((8,), per_hop_latency=1e-6)
        assert t.extra_latency(0, 4) == pytest.approx(4e-6)

    def test_diameter(self):
        assert TorusFabric((4, 4, 4)).diameter() == 6

    def test_cube_for_covers_nodes(self):
        t = TorusFabric.cube_for(100)
        assert t.num_nodes >= 100

    def test_validation(self):
        with pytest.raises(ValueError):
            TorusFabric(())
        with pytest.raises(ValueError):
            TorusFabric((0, 2))
        with pytest.raises(ValueError):
            TorusFabric((2,), per_hop_latency=-1.0)
        with pytest.raises(ValueError):
            TorusFabric((2, 2)).coords(4)


class TestFlatFabric:
    def test_always_zero(self):
        f = FlatFabric()
        assert f.extra_latency(0, 99) == 0.0


class TestFabricInSimulation:
    def _pingpong_rtt(self, fabric, node_b):
        machine = Machine(num_nodes=9, sockets_per_node=1,
                          cores_per_socket=1)
        network = NetworkModel(
            levels={Level.REMOTE: LinkParams(latency=1e-6,
                                             bandwidth=1e12)},
            o_send=0.0, o_recv=0.0,
        )

        def main(ctx, comm):
            if comm.rank == 0:
                t0 = ctx.now
                yield from comm.send(node_b, 1, None, 8)
                yield from comm.recv(node_b, 1)
                return ctx.now - t0
            if comm.rank == node_b:
                yield from comm.recv(0, 1)
                yield from comm.send(0, 1, None, 8)
            return None

        sim = Simulation(machine=machine, network=network, fabric=fabric,
                         seed=0)
        return sim.run(main).values[0]

    def test_distance_changes_latency(self):
        fabric = TorusFabric((3, 3), per_hop_latency=5e-6)
        near = self._pingpong_rtt(fabric, 1)   # 1 hop
        far = self._pingpong_rtt(fabric, 4)    # (1,1): 2 hops
        assert far > near
        assert far - near == pytest.approx(2 * 5e-6, rel=1e-6)

    def test_flat_fabric_matches_no_fabric(self):
        flat = self._pingpong_rtt(FlatFabric(), 4)
        none = self._pingpong_rtt(None, 4)
        assert flat == none
