"""Unit tests for the Table I machine presets."""


from repro.cluster.machines import HYDRA, JUPITER, MACHINES, TITAN
from repro.simmpi.network import Level


class TestPresets:
    def test_registry_complete(self):
        assert set(MACHINES) == {"jupiter", "hydra", "titan"}

    def test_jupiter_shape(self):
        m = JUPITER.machine()
        assert m.num_nodes == 36
        assert m.cores_per_node == 16

    def test_hydra_shape(self):
        m = HYDRA.machine()
        assert m.cores_per_node == 32

    def test_titan_shape(self):
        m = TITAN.machine()
        assert m.num_nodes == 1024
        assert m.cores_per_node == 16

    def test_scaling_override(self):
        m = JUPITER.machine(4, 2)
        assert m.num_nodes == 4
        assert m.num_ranks == 8

    def test_networks_distinct(self):
        jup = JUPITER.network()
        hyd = HYDRA.network()
        tit = TITAN.network()
        lat = lambda n: n.params_for(Level.REMOTE).latency
        # OmniPath < InfiniBand QDR < Gemini in small-message latency.
        assert lat(hyd) < lat(jup) < lat(tit)

    def test_gemini_has_most_jitter(self):
        jit = lambda spec: spec.network().params_for(Level.REMOTE).jitter_scale
        assert jit(TITAN) > jit(JUPITER) > jit(HYDRA)

    def test_nic_gap_configured(self):
        for spec in MACHINES.values():
            assert spec.network().nic_gap > 0.0
