"""Unit tests for the machine topology model."""

import pytest

from repro.cluster.topology import Machine
from repro.simmpi.network import Level


class TestPlacement:
    def test_block_placement(self):
        m = Machine(num_nodes=2, sockets_per_node=2, cores_per_socket=2)
        # 4 ranks per node; rank 5 is node 1, local 1 -> socket 0, core 1.
        pl = m.placement(5)
        assert (pl.node, pl.socket, pl.core) == (1, 0, 1)

    def test_socket_boundaries(self):
        m = Machine(num_nodes=1, sockets_per_node=2, cores_per_socket=4)
        assert m.placement(3).socket == 0
        assert m.placement(4).socket == 1

    def test_partial_ranks_fill_first_socket(self):
        m = Machine(num_nodes=2, sockets_per_node=2, cores_per_socket=8,
                    ranks_per_node=4)
        for r in range(4):
            assert m.placement(r).socket == 0

    def test_out_of_range(self):
        m = Machine(num_nodes=1, sockets_per_node=1, cores_per_socket=2)
        with pytest.raises(ValueError):
            m.placement(2)
        with pytest.raises(ValueError):
            m.placement(-1)

    def test_num_ranks(self):
        m = Machine(num_nodes=3, sockets_per_node=2, cores_per_socket=4,
                    ranks_per_node=5)
        assert m.num_ranks == 15

    def test_invalid_extents(self):
        with pytest.raises(ValueError):
            Machine(num_nodes=0)
        with pytest.raises(ValueError):
            Machine(num_nodes=1, sockets_per_node=1, cores_per_socket=1,
                    ranks_per_node=5)


class TestLevels:
    def test_level_classification(self):
        m = Machine(num_nodes=2, sockets_per_node=2, cores_per_socket=2)
        assert m.level_between(0, 0) == Level.SELF
        assert m.level_between(0, 1) == Level.SOCKET
        assert m.level_between(0, 2) == Level.NODE
        assert m.level_between(0, 4) == Level.REMOTE

    def test_symmetry(self):
        m = Machine(num_nodes=2, sockets_per_node=2, cores_per_socket=2)
        for a in range(m.num_ranks):
            for b in range(m.num_ranks):
                assert m.level_between(a, b) == m.level_between(b, a)


class TestNodeQueries:
    def test_ranks_on_node(self):
        m = Machine(num_nodes=3, sockets_per_node=1, cores_per_socket=4)
        assert m.ranks_on_node(1) == [4, 5, 6, 7]
        with pytest.raises(ValueError):
            m.ranks_on_node(3)

    def test_node_leaders(self):
        m = Machine(num_nodes=3, sockets_per_node=1, cores_per_socket=4)
        assert m.node_leaders() == [0, 4, 8]

    def test_node_of(self):
        m = Machine(num_nodes=2, sockets_per_node=1, cores_per_socket=2)
        assert [m.node_of(r) for r in range(4)] == [0, 0, 1, 1]
