"""Smoke tests: the example scripts run cleanly end to end."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
SRC = EXAMPLES.parent / "src"


def run_example(name: str, timeout: float = 240.0, cwd=None):
    # Absolute src path so examples import repro from any working dir.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=cwd,
        env=env,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "sync duration" in result.stdout
        assert "max |offset|" in result.stdout

    def test_trace_amg(self):
        result = run_example("trace_amg.py")
        assert result.returncode == 0, result.stderr
        assert "events INVISIBLE" in result.stdout
        assert "events visible" in result.stdout

    def test_hierarchical_sync(self):
        result = run_example("hierarchical_sync.py")
        assert result.returncode == 0, result.stderr
        assert "H3HCA" in result.stdout
        assert "incorrect" in result.stdout

    def test_inspect_run(self, tmp_path):
        result = run_example("inspect_run.py", cwd=tmp_path)
        assert result.returncode == 0, result.stderr
        assert "engine events" in result.stdout
        assert "sync rounds" in result.stdout
        assert (tmp_path / "inspect_raw_local_clock.json").exists()
        assert (tmp_path / "inspect_global_clock.json").exists()

    def test_health_report(self, tmp_path):
        result = run_example("health_report.py", cwd=tmp_path)
        assert result.returncode == 0, result.stderr
        assert "health status:" in result.stdout
        assert "desync_breach" in result.stdout
        assert (tmp_path / "report.html").exists()
        assert (tmp_path / "report.json").exists()

    @pytest.mark.slow
    def test_tune_allreduce(self):
        result = run_example("tune_allreduce.py")
        assert result.returncode == 0, result.stderr
        assert "winner" in result.stdout

    @pytest.mark.slow
    def test_algorithm_crossover(self):
        result = run_example("algorithm_crossover.py")
        assert result.returncode == 0, result.stderr
        assert "scatter_allgather" in result.stdout
        assert "rabenseifner" in result.stdout
