"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import pytest

try:  # Hypothesis profiles for tests/properties (absent → plain pytest).
    from hypothesis import settings as _hyp_settings

    # "dev" (default): random examples, no deadline (simulations vary in
    # wall time).  "ci": additionally derandomized so property failures
    # are reproducible across CI reruns; select with HYPOTHESIS_PROFILE.
    _hyp_settings.register_profile("dev", deadline=None)
    _hyp_settings.register_profile(
        "ci", deadline=None, derandomize=True, print_blob=True
    )
    _hyp_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
except ImportError:  # pragma: no cover
    pass

from repro.cluster.netmodels import ideal_network, infiniband_qdr
from repro.cluster.topology import Machine
from repro.simmpi.simulation import Simulation
from repro.simtime.sources import CLOCK_GETTIME, TimeSourceSpec

#: A time source with zero noise knobs for exact-value tests.
PERFECT_TIME = TimeSourceSpec(
    name="perfect",
    offset_scale=0.0,
    offset_is_uniform=False,
    skew_scale=0.0,
    skew_walk_sigma=0.0,
    granularity=0.0,
    read_overhead=0.0,
)


def run_spmd(
    body,
    num_nodes: int = 2,
    ranks_per_node: int = 2,
    network=None,
    time_source: TimeSourceSpec = CLOCK_GETTIME,
    seed: int = 0,
    clocks_per: str = "node",
):
    """Run an SPMD generator body on a small machine; returns the result."""
    machine = Machine(
        num_nodes=num_nodes,
        sockets_per_node=2,
        cores_per_socket=max(1, (ranks_per_node + 1) // 2),
        ranks_per_node=ranks_per_node,
        name="testbox",
    )
    sim = Simulation(
        machine=machine,
        network=network or ideal_network(),
        time_source=time_source,
        seed=seed,
        clocks_per=clocks_per,
    )
    return sim, sim.run(body)


@pytest.fixture
def jitter_network():
    """A realistic network (jitter, outliers) for statistical tests."""
    return infiniband_qdr()


@pytest.fixture
def perfect_time():
    return PERFECT_TIME
