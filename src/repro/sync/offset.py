"""Clock-offset measurement between a reference and a client process.

Both algorithms are faithful implementations of the paper's Appendix A:

* :class:`SKaMPIOffset` (Algorithm 7) — ping-pongs that track the tightest
  window ``[t_last - s_now, t_last - s_last]`` around the reference
  timestamp; the midpoint estimates the offset.  Minimum-delay filtering
  means "if a timing packet is lucky enough to experience the minimum
  delay, its timestamps have not been corrupted" (Ridoux & Veitch).
* :class:`MeanRTTOffset` (Algorithm 8, Jones & Koenig) — estimates the RTT
  once per pair (cached), then derives per-exchange offsets as
  ``local - ref - rtt/2`` and takes the median.

Sign convention: the returned :class:`ClockOffset` carries
``offset = client_reading - reference_reading`` (see
:mod:`repro.sync.linear_model`), measured at client-clock ``timestamp``.

Both sides of a pair call ``measure_offset`` collectively; the client
returns the measurement, the reference returns ``None``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.errors import SyncError
from repro.obs.events import PhaseBegin, PhaseEnd
from repro.simtime.base import Clock

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator

#: Wire size of one timestamp message (a double).
TIMESTAMP_BYTES = 8
#: Tag used by offset ping-pong traffic (within the comm's user-tag space).
PINGPONG_TAG = 7


@dataclass(frozen=True)
class ClockOffset:
    """One offset measurement: (client timestamp, client - ref offset)."""

    timestamp: float
    offset: float
    #: Observed round-trip time while measuring (diagnostics; the minimum
    #: over the exchanges for SKaMPI, the cached estimate for Mean-RTT).
    rtt: float | None = None


class OffsetAlgorithm(abc.ABC):
    """Measures the current offset between a client and a reference clock."""

    name: str = "offset"

    def __init__(self, nexchanges: int = 10) -> None:
        if nexchanges < 1:
            raise SyncError("nexchanges must be >= 1")
        self.nexchanges = nexchanges

    @abc.abstractmethod
    def measure_offset(
        self,
        comm: "Communicator",
        clock: Clock,
        p_ref: int,
        client: int,
    ) -> Generator:
        """Collective over {p_ref, client}: client returns a ClockOffset."""

    def label(self) -> str:
        return f"{self.name}/{self.nexchanges}"

    # -- causal phase annotations (see repro.obs.spans) ---------------
    def _phase_begin(self, comm: "Communicator", p_ref: int,
                     client: int) -> None:
        sink = comm.ctx.engine.sink
        if sink is not None:
            sink.emit(PhaseBegin(
                time=comm.ctx.now, rank=comm.ctx.rank,
                name="sync.offset", algorithm=self.name,
                ref=comm.global_rank(p_ref),
                peer=comm.global_rank(client),
            ))

    def _phase_end(self, comm: "Communicator") -> None:
        sink = comm.ctx.engine.sink
        if sink is not None:
            sink.emit(PhaseEnd(
                time=comm.ctx.now, rank=comm.ctx.rank,
                name="sync.offset",
            ))


class SKaMPIOffset(OffsetAlgorithm):
    """Algorithm 7: minimum-delay window around the reference timestamp."""

    name = "skampi_offset"

    def measure_offset(
        self,
        comm: "Communicator",
        clock: Clock,
        p_ref: int,
        client: int,
    ) -> Generator:
        ctx = comm.ctx
        rank = comm.rank
        self._phase_begin(comm, p_ref, client)
        if rank == p_ref:
            for _ in range(self.nexchanges):
                yield from comm.recv(client, PINGPONG_TAG)
                t_last = ctx.read_clock(clock)
                yield from comm.send(
                    client, PINGPONG_TAG, t_last, TIMESTAMP_BYTES
                )
            self._phase_end(comm)
            return None
        if rank != client:
            raise SyncError(
                f"rank {rank} called measure_offset for pair "
                f"({p_ref}, {client})"
            )
        # td_min/td_max bound (ref - client); names follow the paper.
        td_min = -np.inf
        td_max = np.inf
        rtt_min = np.inf
        for _ in range(self.nexchanges):
            s_last = ctx.read_clock(clock)
            yield from comm.send(p_ref, PINGPONG_TAG, s_last, TIMESTAMP_BYTES)
            msg = yield from comm.recv(p_ref, PINGPONG_TAG)
            t_last = msg.payload
            s_now = ctx.read_clock(clock)
            td_min = max(td_min, t_last - s_now)
            td_max = min(td_max, t_last - s_last)
            rtt_min = min(rtt_min, s_now - s_last)
        diff = (td_min + td_max) / 2.0  # estimate of (ref - client)
        timestamp = ctx.read_clock(clock)
        prof = ctx.engine.profiler
        if prof is not None:
            # The exchange wall time itself lives in the engine's
            # send/recv zones; this marks one completed offset round.
            prof.tick("sync.offset.rounds")
        self._phase_end(comm)
        return ClockOffset(
            timestamp=timestamp, offset=-diff, rtt=float(rtt_min)
        )


class MeanRTTOffset(OffsetAlgorithm):
    """Algorithm 8: mean-RTT estimate + median of per-exchange offsets.

    The RTT between a pair is measured once and cached (the paper's
    ``have_rtt`` flag); ``rtt_pingpongs`` controls that estimate's sample
    count.  Reply messages use a synchronous send, as in the original.
    """

    name = "mean_rtt_offset"

    def __init__(self, nexchanges: int = 10, rtt_pingpongs: int = 10) -> None:
        super().__init__(nexchanges)
        if rtt_pingpongs < 1:
            raise SyncError("rtt_pingpongs must be >= 1")
        self.rtt_pingpongs = rtt_pingpongs
        self._rtt_cache: dict[tuple[int, int, int], float] = {}

    def _measure_rtt(
        self,
        comm: "Communicator",
        clock: Clock,
        p_ref: int,
        client: int,
    ) -> Generator:
        """Mean round-trip time, measured at the client."""
        ctx = comm.ctx
        if comm.rank == p_ref:
            for _ in range(self.rtt_pingpongs):
                yield from comm.recv(client, PINGPONG_TAG)
                yield from comm.send(client, PINGPONG_TAG, 0.0, TIMESTAMP_BYTES)
            return None
        samples = []
        for _ in range(self.rtt_pingpongs):
            t0 = ctx.read_clock(clock)
            yield from comm.send(p_ref, PINGPONG_TAG, 0.0, TIMESTAMP_BYTES)
            yield from comm.recv(p_ref, PINGPONG_TAG)
            t1 = ctx.read_clock(clock)
            samples.append(t1 - t0)
        return float(np.mean(samples))

    def measure_offset(
        self,
        comm: "Communicator",
        clock: Clock,
        p_ref: int,
        client: int,
    ) -> Generator:
        ctx = comm.ctx
        rank = comm.rank
        self._phase_begin(comm, p_ref, client)
        # Keyed by engine identity too: an algorithm instance reused across
        # simulated mpiruns must not recycle a dead run's RTT estimate.
        key = (id(ctx.engine), comm.comm_id, p_ref, client)
        if key not in self._rtt_cache:
            rtt = yield from self._measure_rtt(comm, clock, p_ref, client)
            # The reference side gets None; it does not need the value.
            self._rtt_cache[key] = rtt if rtt is not None else 0.0
        rtt = self._rtt_cache[key]
        if rank == p_ref:
            for _ in range(self.nexchanges):
                yield from comm.recv(client, PINGPONG_TAG)
                tlocal = ctx.read_clock(clock)
                yield from comm.ssend(
                    client, PINGPONG_TAG, tlocal, TIMESTAMP_BYTES
                )
            self._phase_end(comm)
            return None
        if rank != client:
            raise SyncError(
                f"rank {rank} called measure_offset for pair "
                f"({p_ref}, {client})"
            )
        local_times = np.empty(self.nexchanges)
        time_var = np.empty(self.nexchanges)
        for i in range(self.nexchanges):
            yield from comm.ssend(p_ref, PINGPONG_TAG, 0.0, TIMESTAMP_BYTES)
            msg = yield from comm.recv(p_ref, PINGPONG_TAG)
            ref_time = msg.payload
            local_times[i] = ctx.read_clock(clock)
            # current offset estimate: client - ref (ref_time was stamped
            # ~rtt/2 before our read).
            time_var[i] = local_times[i] - ref_time - rtt / 2.0
        prof = ctx.engine.profiler
        if prof is not None:
            t0 = prof.push("sync.offset.estimate")
        med_idx = int(np.argsort(time_var)[self.nexchanges // 2])
        offset = ClockOffset(
            timestamp=float(local_times[med_idx]),
            offset=float(time_var[med_idx]),
            rtt=float(rtt),
        )
        if prof is not None:
            prof.pop(t0)
            prof.tick("sync.offset.rounds")
        self._phase_end(comm)
        return offset


OFFSET_ALGORITHMS = {
    SKaMPIOffset.name: SKaMPIOffset,
    MeanRTTOffset.name: MeanRTTOffset,
}
