"""HCA and HCA2 — the merge-based predecessors of HCA3.

Both learn pairwise drift models *up* an inverted binomial tree between raw
local clocks (Fig. 1a): after ⌊log₂ p⌋ + 1 rounds the root holds a model
``cm(0, k)`` for every k — inner nodes forward their subtree's models and
the root composes them (``cm(0,3) = MERGE(cm(0,2), cm(2,3))``).  The root
then distributes the models with ``MPI_Scatter``.

The merging is where the error comes from: ``cm(2,3)`` was fitted earlier
and against rank 2's *raw* clock, so by the time it is composed with
``cm(0,2)`` both models extrapolate — HCA3 avoids this by always fitting
against live emulated global time.

HCA additionally re-anchors every client's intercept directly against the
root after the scatter, one client at a time — an O(p) tail that makes HCA
slower but corrects accumulated intercept error at time-of-measurement.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.simtime.base import Clock
from repro.sync.base import GO_TAG, MODEL_BYTES, MODEL_TAG, ModelLearningSync
from repro.sync.clocks import GlobalClockLM, dummy_global_clock
from repro.sync.learn import learn_clock_model
from repro.sync.linear_model import LinearDriftModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator


class HCA2Sync(ModelLearningSync):
    """O(log p) rounds: learn pairwise models up the tree, merge at root."""

    name = "hca2"

    def _learn_phase(
        self, comm: "Communicator", clock: Clock
    ) -> Generator:
        """Tree learning + scatter; returns this rank's ``cm(0, rank)``.

        Rank 0 returns ``None`` (it is the time source).
        """
        nprocs = comm.size
        rank = comm.rank
        nrounds = (nprocs).bit_length() - 1
        max_power = 1 << nrounds

        # models[k]: cm(rank, k) for every k in our collected subtree.
        models: dict[int, LinearDriftModel] = {}

        # Remainder step first so the extra ranks' models ride up the tree.
        if rank >= max_power:
            p_ref = rank - max_power
            lm = yield from learn_clock_model(
                comm, p_ref, rank, clock, self.offset_alg,
                self.nfitpoints, self.recompute_intercept,
                self.fitpoint_spacing,
                stats=self.stats, level=self.stats_level,
                round_index=0, algorithm=self.name,
            )
            yield from comm.send(p_ref, MODEL_TAG, {rank: lm}, MODEL_BYTES)
        elif rank < nprocs - max_power:
            client = rank + max_power
            yield from learn_clock_model(
                comm, rank, client, clock, self.offset_alg,
                self.nfitpoints, self.recompute_intercept,
                self.fitpoint_spacing,
                stats=self.stats, level=self.stats_level,
                round_index=0, algorithm=self.name,
            )
            msg = yield from comm.recv(client, MODEL_TAG)
            models.update(msg.payload)

        # Binomial rounds: distance doubles; clients push their subtree's
        # models to the reference, which composes them through cm(ref, client).
        if rank < max_power:
            for i in range(1, nrounds + 1):
                step = 1 << i
                half = 1 << (i - 1)
                if rank % step == 0:
                    client = rank + half
                    if client >= max_power:
                        continue
                    yield from learn_clock_model(
                        comm, rank, client, clock, self.offset_alg,
                        self.nfitpoints, self.recompute_intercept,
                        self.fitpoint_spacing,
                        stats=self.stats, level=self.stats_level,
                        round_index=i, algorithm=self.name,
                    )
                    msg = yield from comm.recv(client, MODEL_TAG)
                    incoming: dict[int, LinearDriftModel] = msg.payload
                    cm_ref_client = incoming.pop(client)
                    models[client] = cm_ref_client
                    for desc, cm_client_desc in incoming.items():
                        models[desc] = cm_ref_client.compose(cm_client_desc)
                elif rank % step == half:
                    p_ref = rank - half
                    lm = yield from learn_clock_model(
                        comm, p_ref, rank, clock, self.offset_alg,
                        self.nfitpoints, self.recompute_intercept,
                        self.fitpoint_spacing,
                        stats=self.stats, level=self.stats_level,
                        round_index=i, algorithm=self.name,
                    )
                    payload = {rank: lm}
                    payload.update(models)
                    yield from comm.send(
                        p_ref, MODEL_TAG, payload,
                        MODEL_BYTES * len(payload),
                    )
                    models = {}
                    break  # a client's work in the tree is done

        # Root distributes cm(0, k) to each k with MPI_Scatter.
        if rank == 0:
            buckets: list = [None] * nprocs
            for k, lm in models.items():
                buckets[k] = lm
            my_lm = yield from comm.scatter(
                buckets, root=0, size=MODEL_BYTES, algorithm="binomial"
            )
        else:
            my_lm = yield from comm.scatter(
                None, root=0, size=MODEL_BYTES, algorithm="binomial"
            )
        return my_lm

    def sync_clocks(self, comm: "Communicator", clock: Clock) -> Generator:
        lm = yield from self._learn_phase(comm, clock)
        if comm.rank == 0 or lm is None:
            return dummy_global_clock(clock)
        return GlobalClockLM(clock, lm)


class HCASync(HCA2Sync):
    """HCA2 plus a final O(p) per-client intercept re-anchoring round.

    After the scatter, the root measures the residual offset to every
    client's *global* clock in turn; each client shifts its intercept by
    that residual.  Technically O(p), but the per-client cost is a single
    offset measurement, so it is "often fast enough in practice".
    """

    name = "hca"

    def sync_clocks(self, comm: "Communicator", clock: Clock) -> Generator:
        lm = yield from self._learn_phase(comm, clock)
        rank = comm.rank
        if rank == 0:
            my_clk = dummy_global_clock(clock)
            for client in range(1, comm.size):
                yield from comm.send(client, GO_TAG, None, 1)
                yield from self.offset_alg.measure_offset(
                    comm, my_clk, 0, client
                )
            return my_clk
        global_clk = GlobalClockLM(clock, lm)
        yield from comm.recv(0, GO_TAG)
        measurement = yield from self.offset_alg.measure_offset(
            comm, global_clk, 0, rank
        )
        # Residual offset between global clocks folds into the intercept.
        adjusted = LinearDriftModel(
            slope=lm.slope, intercept=lm.intercept + measurement.offset
        )
        return GlobalClockLM(clock, adjusted)
