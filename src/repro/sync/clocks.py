"""Logical global clocks built as decorators over a base clock.

:class:`GlobalClockLM` wraps any :class:`~repro.simtime.base.Clock` with a
:class:`~repro.sync.linear_model.LinearDriftModel` adjustment — this is the
``GlobalClockLM(clk, lm)`` of the paper's Algorithm 1.  Clock models nest
(the "decorator pattern" the paper describes for the hierarchical scheme):
H2HCA wraps a node leader's inter-node global clock with an intra-node
model, giving ``GlobalClockLM(GlobalClockLM(hwclock, lm1), lm2)``.

:func:`flatten_clock` / :func:`unflatten_clock` convert a nested stack to a
flat list of (slope, intercept) pairs and back — the wire format
ClockPropSync broadcasts inside a shared-time-source domain (Algorithm 3).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ClockError
from repro.simtime.base import Clock
from repro.sync.linear_model import LinearDriftModel


class GlobalClockLM(Clock):
    """A base clock adjusted by a linear drift model.

    ``read`` applies the model to the base reading; ``invert`` chains the
    affine inverse with the base clock's inverse, so deadline waits on a
    global clock resolve analytically all the way to true time.
    """

    def __init__(self, base: Clock, model: LinearDriftModel) -> None:
        self.base = base
        self.model = model

    def read(self, true_time: float) -> float:
        return self.model.apply(self.base.read(true_time))

    def read_many(self, true_times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`read`: the affine adjustment maps elementwise
        over the base clock's batch read, so a nested stack resolves a
        whole grid in one array pass per layer — bit-identical to the
        scalar path (same doubles, same operation order per element)."""
        return self.model.apply_many(self.base.read_many(true_times))

    def invert(self, reading: float) -> float:
        return self.base.invert(self.model.apply_inverse(reading))

    @property
    def granularity(self) -> float:
        return self.base.granularity

    @property
    def read_overhead(self) -> float:
        return self.base.read_overhead

    @property
    def is_identity(self) -> bool:
        """True for the dummy clock (model == ZERO)."""
        return self.model == LinearDriftModel.ZERO

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GlobalClockLM({self.base!r}, {self.model!r})"


def dummy_global_clock(base: Clock) -> GlobalClockLM:
    """``GlobalClockLM(clk, 0, 0)`` — the identity wrap of Algorithm 1."""
    return GlobalClockLM(base, LinearDriftModel.ZERO)


def flatten_clock(clock: Clock) -> list[tuple[float, float]]:
    """Serialize the model stack, outermost adjustment first.

    The base hardware clock itself is *not* serialized — ClockPropSync's
    whole premise is that the receiver substitutes its own base clock,
    which is valid exactly when sender and receiver share a time source.
    """
    models: list[tuple[float, float]] = []
    current = clock
    while isinstance(current, GlobalClockLM):
        models.append(current.model.as_tuple())
        current = current.base
    return models


def flattened_size_bytes(models: list[tuple[float, float]]) -> int:
    """Wire size of a flattened clock (two doubles per level)."""
    return max(8, 16 * len(models))


def unflatten_clock(base: Clock, models: list[tuple[float, float]]) -> Clock:
    """Rebuild a nested clock stack around ``base``.

    ``models`` is the output of :func:`flatten_clock` (outermost first).
    """
    clock: Clock = base
    for slope, intercept in reversed(models):
        clock = GlobalClockLM(clock, LinearDriftModel(slope, intercept))
    return clock


def base_hardware_clock(clock: Clock) -> Clock:
    """Strip all model layers, returning the underlying clock."""
    current = clock
    while isinstance(current, GlobalClockLM):
        current = current.base
    return current


def stack_depth(clock: Clock) -> int:
    """Number of model layers wrapped around the hardware clock."""
    depth = 0
    current = clock
    while isinstance(current, GlobalClockLM):
        depth += 1
        current = current.base
    return depth


def effective_model(clock: Clock) -> LinearDriftModel:
    """Collapse a nested stack into a single equivalent model.

    Composition of the affine layers from the outside in; raises
    :class:`~repro.errors.ClockError` when the stack is empty.
    """
    models = flatten_clock(clock)
    if not models:
        raise ClockError("clock has no model layers")
    # The outermost layer is applied LAST on a reading, so compose with the
    # innermost first: reading -> inner.apply -> ... -> outer.apply.
    # g_total = g_outer ∘ g_inner  ==>  outer.compose(inner) per model algebra
    result = LinearDriftModel(*models[0])
    for slope, intercept in models[1:]:
        result = result.compose(LinearDriftModel(slope, intercept))
    return result
