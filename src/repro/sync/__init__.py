"""Clock synchronization algorithms — the paper's core contribution.

Building blocks
---------------
* :mod:`repro.sync.offset` — clock-offset measurement between a process
  pair: SKaMPI-Offset (Alg. 7) and Mean-RTT-Offset (Alg. 8).
* :mod:`repro.sync.linear_model` — linear clock-drift models: least-squares
  fitting, composition (model merging), inversion.
* :mod:`repro.sync.clocks` — :class:`GlobalClockLM` decorator clocks,
  nesting, and flatten/unflatten for ClockPropSync broadcasts.
* :mod:`repro.sync.learn` — ``LEARN_CLOCK_MODEL`` and
  ``COMPUTE_AND_SET_INTERCEPT`` (Alg. 2).

Algorithms
----------
* :class:`~repro.sync.jk.JKSync` — Jones/Koenig, O(p) rounds.
* :class:`~repro.sync.hca.HCASync` / :class:`~repro.sync.hca.HCA2Sync` —
  inverted-binomial-tree model learning with merging.
* :class:`~repro.sync.hca3.HCA3Sync` — Alg. 1: the reference time is pushed
  *down* the tree; O(log p) rounds, no model merging.
* :class:`~repro.sync.clockprop.ClockPropSync` — Alg. 3: clone the parent's
  clock model inside a shared-time-source domain.
* :class:`~repro.sync.hierarchical.HierarchicalSync` — the HlHCA scheme;
  :func:`~repro.sync.hierarchical.h2hca` / ``h3hca`` are the paper's
  concrete realizations (Alg. 4).
"""

from repro.sync.linear_model import LinearDriftModel
from repro.sync.clocks import (
    GlobalClockLM,
    dummy_global_clock,
    flatten_clock,
    unflatten_clock,
)
from repro.sync.offset import (
    ClockOffset,
    OffsetAlgorithm,
    SKaMPIOffset,
    MeanRTTOffset,
)
from repro.sync.learn import learn_clock_model
from repro.sync.base import ClockSyncAlgorithm
from repro.sync.jk import JKSync
from repro.sync.hca import HCASync, HCA2Sync
from repro.sync.hca3 import HCA3Sync
from repro.sync.clockprop import ClockPropagationSync
from repro.sync.hierarchical import HierarchicalSync, h2hca, h3hca
from repro.sync.resync import PeriodicResyncClock
from repro.sync.registry import algorithm_from_label, label_of

__all__ = [
    "LinearDriftModel",
    "GlobalClockLM",
    "dummy_global_clock",
    "flatten_clock",
    "unflatten_clock",
    "ClockOffset",
    "OffsetAlgorithm",
    "SKaMPIOffset",
    "MeanRTTOffset",
    "learn_clock_model",
    "ClockSyncAlgorithm",
    "JKSync",
    "HCASync",
    "HCA2Sync",
    "HCA3Sync",
    "ClockPropagationSync",
    "HierarchicalSync",
    "h2hca",
    "h3hca",
    "PeriodicResyncClock",
    "algorithm_from_label",
    "label_of",
]
