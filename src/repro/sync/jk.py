"""JK clock synchronization (Jones & Koenig), the O(p) baseline.

The reference process (rank 0) synchronizes every other process *in turn*:
for each client it runs LEARN_CLOCK_MODEL directly between itself and the
client.  Models are first-hand (a single hop from the time source), which
makes JK very accurate for small process counts, but the sequential sweep
makes its duration linear in p — on larger machines clocks have already
drifted by the time the last client is synchronized, which is exactly why
the paper finds JK to be the worst algorithm on Hydra.

A go-signal precedes each client's learning phase so a client does not
start its ping-pongs while the root is still serving an earlier client
(the original uses the same master-driven sequencing).

The paper's side contribution — that JK improves markedly when its default
Mean-RTT-Offset is swapped for SKaMPI-Offset — is available by passing a
different ``offset_alg``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.simtime.base import Clock
from repro.sync.base import GO_TAG, ModelLearningSync
from repro.sync.clocks import GlobalClockLM, dummy_global_clock
from repro.sync.learn import learn_clock_model

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator


class JKSync(ModelLearningSync):
    """O(p)-round direct synchronization of every client with rank 0."""

    name = "jk"

    def sync_clocks(self, comm: "Communicator", clock: Clock) -> Generator:
        rank = comm.rank
        my_clk: GlobalClockLM = dummy_global_clock(clock)
        if rank == 0:
            for client in range(1, comm.size):
                yield from comm.send(client, GO_TAG, None, 1)
                yield from learn_clock_model(
                    comm,
                    0,
                    client,
                    clock,
                    self.offset_alg,
                    self.nfitpoints,
                    self.recompute_intercept,
                    self.fitpoint_spacing,
                    stats=self.stats,
                    level=self.stats_level,
                    round_index=client,
                    algorithm=self.name,
                )
            return my_clk
        yield from comm.recv(0, GO_TAG)
        lm = yield from learn_clock_model(
            comm,
            0,
            rank,
            clock,
            self.offset_alg,
            self.nfitpoints,
            self.recompute_intercept,
            self.fitpoint_spacing,
            stats=self.stats,
            level=self.stats_level,
            round_index=rank,
            algorithm=self.name,
        )
        return GlobalClockLM(clock, lm)
