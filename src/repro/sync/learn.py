"""LEARN_CLOCK_MODEL and COMPUTE_AND_SET_INTERCEPT (paper Algorithm 2).

A pair of processes collects ``nfitpoints`` offset measurements (each one a
full run of the configured offset algorithm); the client fits a
:class:`~repro.sync.linear_model.LinearDriftModel` over them.  With
``recompute_intercept`` enabled, one extra offset measurement re-anchors
the intercept after the regression (the paper's accuracy refinement).

``fitpoint_spacing`` inserts client-side think time between fit points.
The paper's configurations take hundreds of ping-pongs per fit point, which
spreads the points over a long-enough baseline for the regression to
resolve ppm-scale slopes; scaled-down simulations use explicit spacing to
preserve that baseline (see EXPERIMENTS.md).  The reference side needs no
pacing — it blocks in its receive until the client's next ping arrives.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.errors import SyncError
from repro.obs.events import PhaseBegin, PhaseEnd
from repro.obs.sync_stats import (
    FitpointSample,
    SyncRoundRecord,
    SyncStatsCollector,
)
from repro.simtime.base import Clock
from repro.sync.linear_model import LinearDriftModel
from repro.sync.offset import OffsetAlgorithm

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator


def compute_and_set_intercept(
    comm: "Communicator",
    lm: LinearDriftModel | None,
    clock: Clock,
    p_ref: int,
    client: int,
    offset_alg: OffsetAlgorithm,
) -> Generator:
    """Re-anchor the model's intercept from a fresh offset measurement.

    Client: sets ``intercept`` so the model predicts the just-measured
    offset at the measurement timestamp (paper line: ``lm→intercept ←
    lm→slope · (−timestamp) + o_obj→GET_OFFSET()``).  Reference side only
    participates in the measurement and returns ``None``.
    """
    measurement = yield from offset_alg.measure_offset(
        comm, clock, p_ref, client
    )
    if comm.rank == client:
        if lm is None:
            raise SyncError("client must pass the fitted model")
        intercept = lm.slope * (-measurement.timestamp) + measurement.offset
        return lm.with_intercept(intercept)
    return None


def learn_clock_model(
    comm: "Communicator",
    p_ref: int,
    client: int,
    clock: Clock,
    offset_alg: OffsetAlgorithm,
    nfitpoints: int,
    recompute_intercept: bool = False,
    fitpoint_spacing: float = 0.0,
    stats: SyncStatsCollector | None = None,
    level: str = "",
    round_index: int = 0,
    algorithm: str = "",
) -> Generator:
    """Learn the client's drift model relative to ``p_ref``'s clock.

    Collective over the pair; the client returns the fitted
    :class:`LinearDriftModel`, the reference returns ``None``.  Each side
    passes its *own* current clock: in HCA3 the reference passes its global
    clock model, so the client learns a model directly against the emulated
    global time.

    With ``stats`` set, the client deposits one
    :class:`~repro.obs.sync_stats.SyncRoundRecord` (fit points with RTTs,
    fitted model, residuals) tagged with ``level``/``round_index`` —
    recording is passive and does not alter the measured traffic.
    """
    if nfitpoints < 1:
        raise SyncError("nfitpoints must be >= 1")
    rank = comm.rank
    # Causal phase annotations: both sides emit the identical instance
    # descriptor, so the span recorder can attribute any on-path
    # activity of either rank to this learn round.
    sink = comm.ctx.engine.sink
    if sink is not None:
        sink.emit(PhaseBegin(
            time=comm.ctx.now, rank=comm.ctx.rank, name="sync.learn",
            algorithm=algorithm or offset_alg.name, level=level,
            round_index=round_index, ref=comm.global_rank(p_ref),
            peer=comm.global_rank(client),
        ))
    if rank == p_ref:
        for _ in range(nfitpoints):
            yield from offset_alg.measure_offset(comm, clock, p_ref, client)
        if recompute_intercept:
            yield from compute_and_set_intercept(
                comm, None, clock, p_ref, client, offset_alg
            )
        if sink is not None:
            sink.emit(PhaseEnd(
                time=comm.ctx.now, rank=comm.ctx.rank, name="sync.learn",
            ))
        return None
    if rank != client:
        raise SyncError(
            f"rank {rank} called learn_clock_model for pair "
            f"({p_ref}, {client})"
        )
    xfit = []
    yfit = []
    samples = []
    t_round_start = comm.ctx.now
    for idx in range(nfitpoints):
        measurement = yield from offset_alg.measure_offset(
            comm, clock, p_ref, client
        )
        xfit.append(measurement.timestamp)
        yfit.append(measurement.offset)
        if stats is not None:
            samples.append(FitpointSample(
                timestamp=measurement.timestamp,
                offset=measurement.offset,
                rtt=measurement.rtt,
            ))
        if fitpoint_spacing > 0.0 and idx != nfitpoints - 1:
            yield from comm.ctx.elapse(fitpoint_spacing)
    prof = comm.ctx.engine.profiler
    if prof is not None:
        # Pure-compute section (no yields inside): safe to zone.  The
        # regression is the per-round "fitting" phase of every
        # hierarchy-based algorithm.
        t_fit = prof.push("sync.fit")
    lm = LinearDriftModel.fit(xfit, yfit)
    if prof is not None:
        prof.pop(t_fit)
    bank = comm.ctx.engine.timeseries
    if bank is not None:
        # Drift-model trajectory + round duration for the health layer.
        # Passive (no clock reads, no randomness) like the stats path.
        now = comm.ctx.now
        global_client = comm.global_rank(client)
        bank.sample("sync.model.slope", now, lm.slope, rank=global_client)
        bank.sample(
            "sync.model.intercept", now, lm.intercept, rank=global_client
        )
        bank.sample(
            "sync.round.duration", now, now - t_round_start,
            rank=global_client,
        )
    if stats is not None:
        residuals = tuple(
            y - lm.offset_at(x) for x, y in zip(xfit, yfit)
        )
        stats.record(SyncRoundRecord(
            algorithm=algorithm or offset_alg.name,
            level=level,
            round_index=round_index,
            ref_rank=comm.global_rank(p_ref),
            client_rank=comm.global_rank(client),
            fitpoints=tuple(samples),
            slope=lm.slope,
            intercept=lm.intercept,
            residuals=residuals,
        ))
    if recompute_intercept:
        lm = yield from compute_and_set_intercept(
            comm, lm, clock, p_ref, client, offset_alg
        )
    if sink is not None:
        sink.emit(PhaseEnd(
            time=comm.ctx.now, rank=comm.ctx.rank, name="sync.learn",
        ))
    return lm
