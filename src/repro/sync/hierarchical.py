"""HlHCA — the hierarchical clock-synchronization scheme (Section IV).

:class:`HierarchicalSync` chains an arbitrary number of levels, each level
being (communicator-builder, synchronization algorithm).  The paper's two
concrete realizations are provided as factories:

* :func:`h2hca` (Algorithm 4): inter-node level + intra-node level.  The
  recommended configuration uses HCA3 between node leaders and
  ClockPropSync inside each node.
* :func:`h3hca`: inter-node + intra-node-across-sockets + intra-socket,
  for machines whose sockets have distinct time sources.

Communicator creation is *included* in the synchronized region on purpose:
the paper measures it as part of the synchronization duration ("this
allows for a more realistic and fairer assessment").  Communicators are
cached on the scheme instance so repeated synchronizations reuse them, as
a real implementation would.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.simtime.base import Clock
from repro.sync.base import ClockSyncAlgorithm
from repro.sync.clockprop import ClockPropagationSync
from repro.sync.clocks import dummy_global_clock
from repro.sync.hca3 import HCA3Sync
from repro.sync.offset import OffsetAlgorithm

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator

from repro.simmpi.comm import COMM_TYPE_SHARED, COMM_TYPE_SOCKET


class HierarchicalSync(ClockSyncAlgorithm):
    """Multi-level synchronization: one algorithm per architectural level.

    ``inter_node`` runs among node leaders (one process per node);
    ``intra_node`` runs within each node, its reference being the leader
    that was just synchronized.  With ``inter_socket`` set, the intra-node
    step is further split into a per-node socket-leader level and an
    intra-socket level (H3HCA).
    """

    name = "hlhca"

    def __init__(
        self,
        inter_node: ClockSyncAlgorithm,
        intra_node: ClockSyncAlgorithm | None = None,
        inter_socket: ClockSyncAlgorithm | None = None,
    ) -> None:
        self.inter_node = inter_node
        self.intra_node = intra_node or ClockPropagationSync()
        self.inter_socket = inter_socket
        self._comms: dict[tuple, dict] = {}

    def label(self) -> str:
        parts = ["Top", self.inter_node.label()]
        if self.inter_socket is not None:
            parts += ["Mid", self.inter_socket.label()]
        parts += ["Bottom", self.intra_node.label()]
        return "/".join(parts)

    # ------------------------------------------------------------------
    def _build_comms(self, comm: "Communicator") -> Generator:
        """Create the per-level communicators (collective; cached).

        The cache key includes the engine identity so an algorithm instance
        reused across simulations (separate mpiruns) rebuilds rather than
        resurrecting communicators bound to a dead engine.
        """
        ctx = comm.ctx
        key = (id(ctx.engine), ctx.rank)
        cache = self._comms.setdefault(key, {})
        if cache.get("world_id") == comm.comm_id:
            return cache
        cache.clear()
        cache["world_id"] = comm.comm_id
        # Intra-node: MPI_COMM_TYPE_SHARED split.
        comm_intranode = yield from comm.split_type(COMM_TYPE_SHARED)
        cache["intranode"] = comm_intranode
        # Inter-node: leaders (intranode rank 0) only; others get None.
        leader_color = 0 if comm_intranode.rank == 0 else None
        comm_internode = yield from comm.split(leader_color, key=comm.rank)
        cache["internode"] = comm_internode
        if self.inter_socket is not None:
            # Intra-socket comm (hwloc socket detection equivalent).
            comm_intrasocket = yield from comm.split_type(COMM_TYPE_SOCKET)
            cache["intrasocket"] = comm_intrasocket
            # Socket leaders within a node: one process per socket.
            socket_leader = comm_intrasocket.rank == 0
            color = ("sockleaders", ctx.node) if socket_leader else None
            comm_sockleaders = yield from comm.split(color, key=comm.rank)
            cache["sockleaders"] = comm_sockleaders
        return cache

    def sync_stats_summary(self) -> dict[str, dict[str, float]]:
        """Per-level round statistics, merged over the child algorithms.

        Levels are labelled ``internode``/``intersocket``/``intranode``
        (set on the children before each level runs), so the summary keys
        line up with the scheme's architecture.
        """
        out: dict[str, dict[str, float]] = {}
        for child in (self.inter_node, self.inter_socket, self.intra_node):
            if child is not None:
                out.update(child.sync_stats_summary())
        return out

    def sync_clocks(self, comm: "Communicator", clock: Clock) -> Generator:
        comms = yield from self._build_comms(comm)
        comm_internode = comms["internode"]
        # Step 1: synchronization between nodes (leaders only).
        global_clk: Clock = dummy_global_clock(clock)
        self.inter_node.stats_level = "internode"
        if comm_internode is not None and comm_internode.size > 1:
            global_clk = yield from self.inter_node.sync_clocks(
                comm_internode, clock
            )
        if self.inter_socket is None:
            # Step 2 (H2HCA): synchronization within each compute node.
            self.intra_node.stats_level = "intranode"
            comm_intranode = comms["intranode"]
            if comm_intranode.size > 1:
                global_clk = yield from self.intra_node.sync_clocks(
                    comm_intranode, global_clk
                )
            return global_clk
        # H3HCA: step 2 among socket leaders, step 3 within each socket.
        self.inter_socket.stats_level = "intersocket"
        comm_sockleaders = comms["sockleaders"]
        if comm_sockleaders is not None and comm_sockleaders.size > 1:
            global_clk = yield from self.inter_socket.sync_clocks(
                comm_sockleaders, global_clk
            )
        self.intra_node.stats_level = "intranode"
        comm_intrasocket = comms["intrasocket"]
        if comm_intrasocket.size > 1:
            global_clk = yield from self.intra_node.sync_clocks(
                comm_intrasocket, global_clk
            )
        return global_clk


def h2hca(
    nfitpoints: int = 30,
    offset_alg: OffsetAlgorithm | None = None,
    inter_node: ClockSyncAlgorithm | None = None,
    intra_node: ClockSyncAlgorithm | None = None,
    fitpoint_spacing: float = 0.0,
) -> HierarchicalSync:
    """The paper's H2HCA: HCA3 between nodes + ClockPropSync inside a node.

    ``inter_node``/``intra_node`` override the defaults when a different
    combination is wanted (the scheme accepts any algorithm per level).
    """
    top = inter_node or HCA3Sync(
        offset_alg=offset_alg,
        nfitpoints=nfitpoints,
        fitpoint_spacing=fitpoint_spacing,
    )
    return HierarchicalSync(
        inter_node=top, intra_node=intra_node or ClockPropagationSync()
    )


def h3hca(
    nfitpoints: int = 30,
    offset_alg: OffsetAlgorithm | None = None,
    inter_socket: ClockSyncAlgorithm | None = None,
    fitpoint_spacing: float = 0.0,
) -> HierarchicalSync:
    """H3HCA: adds a socket-leader level for per-socket time sources."""
    top = HCA3Sync(
        offset_alg=offset_alg,
        nfitpoints=nfitpoints,
        fitpoint_spacing=fitpoint_spacing,
    )
    mid = inter_socket or HCA3Sync(
        offset_alg=offset_alg,
        nfitpoints=max(2, nfitpoints // 2),
        fitpoint_spacing=fitpoint_spacing,
    )
    return HierarchicalSync(
        inter_node=top,
        intra_node=ClockPropagationSync(),
        inter_socket=mid,
    )
