"""Common interface of all clock-synchronization algorithms."""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Generator

from repro.obs.sync_stats import SyncStatsCollector
from repro.simtime.base import Clock
from repro.sync.offset import OffsetAlgorithm, SKaMPIOffset

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator

#: Tag for model-transfer messages (within the comm user-tag space).
MODEL_TAG = 8
#: Tag for sequencing go-signals in O(p) algorithms.
GO_TAG = 9
#: Wire size of one serialized linear model (two doubles).
MODEL_BYTES = 16


class ClockSyncAlgorithm(abc.ABC):
    """SYNC_CLOCKS(comm, clk) → a logical global clock on every rank.

    Collective: every member of ``comm`` must call :meth:`sync_clocks` with
    its own current clock.  Rank 0 of the communicator is the time source
    (its returned clock is the identity wrap of its input clock).
    """

    name: str = "sync"
    #: Per-round instrumentation (see :mod:`repro.obs.sync_stats`).
    #: ``None`` for algorithms that have nothing to measure.
    stats: SyncStatsCollector | None = None
    #: Hierarchy-level tag stamped on recorded rounds ("" for flat runs);
    #: :class:`~repro.sync.hierarchical.HierarchicalSync` sets it per level.
    stats_level: str = ""

    @abc.abstractmethod
    def sync_clocks(
        self, comm: "Communicator", clock: Clock
    ) -> Generator:
        """Run the synchronization; returns the process's global clock."""

    @abc.abstractmethod
    def label(self) -> str:
        """Canonical label, e.g. ``hca3/recompute_intercept/1000/skampi_offset/100``."""

    def sync_stats_summary(self) -> dict[str, dict[str, float]]:
        """Aggregated per-level round statistics (empty when untracked)."""
        if self.stats is None:
            return {}
        return self.stats.summary()


class ModelLearningSync(ClockSyncAlgorithm):
    """Base for algorithms built on LEARN_CLOCK_MODEL (JK, HCA*, HCA3).

    Every instance carries a :class:`SyncStatsCollector`; each client's
    LEARN_CLOCK_MODEL round deposits its fit points, RTTs, and residuals
    there.  The collector is SPMD-shared (all simulated ranks run the same
    instance) and purely passive.
    """

    def __init__(
        self,
        offset_alg: OffsetAlgorithm | None = None,
        nfitpoints: int = 30,
        recompute_intercept: bool = False,
        fitpoint_spacing: float = 0.0,
    ) -> None:
        self.offset_alg = offset_alg or SKaMPIOffset()
        self.nfitpoints = nfitpoints
        self.recompute_intercept = recompute_intercept
        self.fitpoint_spacing = fitpoint_spacing
        self.stats = SyncStatsCollector()

    def label(self) -> str:
        parts = [self.name]
        if self.recompute_intercept:
            parts.append("recompute_intercept")
        parts.append(str(self.nfitpoints))
        parts.append(self.offset_alg.name)
        parts.append(str(self.offset_alg.nexchanges))
        return "/".join(parts)
