"""Parse/format the paper's algorithm labels.

The paper identifies configurations with strings like::

    hca/1000/skampi offset/100
    hca2/recompute intercept/1000/skampi offset/100
    hca3/recompute_intercept/1000/SKaMPI-Offset/100
    jk/1000/skampi offset/20
    Top/hca3/500/SKaMPI-Offset/100/Bottom/ClockPropagation

:func:`algorithm_from_label` turns such a string into a configured
algorithm instance; :func:`label_of` is the inverse (canonical form).
Matching is case-insensitive; spaces and dashes normalize to underscores.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sync.base import ClockSyncAlgorithm
from repro.sync.clockprop import ClockPropagationSync
from repro.sync.hca import HCA2Sync, HCASync
from repro.sync.hca3 import HCA3Sync
from repro.sync.hierarchical import HierarchicalSync
from repro.sync.jk import JKSync
from repro.sync.offset import MeanRTTOffset, OffsetAlgorithm, SKaMPIOffset

_SYNC_CLASSES = {
    "jk": JKSync,
    "hca": HCASync,
    "hca2": HCA2Sync,
    "hca3": HCA3Sync,
}

_OFFSET_ALIASES = {
    "skampi_offset": SKaMPIOffset,
    "skampioffset": SKaMPIOffset,
    "mean_rtt_offset": MeanRTTOffset,
    "meanrttoffset": MeanRTTOffset,
    "mean_rtt": MeanRTTOffset,
}

_CLOCKPROP_ALIASES = {"clockpropagation", "clockprop", "clockpropsync"}


def _norm(token: str) -> str:
    return token.strip().lower().replace(" ", "_").replace("-", "_")


def _parse_offset(name: str, nexchanges: int) -> OffsetAlgorithm:
    key = _norm(name)
    try:
        cls = _OFFSET_ALIASES[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown offset algorithm {name!r}; "
            f"known: {sorted(set(_OFFSET_ALIASES))}"
        ) from None
    return cls(nexchanges=nexchanges)


def _parse_flat(
    tokens: list[str], fitpoint_spacing: float
) -> ClockSyncAlgorithm:
    if not tokens:
        raise ConfigurationError("empty algorithm label")
    head = _norm(tokens[0])
    if head in _CLOCKPROP_ALIASES:
        if len(tokens) != 1:
            raise ConfigurationError(
                "ClockPropagation takes no parameters in a label"
            )
        return ClockPropagationSync()
    try:
        cls = _SYNC_CLASSES[head]
    except KeyError:
        raise ConfigurationError(
            f"unknown sync algorithm {tokens[0]!r}; "
            f"known: {sorted(_SYNC_CLASSES)} + clockpropagation"
        ) from None
    rest = tokens[1:]
    recompute = False
    if rest and _norm(rest[0]) == "recompute_intercept":
        recompute = True
        rest = rest[1:]
    if len(rest) != 3:
        raise ConfigurationError(
            f"expected <nfitpoints>/<offset alg>/<nexchanges> after "
            f"{tokens[0]!r}, got {rest!r}"
        )
    try:
        nfitpoints = int(rest[0])
        nexchanges = int(rest[2])
    except ValueError as exc:
        raise ConfigurationError(f"bad numeric field in label: {exc}") from None
    return cls(
        offset_alg=_parse_offset(rest[1], nexchanges),
        nfitpoints=nfitpoints,
        recompute_intercept=recompute,
        fitpoint_spacing=fitpoint_spacing,
    )


def algorithm_from_label(
    label: str, fitpoint_spacing: float = 0.0
) -> ClockSyncAlgorithm:
    """Instantiate the algorithm a paper-style label describes.

    ``fitpoint_spacing`` is a simulation-scaling knob applied to every
    model-learning level (see :mod:`repro.sync.learn`).
    """
    tokens = [t for t in label.split("/") if t.strip()]
    lowered = [_norm(t) for t in tokens]
    if "top" in lowered:
        # Hierarchical: Top/<flat...>/[Mid/<flat...>/]Bottom/<flat...>
        sections: dict[str, list[str]] = {}
        current: str | None = None
        for raw, norm in zip(tokens, lowered):
            if norm in ("top", "mid", "bottom"):
                current = norm
                sections[current] = []
            elif current is None:
                raise ConfigurationError(
                    f"hierarchical label must start with Top/: {label!r}"
                )
            else:
                sections[current].append(raw)
        if "top" not in sections or "bottom" not in sections:
            raise ConfigurationError(
                f"hierarchical label needs Top and Bottom sections: {label!r}"
            )
        inter_node = _parse_flat(sections["top"], fitpoint_spacing)
        intra_node = _parse_flat(sections["bottom"], fitpoint_spacing)
        inter_socket = (
            _parse_flat(sections["mid"], fitpoint_spacing)
            if "mid" in sections
            else None
        )
        return HierarchicalSync(
            inter_node=inter_node,
            intra_node=intra_node,
            inter_socket=inter_socket,
        )
    return _parse_flat(tokens, fitpoint_spacing)


def label_of(algorithm: ClockSyncAlgorithm) -> str:
    """Canonical label of an algorithm instance (round-trips with parse)."""
    return algorithm.label()
