"""HCA3 — the paper's new algorithm (Algorithm 1).

HCA3 pushes the reference time *down* a binomial tree (the PulseSync idea
adapted to MPI): in each round, a process that already owns a global clock
model acts as a reference and *uses that model when timestamping*, so its
children fit their linear models directly against emulated global time.
Compared to HCA2 this avoids merging models that were fitted at different
times, which is where HCA2 accumulates extrapolation error.

Round structure for p processes (nrounds = ⌊log₂ p⌋, max_power = 2^nrounds):

* Step 1 (rounds i = nrounds … 1): processes with rank < max_power pair up
  at stride 2^i; each client learns a model against a reference that is
  already synchronized (rank 0 in round nrounds, then the frontier grows).
* Step 2: ranks ≥ max_power (non-power-of-two remainder) each learn from
  rank − max_power.

Every process is a client exactly once and may serve as a reference in all
later rounds — O(log p) rounds total.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.simtime.base import Clock
from repro.sync.base import ModelLearningSync
from repro.sync.clocks import GlobalClockLM, dummy_global_clock
from repro.sync.learn import learn_clock_model

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator


class HCA3Sync(ModelLearningSync):
    """Algorithm 1: O(log p) rounds, reference time flows down the tree."""

    name = "hca3"

    def sync_clocks(self, comm: "Communicator", clock: Clock) -> Generator:
        nprocs = comm.size
        rank = comm.rank
        nrounds = (nprocs).bit_length() - 1  # floor(log2(nprocs))
        max_power = 1 << nrounds
        my_clk: GlobalClockLM = dummy_global_clock(clock)

        # Step 1: ranks in [0, max_power) learn down the binomial tree.
        for i in range(nrounds, 0, -1):
            running_power = 1 << i
            next_power = 1 << (i - 1)
            if rank >= max_power:
                break
            if rank % running_power == 0:
                # Reference this round: serve rank + next_power using the
                # global clock model learned so far (my_clk).
                other = rank + next_power
                yield from learn_clock_model(
                    comm,
                    rank,
                    other,
                    my_clk,
                    self.offset_alg,
                    self.nfitpoints,
                    self.recompute_intercept,
                    self.fitpoint_spacing,
                    stats=self.stats,
                    level=self.stats_level,
                    round_index=i,
                    algorithm=self.name,
                )
            elif rank % running_power == next_power:
                # Client this round (each process is a client exactly once).
                other = rank - next_power
                lm = yield from learn_clock_model(
                    comm,
                    other,
                    rank,
                    my_clk,
                    self.offset_alg,
                    self.nfitpoints,
                    self.recompute_intercept,
                    self.fitpoint_spacing,
                    stats=self.stats,
                    level=self.stats_level,
                    round_index=i,
                    algorithm=self.name,
                )
                my_clk = GlobalClockLM(clock, lm)

        # Step 2: the non-power-of-two remainder synchronizes across
        # max_power, against references that are already synchronized.
        if rank >= max_power:
            other = rank - max_power
            lm = yield from learn_clock_model(
                comm,
                other,
                rank,
                my_clk,
                self.offset_alg,
                self.nfitpoints,
                self.recompute_intercept,
                self.fitpoint_spacing,
                stats=self.stats,
                level=self.stats_level,
                round_index=0,
                algorithm=self.name,
            )
            my_clk = GlobalClockLM(clock, lm)
        elif rank < nprocs - max_power:
            other = rank + max_power
            yield from learn_clock_model(
                comm,
                rank,
                other,
                my_clk,
                self.offset_alg,
                self.nfitpoints,
                self.recompute_intercept,
                self.fitpoint_spacing,
                stats=self.stats,
                level=self.stats_level,
                round_index=0,
                algorithm=self.name,
            )
        return my_clk
