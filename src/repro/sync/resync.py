"""Periodic re-synchronization — the paper's future-work extension.

Section III-C2 bounds the validity of a linear clock model to roughly
0–20 s: beyond that, drift non-linearity degrades the global clock, which
is why "MPI tracing tools ... have to re-synchronize clocks periodically"
(Doleschal et al., cited in Section II).  :class:`PeriodicResyncClock`
packages that policy: it owns a synchronization algorithm and re-runs it
whenever the current model is older than ``max_model_age`` seconds,
giving long-running campaigns a clock whose error stays bounded instead
of growing linearly with elapsed time.

Usage (inside an SPMD body)::

    resync = PeriodicResyncClock(h2hca(...), max_model_age=10.0)
    clock = yield from resync.ensure(comm, ctx)   # syncs on first call
    ...
    clock = yield from resync.ensure(comm, ctx)   # re-syncs when stale

``ensure`` is collective: all ranks observe the same staleness decision
because it is based on the *global* clock reading at the previous sync,
agreed via a 1-byte broadcast from rank 0 (the time source), so ranks
never disagree about whether a resync round happens.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.errors import SyncError
from repro.obs.events import ResyncRound
from repro.simtime.base import Clock
from repro.sync.base import ClockSyncAlgorithm

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator
    from repro.simmpi.process import ProcessContext


class PeriodicResyncClock:
    """Keeps a global clock fresh by re-running the sync algorithm."""

    def __init__(
        self,
        algorithm: ClockSyncAlgorithm,
        max_model_age: float = 10.0,
    ) -> None:
        if max_model_age <= 0.0:
            raise SyncError("max_model_age must be > 0")
        self.algorithm = algorithm
        self.max_model_age = max_model_age
        self._clock: Clock | None = None
        self._synced_at: float | None = None  # global-clock reading
        self.resync_count = 0

    @property
    def clock(self) -> Clock:
        if self._clock is None:
            raise SyncError("ensure() has not run yet")
        return self._clock

    def ensure(
        self, comm: "Communicator", ctx: "ProcessContext"
    ) -> Generator:
        """Return a fresh global clock, re-synchronizing if stale.

        Collective over ``comm``.  The staleness decision is made by rank
        0 against its own (identity) global clock and broadcast, so every
        rank takes the same branch.
        """
        age = -1.0  # unknown on non-root ranks and for the initial sync
        if self._clock is None:
            stale = True
        elif comm.rank == 0:
            age = ctx.read_clock(self._clock) - self._synced_at
            stale = age >= self.max_model_age
        else:
            stale = False  # decided by rank 0 below
        if self._clock is not None:
            stale = yield from comm.bcast(
                stale if comm.rank == 0 else None, root=0, size=1
            )
        if stale:
            self._clock = yield from self.algorithm.sync_clocks(
                comm, ctx.hardware_clock
            )
            self._synced_at = ctx.read_clock(self._clock)
            self.resync_count += 1
            # Recovery is observable: one event + counter tick per round.
            engine = ctx.engine
            if engine.profiler is not None:
                # The round's wall time is spread over the engine zones
                # (the sync traffic yields); count the round itself.
                engine.profiler.tick("sync.resync.rounds")
            if engine.sink is not None:
                engine.sink.emit(ResyncRound(
                    time=ctx.now, rank=ctx.rank,
                    round_index=self.resync_count, age=age,
                ))
            if engine.metrics is not None:
                engine.metrics.counter("resync.rounds", ctx.rank).inc()
            if engine.timeseries is not None:
                bank = engine.timeseries
                if age >= 0.0:
                    bank.sample("resync.age", ctx.now, age, rank=ctx.rank)
                # Resync markers segment the drift-excursion detector's
                # slope fits (see repro.obs.health).
                bank.mark(
                    "resync", ctx.now, f"round{self.resync_count}",
                    rank=ctx.rank,
                )
        return self._clock

    def label(self) -> str:
        return f"resync[{self.max_model_age:g}s]/{self.algorithm.label()}"
