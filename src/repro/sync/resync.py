"""Periodic re-synchronization — the paper's future-work extension.

Section III-C2 bounds the validity of a linear clock model to roughly
0–20 s: beyond that, drift non-linearity degrades the global clock, which
is why "MPI tracing tools ... have to re-synchronize clocks periodically"
(Doleschal et al., cited in Section II).  :class:`PeriodicResyncClock`
packages that policy: it owns a synchronization algorithm and re-runs it
whenever the current model is older than ``max_model_age`` seconds,
giving long-running campaigns a clock whose error stays bounded instead
of growing linearly with elapsed time.  :class:`ErrorBoundResyncClock`
is its error-driven sibling: instead of a fixed age it resyncs when the
*predicted* clock error (:func:`repro.analysis.accuracy.error_bound`)
approaches an SLO — the policy the service layer sweeps against
periodic schedules.

Usage (inside an SPMD body)::

    resync = PeriodicResyncClock(h2hca(...), max_model_age=10.0)
    clock = yield from resync.ensure(comm, ctx)   # syncs on first call
    ...
    clock = yield from resync.ensure(comm, ctx)   # re-syncs when stale

``ensure`` is collective: all ranks observe the same staleness decision
because it is based on the *global* clock reading at the previous sync,
agreed via a broadcast of rank 0's ``(stale, age)`` decision payload
(rank 0 is the time source), so ranks never disagree about whether a
resync round happens — and every rank knows the model age, so
service-side staleness bounds hold off-root too.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Generator

from repro.errors import SyncError
from repro.obs.events import PhaseBegin, PhaseEnd, ResyncRound
from repro.simtime.base import Clock
from repro.sync.base import ClockSyncAlgorithm

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator
    from repro.simmpi.process import ProcessContext

#: Simulated size of rank 0's broadcast decision: a flag byte plus the
#: 8-byte model age.
RESYNC_DECISION_BYTES = 9


class ResyncClock(abc.ABC):
    """Keeps a global clock fresh by re-running the sync algorithm.

    Subclasses supply the staleness policy (:meth:`_stale`); the
    collective machinery — decide on rank 0, broadcast ``(stale, age)``,
    re-sync, emit telemetry — is shared.
    """

    def __init__(self, algorithm: ClockSyncAlgorithm) -> None:
        self.algorithm = algorithm
        self._clock: Clock | None = None
        self._synced_at: float | None = None  # global-clock reading
        self.resync_count = 0
        #: Model age at the most recent ``ensure`` decision, in global
        #: seconds; identical on every rank (broadcast from rank 0) and
        #: ``-1.0`` until the first post-sync decision.
        self.last_age = -1.0

    @property
    def clock(self) -> Clock:
        if self._clock is None:
            raise SyncError("ensure() has not run yet")
        return self._clock

    @abc.abstractmethod
    def _stale(self, age: float, ctx: "ProcessContext") -> bool:
        """Rank 0's policy decision: re-sync a model ``age`` seconds old?"""

    @abc.abstractmethod
    def label(self) -> str:
        """Human-readable policy tag for reports and figures."""

    def ensure(
        self, comm: "Communicator", ctx: "ProcessContext"
    ) -> Generator:
        """Return a fresh global clock, re-synchronizing if stale.

        Collective over ``comm``.  The staleness decision is made by rank
        0 against its own (identity) global clock and broadcast together
        with the model age, so every rank takes the same branch *and*
        reports the same age.
        """
        age = -1.0  # unknown before the first sync completes
        if self._clock is None:
            stale = True
        elif comm.rank == 0:
            age = ctx.read_clock(self._clock) - self._synced_at
            stale = self._stale(age, ctx)
        else:
            stale = False  # decided by rank 0 below
        if self._clock is not None:
            stale, age = yield from comm.bcast(
                (stale, age) if comm.rank == 0 else None,
                root=0, size=RESYNC_DECISION_BYTES,
            )
        self.last_age = age
        if stale:
            engine = ctx.engine
            if engine.sink is not None:
                # Bound the round for the causal span recorder; every
                # rank reports the same round_index (collective branch).
                engine.sink.emit(PhaseBegin(
                    time=ctx.now, rank=ctx.rank, name="sync.resync",
                    algorithm=getattr(self.algorithm, "name", ""),
                    round_index=self.resync_count + 1,
                ))
            self._clock = yield from self.algorithm.sync_clocks(
                comm, ctx.hardware_clock
            )
            if engine.sink is not None:
                engine.sink.emit(PhaseEnd(
                    time=ctx.now, rank=ctx.rank, name="sync.resync",
                ))
            self._synced_at = ctx.read_clock(self._clock)
            self.resync_count += 1
            # Recovery is observable: one event + counter tick per round.
            if engine.profiler is not None:
                # The round's wall time is spread over the engine zones
                # (the sync traffic yields); count the round itself.
                engine.profiler.tick("sync.resync.rounds")
            if engine.sink is not None:
                engine.sink.emit(ResyncRound(
                    time=ctx.now, rank=ctx.rank,
                    round_index=self.resync_count, age=age,
                ))
            if engine.metrics is not None:
                engine.metrics.counter("resync.rounds", ctx.rank).inc()
            if engine.timeseries is not None:
                bank = engine.timeseries
                if age >= 0.0:
                    bank.sample("resync.age", ctx.now, age, rank=ctx.rank)
                # Resync markers segment the drift-excursion detector's
                # slope fits (see repro.obs.health).
                bank.mark(
                    "resync", ctx.now, f"round{self.resync_count}",
                    rank=ctx.rank,
                )
        return self._clock


class PeriodicResyncClock(ResyncClock):
    """Re-syncs on a fixed model-age schedule (the paper's policy)."""

    def __init__(
        self,
        algorithm: ClockSyncAlgorithm,
        max_model_age: float = 10.0,
    ) -> None:
        if max_model_age <= 0.0:
            raise SyncError("max_model_age must be > 0")
        super().__init__(algorithm)
        self.max_model_age = max_model_age

    def _stale(self, age: float, ctx: "ProcessContext") -> bool:
        return age >= self.max_model_age

    def label(self) -> str:
        return f"resync[{self.max_model_age:g}s]/{self.algorithm.label()}"


class ErrorBoundResyncClock(ResyncClock):
    """Re-syncs when the predicted clock error approaches an SLO.

    Rank 0 evaluates :func:`repro.analysis.accuracy.error_bound` for the
    current model age against its hardware clock's drift family (or an
    explicit ``drift`` rate/model) and triggers a round once the bound
    reaches ``margin * slo``.  With a drifty oscillator this adapts the
    schedule to the drift actually present instead of a fixed worst-case
    period — the trade the ``service_slo`` experiment quantifies.
    """

    def __init__(
        self,
        algorithm: ClockSyncAlgorithm,
        slo: float,
        margin: float = 0.8,
        drift=None,
        base_error: float = 0.0,
    ) -> None:
        if slo <= 0.0:
            raise SyncError("slo must be > 0")
        if not 0.0 < margin <= 1.0:
            raise SyncError("margin must be in (0, 1]")
        if base_error < 0.0:
            raise SyncError("base_error must be >= 0")
        super().__init__(algorithm)
        self.slo = slo
        self.margin = margin
        #: ``DriftModel``, plain rate in s/s, or ``None`` to use rank 0's
        #: hardware-clock drift model at decision time.
        self.drift = drift
        self.base_error = base_error

    def _stale(self, age: float, ctx: "ProcessContext") -> bool:
        from repro.analysis.accuracy import error_bound
        from repro.sync.clocks import effective_model

        drift = (
            self.drift if self.drift is not None
            else ctx.hardware_clock.drift
        )
        model = effective_model(self._clock)
        bound = error_bound(model, age, drift, base_error=self.base_error)
        return bound >= self.margin * self.slo

    def label(self) -> str:
        return (
            f"slo[{self.slo:g}s@{self.margin:g}]/{self.algorithm.label()}"
        )
