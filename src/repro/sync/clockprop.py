"""ClockPropSync (paper Algorithm 3): clone a clock model over a bcast.

When all processes of a communicator share a hardware time source (cores of
one compute node, typically), there is nothing to *measure*: the reference
process flattens its (possibly nested) clock model into a buffer, broadcasts
its size and then the buffer, and every receiver re-instantiates the model
stack around its own base clock.

Correctness requires the shared-time-source precondition — the paper notes
the check via ``clock_getcpuclockid(0)``; here :meth:`check_shared_source`
performs the equivalent ground-truth check (identical HardwareClock
objects), and :class:`~repro.sync.hierarchical.HierarchicalSync` can be
asked to verify it before applying this algorithm.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.errors import SyncError
from repro.simtime.base import Clock
from repro.sync.base import ClockSyncAlgorithm
from repro.sync.clocks import (
    base_hardware_clock,
    dummy_global_clock,
    flatten_clock,
    flattened_size_bytes,
    unflatten_clock,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.comm import Communicator


class ClockPropagationSync(ClockSyncAlgorithm):
    """Broadcast-and-clone synchronization for shared-time-source domains."""

    name = "clockpropagation"

    def __init__(self, p_ref: int = 0) -> None:
        self.p_ref = p_ref

    def label(self) -> str:
        return self.name

    # The real implementation checks the shared-time-source precondition
    # with clock_getcpuclockid(0); the simulation-level oracle is
    # Simulation.shared_time_source(ranks) (tests use it to demonstrate
    # that violating the precondition yields an incorrect clock).

    def sync_clocks(self, comm: "Communicator", clock: Clock) -> Generator:
        if not 0 <= self.p_ref < comm.size:
            raise SyncError(f"p_ref {self.p_ref} out of range")
        if comm.rank == self.p_ref:
            models = flatten_clock(clock)
            buf_size = flattened_size_bytes(models)
            yield from comm.bcast(buf_size, root=self.p_ref, size=8)
            yield from comm.bcast(models, root=self.p_ref, size=buf_size)
            return clock
        buf_size = yield from comm.bcast(None, root=self.p_ref, size=8)
        models = yield from comm.bcast(
            None, root=self.p_ref, size=buf_size
        )
        base = base_hardware_clock(clock)
        if not models:
            return dummy_global_clock(base)
        return unflatten_clock(base, models)
