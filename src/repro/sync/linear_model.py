"""Linear clock-drift models: fitting, composition, inversion.

Sign convention (used consistently across the package): a model fitted by a
*client* against a *reference* predicts

    offset(t) = client_reading(t) - reference_reading(t)
              = slope * t_client + intercept

so the client's estimate of the reference (global) time is::

    global(t_client) = t_client - (slope * t_client + intercept)

(the ``GlobalClockLM(clk, lm)`` adjustment of the paper's Algorithm 1).

Model *merging* (the MERGE of Fig. 1a): given ``cm(a, b)`` mapping b-time to
a-time and ``cm(b, c)`` mapping c-time to b-time, the composite ``cm(a, c)``
maps c-time to a-time by function composition of the affine adjustments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Sequence

import numpy as np

from repro.errors import SyncError


@dataclass(frozen=True)
class LinearDriftModel:
    """``offset(t) = slope * t + intercept`` (client minus reference)."""

    slope: float
    intercept: float

    #: The identity model: no drift, no offset (set after class creation).
    ZERO: ClassVar["LinearDriftModel"]

    def offset_at(self, local_time: float) -> float:
        """Predicted offset of the client clock at a client-local time."""
        return self.slope * local_time + self.intercept

    def apply(self, local_time: float) -> float:
        """Adjust a client-local reading to estimated reference time."""
        return local_time - (self.slope * local_time + self.intercept)

    def apply_many(self, local_times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`apply` (same IEEE operation order per element)."""
        return local_times - (self.slope * local_times + self.intercept)

    def apply_inverse(self, reference_time: float) -> float:
        """Client-local reading at which :meth:`apply` gives ``reference_time``."""
        denom = 1.0 - self.slope
        if abs(denom) < 1e-9:
            raise SyncError(f"model with slope {self.slope} is not invertible")
        return (reference_time + self.intercept) / denom

    def compose(self, inner: "LinearDriftModel") -> "LinearDriftModel":
        """MERGE: ``self`` = cm(a, b), ``inner`` = cm(b, c) → cm(a, c).

        ``apply`` of the result equals ``self.apply(inner.apply(t))``.
        """
        # Shortcuts keep identity compositions bit-exact.
        if inner == LinearDriftModel.ZERO:
            return self
        if self == LinearDriftModel.ZERO:
            return inner
        # (1 - s_ac) = (1 - s_ab)(1 - s_bc);  i_ac = (1 - s_ab) i_bc + i_ab
        one_minus = (1.0 - self.slope) * (1.0 - inner.slope)
        slope = 1.0 - one_minus
        intercept = (1.0 - self.slope) * inner.intercept + self.intercept
        return LinearDriftModel(slope=slope, intercept=intercept)

    def with_intercept(self, intercept: float) -> "LinearDriftModel":
        """Copy with a recomputed intercept (COMPUTE_AND_SET_INTERCEPT)."""
        return LinearDriftModel(slope=self.slope, intercept=intercept)

    @staticmethod
    def fit(
        timestamps: Sequence[float], offsets: Sequence[float]
    ) -> "LinearDriftModel":
        """Least-squares fit of offsets over client-local timestamps.

        Timestamps are centred before solving: raw ``clock_gettime`` values
        can be ~1e4 s while slopes are ~1e-5, and the centred normal
        equations avoid the catastrophic cancellation a naive fit suffers.
        """
        x = np.asarray(timestamps, dtype=np.float64)
        y = np.asarray(offsets, dtype=np.float64)
        if x.shape != y.shape or x.ndim != 1:
            raise SyncError("timestamps and offsets must be equal-length 1-D")
        n = x.size
        if n < 2:
            if n == 1:
                # Degenerate but usable: constant-offset model.
                return LinearDriftModel(slope=0.0, intercept=float(y[0]))
            raise SyncError("need at least one fit point")
        x_mean = x.mean()
        y_mean = y.mean()
        xc = x - x_mean
        denom = float(np.dot(xc, xc))
        if denom == 0.0:
            # All timestamps identical: constant-offset model.
            return LinearDriftModel(slope=0.0, intercept=float(y_mean))
        slope = float(np.dot(xc, y - y_mean) / denom)
        intercept = float(y_mean - slope * x_mean)
        return LinearDriftModel(slope=slope, intercept=intercept)

    @staticmethod
    def r_squared(
        timestamps: Sequence[float], offsets: Sequence[float]
    ) -> float:
        """Coefficient of determination of the fitted model (Fig. 2c check)."""
        x = np.asarray(timestamps, dtype=np.float64)
        y = np.asarray(offsets, dtype=np.float64)
        model = LinearDriftModel.fit(x, y)
        pred = model.slope * x + model.intercept
        ss_res = float(np.sum((y - pred) ** 2))
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        if ss_tot == 0.0:
            return 1.0
        return 1.0 - ss_res / ss_tot

    def as_tuple(self) -> tuple[float, float]:
        """(slope, intercept) — the wire format used by flatten_clock."""
        return (self.slope, self.intercept)


LinearDriftModel.ZERO = LinearDriftModel(0.0, 0.0)
