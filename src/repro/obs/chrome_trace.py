"""Chrome trace-event JSON export (Perfetto / ``about:tracing``).

Two record sources are supported, separately or combined:

* user-level :class:`~repro.trace.tracer.TraceEvent` spans (one complete
  ``"X"`` slice per traced MPI call, one track per rank);
* engine events from :mod:`repro.obs.events` — collective enter/exit as
  ``"B"``/``"E"`` stacks, blocked intervals as ``"X"`` slices, message
  sends/deliveries as ``"i"`` instants and NIC backlog as ``"C"`` counter
  samples.  With ``include_flows`` each send→deliver pair additionally
  becomes a Perfetto flow arrow (``"s"``/``"f"`` events bound by the
  message ``seq``), rendering the causal edges the critical-path
  analysis (:mod:`repro.obs.causal`) walks.

Timestamp remapping (the point of the paper's Fig. 10): engine events
carry *true* simulation times, and tracer events can carry them too.  Pass
``clock_of`` — a ``rank -> Clock`` mapping — to re-read every timestamp
through that rank's clock.  Exporting the same run once through the raw
hardware clocks and once through the synchronized logical clocks yields
the "skewed vs. corrected trace" pair as a two-file visual diff.
"""

from __future__ import annotations

import json
from typing import Callable, Sequence

from repro.obs.events import (
    CollectiveEnter,
    CollectiveExit,
    Event,
    FaultInject,
    MsgDeliver,
    MsgSend,
    NicQueue,
    ProcBlock,
    ProcWake,
    ResyncRound,
)

#: Synthetic Chrome-trace thread id for the fault-injection track (fault
#: windows are cluster-scoped, not per-rank).
FAULT_TID = -1
from repro.simtime.base import Clock
from repro.trace.tracer import TraceEvent

ClockOf = Callable[[int], Clock]


def _remap(time: float, rank: int, clock_of: ClockOf | None) -> float:
    if clock_of is None:
        return time
    return clock_of(rank).read(time)


# ----------------------------------------------------------------------
# Tracer spans
# ----------------------------------------------------------------------
def trace_events_to_chrome(
    events: Sequence[TraceEvent],
    clock_of: ClockOf | None = None,
    time_unit: float = 1e-6,
    pid: int = 0,
) -> list[dict]:
    """One complete ``"X"`` slice per traced call.

    Without ``clock_of`` the recorded clock readings are used verbatim.
    With it, events must carry true times (``Tracer`` records them); each
    timestamp is re-read through ``clock_of(rank)``.
    """
    records = []
    for e in sorted(events, key=lambda e: (e.rank, e.start)):
        if clock_of is None:
            start, end = e.start, e.end
        else:
            if e.true_start is None or e.true_end is None:
                raise ValueError(
                    "clock remapping needs TraceEvents with true times"
                )
            start = _remap(e.true_start, e.rank, clock_of)
            end = _remap(e.true_end, e.rank, clock_of)
        records.append(
            {
                "name": e.name,
                "cat": "mpi",
                "ph": "X",
                "ts": start / time_unit,
                "dur": max(0.0, end - start) / time_unit,
                "pid": pid,
                "tid": e.rank,
                "args": {"iteration": e.iteration},
            }
        )
    return records


# ----------------------------------------------------------------------
# Engine events
# ----------------------------------------------------------------------
def engine_events_to_chrome(
    events: Sequence[Event],
    clock_of: ClockOf | None = None,
    time_unit: float = 1e-6,
    pid: int = 0,
    include_messages: bool = True,
    include_flows: bool = False,
) -> list[dict]:
    """Convert an engine event stream to Chrome trace records.

    Collective enter/exit become ``"B"``/``"E"`` stacks, blocked intervals
    (``ProcBlock`` → next ``ProcWake`` of the same rank) become ``"X"``
    slices, message events become instants and NIC queueing becomes a
    per-node counter track.  ``include_flows`` adds one ``"s"``/``"f"``
    flow-event pair per delivered message (id = message ``seq``), which
    Perfetto renders as a causal arrow from the send instant to the
    delivery instant.
    """
    records: list[dict] = []
    open_blocks: dict[int, ProcBlock] = {}
    for event in events:
        if isinstance(event, FaultInject):
            # Fault windows live on their own track in *true* time (they
            # are scheduled against the simulation, not any rank clock).
            ts_f = event.time / time_unit
            record = {
                "name": f"fault:{event.name}",
                "cat": "fault",
                "ts": ts_f,
                "pid": pid,
                "tid": FAULT_TID,
                "args": {"kind": event.kind, "target": event.target},
            }
            if event.duration > 0.0:
                record["ph"] = "X"
                record["dur"] = event.duration / time_unit
            else:
                record["ph"] = "i"
                record["s"] = "g"
            records.append(record)
            continue
        ts = _remap(event.time, event.rank, clock_of) / time_unit
        if isinstance(event, ResyncRound):
            records.append(
                {
                    "name": "resync_round",
                    "cat": "sync",
                    "ph": "i",
                    "s": "t",
                    "ts": ts,
                    "pid": pid,
                    "tid": event.rank,
                    "args": {"round": event.round_index, "age": event.age},
                }
            )
        elif isinstance(event, CollectiveEnter):
            records.append(
                {
                    "name": event.name,
                    "cat": "collective",
                    "ph": "B",
                    "ts": ts,
                    "pid": pid,
                    "tid": event.rank,
                    "args": {"comm": event.comm_id,
                             "comm_rank": event.comm_rank},
                }
            )
        elif isinstance(event, CollectiveExit):
            records.append(
                {
                    "name": event.name,
                    "cat": "collective",
                    "ph": "E",
                    "ts": ts,
                    "pid": pid,
                    "tid": event.rank,
                }
            )
        elif isinstance(event, ProcBlock):
            open_blocks[event.rank] = event
        elif isinstance(event, ProcWake):
            block = open_blocks.pop(event.rank, None)
            if block is not None:
                start = _remap(block.time, event.rank, clock_of) / time_unit
                records.append(
                    {
                        "name": f"blocked:{block.reason}",
                        "cat": "engine",
                        "ph": "X",
                        "ts": start,
                        "dur": max(0.0, ts - start),
                        "pid": pid,
                        "tid": event.rank,
                        "args": {"source": block.source, "tag": block.tag},
                    }
                )
        elif include_messages and isinstance(event, MsgSend):
            records.append(
                {
                    "name": "send",
                    "cat": "p2p",
                    "ph": "i",
                    "s": "t",
                    "ts": ts,
                    "pid": pid,
                    "tid": event.rank,
                    "args": {"dest": event.dest, "size": event.size,
                             "seq": event.seq, "level": event.level},
                }
            )
            if include_flows:
                records.append(
                    {
                        "name": "msg",
                        "cat": "p2p.flow",
                        "ph": "s",
                        "id": event.seq,
                        "ts": ts,
                        "pid": pid,
                        "tid": event.rank,
                    }
                )
        elif include_messages and isinstance(event, MsgDeliver):
            records.append(
                {
                    "name": "deliver",
                    "cat": "p2p",
                    "ph": "i",
                    "s": "t",
                    "ts": ts,
                    "pid": pid,
                    "tid": event.rank,
                    "args": {"source": event.source, "size": event.size,
                             "seq": event.seq,
                             "latency_us": event.latency / time_unit},
                }
            )
            if include_flows:
                records.append(
                    {
                        "name": "msg",
                        "cat": "p2p.flow",
                        "ph": "f",
                        "bp": "e",
                        "id": event.seq,
                        "ts": ts,
                        "pid": pid,
                        "tid": event.rank,
                    }
                )
        elif isinstance(event, NicQueue):
            records.append(
                {
                    "name": f"nic_backlog/node{event.node}",
                    "cat": "nic",
                    "ph": "C",
                    "ts": ts,
                    "pid": pid,
                    "tid": event.rank,
                    "args": {"backlog": event.backlog},
                }
            )
    return records


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def chrome_trace_json(records: Sequence[dict], shift_to_zero: bool = True) -> str:
    """Serialize records as a Chrome trace-event JSON array.

    Records are sorted by ``(pid, tid, ts)`` and, with ``shift_to_zero``,
    shifted so the earliest timestamp is 0 (viewers render absolute epoch
    offsets poorly).  ``"E"`` events sort after ``"B"`` at equal ``ts`` so
    stacks stay balanced.
    """
    if not records:
        return "[]"
    # Flow starts ("s") sort right after their send instant and flow
    # finishes ("f") right after the delivery instant they bind to.
    phase_order = {"B": 0, "X": 1, "i": 2, "s": 3, "f": 4, "C": 5, "E": 6}
    ordered = sorted(
        records,
        key=lambda r: (r["pid"], r["tid"], r["ts"],
                       phase_order.get(r["ph"], 7)),
    )
    if shift_to_zero:
        t0 = min(r["ts"] for r in ordered)
        shifted = []
        for r in ordered:
            r = dict(r)
            r["ts"] = r["ts"] - t0
            shifted.append(r)
        ordered = shifted
    return json.dumps(ordered, indent=1)


def export_chrome_trace(
    path,
    trace_events: Sequence[TraceEvent] = (),
    engine_events: Sequence[Event] = (),
    clock_of: ClockOf | None = None,
    time_unit: float = 1e-6,
    include_messages: bool = True,
    include_flows: bool = False,
) -> int:
    """Write a combined Chrome trace file; returns the record count."""
    records = trace_events_to_chrome(
        trace_events, clock_of=clock_of, time_unit=time_unit
    )
    records += engine_events_to_chrome(
        engine_events, clock_of=clock_of, time_unit=time_unit,
        include_messages=include_messages, include_flows=include_flows,
    )
    payload = chrome_trace_json(records)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(payload)
    return len(records)
