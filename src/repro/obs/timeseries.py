"""Bounded, decimating time-series telemetry for clock-health tracking.

Skewless network clock synchronization (arXiv:1208.5703) makes the case
that clock quality is a *trajectory*, not a point estimate: a drift
excursion or a slow post-fault resync is invisible in end-of-run metric
snapshots.  This module is the continuous counterpart of
:mod:`repro.obs.metrics`: producers push ``(true_time, value)`` samples
and the bank keeps a bounded, deterministic sketch of every series.

Design points:

* :class:`TimeSeries` is a decimating buffer with **automatic stride
  doubling**: it retains every sample until ``max_points`` is reached,
  then compacts to every 2nd retained point and doubles the acceptance
  stride.  Retention is a pure function of the offered sample sequence
  (sample *i* is retained iff ``i % stride == 0`` for the stride active
  when it arrives), so the same samples always produce the same retained
  points regardless of batching — the determinism contract
  ``tests/obs/test_timeseries.py`` pins.
* :class:`TimeSeriesBank` keys series by ``(name, rank)`` like the
  metrics registry, and adds **scopes** (``bank.scoped("hca/...#0")``)
  so independent simulated mpiruns of one campaign land in disjoint,
  time-monotonic series, and **markers** (fault injections, resync
  rounds) that the anomaly detectors in :mod:`repro.obs.health`
  correlate with the sampled error trajectories.
* Banks are passive and mergeable: the parallel campaign executor runs
  each job under a fresh bank and folds the per-job banks into the
  parent in submission order (the same contract as
  ``MetricsRegistry.merge_from``), which is what makes ``--jobs N``
  reports byte-identical to ``--jobs 1``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

#: Separator between a scope prefix and the metric name in a full series
#: name.  Metric names and scopes may contain "/" (algorithm labels do),
#: so the scope join uses a token that appears in neither.
SCOPE_SEP = "::"


def split_scope(name: str) -> tuple[str, str]:
    """Split a full series name into ``(scope, metric)``.

    ``"hca/15#0::clock.error"`` → ``("hca/15#0", "clock.error")``;
    unscoped names return an empty scope.
    """
    scope, sep, metric = name.rpartition(SCOPE_SEP)
    return (scope, metric) if sep else ("", name)


class TimeSeries:
    """Bounded sample buffer with deterministic stride-doubling decimation.

    ``append`` offers one ``(time, value)`` sample; the buffer keeps at
    most ``max_points`` of them.  When full it drops every other retained
    point and doubles ``stride``, after which only every ``stride``-th
    *offered* sample is accepted — old history keeps its shape at half
    resolution while new samples keep arriving at bounded memory.
    """

    __slots__ = ("name", "rank", "max_points", "_stride", "_count", "_points")

    def __init__(
        self, name: str, rank: int | None = None, max_points: int = 512
    ) -> None:
        if max_points < 2:
            raise ValueError("max_points must be >= 2")
        self.name = name
        self.rank = rank
        self.max_points = max_points
        self._stride = 1
        self._count = 0
        self._points: list[tuple[float, float]] = []

    @property
    def stride(self) -> int:
        """Current acceptance stride (doubles on each compaction)."""
        return self._stride

    @property
    def count(self) -> int:
        """Total samples offered (retained or not)."""
        return self._count

    @property
    def points(self) -> list[tuple[float, float]]:
        """The retained ``(time, value)`` points, oldest first."""
        return self._points

    def append(self, time: float, value: float) -> None:
        """Offer one sample; retention is a pure function of the stream."""
        index = self._count
        self._count = index + 1
        if index % self._stride:
            return
        if len(self._points) >= self.max_points:
            # Compact: keep every other retained point (offered indices
            # 0, 2*stride, 4*stride, ...) and double the stride.
            del self._points[1::2]
            self._stride *= 2
            if index % self._stride:
                return
        self._points.append((time, value))

    def extend(self, pairs) -> None:
        """Offer many ``(time, value)`` samples in order."""
        for time, value in pairs:
            self.append(time, value)

    def times(self) -> list[float]:
        return [t for t, _ in self._points]

    def values(self) -> list[float]:
        return [v for _, v in self._points]

    def copy(self) -> "TimeSeries":
        """Structural copy (used when a bank adopts a merged series)."""
        dup = TimeSeries(self.name, self.rank, self.max_points)
        dup._stride = self._stride
        dup._count = self._count
        dup._points = list(self._points)
        return dup

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "rank": self.rank,
            "count": self._count,
            "stride": self._stride,
            "points": [[t, v] for t, v in self._points],
        }

    def __len__(self) -> int:
        return len(self._points)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TimeSeries({self.name!r}, rank={self.rank}, "
            f"n={len(self._points)}/{self._count}, stride={self._stride})"
        )


def _sort_key(key: tuple[str, int | None]):
    name, rank = key
    return (name, rank is not None, rank if rank is not None else -1)


class TimeSeriesBank:
    """Registry of :class:`TimeSeries` keyed by ``(name, rank)``.

    Mirrors :class:`~repro.obs.metrics.MetricsRegistry`: accessors create
    on first use, ``rank=None`` is the job-level series, and sampling is
    passive — it never draws randomness or perturbs the simulation.

    A *scope* prefix (entered via :meth:`scoped`) namespaces everything
    sampled or marked while it is active, so per-job telemetry from a
    multi-run campaign stays separable after merging.
    """

    def __init__(self, max_points: int = 512, max_marks: int = 1024) -> None:
        self.max_points = max_points
        self.max_marks = max_marks
        self.scope = ""
        self._series: dict[tuple[str, int | None], TimeSeries] = {}
        self._markers: dict[tuple[str, int | None],
                            list[tuple[float, str]]] = {}

    # ------------------------------------------------------------------
    # Scoping
    # ------------------------------------------------------------------
    def scoped_name(self, name: str) -> str:
        """The full series name ``name`` resolves to under the scope."""
        return f"{self.scope}{SCOPE_SEP}{name}" if self.scope else name

    @contextmanager
    def scoped(self, scope: str) -> Iterator["TimeSeriesBank"]:
        """Prefix every sample/mark inside the block with ``scope``."""
        previous = self.scope
        self.scope = (
            f"{previous}{SCOPE_SEP}{scope}" if previous else scope
        )
        try:
            yield self
        finally:
            self.scope = previous

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def series(self, name: str, rank: int | None = None) -> TimeSeries:
        """The series for ``(name, rank)`` under the current scope."""
        key = (self.scoped_name(name), rank)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = TimeSeries(
                key[0], rank, self.max_points
            )
        return series

    def sample(
        self, name: str, time: float, value: float, rank: int | None = None
    ) -> None:
        """Offer one ``(time, value)`` sample to a (scoped) series."""
        self.series(name, rank).append(time, float(value))

    def mark(
        self, name: str, time: float, label: str, rank: int | None = None
    ) -> None:
        """Record a point marker (fault injection, resync round, ...)."""
        key = (self.scoped_name(name), rank)
        marks = self._markers.get(key)
        if marks is None:
            marks = self._markers[key] = []
        if len(marks) < self.max_marks:
            marks.append((time, label))

    # ------------------------------------------------------------------
    # Lookup (full names — callers resolve scopes themselves)
    # ------------------------------------------------------------------
    def get(self, name: str, rank: int | None = None) -> TimeSeries | None:
        """Exact lookup by *full* (already-scoped) name; no creation."""
        return self._series.get((name, rank))

    def items(self) -> list[tuple[tuple[str, int | None], TimeSeries]]:
        """All series, deterministically sorted by ``(name, rank)``."""
        return sorted(self._series.items(), key=lambda kv: _sort_key(kv[0]))

    def names(self) -> list[str]:
        """Every distinct full series name in the bank."""
        return sorted({name for (name, _) in self._series})

    def ranks_of(self, name: str) -> list[int]:
        """The ranks that have a per-rank series under full name ``name``."""
        return sorted(
            rank
            for (n, rank) in self._series
            if n == name and rank is not None
        )

    def marks_named(self, name: str) -> list[tuple[int | None, float, str]]:
        """All markers under full name ``name`` as ``(rank, time, label)``."""
        out = [
            (rank, time, label)
            for (n, rank), marks in self._markers.items()
            if n == name
            for time, label in marks
        ]
        out.sort(key=lambda m: (m[1], m[0] is not None, m[0] or 0, m[2]))
        return out

    def markers(self) -> list[tuple[tuple[str, int | None],
                                    list[tuple[float, str]]]]:
        """All marker lists, deterministically sorted by ``(name, rank)``."""
        return sorted(self._markers.items(), key=lambda kv: _sort_key(kv[0]))

    def __len__(self) -> int:
        return len(self._series)

    # ------------------------------------------------------------------
    # Merging (parallel executor contract)
    # ------------------------------------------------------------------
    def merge_from(self, other: "TimeSeriesBank") -> None:
        """Fold another bank into this one, key-wise.

        A key absent here adopts the other bank's series structurally
        (points, stride, offered count); a key present on both sides has
        the other's *retained* points replayed through the decimator.
        The executor calls this in job-submission order for serial and
        parallel runs alike, which keeps merged banks identical across
        ``--jobs`` settings.
        """
        for key, series in other._series.items():
            mine = self._series.get(key)
            if mine is None:
                self._series[key] = series.copy()
            else:
                mine.extend(series.points)
        for key, marks in other._markers.items():
            merged = self._markers.setdefault(key, [])
            room = self.max_marks - len(merged)
            if room > 0:
                merged.extend(marks[:room])

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict dump (deterministically ordered, JSON-ready)."""
        return {
            "series": [series.to_dict() for _, series in self.items()],
            "markers": [
                {
                    "name": name,
                    "rank": rank,
                    "marks": [[t, label] for t, label in marks],
                }
                for (name, rank), marks in self.markers()
            ],
        }


# ----------------------------------------------------------------------
# Process-wide default bank (used by Simulation when none is passed)
# ----------------------------------------------------------------------
_DEFAULT_TIMESERIES: TimeSeriesBank | None = None


def set_default_timeseries(bank: TimeSeriesBank | None) -> None:
    """Install (or clear, with ``None``) the default telemetry bank."""
    global _DEFAULT_TIMESERIES
    _DEFAULT_TIMESERIES = bank


def get_default_timeseries() -> TimeSeriesBank | None:
    """The currently installed default telemetry bank, if any."""
    return _DEFAULT_TIMESERIES


@contextmanager
def default_timeseries(bank: TimeSeriesBank) -> Iterator[TimeSeriesBank]:
    """Temporarily install ``bank`` as the default (restores on exit)."""
    previous = get_default_timeseries()
    set_default_timeseries(bank)
    try:
        yield bank
    finally:
        set_default_timeseries(previous)
