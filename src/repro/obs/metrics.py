"""Metrics registry: counters, gauges, histograms with per-rank labels.

Naming convention (dotted, Prometheus-ish): the engine publishes

* ``engine.messages.sent`` / ``engine.messages.delivered`` (counters),
* ``engine.bytes.sent`` / ``engine.bytes.delivered`` (counters),
* ``engine.nic.backlog`` (histogram of queue depths found at the NIC),
* ``engine.mailbox.depth`` (histogram of mailbox depths at deposit),
* ``engine.rendezvous.stalls`` (counter of blocking Ssend matches),
* ``engine.rendezvous.stall_time`` (histogram of sender stall durations).

Metrics keyed with ``rank=`` aggregate per process; ``merged`` folds the
per-rank series of one name into a single job-level view.  Like the event
sinks, metrics are passive: updating them never perturbs the simulation.
"""

from __future__ import annotations

import math
import random
from contextlib import contextmanager
from typing import Iterable, Iterator

#: Fixed seed for every histogram's reservoir sampler: downsampling must
#: be a pure function of the observation sequence so repeated runs (and
#: the serial vs parallel executor paths, which replay the same sequence)
#: produce identical sample buffers.
RESERVOIR_SEED = 0xC10C


class Counter:
    """Monotonically increasing count/sum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-set value, tracking the extremes and how often it was set.

    ``set_count`` distinguishes "created but never set" (value 0.0,
    extremes at ±inf) from a legitimately-set 0.0 — the merge path
    relies on it to avoid a pristine worker gauge clobbering the
    parent's last-set value.
    """

    __slots__ = ("value", "max_value", "min_value", "set_count")

    def __init__(self) -> None:
        self.value = 0.0
        self.max_value = -math.inf
        self.min_value = math.inf
        self.set_count = 0

    def set(self, value: float) -> None:
        self.value = value
        self.set_count += 1
        if value > self.max_value:
            self.max_value = value
        if value < self.min_value:
            self.min_value = value


class Histogram:
    """Streaming summary (count/sum/min/max) plus a bounded sample buffer.

    Quantiles come from a deterministic **reservoir** (Vitter's
    Algorithm R with a fixed-seed per-instance RNG): every offered
    observation has equal retention probability, so post-merge quantiles
    no longer favor early/first-worker samples, yet the buffer is still
    a pure function of the observation sequence — repeated runs stay
    bit-identical.  The scalar summary stays exact regardless of volume.
    """

    __slots__ = ("count", "total", "min_value", "max_value", "_samples",
                 "max_samples", "_offered", "_rng")

    def __init__(self, max_samples: int = 4096) -> None:
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf
        self.max_samples = max_samples
        self._samples: list[float] = []
        self._offered = 0
        self._rng = random.Random(RESERVOIR_SEED)

    def _offer(self, value: float) -> None:
        """Offer one value to the reservoir (Algorithm R)."""
        self._offered += 1
        if len(self._samples) < self.max_samples:
            self._samples.append(value)
            return
        slot = self._rng.randrange(self._offered)
        if slot < self.max_samples:
            self._samples[slot] = value

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        self._offer(value)

    def observe_many(self, values) -> None:
        """Observe a batch (numpy array or sequence) of values.

        The reservoir consumes values one at a time in order, so the
        retained sample buffer — and therefore every quantile — is
        bit-identical to a loop of :meth:`observe` calls over the same
        sequence.  The scalar summary is folded batch-wise (``fsum`` for
        the total), which is exact rather than order-accumulated.
        """
        values = [float(v) for v in values]
        if not values:
            return
        self.count += len(values)
        self.total += math.fsum(values)
        lo = min(values)
        hi = max(values)
        if lo < self.min_value:
            self.min_value = lo
        if hi > self.max_value:
            self.max_value = hi
        for value in values:
            self._offer(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Interpolated quantile estimate from the retained samples."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        h = min(len(ordered) - 1.0, max(0.0, q * (len(ordered) - 1)))
        lo = int(h)
        hi = min(lo + 1, len(ordered) - 1)
        frac = h - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)
        # Replay the other buffer through this reservoir: deterministic
        # (fixed-seed RNG stream) and unbiased over the full sequence,
        # instead of keeping only the head of other._samples.
        for value in other._samples:
            self._offer(value)


class MetricsRegistry:
    """Registry of named metrics, optionally labelled by rank.

    A metric is addressed by ``(name, rank)``; ``rank=None`` is the
    job-level series.  Accessors create on first use so instrumentation
    sites stay one-liners.
    """

    def __init__(self) -> None:
        self._counters: dict[tuple[str, int | None], Counter] = {}
        self._gauges: dict[tuple[str, int | None], Gauge] = {}
        self._histograms: dict[tuple[str, int | None], Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, rank: int | None = None) -> Counter:
        key = (name, rank)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, rank: int | None = None) -> Gauge:
        key = (name, rank)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(self, name: str, rank: int | None = None) -> Histogram:
        key = (name, rank)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram()
        return metric

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def ranks_of(self, name: str) -> list[int]:
        """The ranks that have a per-rank series under ``name``."""
        ranks = {
            rank
            for store in (self._counters, self._gauges, self._histograms)
            for (n, rank) in store
            if n == name and rank is not None
        }
        return sorted(ranks)

    def merged_counter(self, name: str) -> float:
        """Sum of one counter over all its labels (per-rank + job-level)."""
        return sum(
            c.value for (n, _), c in self._counters.items() if n == name
        )

    def merged_histogram(self, name: str) -> Histogram:
        """All labelled series of one histogram folded together."""
        merged = Histogram()
        for (n, _), h in self._histograms.items():
            if n == name:
                merged.merge(h)
        return merged

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (label-wise).

        Counters and histograms accumulate; a gauge takes the other's
        last-set value *only if the other gauge was actually set*
        (``set_count > 0``) while keeping the combined extremes — a
        worker gauge that was created but never set must not clobber
        the parent's value.  Used by the parallel executor to merge
        per-worker registries into the parent in job-submission order.
        """
        for key, c in other._counters.items():
            self.counter(*key).inc(c.value)
        for key, g in other._gauges.items():
            mine = self.gauge(*key)
            if g.set_count:
                mine.value = g.value
            mine.set_count += g.set_count
            mine.max_value = max(mine.max_value, g.max_value)
            mine.min_value = min(mine.min_value, g.min_value)
        for key, h in other._histograms.items():
            self.histogram(*key).merge(h)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, dict]:
        """Plain-dict dump (for run summaries and JSON serialization)."""

        def label(name: str, rank: int | None) -> str:
            return name if rank is None else f"{name}[rank={rank}]"

        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for (name, rank), c in sorted(self._counters.items(),
                                      key=lambda kv: str(kv[0])):
            out["counters"][label(name, rank)] = c.value
        for (name, rank), g in sorted(self._gauges.items(),
                                      key=lambda kv: str(kv[0])):
            out["gauges"][label(name, rank)] = {
                "value": g.value, "max": g.max_value, "min": g.min_value,
                "set_count": g.set_count,
            }
        for (name, rank), h in sorted(self._histograms.items(),
                                      key=lambda kv: str(kv[0])):
            out["histograms"][label(name, rank)] = {
                "count": h.count,
                "mean": h.mean,
                "min": h.min_value if h.count else 0.0,
                "max": h.max_value if h.count else 0.0,
                "p50": h.quantile(0.5),
                "p99": h.quantile(0.99),
                "p999": h.quantile(0.999),
            }
        return out

    def names(self) -> list[str]:
        """Every distinct metric name in the registry."""
        seen: set[str] = set()
        for store in (self._counters, self._gauges, self._histograms):
            seen.update(name for (name, _) in store)
        return sorted(seen)


def format_summary(registry: MetricsRegistry,
                   names: Iterable[str] | None = None) -> str:
    """Human-readable one-line-per-metric summary of a registry."""
    snap = registry.snapshot()
    lines = []
    wanted = set(names) if names is not None else None

    def keep(label: str) -> bool:
        if wanted is None:
            return True
        return label.split("[")[0] in wanted

    for label, value in snap["counters"].items():
        if keep(label):
            lines.append(f"{label}: {value:g}")
    for label, g in snap["gauges"].items():
        if keep(label):
            lines.append(f"{label}: {g['value']:g} (max {g['max']:g})")
    for label, h in snap["histograms"].items():
        if keep(label) and h["count"]:
            lines.append(
                f"{label}: n={h['count']} mean={h['mean']:.3g} "
                f"p99={h['p99']:.3g} max={h['max']:.3g}"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Process-wide default registry (used by Simulation when none is passed)
# ----------------------------------------------------------------------
_DEFAULT_METRICS: MetricsRegistry | None = None


def set_default_metrics(registry: MetricsRegistry | None) -> None:
    """Install (or clear, with ``None``) the default metrics registry."""
    global _DEFAULT_METRICS
    _DEFAULT_METRICS = registry


def get_default_metrics() -> MetricsRegistry | None:
    """The currently installed default registry, if any."""
    return _DEFAULT_METRICS


@contextmanager
def default_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Temporarily install ``registry`` as the default (restores on exit)."""
    previous = get_default_metrics()
    set_default_metrics(registry)
    try:
        yield registry
    finally:
        set_default_metrics(previous)
