"""Per-round instrumentation of the clock-synchronization algorithms.

Every LEARN_CLOCK_MODEL invocation (one client fitting a model against one
reference) is one *round*; the client records a :class:`SyncRoundRecord`
with the raw fit points (timestamp, offset, observed RTT), the fitted
model, and the fit residuals.  A hierarchical scheme tags each record with
the level it ran at (``internode``/``intersocket``/``intranode``), so the
paper's "accuracy decays down the tree" claim can be checked per level.

Collectors are passive and SPMD-shared: the same algorithm instance runs
on every simulated rank, so records from all ranks accumulate in one
collector, tagged by the recording (client) rank.  Deterministic engines
give a deterministic record order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class FitpointSample:
    """One offset measurement used as a regression fit point."""

    timestamp: float
    offset: float
    #: Round-trip time observed while measuring (None if unavailable).
    rtt: float | None = None


@dataclass(frozen=True)
class SyncRoundRecord:
    """One client's completed LEARN_CLOCK_MODEL round."""

    algorithm: str
    #: Hierarchy level label ("" for flat runs).
    level: str
    #: Tree round / sweep index within the algorithm.
    round_index: int
    ref_rank: int
    client_rank: int
    fitpoints: tuple[FitpointSample, ...]
    slope: float
    intercept: float
    #: offset - model prediction, per fit point.
    residuals: tuple[float, ...]

    @property
    def nfitpoints(self) -> int:
        return len(self.fitpoints)

    @property
    def rtts(self) -> list[float]:
        return [fp.rtt for fp in self.fitpoints if fp.rtt is not None]

    @property
    def min_rtt(self) -> float:
        rtts = self.rtts
        return min(rtts) if rtts else math.nan

    @property
    def mean_rtt(self) -> float:
        rtts = self.rtts
        return sum(rtts) / len(rtts) if rtts else math.nan

    @property
    def max_abs_residual(self) -> float:
        return max((abs(r) for r in self.residuals), default=0.0)

    @property
    def rms_residual(self) -> float:
        if not self.residuals:
            return 0.0
        return math.sqrt(
            sum(r * r for r in self.residuals) / len(self.residuals)
        )


@dataclass
class SyncStatsCollector:
    """Accumulates round records across ranks/levels of one or more runs."""

    rounds: list[SyncRoundRecord] = field(default_factory=list)

    def record(self, record: SyncRoundRecord) -> None:
        self.rounds.append(record)

    def clear(self) -> None:
        self.rounds.clear()

    def __len__(self) -> int:
        return len(self.rounds)

    # ------------------------------------------------------------------
    def for_level(self, level: str) -> list[SyncRoundRecord]:
        return [r for r in self.rounds if r.level == level]

    def for_client(self, rank: int) -> list[SyncRoundRecord]:
        return [r for r in self.rounds if r.client_rank == rank]

    def levels(self) -> list[str]:
        seen: list[str] = []
        for r in self.rounds:
            if r.level not in seen:
                seen.append(r.level)
        return seen

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-level aggregate: rounds, RTT and residual statistics."""
        out: dict[str, dict[str, float]] = {}
        for level in self.levels():
            records = self.for_level(level)
            rtts = [rtt for r in records for rtt in r.rtts]
            residuals = [abs(res) for r in records for res in r.residuals]
            slopes = [r.slope for r in records]
            out[level or "flat"] = {
                "rounds": float(len(records)),
                "fitpoints": float(sum(r.nfitpoints for r in records)),
                "mean_rtt": (sum(rtts) / len(rtts)) if rtts else math.nan,
                "min_rtt": min(rtts) if rtts else math.nan,
                "max_abs_residual": max(residuals, default=0.0),
                "mean_abs_residual": (
                    sum(residuals) / len(residuals) if residuals else 0.0
                ),
                "mean_abs_slope": (
                    sum(abs(s) for s in slopes) / len(slopes)
                    if slopes else 0.0
                ),
            }
        return out
