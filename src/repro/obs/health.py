"""Anomaly detectors over the clock-health telemetry bank.

"MPI Benchmarking Revisited" (arXiv:1505.07734) argues measurement
pipelines need built-in validity checks; this module is ours.  Four
detectors scan the ``clock.error*`` series of a
:class:`~repro.obs.timeseries.TimeSeriesBank` (per-rank estimated-vs-true
global-clock error, sampled by the campaign/recovery harnesses), and a
fifth scans the service layer's stale-read-rate series:

* **drift excursion** — the error slope between consecutive resync
  markers exceeds a threshold: the linear clock model is degrading
  faster than the paper's Section III-C2 validity window assumes.
* **desync breach** — ``|error|`` stays above a tolerance for longer
  than a grace window: the global clock is effectively unsynchronized.
* **resync latency** — the time from a fault-injection marker until the
  error re-enters tolerance; slow or absent recovery is flagged, and
  healthy recoveries are reported as ``info`` findings so the run
  report always shows the measured latency.
* **stuck clock** — a series flat-lines at a constant non-zero value:
  either the estimator froze or the sampling pipeline died.  (Constant
  *zero* is exact agreement — shared time-source domains produce it
  legitimately — and is not flagged.)
* **stale read** — the clock service's ``service.stale_rate`` series
  (fraction of responses whose error bound exceeded the SLO) stays out
  of tolerance for a sustained window: the resync policy is losing
  against the drift.
* **depth anomaly** — the causal tracing layer's measured sync-round
  critical-path depth (``sync.critical.depth_ratio``, measured depth
  over the algorithm's expected O(log p) / O(p) bound) exceeds 1: the
  round's critical path is deeper than the algorithm's structure
  predicts — an early signal for delay attacks, congestion, or a
  broken tree (the ROADMAP item-2 adversary scenarios).
* **byzantine suspect** — one rank's mean |error| is a large multiple
  of its scope's population median: the classic signature of a rank
  whose clock (or whose timestamp reports, see
  :mod:`repro.scenarios`) disagrees with an otherwise-converged
  cohort.  Needs a minimum cohort size — outliers are only meaningful
  against a population.
* **congestion desync** — the network layer's ``net.queue_delay``
  series (queueing sojourn sampled by congestion adversaries) shows a
  sustained standing queue; escalates to critical when the same scope
  also desynchronized, tying the clock damage to the congestion.

Everything is pure ``math`` over retained points (no numpy), so verdicts
are bit-deterministic and goldenable; ``to_dict`` rounds floats to 12
decimals to absorb last-ulp libm differences across platforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.timeseries import SCOPE_SEP, TimeSeriesBank, split_scope

#: Severity order, worst last.
SEVERITIES = ("info", "warning", "critical")

#: Metric (unscoped) name prefix of the error series detectors scan.
ERROR_METRIC = "clock.error"
#: Metric (unscoped) name of the service stale-read-rate series.
STALE_METRIC = "service.stale_rate"
#: Metric (unscoped) name of the critical-path depth-ratio series
#: (measured level depth / expected bound, deposited by --critical-path).
DEPTH_METRIC = "sync.critical.depth_ratio"
#: Metric (unscoped) name of the queueing-sojourn series (sampled by
#: congestion adversaries, see repro.scenarios.apply).
QUEUE_METRIC = "net.queue_delay"
#: Marker metric names the detectors correlate against.
RESYNC_MARKER = "resync"
FAULT_MARKER = "fault"


@dataclass(frozen=True)
class HealthThresholds:
    """Tunable limits for the four detectors (seconds unless noted)."""

    #: |d(error)/dt| between resyncs above this is a drift excursion.
    drift_slope: float = 5e-6
    #: Minimum segment span (s) before a slope estimate is trusted.
    drift_window: float = 3.0
    #: Minimum points per segment for a slope estimate.
    drift_min_points: int = 4
    #: |error| above this is out of tolerance.
    desync_tolerance: float = 100e-6
    #: Seconds out of tolerance before a breach finding fires.
    desync_grace: float = 2.0
    #: Allowed seconds from a fault trigger to error re-entering
    #: tolerance before recovery counts as slow.
    resync_latency: float = 10.0
    #: Consecutive identical samples before a series counts as stuck.
    stuck_min_points: int = 8
    #: Minimum span (s) of the identical run.
    stuck_span: float = 2.0
    #: Stale-read rate (fraction of responses whose error bound exceeds
    #: the SLO) above this is out of tolerance.
    stale_rate_tolerance: float = 0.01
    #: Seconds the rate must stay out of tolerance before a finding.
    stale_window: float = 2.0
    #: Rate at which a stale-read finding escalates to critical.
    stale_rate_critical: float = 0.25
    #: Measured/expected critical-path depth ratio above this is a
    #: depth anomaly (1.0 = exactly the structural bound).
    depth_ratio: float = 1.0
    #: Ratio at which a depth anomaly escalates to critical.
    depth_ratio_critical: float = 2.0
    #: A rank whose mean |error| exceeds this multiple of its scope's
    #: population median (and desync_tolerance) is a byzantine suspect.
    byzantine_factor: float = 8.0
    #: Multiple at which a byzantine suspect escalates to critical.
    byzantine_factor_critical: float = 32.0
    #: Minimum error series in a scope before outlier detection runs.
    byzantine_min_series: int = 3
    #: Queueing sojourn (s) above this counts as a standing queue.
    queue_delay_tolerance: float = 50e-6
    #: Seconds the sojourn must stay above tolerance before a
    #: congestion finding fires (sync rounds are sub-second, so the
    #: window is much shorter than the wall-clock-scale thresholds).
    queue_window: float = 10e-3


@dataclass(frozen=True)
class HealthFinding:
    """One typed detector hit against one telemetry series."""

    detector: str
    severity: str
    #: Full (scoped) series name the finding anchors to.
    series: str
    rank: int | None
    #: Time span of the anomalous behaviour (true simulation seconds).
    start: float
    end: float
    #: Measured magnitude (slope, |error|, latency, ... per detector).
    value: float
    threshold: float
    message: str

    def to_dict(self) -> dict:
        return {
            "detector": self.detector,
            "severity": self.severity,
            "series": self.series,
            "rank": self.rank,
            "start": _round(self.start),
            "end": _round(self.end),
            "value": _round(self.value),
            "threshold": _round(self.threshold),
            "message": self.message,
        }


@dataclass
class HealthVerdict:
    """Aggregated outcome of one full detector sweep over a bank."""

    findings: list[HealthFinding] = field(default_factory=list)
    #: detector name → {"findings": n, "worst": severity or "ok"}.
    detectors: dict[str, dict] = field(default_factory=dict)
    series_scanned: int = 0

    @property
    def status(self) -> str:
        """Worst non-info severity across findings, or ``"ok"``."""
        worst = -1
        for finding in self.findings:
            worst = max(worst, SEVERITIES.index(finding.severity))
        return SEVERITIES[worst] if worst > 0 else "ok"

    def by_severity(self, severity: str) -> list[HealthFinding]:
        return [f for f in self.findings if f.severity == severity]

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "series_scanned": self.series_scanned,
            "detectors": self.detectors,
            "findings": [f.to_dict() for f in self.findings],
        }


def _round(x: float) -> float:
    return round(float(x), 12)


def _is_error_series(name: str) -> bool:
    metric = split_scope(name)[1]
    return metric == ERROR_METRIC or metric.startswith(ERROR_METRIC + ".")


def _error_series(bank: TimeSeriesBank):
    """All ``clock.error*`` series, in the bank's deterministic order."""
    return [
        series
        for (name, _), series in bank.items()
        if _is_error_series(name) and len(series) >= 2
    ]


def _marker_times(
    bank: TimeSeriesBank, series_name: str, marker: str, rank: int | None
) -> list[float]:
    """Marker times in the series' scope, for its rank or rank-agnostic."""
    scope = split_scope(series_name)[0]
    full = f"{scope}{SCOPE_SEP}{marker}" if scope else marker
    return sorted(
        time
        for mark_rank, time, _ in bank.marks_named(full)
        if mark_rank is None or rank is None or mark_rank == rank
    )


def _slope(points: list[tuple[float, float]]) -> float:
    """Closed-form least-squares slope (deterministic, no numpy)."""
    n = len(points)
    mean_t = sum(t for t, _ in points) / n
    mean_v = sum(v for _, v in points) / n
    num = sum((t - mean_t) * (v - mean_v) for t, v in points)
    den = sum((t - mean_t) ** 2 for t, _ in points)
    return num / den if den else 0.0


# ----------------------------------------------------------------------
# Detectors
# ----------------------------------------------------------------------
def detect_drift_excursions(
    bank: TimeSeriesBank, th: HealthThresholds | None = None
) -> list[HealthFinding]:
    """Error slope above threshold between consecutive resync markers."""
    th = th or HealthThresholds()
    findings = []
    for series in _error_series(bank):
        boundaries = _marker_times(
            bank, series.name, RESYNC_MARKER, series.rank
        )
        points = series.points
        edges = (
            [points[0][0]]
            + [b for b in boundaries if points[0][0] < b < points[-1][0]]
            + [points[-1][0]]
        )
        for lo, hi in zip(edges, edges[1:]):
            segment = [p for p in points if lo <= p[0] <= hi]
            if (
                len(segment) < th.drift_min_points
                or segment[-1][0] - segment[0][0] < th.drift_window
            ):
                continue
            slope = _slope(segment)
            if abs(slope) <= th.drift_slope:
                continue
            severity = (
                "critical" if abs(slope) > 10 * th.drift_slope
                else "warning"
            )
            findings.append(HealthFinding(
                detector="drift_excursion",
                severity=severity,
                series=series.name,
                rank=series.rank,
                start=segment[0][0],
                end=segment[-1][0],
                value=slope,
                threshold=th.drift_slope,
                message=(
                    f"error slope {slope:.3g} s/s exceeds "
                    f"{th.drift_slope:.3g} between resyncs"
                ),
            ))
    return findings


def detect_desync_breaches(
    bank: TimeSeriesBank, th: HealthThresholds | None = None
) -> list[HealthFinding]:
    """|error| above tolerance for longer than the grace window."""
    th = th or HealthThresholds()
    findings = []
    for series in _error_series(bank):
        run: list[tuple[float, float]] = []
        for point in series.points + [(float("inf"), 0.0)]:
            if abs(point[1]) > th.desync_tolerance:
                run.append(point)
                continue
            if run:
                span = run[-1][0] - run[0][0]
                if span >= th.desync_grace:
                    peak = max(abs(v) for _, v in run)
                    findings.append(HealthFinding(
                        detector="desync_breach",
                        severity="critical",
                        series=series.name,
                        rank=series.rank,
                        start=run[0][0],
                        end=run[-1][0],
                        value=peak,
                        threshold=th.desync_tolerance,
                        message=(
                            f"|error| peaked at {peak:.3g}s, above "
                            f"{th.desync_tolerance:.3g}s tolerance for "
                            f"{span:.3g}s (grace {th.desync_grace:g}s)"
                        ),
                    ))
                run = []
    return findings


def detect_resync_latency(
    bank: TimeSeriesBank, th: HealthThresholds | None = None
) -> list[HealthFinding]:
    """Per fault trigger: time until the error re-enters tolerance.

    Healthy recoveries produce ``info`` findings (the measured latency
    belongs in the run report either way); slow recoveries are warnings
    and runs that never re-enter tolerance are critical.
    """
    th = th or HealthThresholds()
    findings = []
    for series in _error_series(bank):
        triggers = _marker_times(
            bank, series.name, FAULT_MARKER, series.rank
        )
        points = series.points
        for trigger in triggers:
            post = [p for p in points if p[0] >= trigger]
            breach = next(
                (i for i, (_, v) in enumerate(post)
                 if abs(v) > th.desync_tolerance),
                None,
            )
            if breach is None:
                continue  # this fault never pushed the error out
            recovered = next(
                (t for t, v in post[breach:]
                 if abs(v) <= th.desync_tolerance),
                None,
            )
            if recovered is None:
                latency = post[-1][0] - trigger
                severity, note = "critical", "never re-entered tolerance"
            else:
                latency = recovered - trigger
                slow = latency > th.resync_latency
                severity = "warning" if slow else "info"
                note = (
                    f"recovered {latency:.3g}s after the trigger"
                    + (" (slow)" if slow else "")
                )
            findings.append(HealthFinding(
                detector="resync_latency",
                severity=severity,
                series=series.name,
                rank=series.rank,
                start=trigger,
                end=trigger + latency,
                value=latency,
                threshold=th.resync_latency,
                message=f"fault at t={trigger:.3g}s: {note}",
            ))
    return findings


def detect_stuck_clocks(
    bank: TimeSeriesBank, th: HealthThresholds | None = None
) -> list[HealthFinding]:
    """A series flat-lining at a constant non-zero value."""
    th = th or HealthThresholds()
    findings = []
    for series in _error_series(bank):
        points = series.points
        start = 0
        for i in range(1, len(points) + 1):
            if (
                i < len(points)
                and points[i][1] == points[start][1]
                and points[i][1] != 0.0
            ):
                continue
            run = points[start:i]
            if (
                len(run) >= th.stuck_min_points
                and run[-1][0] - run[0][0] >= th.stuck_span
                and run[0][1] != 0.0
            ):
                findings.append(HealthFinding(
                    detector="stuck_clock",
                    severity="warning",
                    series=series.name,
                    rank=series.rank,
                    start=run[0][0],
                    end=run[-1][0],
                    value=run[0][1],
                    threshold=float(th.stuck_min_points),
                    message=(
                        f"{len(run)} consecutive samples frozen at "
                        f"{run[0][1]:.3g} over "
                        f"{run[-1][0] - run[0][0]:.3g}s"
                    ),
                ))
            start = i
    return findings


def _stale_series(bank: TimeSeriesBank):
    """All ``service.stale_rate`` series, in deterministic bank order."""
    return [
        series
        for (name, _), series in bank.items()
        if split_scope(name)[1] == STALE_METRIC and len(series) >= 2
    ]


def detect_stale_reads(
    bank: TimeSeriesBank, th: HealthThresholds | None = None
) -> list[HealthFinding]:
    """Service stale-read rate out of tolerance for a sustained window.

    The service driver samples the fraction of responses per reporting
    interval whose error bound exceeded the SLO.  A brief spike right
    before a resync lands is expected (that is the policy working at
    its margin); a *sustained* run above tolerance means the resync
    policy is losing against the drift — warning, escalating to
    critical when the rate says most reads are stale.
    """
    th = th or HealthThresholds()
    findings = []
    for series in _stale_series(bank):
        run: list[tuple[float, float]] = []
        for point in series.points + [(float("inf"), 0.0)]:
            if point[1] > th.stale_rate_tolerance:
                run.append(point)
                continue
            if run:
                span = run[-1][0] - run[0][0]
                if span >= th.stale_window:
                    peak = max(v for _, v in run)
                    severity = (
                        "critical" if peak >= th.stale_rate_critical
                        else "warning"
                    )
                    findings.append(HealthFinding(
                        detector="stale_read",
                        severity=severity,
                        series=series.name,
                        rank=series.rank,
                        start=run[0][0],
                        end=run[-1][0],
                        value=peak,
                        threshold=th.stale_rate_tolerance,
                        message=(
                            f"stale-read rate peaked at {peak:.3g}, above "
                            f"{th.stale_rate_tolerance:.3g} for {span:.3g}s "
                            f"(window {th.stale_window:g}s)"
                        ),
                    ))
                run = []
    return findings


def _depth_series(bank: TimeSeriesBank):
    """All ``sync.critical.depth_ratio`` series, in bank order.

    One point per traced run is normal (a quick campaign traces one
    sync), so unlike the trend detectors a single sample is enough.
    """
    return [
        series
        for (name, _), series in bank.items()
        if split_scope(name)[1] == DEPTH_METRIC and len(series) >= 1
    ]


def detect_depth_anomalies(
    bank: TimeSeriesBank, th: HealthThresholds | None = None
) -> list[HealthFinding]:
    """Critical-path depth above the algorithm's structural bound.

    The causal tracer deposits one ``sync.critical.depth_ratio`` sample
    per traced run: measured learn-round depth on the critical path
    divided by the expected bound (ceil(log2 p) + slack for tree
    algorithms, p - 1 for flat ones).  A healthy round sits at or below
    1; a ratio above it means the path zig-zagged through more rounds
    than the structure predicts — congestion, a delay attack, or a
    mis-built tree.
    """
    th = th or HealthThresholds()
    findings = []
    for series in _depth_series(bank):
        for time, ratio in series.points:
            if ratio <= th.depth_ratio:
                continue
            severity = (
                "critical" if ratio >= th.depth_ratio_critical
                else "warning"
            )
            findings.append(HealthFinding(
                detector="depth_anomaly",
                severity=severity,
                series=series.name,
                rank=series.rank,
                start=time,
                end=time,
                value=ratio,
                threshold=th.depth_ratio,
                message=(
                    f"critical-path depth ratio {ratio:.3g} exceeds the "
                    f"structural bound (x{th.depth_ratio:g})"
                ),
            ))
    return findings


def _median(values: list[float]) -> float:
    """Deterministic median (mean of middles for even counts)."""
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def detect_byzantine_suspects(
    bank: TimeSeriesBank, th: HealthThresholds | None = None
) -> list[HealthFinding]:
    """One rank's mean |error| towers over its scope's cohort median.

    An honest-but-drifting rank degrades gradually and drags the whole
    cohort's statistics with it; a byzantine rank (lying timestamps, a
    stepped clock) sits alone far from an otherwise-converged median.
    The ratio is floored at ``desync_tolerance`` in absolute terms so a
    near-perfect cohort (median ~ 0) does not flag nanosecond noise.
    """
    th = th or HealthThresholds()
    findings = []
    by_scope: dict[str, list] = {}
    for series in _error_series(bank):
        by_scope.setdefault(split_scope(series.name)[0], []).append(series)
    for scope in sorted(by_scope):
        cohort = by_scope[scope]
        if len(cohort) < th.byzantine_min_series:
            continue
        means = [
            sum(abs(v) for _, v in s.points) / len(s.points)
            for s in cohort
        ]
        median = _median(means)
        baseline = max(median, th.desync_tolerance / th.byzantine_factor)
        for series, mean_abs in zip(cohort, means):
            ratio = mean_abs / baseline if baseline > 0.0 else 0.0
            if (
                ratio <= th.byzantine_factor
                or mean_abs <= th.desync_tolerance
            ):
                continue
            severity = (
                "critical" if ratio > th.byzantine_factor_critical
                else "warning"
            )
            findings.append(HealthFinding(
                detector="byzantine_suspect",
                severity=severity,
                series=series.name,
                rank=series.rank,
                start=series.points[0][0],
                end=series.points[-1][0],
                value=ratio,
                threshold=th.byzantine_factor,
                message=(
                    f"mean |error| {mean_abs:.3g}s is {ratio:.3g}x the "
                    f"cohort median {median:.3g}s "
                    f"({len(cohort)} series in scope)"
                ),
            ))
    return findings


def _queue_series(bank: TimeSeriesBank):
    """All ``net.queue_delay`` series, in deterministic bank order."""
    return [
        series
        for (name, _), series in bank.items()
        if split_scope(name)[1] == QUEUE_METRIC and len(series) >= 2
    ]


def detect_congestion_desync(
    bank: TimeSeriesBank, th: HealthThresholds | None = None
) -> list[HealthFinding]:
    """Sustained standing queues, escalated when the scope desynced.

    A CoDel-healthy bottleneck sheds its backlog within an interval;
    sojourns above tolerance for a sustained window mean a standing
    queue.  On its own that is a warning (the network is sick, the
    clocks may still cope); when any ``clock.error`` series in the same
    scope is simultaneously out of tolerance, the finding is critical —
    the congestion is plausibly *causing* the desync.
    """
    th = th or HealthThresholds()
    desynced_scopes = {
        split_scope(series.name)[0]
        for series in _error_series(bank)
        if any(abs(v) > th.desync_tolerance for _, v in series.points)
    }
    findings = []
    for series in _queue_series(bank):
        scope = split_scope(series.name)[0]
        run: list[tuple[float, float]] = []
        for point in series.points + [(float("inf"), 0.0)]:
            if point[1] > th.queue_delay_tolerance:
                run.append(point)
                continue
            if run:
                span = run[-1][0] - run[0][0]
                if span >= th.queue_window:
                    peak = max(v for _, v in run)
                    desynced = scope in desynced_scopes
                    findings.append(HealthFinding(
                        detector="congestion_desync",
                        severity="critical" if desynced else "warning",
                        series=series.name,
                        rank=series.rank,
                        start=run[0][0],
                        end=run[-1][0],
                        value=peak,
                        threshold=th.queue_delay_tolerance,
                        message=(
                            f"queueing sojourn peaked at {peak:.3g}s, "
                            f"above {th.queue_delay_tolerance:.3g}s for "
                            f"{span:.3g}s"
                            + (
                                " while the scope was desynchronized"
                                if desynced
                                else ""
                            )
                        ),
                    ))
                run = []
    return findings


#: The full detector sweep, in report order.
DETECTORS = (
    ("drift_excursion", detect_drift_excursions),
    ("desync_breach", detect_desync_breaches),
    ("resync_latency", detect_resync_latency),
    ("stuck_clock", detect_stuck_clocks),
    ("stale_read", detect_stale_reads),
    ("depth_anomaly", detect_depth_anomalies),
    ("byzantine_suspect", detect_byzantine_suspects),
    ("congestion_desync", detect_congestion_desync),
)


def evaluate_health(
    bank: TimeSeriesBank, thresholds: HealthThresholds | None = None
) -> HealthVerdict:
    """Run every detector over ``bank``; returns the per-run verdict.

    The verdict always carries one entry per detector (even when it
    found nothing), so ``report.json`` records that each check ran.
    """
    th = thresholds or HealthThresholds()
    verdict = HealthVerdict(series_scanned=len(_error_series(bank)))
    for name, detector in DETECTORS:
        found = detector(bank, th)
        worst = -1
        for finding in found:
            worst = max(worst, SEVERITIES.index(finding.severity))
        verdict.detectors[name] = {
            "findings": len(found),
            "worst": SEVERITIES[worst] if worst > 0 else "ok",
        }
        verdict.findings.extend(found)
    verdict.findings.sort(
        key=lambda f: (
            -SEVERITIES.index(f.severity), f.start, f.detector,
            f.series, f.rank is not None, f.rank or 0,
        )
    )
    return verdict
