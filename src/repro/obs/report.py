"""Self-contained clock-health run reports (HTML + JSON).

``build_report`` folds one run's telemetry — the metrics snapshot, the
time-series bank, and the health verdict — into a single plain dict;
``write_report`` serializes it to ``report.json`` (machine-readable,
byte-deterministic modulo the single ``generated_at`` wall-clock field)
and renders ``report.html``: one dependency-free file with inline-SVG
sparklines of the error trajectories, detector findings, and the
metrics table, so a CI artifact can be opened anywhere.

Determinism contract: ``report.json`` for the same campaign must be
byte-identical between ``--jobs 1`` and ``--jobs N``.  Everything
ordered is sorted; ``generated_at`` is the *only* wall-clock field and
lives at the top level so tests can pop it; metrics whose value depends
on the worker configuration (``parallel.workers``) are excluded.
"""

from __future__ import annotations

import html
import json
import os
import time

from repro.obs.health import HealthVerdict
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesBank, split_scope

#: Schema version of report.json (bump on breaking layout changes).
REPORT_VERSION = 1

#: Metrics excluded from reports because their value reflects the host
#: or worker configuration, not the simulated run (determinism contract).
EXCLUDED_METRICS = ("parallel.workers",)

#: Wall-clock fields a consumer must ignore when diffing two reports.
VOLATILE_FIELDS = ("generated_at",)


def _round(x: float) -> float:
    return round(float(x), 12)


def build_report(
    bank: TimeSeriesBank | None = None,
    metrics: MetricsRegistry | None = None,
    verdict: HealthVerdict | None = None,
    meta: dict | None = None,
    critical_path: list[dict] | None = None,
) -> dict:
    """Assemble the machine-readable report dict.

    ``meta`` should describe the run (targets, scale, seed, scenario) —
    never the execution configuration (``jobs``), which must not leak
    into the report.  ``critical_path`` takes the per-run analyses from
    :func:`repro.obs.causal.analyze_recorder` (already rounded and
    deterministic) when the campaign was traced.
    """
    report: dict = {
        "report_version": REPORT_VERSION,
        "volatile_fields": list(VOLATILE_FIELDS),
        "meta": dict(sorted((meta or {}).items())),
    }
    if metrics is not None:
        snap = metrics.snapshot()
        for section in snap.values():
            for label in [
                label
                for label in section
                if label.split("[")[0] in EXCLUDED_METRICS
            ]:
                del section[label]
        report["metrics"] = snap
    if bank is not None:
        dump = bank.to_dict()
        for series in dump["series"]:
            series["points"] = [
                [_round(t), _round(v)] for t, v in series["points"]
            ]
        for marks in dump["markers"]:
            marks["marks"] = [
                [_round(t), label] for t, label in marks["marks"]
            ]
        report["timeseries"] = dump
    if verdict is not None:
        report["health"] = verdict.to_dict()
    if critical_path is not None:
        report["critical_path"] = critical_path
    return report


def write_report(report: dict, out_dir: str) -> tuple[str, str]:
    """Write ``report.json`` + ``report.html`` under ``out_dir``.

    The wall-clock stamp is added here (not in :func:`build_report`) so
    the assembled dict itself stays pure and diffable in tests.
    """
    os.makedirs(out_dir, exist_ok=True)
    stamped = dict(report)
    stamped["generated_at"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    json_path = os.path.join(out_dir, "report.json")
    with open(json_path, "w") as fh:
        json.dump(stamped, fh, indent=2, sort_keys=True)
        fh.write("\n")
    html_path = os.path.join(out_dir, "report.html")
    with open(html_path, "w") as fh:
        fh.write(render_html(stamped))
    return json_path, html_path


# ----------------------------------------------------------------------
# HTML rendering
# ----------------------------------------------------------------------
#: Status palette (fixed, never themed); always paired with the text
#: label so state is never color-alone.
_STATUS_COLORS = {
    "ok": "#0ca30c",
    "info": "#0ca30c",
    "warning": "#fab219",
    "serious": "#ec835a",
    "critical": "#d03b3b",
}
#: Single sequential hue for every sparkline (one measure, one hue).
_LINE_COLOR = "#2a78d6"
_MARKER_COLOR = "#ec835a"

_CSS = """
:root { color-scheme: light; }
body {
  margin: 0; padding: 24px; background: #f9f9f7; color: #0b0b0b;
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 960px; margin: 0 auto; }
section {
  background: #fcfcfb; border: 1px solid rgba(11,11,11,0.10);
  border-radius: 8px; padding: 16px 20px; margin-bottom: 16px;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 0 0 12px; }
table { border-collapse: collapse; width: 100%; }
th, td {
  text-align: left; padding: 4px 12px 4px 0;
  border-bottom: 1px solid #e1e0d9;
  font-variant-numeric: tabular-nums;
}
th { color: #52514e; font-weight: 600; }
.meta, .sub { color: #52514e; }
.num { text-align: right; }
.badge { font-weight: 700; }
.spark-label { color: #52514e; white-space: nowrap; }
svg text { font: 10px system-ui, sans-serif; fill: #898781; }
"""


def _fmt(value: float) -> str:
    return f"{value:.4g}"


def _status_badge(status: str) -> str:
    color = _STATUS_COLORS.get(status, "#52514e")
    glyph = "●"  # filled circle; the text label carries the meaning
    return (
        f'<span class="badge" style="color:{color}">{glyph}'
        f" {html.escape(status.upper())}</span>"
    )


def sparkline_svg(
    points: list[list[float]],
    marks: list[float] | None = None,
    width: int = 360,
    height: int = 48,
    tolerance: float | None = None,
) -> str:
    """Inline-SVG sparkline of one ``[[t, v], ...]`` series.

    Optional vertical ``marks`` (fault/resync times) and a horizontal
    ``tolerance`` guide.  Axes are recessive; the min/max annotations
    carry the scale so the sparkline stays honest without full axes.
    """
    if len(points) < 2:
        return '<span class="sub">(not enough points)</span>'
    pad = 4
    ts = [p[0] for p in points]
    vs = [p[1] for p in points]
    t_lo, t_hi = min(ts), max(ts)
    v_lo, v_hi = min(vs), max(vs)
    if tolerance is not None:
        v_lo = min(v_lo, -tolerance)
        v_hi = max(v_hi, tolerance)
    t_span = (t_hi - t_lo) or 1.0
    v_span = (v_hi - v_lo) or 1.0

    def x(t: float) -> float:
        return pad + (t - t_lo) / t_span * (width - 2 * pad)

    def y(v: float) -> float:
        return pad + (v_hi - v) / v_span * (height - 2 * pad)

    parts = [
        f'<svg role="img" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
    ]
    if v_lo < 0.0 < v_hi:  # zero baseline, hairline
        zy = y(0.0)
        parts.append(
            f'<line x1="{pad}" y1="{zy:.1f}" x2="{width - pad}" '
            f'y2="{zy:.1f}" stroke="#c3c2b7" stroke-width="1"/>'
        )
    if tolerance is not None:
        for tol in (tolerance, -tolerance):
            ty = y(tol)
            parts.append(
                f'<line x1="{pad}" y1="{ty:.1f}" x2="{width - pad}" '
                f'y2="{ty:.1f}" stroke="#e1e0d9" stroke-width="1" '
                'stroke-dasharray="3 3"/>'
            )
    for mark in marks or []:
        if t_lo <= mark <= t_hi:
            mx = x(mark)
            parts.append(
                f'<line x1="{mx:.1f}" y1="{pad}" x2="{mx:.1f}" '
                f'y2="{height - pad}" stroke="{_MARKER_COLOR}" '
                'stroke-width="1" stroke-dasharray="2 2"/>'
            )
    path = " ".join(
        f"{'M' if i == 0 else 'L'}{x(t):.1f},{y(v):.1f}"
        for i, (t, v) in enumerate(zip(ts, vs))
    )
    parts.append(
        f'<path d="{path}" fill="none" stroke="{_LINE_COLOR}" '
        'stroke-width="2" stroke-linejoin="round"/>'
    )
    parts.append("</svg>")
    return "".join(parts)


def _render_health(healthd: dict) -> str:
    rows = []
    for name, summary in healthd.get("detectors", {}).items():
        rows.append(
            f"<tr><td>{html.escape(name)}</td>"
            f'<td class="num">{summary["findings"]}</td>'
            f"<td>{_status_badge(summary['worst'])}</td></tr>"
        )
    findings = healthd.get("findings", [])
    frows = []
    for f in findings[:50]:
        rank = "" if f["rank"] is None else str(f["rank"])
        frows.append(
            f"<tr><td>{_status_badge(f['severity'])}</td>"
            f"<td>{html.escape(f['detector'])}</td>"
            f"<td>{html.escape(f['series'])}</td>"
            f'<td class="num">{rank}</td>'
            f"<td>{html.escape(f['message'])}</td></tr>"
        )
    if len(findings) > 50:
        frows.append(
            f'<tr><td colspan="5" class="sub">… and '
            f"{len(findings) - 50} more findings (see report.json)"
            "</td></tr>"
        )
    out = [
        "<section><h2>Health verdict: "
        f"{_status_badge(healthd.get('status', 'ok'))}"
        f' <span class="sub">({healthd.get("series_scanned", 0)} error '
        "series scanned)</span></h2>",
        "<table><tr><th>Detector</th><th>Findings</th><th>Worst</th></tr>",
        *rows,
        "</table>",
    ]
    if frows:
        out += [
            "<h2 style='margin-top:16px'>Findings</h2>",
            "<table><tr><th>Severity</th><th>Detector</th><th>Series</th>"
            "<th>Rank</th><th>Detail</th></tr>",
            *frows,
            "</table>",
        ]
    out.append("</section>")
    return "".join(out)


def _render_sparklines(tsd: dict) -> str:
    # Group clock.error series by scope; one sparkline per (scope, rank).
    marks_by_scope: dict[str, list[float]] = {}
    for marker in tsd.get("markers", []):
        scope = split_scope(marker["name"])[0]
        marks_by_scope.setdefault(scope, []).extend(
            t for t, _ in marker["marks"]
        )
    rows = []
    for series in tsd.get("series", []):
        scope, metric = split_scope(series["name"])
        if not (metric == "clock.error"
                or metric.startswith("clock.error.")):
            continue
        rank = series["rank"]
        label = scope or metric
        if rank is not None:
            label += f" · rank {rank}"
        vs = [v for _, v in series["points"]]
        sub = (
            f"{series['count']} samples, "
            f"peak |err| {_fmt(max(abs(v) for v in vs) if vs else 0.0)}s"
        )
        rows.append(
            f'<tr><td class="spark-label">{html.escape(label)}'
            f'<br/><span class="sub">{sub}</span></td>'
            f"<td>{sparkline_svg(series['points'], marks_by_scope.get(scope))}"
            "</td></tr>"
        )
    if not rows:
        return ""
    return (
        "<section><h2>Clock-error trajectories "
        '<span class="sub">(blue: estimated−reference global-clock error; '
        "dashed orange: fault/resync markers)</span></h2>"
        "<table>" + "".join(rows) + "</table></section>"
    )


def _render_critical_path(analyses: list[dict]) -> str:
    """Depth table + slowest-round breakdown per traced run."""
    rows = []
    for entry in analyses:
        depth = entry.get("depth", {})
        cp = entry.get("critical_path", {})
        ratio = depth.get("ratio", 0.0)
        status = (
            "critical" if ratio >= 2.0
            else "warning" if ratio > 1.0 else "ok"
        )
        msg_s = sum(
            v for k, v in cp.get("by_kind_s", {}).items() if k != "compute"
        )
        length = cp.get("length_s") or 1.0
        rows.append(
            f'<tr><td class="num">{entry.get("run", 0)}</td>'
            f'<td class="num">{entry.get("p", 0)}</td>'
            f'<td class="num">{_fmt(entry.get("duration_s", 0.0))}</td>'
            f'<td class="num">{depth.get("level_depth", 0)}</td>'
            f'<td class="num">{depth.get("expected", 0)}</td>'
            f'<td class="num">{_fmt(ratio)}</td>'
            f'<td class="num">{100.0 * msg_s / length:.1f}%</td>'
            f'<td>{html.escape(",".join(depth.get("algorithms", [])))}'
            f"</td><td>{_status_badge(status)}</td></tr>"
        )
    out = [
        "<section><h2>Sync-round critical path "
        '<span class="sub">(measured level depth vs the structural '
        "O(log p) / O(p) bound; msg% = share of the path spent on the "
        "wire)</span></h2>",
        "<table><tr><th>Run</th><th>p</th><th>Duration (s)</th>"
        "<th>Depth</th><th>Bound</th><th>Ratio</th><th>msg%</th>"
        "<th>Algorithms</th><th>Status</th></tr>",
        *rows,
        "</table>",
    ]
    longest = max(
        analyses, key=lambda e: e.get("duration_s", 0.0), default=None
    )
    rounds = (longest or {}).get("rounds", [])[:10]
    if rounds:
        out += [
            "<h2 style='margin-top:16px'>Slowest sync rounds "
            f'<span class="sub">(run {longest.get("run", 0)})</span></h2>',
            "<table><tr><th>Algorithm</th><th>Level</th><th>Round</th>"
            "<th>Ref→Peer</th><th>Duration (s)</th><th>On-wire (s)</th>"
            "<th>Segments</th></tr>",
            *[
                f"<tr><td>{html.escape(r['algorithm'])}</td>"
                f"<td>{html.escape(r['level'] or '-')}</td>"
                f'<td class="num">{r["round_index"]}</td>'
                f'<td class="num">{r["ref"]}&rarr;{r["peer"]}</td>'
                f'<td class="num">{_fmt(r["duration_s"])}</td>'
                f'<td class="num">{_fmt(r["path_msg_s"])}</td>'
                f'<td class="num">{r["segments"]}</td></tr>'
                for r in rounds
            ],
            "</table>",
        ]
    out.append("</section>")
    return "".join(out)


def _render_metrics(metricsd: dict) -> str:
    out = ["<section><h2>Metrics</h2>"]
    counters = metricsd.get("counters", {})
    if counters:
        out.append("<table><tr><th>Counter</th><th>Value</th></tr>")
        out += [
            f"<tr><td>{html.escape(label)}</td>"
            f'<td class="num">{value:g}</td></tr>'
            for label, value in counters.items()
        ]
        out.append("</table>")
    histograms = {
        label: h for label, h in metricsd.get("histograms", {}).items()
        if h["count"]
    }
    if histograms:
        out.append(
            "<table style='margin-top:12px'><tr><th>Histogram</th>"
            "<th>n</th><th>mean</th><th>p50</th><th>p99</th><th>max</th>"
            "</tr>"
        )
        for label, h in histograms.items():
            out.append(
                f"<tr><td>{html.escape(label)}</td>"
                f'<td class="num">{h["count"]}</td>'
                + "".join(
                    f'<td class="num">{_fmt(h[k])}</td>'
                    for k in ("mean", "p50", "p99", "max")
                )
                + "</tr>"
            )
        out.append("</table>")
    out.append("</section>")
    return "".join(out)


def render_html(report: dict) -> str:
    """Render the report dict as one self-contained HTML page."""
    meta = report.get("meta", {})
    title = "Clock-health report"
    if meta.get("targets"):
        title += ": " + ", ".join(map(str, meta["targets"]))
    meta_line = " · ".join(
        f"{key}={value}"
        for key, value in meta.items()
        if key != "targets" and value is not None
    )
    body = [
        "<main>",
        "<section>",
        f"<h1>{html.escape(title)}</h1>",
        f'<div class="meta">{html.escape(meta_line)}'
        + (
            f" · generated {html.escape(report['generated_at'])}"
            if "generated_at" in report
            else ""
        )
        + "</div>",
        "</section>",
    ]
    if "health" in report:
        body.append(_render_health(report["health"]))
    if report.get("critical_path"):
        body.append(_render_critical_path(report["critical_path"]))
    if "timeseries" in report:
        body.append(_render_sparklines(report["timeseries"]))
    if "metrics" in report:
        body.append(_render_metrics(report["metrics"]))
    body.append("</main>")
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head>"
        "<meta charset=\"utf-8\"/>"
        f"<title>{html.escape(title)}</title>"
        f"<style>{_CSS}</style></head><body>"
        + "".join(body)
        + "</body></html>\n"
    )
