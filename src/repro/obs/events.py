"""Engine event stream: typed records and the pluggable sink protocol.

The engine and communicator emit one record per noteworthy state change —
message injection/delivery, process block/wake, NIC queueing, collective
entry/exit.  All timestamps are *true* simulation times (the ground truth
processes themselves cannot observe); :mod:`repro.obs.chrome_trace` can
remap them through any per-rank clock to produce the "what a tracer with
this clock would have seen" view of the paper's Fig. 10.

Zero overhead when disabled: every emission site is guarded by a single
``if sink is not None`` check, so with no sink installed the engine does
no event-object construction at all.  Sinks must be passive — ``emit``
must not touch the engine, draw randomness, or raise.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterator, Protocol, runtime_checkable


# ----------------------------------------------------------------------
# Event records (all times are true simulation times, in seconds)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class MsgSend:
    """A point-to-point message was injected by ``rank``."""

    time: float
    rank: int
    dest: int
    tag: int
    size: int
    seq: int
    #: Network level of the path ("SELF"/"LOCAL"/"REMOTE").
    level: str
    synchronous: bool = False


@dataclass(frozen=True, slots=True)
class MsgDeliver:
    """A message completed delivery at the receiver (``rank``)."""

    time: float
    rank: int
    source: int
    tag: int
    size: int
    seq: int
    #: send-to-delivery latency (true time, includes queueing + overheads).
    latency: float
    #: True arrival time at the receiver (before the o_recv charge), or
    #: -1.0 for streams recorded before the field existed.
    arrival: float = -1.0
    #: True when the receiver's timeline was advanced *to* the arrival —
    #: i.e. the receiver sat waiting and this delivery is the binding
    #: dependency that let it proceed (the edge the critical-path walk in
    #: :mod:`repro.obs.causal` follows).  False when the message was
    #: already waiting in the mailbox.
    waited: bool = False


@dataclass(frozen=True, slots=True)
class ProcBlock:
    """A process blocked: ``reason`` is ``"recv"`` or ``"ssend"``."""

    time: float
    rank: int
    reason: str
    source: int = -1
    tag: int = -1


@dataclass(frozen=True, slots=True)
class ProcWake:
    """A blocked process became runnable again.

    ``cause`` names what released it — ``"deliver"`` (a matching message
    arrived for a blocked receive) or ``"ack"`` (a rendezvous sender's
    ack returned) — with ``seq`` the responsible message, so wakes are
    causal edges and not just state flips.  Both default to their
    "unknown" values for streams recorded before the fields existed.
    """

    time: float
    rank: int
    cause: str = ""
    seq: int = -1


@dataclass(frozen=True, slots=True)
class NicQueue:
    """A remote message found a busy NIC and queued behind ``backlog``."""

    time: float
    rank: int
    node: int
    #: Queue depth (in NIC gaps) the message found at injection.
    backlog: float
    #: True time at which the message actually entered the wire.
    inject_time: float


@dataclass(frozen=True, slots=True)
class FaultInject:
    """A scheduled fault perturbs the simulation from ``time`` on.

    Emitted once per fault when the engine starts (the schedule is known
    a priori, so the spans carry exact virtual times).  ``rank`` is the
    affected rank, or -1 for node-/cluster-scoped faults; ``target`` is
    the descriptor string (``node:3``, ``level:REMOTE``, ``cluster``).
    """

    time: float
    rank: int
    kind: str
    name: str
    target: str
    duration: float = 0.0


@dataclass(frozen=True, slots=True)
class ResyncRound:
    """A :class:`~repro.sync.resync.PeriodicResyncClock` re-synchronized.

    ``round_index`` counts sync rounds on this rank (1 = initial sync);
    ``age`` is the global-clock age that triggered the round, or -1 when
    unknown (non-root ranks, initial sync).
    """

    time: float
    rank: int
    round_index: int
    age: float = -1.0


@dataclass(frozen=True, slots=True)
class CollectiveEnter:
    """A rank entered a collective operation (e.g. ``MPI_Allreduce``)."""

    time: float
    rank: int
    name: str
    comm_id: int
    comm_rank: int
    comm_size: int


@dataclass(frozen=True, slots=True)
class CollectiveExit:
    """A rank left a collective operation."""

    time: float
    rank: int
    name: str
    comm_id: int
    comm_rank: int
    comm_size: int


@dataclass(frozen=True, slots=True)
class PhaseBegin:
    """A rank entered an annotated algorithm phase.

    Emitted by the sync layer (``sync.learn`` / ``sync.offset`` /
    ``sync.resync``) on *both* sides of a pairwise exchange with
    identical descriptors, so a phase instance is identified by
    ``(name, algorithm, level, round_index, ref, peer)`` regardless of
    which rank's events are inspected.  The critical-path analysis in
    :mod:`repro.obs.causal` counts distinct ``sync.learn`` instances
    traversed to measure empirical round depth.
    """

    time: float
    rank: int
    name: str
    algorithm: str = ""
    level: str = ""
    round_index: int = -1
    #: Global rank of the pair's reference side (-1 when not pairwise).
    ref: int = -1
    #: Global rank of the pair's client side (-1 when not pairwise).
    peer: int = -1


@dataclass(frozen=True, slots=True)
class PhaseEnd:
    """A rank left an annotated algorithm phase (matches by ``name``)."""

    time: float
    rank: int
    name: str


Event = (
    MsgSend
    | MsgDeliver
    | ProcBlock
    | ProcWake
    | NicQueue
    | FaultInject
    | ResyncRound
    | CollectiveEnter
    | CollectiveExit
    | PhaseBegin
    | PhaseEnd
)


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
@runtime_checkable
class EventSink(Protocol):
    """Anything with an ``emit(event)`` method can observe the engine."""

    def emit(self, event: Event) -> None:  # pragma: no cover - protocol
        ...


class RecordingSink:
    """Keeps every event in emission order (true-time order per rank)."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def of_type(self, *types: type) -> list[Event]:
        """Events that are instances of any of ``types``."""
        return [e for e in self.events if isinstance(e, types)]

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


class CountingSink:
    """Counts events per record type; O(1) memory for arbitrary runs."""

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}

    def emit(self, event: Event) -> None:
        name = type(event).__name__
        self.counts[name] = self.counts.get(name, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def clear(self) -> None:
        self.counts.clear()


# ----------------------------------------------------------------------
# Process-wide default sink (used by Simulation when none is passed)
# ----------------------------------------------------------------------
_DEFAULT_SINK: EventSink | None = None


def set_default_sink(sink: EventSink | None) -> None:
    """Install (or clear, with ``None``) the process-wide default sink."""
    global _DEFAULT_SINK
    _DEFAULT_SINK = sink


def get_default_sink() -> EventSink | None:
    """The currently installed default sink, if any."""
    return _DEFAULT_SINK


@contextlib.contextmanager
def default_sink(sink: EventSink) -> Iterator[EventSink]:
    """Temporarily install ``sink`` as the default (restores on exit)."""
    previous = get_default_sink()
    set_default_sink(sink)
    try:
        yield sink
    finally:
        set_default_sink(previous)
