"""Engine event stream: typed records and the pluggable sink protocol.

The engine and communicator emit one record per noteworthy state change —
message injection/delivery, process block/wake, NIC queueing, collective
entry/exit.  All timestamps are *true* simulation times (the ground truth
processes themselves cannot observe); :mod:`repro.obs.chrome_trace` can
remap them through any per-rank clock to produce the "what a tracer with
this clock would have seen" view of the paper's Fig. 10.

Zero overhead when disabled: every emission site is guarded by a single
``if sink is not None`` check, so with no sink installed the engine does
no event-object construction at all.  Sinks must be passive — ``emit``
must not touch the engine, draw randomness, or raise.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterator, Protocol, runtime_checkable


# ----------------------------------------------------------------------
# Event records (all times are true simulation times, in seconds)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class MsgSend:
    """A point-to-point message was injected by ``rank``."""

    time: float
    rank: int
    dest: int
    tag: int
    size: int
    seq: int
    #: Network level of the path ("SELF"/"LOCAL"/"REMOTE").
    level: str
    synchronous: bool = False


@dataclass(frozen=True, slots=True)
class MsgDeliver:
    """A message completed delivery at the receiver (``rank``)."""

    time: float
    rank: int
    source: int
    tag: int
    size: int
    seq: int
    #: send-to-delivery latency (true time, includes queueing + overheads).
    latency: float


@dataclass(frozen=True, slots=True)
class ProcBlock:
    """A process blocked: ``reason`` is ``"recv"`` or ``"ssend"``."""

    time: float
    rank: int
    reason: str
    source: int = -1
    tag: int = -1


@dataclass(frozen=True, slots=True)
class ProcWake:
    """A blocked process became runnable again."""

    time: float
    rank: int


@dataclass(frozen=True, slots=True)
class NicQueue:
    """A remote message found a busy NIC and queued behind ``backlog``."""

    time: float
    rank: int
    node: int
    #: Queue depth (in NIC gaps) the message found at injection.
    backlog: float
    #: True time at which the message actually entered the wire.
    inject_time: float


@dataclass(frozen=True, slots=True)
class FaultInject:
    """A scheduled fault perturbs the simulation from ``time`` on.

    Emitted once per fault when the engine starts (the schedule is known
    a priori, so the spans carry exact virtual times).  ``rank`` is the
    affected rank, or -1 for node-/cluster-scoped faults; ``target`` is
    the descriptor string (``node:3``, ``level:REMOTE``, ``cluster``).
    """

    time: float
    rank: int
    kind: str
    name: str
    target: str
    duration: float = 0.0


@dataclass(frozen=True, slots=True)
class ResyncRound:
    """A :class:`~repro.sync.resync.PeriodicResyncClock` re-synchronized.

    ``round_index`` counts sync rounds on this rank (1 = initial sync);
    ``age`` is the global-clock age that triggered the round, or -1 when
    unknown (non-root ranks, initial sync).
    """

    time: float
    rank: int
    round_index: int
    age: float = -1.0


@dataclass(frozen=True, slots=True)
class CollectiveEnter:
    """A rank entered a collective operation (e.g. ``MPI_Allreduce``)."""

    time: float
    rank: int
    name: str
    comm_id: int
    comm_rank: int
    comm_size: int


@dataclass(frozen=True, slots=True)
class CollectiveExit:
    """A rank left a collective operation."""

    time: float
    rank: int
    name: str
    comm_id: int
    comm_rank: int
    comm_size: int


Event = (
    MsgSend
    | MsgDeliver
    | ProcBlock
    | ProcWake
    | NicQueue
    | FaultInject
    | ResyncRound
    | CollectiveEnter
    | CollectiveExit
)


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
@runtime_checkable
class EventSink(Protocol):
    """Anything with an ``emit(event)`` method can observe the engine."""

    def emit(self, event: Event) -> None:  # pragma: no cover - protocol
        ...


class RecordingSink:
    """Keeps every event in emission order (true-time order per rank)."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def of_type(self, *types: type) -> list[Event]:
        """Events that are instances of any of ``types``."""
        return [e for e in self.events if isinstance(e, types)]

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


class CountingSink:
    """Counts events per record type; O(1) memory for arbitrary runs."""

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}

    def emit(self, event: Event) -> None:
        name = type(event).__name__
        self.counts[name] = self.counts.get(name, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def clear(self) -> None:
        self.counts.clear()


# ----------------------------------------------------------------------
# Process-wide default sink (used by Simulation when none is passed)
# ----------------------------------------------------------------------
_DEFAULT_SINK: EventSink | None = None


def set_default_sink(sink: EventSink | None) -> None:
    """Install (or clear, with ``None``) the process-wide default sink."""
    global _DEFAULT_SINK
    _DEFAULT_SINK = sink


def get_default_sink() -> EventSink | None:
    """The currently installed default sink, if any."""
    return _DEFAULT_SINK


@contextlib.contextmanager
def default_sink(sink: EventSink) -> Iterator[EventSink]:
    """Temporarily install ``sink`` as the default (restores on exit)."""
    previous = get_default_sink()
    set_default_sink(sink)
    try:
        yield sink
    finally:
        set_default_sink(previous)
