"""Causal span/edge recorder over the engine event stream.

:class:`SpanRecorder` is a passive :class:`~repro.obs.events.EventSink`
that reassembles the flat event stream into per-run causal structure:

* **message edges** — ``MsgSend`` paired with its ``MsgDeliver`` by
  ``seq`` into a closed :class:`MessageEdge` carrying send/arrival/
  deliver times, per-hop latency, network level, and whether the
  receiver *waited* for it (the binding bit the critical-path walk in
  :mod:`repro.obs.causal` follows);
* **phase spans** — ``PhaseBegin``/``PhaseEnd`` (sync rounds) and
  ``CollectiveEnter``/``Exit`` intervals per rank, nested via a stack;
* **block intervals** — ``ProcBlock``→``ProcWake`` per rank, for slack
  accounting, plus ack wakes kept as causal dependencies.

Everything is opt-in: with no recorder attached the engine's quiet fast
path still binds and no event objects are constructed at all.  Because
message ``seq`` numbers restart at 0 for every engine run, the recorder
segments its history into :class:`SpanRun` units — either explicitly
via :meth:`SpanRecorder.run_break` (the parallel executor calls it
before replaying each job's events, keeping ``--jobs N`` merges
deterministic) or automatically when a ``seq`` it has already seen is
injected again.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import events as obs_events


@dataclass(frozen=True, slots=True)
class MessageEdge:
    """A closed send→deliver causal edge."""

    seq: int
    src: int
    dst: int
    tag: int
    size: int
    #: Network level of the path ("SELF"/"LOCAL"/"REMOTE").
    level: str
    send_time: float
    #: True arrival at the receiver (before the o_recv charge); -1.0
    #: when the stream predates the field.
    arrival: float
    deliver_time: float
    #: Send-to-delivery latency (includes queueing + overheads).
    latency: float
    synchronous: bool
    #: True when the receiver's timeline was advanced to this message's
    #: arrival — the edge is a *binding* dependency.
    waited: bool


@dataclass(frozen=True, slots=True)
class PhaseSpan:
    """A closed per-rank phase interval (sync phase or collective)."""

    rank: int
    name: str
    begin: float
    end: float
    algorithm: str = ""
    level: str = ""
    round_index: int = -1
    ref: int = -1
    peer: int = -1

    @property
    def instance_key(self) -> tuple:
        """Identity of the phase instance, equal on both pair sides."""
        return (self.name, self.algorithm, self.level,
                self.round_index, self.ref, self.peer)


@dataclass(frozen=True, slots=True)
class AckWake:
    """A rendezvous sender resumed because the ack for ``seq`` landed."""

    rank: int
    time: float
    seq: int


class SpanRun:
    """Causal structure of one engine run (one ``seq`` namespace)."""

    __slots__ = (
        "index", "edges", "open_sends", "delivers", "ack_wakes",
        "blocks", "_open_blocks", "phases", "_open_phases",
        "t_end", "end_rank", "events", "ranks",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        #: seq -> closed MessageEdge
        self.edges: dict[int, MessageEdge] = {}
        #: seq -> MsgSend not yet delivered
        self.open_sends: dict[int, obs_events.MsgSend] = {}
        #: receiving rank -> edges in delivery order
        self.delivers: dict[int, list[MessageEdge]] = {}
        #: sender rank -> AckWake list in time order
        self.ack_wakes: dict[int, list[AckWake]] = {}
        #: rank -> [(block_time, wake_time, reason)]
        self.blocks: dict[int, list[tuple[float, float, str]]] = {}
        self._open_blocks: dict[int, obs_events.ProcBlock] = {}
        #: rank -> closed PhaseSpans (in close order)
        self.phases: dict[int, list[PhaseSpan]] = {}
        self._open_phases: dict[int, list[tuple]] = {}
        self.t_end = 0.0
        self.end_rank = -1
        self.events = 0
        self.ranks: set[int] = set()

    # -- helpers -------------------------------------------------------
    @property
    def open_edge_count(self) -> int:
        """Sends without a matching deliver (= engine's unreceived)."""
        return len(self.open_sends)

    def blocked_seconds(self, rank: int) -> float:
        return sum(end - start for start, end, _ in self.blocks.get(rank, ()))

    def duration(self) -> float:
        return self.t_end

    def close(self) -> None:
        """Close still-open phases at the run's end time."""
        for rank, stack in self._open_phases.items():
            for frame in stack:
                self.phases.setdefault(rank, []).append(
                    self._make_span(frame, max(self.t_end, frame[1]))
                )
            stack.clear()

    @staticmethod
    def _make_span(frame: tuple, end: float) -> PhaseSpan:
        name, begin, algorithm, level, round_index, ref, peer, rank = frame
        return PhaseSpan(
            rank=rank, name=name, begin=begin, end=end,
            algorithm=algorithm, level=level, round_index=round_index,
            ref=ref, peer=peer,
        )


class SpanRecorder:
    """Event sink assembling the causal DAG, segmented per engine run."""

    def __init__(self) -> None:
        self.runs: list[SpanRun] = [SpanRun(0)]

    # -- sink protocol -------------------------------------------------
    def emit(self, event: obs_events.Event) -> None:
        run = self.runs[-1]
        etype = type(event)
        if etype is obs_events.MsgSend:
            if event.seq in run.open_sends or event.seq in run.edges:
                run = self.run_break()
            run.open_sends[event.seq] = event
        elif etype is obs_events.MsgDeliver:
            send = run.open_sends.pop(event.seq, None)
            if send is not None:
                edge = MessageEdge(
                    seq=event.seq, src=send.rank, dst=event.rank,
                    tag=event.tag, size=event.size, level=send.level,
                    send_time=send.time, arrival=event.arrival,
                    deliver_time=event.time, latency=event.latency,
                    synchronous=send.synchronous, waited=event.waited,
                )
                run.edges[event.seq] = edge
                run.delivers.setdefault(event.rank, []).append(edge)
        elif etype is obs_events.ProcBlock:
            run._open_blocks[event.rank] = event
        elif etype is obs_events.ProcWake:
            block = run._open_blocks.pop(event.rank, None)
            if block is not None:
                run.blocks.setdefault(event.rank, []).append(
                    (block.time, event.time, block.reason)
                )
            if event.cause == "ack" and event.seq >= 0:
                run.ack_wakes.setdefault(event.rank, []).append(
                    AckWake(rank=event.rank, time=event.time, seq=event.seq)
                )
        elif etype is obs_events.PhaseBegin:
            run._open_phases.setdefault(event.rank, []).append((
                event.name, event.time, event.algorithm, event.level,
                event.round_index, event.ref, event.peer, event.rank,
            ))
        elif etype is obs_events.PhaseEnd:
            self._close_phase(run, event)
        elif etype is obs_events.CollectiveEnter:
            run._open_phases.setdefault(event.rank, []).append((
                "coll." + event.name, event.time, "",
                "coll", _collective_depth(event), -1, -1, event.rank,
            ))
        elif etype is obs_events.CollectiveExit:
            self._close_phase(
                run, event, name="coll." + event.name
            )
        elif etype is obs_events.FaultInject:
            # Scheduled a priori; its time is not part of the run span.
            return
        rank = event.rank
        run.events += 1
        if rank >= 0:
            run.ranks.add(rank)
        if event.time > run.t_end:
            run.t_end = event.time
            run.end_rank = rank

    @staticmethod
    def _close_phase(run: SpanRun, event, name: str | None = None) -> None:
        wanted = event.name if name is None else name
        stack = run._open_phases.get(event.rank)
        if not stack:
            return
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][0] == wanted:
                frame = stack.pop(i)
                run.phases.setdefault(event.rank, []).append(
                    SpanRun._make_span(frame, event.time)
                )
                return

    # -- run segmentation ---------------------------------------------
    def run_break(self) -> SpanRun:
        """Start a new run segment (no-op while the current is empty)."""
        run = self.runs[-1]
        if run.events == 0:
            return run
        run.close()
        run = SpanRun(len(self.runs))
        self.runs.append(run)
        return run

    def finalize(self) -> None:
        """Close the trailing run; safe to call more than once."""
        self.runs[-1].close()

    # -- accessors -----------------------------------------------------
    @property
    def run(self) -> SpanRun:
        return self.runs[-1]

    @property
    def open_edge_count(self) -> int:
        """Open edges in the current run (sanitizer cross-check hook)."""
        return self.runs[-1].open_edge_count

    def completed_runs(self) -> list[SpanRun]:
        """Runs that saw at least one event, oldest first."""
        return [run for run in self.runs if run.events]

    def clear(self) -> None:
        self.runs = [SpanRun(0)]

    def __len__(self) -> int:
        return sum(run.events for run in self.runs)


def _collective_depth(event) -> int:
    """Depth of ``comm_rank`` in the binomial tree over ``comm_size``.

    Used as the collective phase's ``round_index`` so tree position is
    queryable from the span table without re-deriving the topology.
    """
    from repro.simmpi.collectives._tree import binomial_depth

    return binomial_depth(event.comm_rank, event.comm_size)
