"""Critical-path analysis over recorded causal spans.

Consumes the per-run DAG assembled by :class:`repro.obs.spans.SpanRecorder`
and answers the paper's structural question with a measurement: which
chain of messages and compute intervals *made* a sync round (or a whole
run) take as long as it did, and how deep is that chain — O(log p) for
the hierarchical algorithms, Θ(p) for flat JK.

The extraction is a backward walk over binding dependencies.  Starting
from the run's last event, it repeatedly finds the latest dependency on
the current rank at or before the current time:

* a **waited delivery** (``MsgDeliver.waited``: the receiver's timeline
  was advanced to the message's arrival) — the walk emits a compute
  segment down to the delivery, a message segment spanning
  send→deliver, and jumps to the sender at the send time;
* a **binding ack wake** (a rendezvous sender resumed strictly after it
  blocked) — the walk emits an ack segment back to the receiver's
  delivery time and continues on the receiver.

Both jumps strictly decrease time, so the walk terminates; with no
dependency left it anchors a final compute segment at the window start.
The resulting segments tile the window exactly: path length equals the
window duration, and since each message segment spans its edge's whole
latency, the path length is >= any single traversed edge delay (the
invariants pinned by the Hypothesis suite).

Depth is measured by phase attribution, not message counting: each
segment is mapped to the innermost ``sync.learn`` phase covering it,
and the number of distinct phase instances traversed is the empirical
round depth.  For HCA-family runs at p = 2^k that is exactly k =
ceil(log2 p); for JK it is p - 1.
"""

from __future__ import annotations

import json
import os
from bisect import bisect_right
from dataclasses import dataclass
from math import ceil, inf, log2

from repro.obs.spans import MessageEdge, PhaseSpan, SpanRecorder, SpanRun

#: Algorithms whose round structure is flat (depth ~ p), not a tree.
FLAT_ALGORITHMS = frozenset({"jk"})

#: Phase name whose distinct instances define the round depth.
LEARN_PHASE = "sync.learn"

_ROUND_DIGITS = 12


def _round(value: float) -> float:
    return round(float(value), _ROUND_DIGITS)


@dataclass(frozen=True, slots=True)
class PathSegment:
    """One interval on the critical path (chronological order).

    ``kind`` is ``"compute"`` (the rank itself was the dependency),
    ``"msg"`` (a waited message edge: ``rank`` is the receiver, ``src``
    the sender, the interval spans send→deliver), or ``"ack"`` (a
    rendezvous ack: ``rank`` is the blocked sender, ``src`` the
    receiver whose delivery released it).
    """

    kind: str
    rank: int
    start: float
    end: float
    src: int = -1
    seq: int = -1
    level: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


# ----------------------------------------------------------------------
# Binding-dependency index + backward walk
# ----------------------------------------------------------------------
class _DependencyIndex:
    """Per-rank, time-sorted binding dependencies for a run."""

    __slots__ = ("times", "deps")

    def __init__(self, run: SpanRun) -> None:
        self.times: dict[int, list[float]] = {}
        self.deps: dict[int, list[tuple[str, MessageEdge]]] = {}
        for rank, edges in run.delivers.items():
            for edge in edges:
                if edge.waited:
                    self._add(rank, edge.deliver_time, "msg", edge)
        for rank, wakes in run.ack_wakes.items():
            for wake in wakes:
                edge = run.edges.get(wake.seq)
                # Binding only if the sender resumed strictly after it
                # blocked (it blocks at the edge's send time).
                if edge is not None and wake.time > edge.send_time:
                    self._add(rank, wake.time, "ack", edge)

    def _add(self, rank: int, time: float, kind: str,
             edge: MessageEdge) -> None:
        times = self.times.setdefault(rank, [])
        deps = self.deps.setdefault(rank, [])
        if times and time < times[-1]:
            # Delivery lists are per-rank chronological already; ack
            # wakes may interleave, so keep the invariant explicitly.
            idx = bisect_right(times, time)
            times.insert(idx, time)
            deps.insert(idx, (kind, edge))
        else:
            times.append(time)
            deps.append((kind, edge))

    def latest_at_or_before(
        self, rank: int, t: float
    ) -> tuple[float, str, MessageEdge] | None:
        times = self.times.get(rank)
        if not times:
            return None
        idx = bisect_right(times, t) - 1
        if idx < 0:
            return None
        kind, edge = self.deps[rank][idx]
        return times[idx], kind, edge


def critical_path(
    run: SpanRun,
    end_rank: int | None = None,
    t_end: float | None = None,
    t_min: float = 0.0,
) -> list[PathSegment]:
    """Longest simulated-time dependency chain ending at (rank, t_end).

    Defaults to the run's final event; pass a phase's rank/end/begin to
    extract a single round's path.  Segments are returned in
    chronological order and tile ``[t_min, t_end]`` exactly.
    """
    if t_end is None:
        t_end = run.t_end
    if end_rank is None:
        end_rank = run.end_rank
    if end_rank < 0 or t_end <= t_min:
        return []
    index = _DependencyIndex(run)
    segments: list[PathSegment] = []
    rank, t = end_rank, t_end
    # Each iteration either terminates or strictly decreases t; the
    # guard only protects against malformed (hand-built) streams.
    guard = 2 * (len(run.edges) + len(run.ack_wakes)) + 8
    while t > t_min and guard > 0:
        guard -= 1
        dep = index.latest_at_or_before(rank, t)
        if dep is None or dep[0] <= t_min:
            segments.append(PathSegment(
                kind="compute", rank=rank, start=t_min, end=t,
            ))
            break
        dep_time, kind, edge = dep
        if dep_time < t:
            segments.append(PathSegment(
                kind="compute", rank=rank, start=dep_time, end=t,
            ))
        if kind == "msg":
            start = max(edge.send_time, t_min)
            segments.append(PathSegment(
                kind="msg", rank=rank, start=start, end=dep_time,
                src=edge.src, seq=edge.seq, level=edge.level,
            ))
            rank, t = edge.src, edge.send_time
        else:  # ack: continue on the receiver at its delivery time
            start = max(edge.deliver_time, t_min)
            segments.append(PathSegment(
                kind="ack", rank=rank, start=start, end=dep_time,
                src=edge.dst, seq=edge.seq, level=edge.level,
            ))
            rank, t = edge.dst, edge.deliver_time
    segments.reverse()
    return segments


# ----------------------------------------------------------------------
# Phase attribution
# ----------------------------------------------------------------------
class _PhaseIndex:
    """Innermost-phase-covering-(rank, t) lookup with bounded scans."""

    __slots__ = ("_by_rank",)

    def __init__(self, run: SpanRun, name: str | None = None) -> None:
        self._by_rank: dict[int, tuple[list[float], list[PhaseSpan],
                                       list[float]]] = {}
        for rank, spans in run.phases.items():
            chosen = [s for s in spans if name is None or s.name == name]
            chosen.sort(key=lambda s: (s.begin, -s.end))
            begins = [s.begin for s in chosen]
            max_end: list[float] = []
            running = -inf
            for span in chosen:
                running = max(running, span.end)
                max_end.append(running)
            self._by_rank[rank] = (begins, chosen, max_end)

    def at(self, rank: int, t: float) -> PhaseSpan | None:
        entry = self._by_rank.get(rank)
        if entry is None:
            return None
        begins, spans, max_end = entry
        idx = bisect_right(begins, t) - 1
        # Scan back from the latest begin <= t; the first span still
        # covering t is the innermost.  The prefix max of ends bounds
        # the scan: once nothing to the left can reach t, stop.
        while idx >= 0 and max_end[idx] >= t:
            if spans[idx].end >= t:
                return spans[idx]
            idx -= 1
        return None


def _segment_anchor(segment: PathSegment) -> float:
    """Time at which to attribute a segment to a phase on its rank."""
    return segment.end


# ----------------------------------------------------------------------
# Depth model
# ----------------------------------------------------------------------
def expected_depth(p: int, algorithm_levels) -> int:
    """Upper bound on learn-round depth for the given algorithm mix.

    ``algorithm_levels`` is an iterable of distinct ``(algorithm,
    level)`` pairs observed in the run's learn phases.  Flat algorithms
    contribute ``p - 1`` sequential rounds; tree algorithms contribute
    ``ceil(log2 p) + 2`` (binomial rounds plus a possible remainder
    round and re-anchor slack).
    """
    pairs = sorted(set(algorithm_levels))
    if p <= 1 or not pairs:
        return 1
    total = 0
    for algorithm, _level in pairs:
        if algorithm in FLAT_ALGORITHMS:
            total += max(1, p - 1)
        else:
            total += ceil(log2(max(p, 2))) + 2
    return max(total, 1)


# ----------------------------------------------------------------------
# Run analysis
# ----------------------------------------------------------------------
def analyze_run(run: SpanRun, top_links: int = 8,
                top_rounds: int = 8, top_slack: int = 16) -> dict:
    """Full causal analysis of one run, as a JSON-ready dict.

    Includes the critical path with per-kind/per-level/per-link latency
    attribution, learn-round depth (measured vs the expected bound),
    per-round path summaries for the longest rounds, and per-rank slack
    (blocked time vs on-path time).  All floats are rounded to 12
    decimals so artifacts are byte-stable across ``--jobs``.
    """
    segments = critical_path(run)
    learn_index = _PhaseIndex(run, name=LEARN_PHASE)
    any_index = _PhaseIndex(run)

    by_kind: dict[str, float] = {}
    by_level: dict[str, list[float]] = {}
    by_link: dict[str, list[float]] = {}
    by_phase: dict[str, float] = {}
    round_keys: list[tuple] = []
    seen_rounds: set[tuple] = set()
    path_s_by_rank: dict[int, float] = {}
    for segment in segments:
        dur = segment.duration
        by_kind[segment.kind] = by_kind.get(segment.kind, 0.0) + dur
        path_s_by_rank[segment.rank] = (
            path_s_by_rank.get(segment.rank, 0.0) + dur
        )
        if segment.kind != "compute":
            stats = by_level.setdefault(segment.level or "?", [0.0, 0])
            stats[0] += dur
            stats[1] += 1
            link = f"{segment.src}->{segment.rank}"
            lstats = by_link.setdefault(link, [0.0, 0])
            lstats[0] += dur
            lstats[1] += 1
        anchor = _segment_anchor(segment)
        learn = learn_index.at(segment.rank, anchor)
        if learn is not None:
            key = learn.instance_key
            if key not in seen_rounds:
                seen_rounds.add(key)
                round_keys.append(key)
        phase = any_index.at(segment.rank, anchor)
        name = phase.name if phase is not None else "(none)"
        by_phase[name] = by_phase.get(name, 0.0) + dur

    # Depth: distinct learn instances and distinct (level, round) slots.
    level_rounds = sorted({(k[2], k[3]) for k in round_keys})
    algorithm_levels = {(k[1], k[2]) for k in round_keys}
    p = len(run.ranks)
    bound = expected_depth(p, algorithm_levels)
    level_depth = len(level_rounds)
    depth = {
        "round_depth": len(round_keys),
        "level_depth": level_depth,
        "expected": bound,
        "ratio": _round(level_depth / bound) if bound else 0.0,
        "p": p,
        "algorithms": sorted({k[1] for k in round_keys}),
    }

    # Per-round critical paths for the longest learn rounds.
    rounds = _round_summaries(run, top_rounds)

    # Slack: blocked time per rank vs time contributed to the path.
    slack_rows = []
    for rank in sorted(run.ranks):
        blocked = run.blocked_seconds(rank)
        on_path = path_s_by_rank.get(rank, 0.0)
        if blocked == 0.0 and on_path == 0.0:
            continue
        slack_rows.append({
            "rank": rank,
            "blocked_s": _round(blocked),
            "nblocks": len(run.blocks.get(rank, ())),
            "path_s": _round(on_path),
        })
    slack_rows.sort(key=lambda r: (-r["blocked_s"], r["rank"]))
    total_blocked = sum(r["blocked_s"] for r in slack_rows)

    duration = run.duration()
    path_length = segments[-1].end - segments[0].start if segments else 0.0
    return {
        "run": run.index,
        "p": p,
        "events": run.events,
        "edges": len(run.edges),
        "open_edges": run.open_edge_count,
        "duration_s": _round(duration),
        "critical_path": {
            "length_s": _round(path_length),
            "end_rank": run.end_rank,
            "segments": len(segments),
            "by_kind_s": {k: _round(v) for k, v in sorted(by_kind.items())},
            "by_level": {
                level: {"seconds": _round(s), "edges": n}
                for level, (s, n) in sorted(by_level.items())
            },
            "top_links": [
                {"link": link, "seconds": _round(s), "edges": n}
                for link, (s, n) in sorted(
                    by_link.items(), key=lambda kv: (-kv[1][0], kv[0])
                )[:top_links]
            ],
            "by_phase_s": {
                k: _round(v) for k, v in sorted(by_phase.items())
            },
        },
        "depth": depth,
        "rounds": rounds,
        "slack": {
            "total_blocked_s": _round(total_blocked),
            "ranks": slack_rows[:top_slack],
            "ranks_truncated": max(0, len(slack_rows) - top_slack),
        },
    }


def _round_summaries(run: SpanRun, top_rounds: int) -> list[dict]:
    """Per-round critical paths for the longest learn-phase instances."""
    instances: dict[tuple, PhaseSpan] = {}
    for spans in run.phases.values():
        for span in spans:
            if span.name != LEARN_PHASE:
                continue
            best = instances.get(span.instance_key)
            # Keep the client side (rank == peer) as the round's end
            # anchor when present; it closes the round's last exchange.
            if best is None or (span.rank == span.peer
                                and best.rank != best.peer):
                instances[span.instance_key] = span
    chosen = sorted(
        instances.values(),
        key=lambda s: (-(s.end - s.begin), s.instance_key),
    )[:top_rounds]
    out = []
    for span in chosen:
        segs = critical_path(
            run, end_rank=span.rank, t_end=span.end, t_min=span.begin
        )
        msg_s = sum(s.duration for s in segs if s.kind != "compute")
        max_edge = max(
            (s.duration for s in segs if s.kind == "msg"), default=0.0
        )
        out.append({
            "algorithm": span.algorithm,
            "level": span.level,
            "round_index": span.round_index,
            "ref": span.ref,
            "peer": span.peer,
            "duration_s": _round(span.end - span.begin),
            "path_msg_s": _round(msg_s),
            "path_compute_s": _round(
                sum(s.duration for s in segs if s.kind == "compute")
            ),
            "segments": len(segs),
            "max_edge_s": _round(max_edge),
        })
    return out


def analyze_recorder(recorder: SpanRecorder, **kwargs) -> list[dict]:
    """Analyze every completed run of a recorder (finalizes it first)."""
    recorder.finalize()
    return [analyze_run(run, **kwargs) for run in recorder.completed_runs()]


# ----------------------------------------------------------------------
# Artifacts
# ----------------------------------------------------------------------
def write_critical_path(out_dir: str, analyses: list[dict],
                        meta: dict | None = None) -> str:
    """Write ``critical_path.json`` (sorted keys, no wall-clock times)."""
    os.makedirs(out_dir, exist_ok=True)
    payload = {
        "critical_path_version": 1,
        "meta": meta or {},
        "runs": analyses,
    }
    path = os.path.join(out_dir, "critical_path.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def format_critical_path(analyses: list[dict], top: int = 10) -> str:
    """Human-readable top-N table over the analyzed runs."""
    if not analyses:
        return "critical path: no traced runs"
    lines = ["critical path (per traced run):"]
    header = (f"  {'run':>4} {'p':>5} {'duration':>12} {'depth':>6} "
              f"{'expect':>6} {'ratio':>6} {'msg%':>6} algorithms")
    lines.append(header)
    for entry in analyses:
        cp = entry["critical_path"]
        depth = entry["depth"]
        length = cp["length_s"] or 1.0
        msg_s = sum(
            v for k, v in cp["by_kind_s"].items() if k != "compute"
        )
        lines.append(
            f"  {entry['run']:>4} {entry['p']:>5} "
            f"{entry['duration_s']:>12.6f} {depth['level_depth']:>6} "
            f"{depth['expected']:>6} {depth['ratio']:>6.2f} "
            f"{100.0 * msg_s / length:>5.1f}% "
            f"{','.join(depth['algorithms']) or '-'}"
        )
    longest = max(analyses, key=lambda e: e["duration_s"])
    rounds = longest["rounds"][:top]
    if rounds:
        lines.append(
            f"  slowest sync rounds (run {longest['run']}):"
        )
        lines.append(
            f"    {'algorithm':>10} {'level':>8} {'round':>6} "
            f"{'duration':>12} {'msg_s':>12} {'segs':>5}"
        )
        for row in rounds:
            lines.append(
                f"    {row['algorithm']:>10} {row['level'] or '-':>8} "
                f"{row['round_index']:>6} {row['duration_s']:>12.9f} "
                f"{row['path_msg_s']:>12.9f} {row['segments']:>5}"
            )
    return "\n".join(lines)


__all__ = [
    "FLAT_ALGORITHMS",
    "LEARN_PHASE",
    "PathSegment",
    "analyze_recorder",
    "analyze_run",
    "critical_path",
    "expected_depth",
    "format_critical_path",
    "write_critical_path",
]
