"""Observability layer: engine events, metrics, sync-round stats, export.

The subsystem is strictly *passive*: installing a sink or a metrics
registry never draws randomness, never advances simulated time, and never
changes scheduling — a seeded simulation produces bit-identical results
with and without observability enabled (tested in
``tests/simmpi/test_obs_determinism.py``).

Entry points:

* :mod:`repro.obs.events` — the :class:`EventSink` protocol, typed event
  records emitted by the engine/communicator, and ready-made sinks.
* :mod:`repro.obs.metrics` — counters/gauges/histograms with per-rank
  labels and job-level aggregation.
* :mod:`repro.obs.sync_stats` — per-round instrumentation of the clock
  synchronization algorithms (RTTs per fit point, fit residuals, slopes).
* :mod:`repro.obs.chrome_trace` — Chrome trace-event JSON export
  (Perfetto/about:tracing), with optional logical-clock remapping.
"""

from repro.obs.events import (
    CollectiveEnter,
    CollectiveExit,
    CountingSink,
    EventSink,
    MsgDeliver,
    MsgSend,
    NicQueue,
    ProcBlock,
    ProcWake,
    RecordingSink,
    default_sink,
    get_default_sink,
    set_default_sink,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_metrics,
    format_summary,
    get_default_metrics,
    set_default_metrics,
)
from repro.obs.sync_stats import (
    FitpointSample,
    SyncRoundRecord,
    SyncStatsCollector,
)

__all__ = [
    "CollectiveEnter",
    "CollectiveExit",
    "Counter",
    "CountingSink",
    "EventSink",
    "FitpointSample",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MsgDeliver",
    "MsgSend",
    "NicQueue",
    "ProcBlock",
    "ProcWake",
    "RecordingSink",
    "SyncRoundRecord",
    "SyncStatsCollector",
    "default_metrics",
    "default_sink",
    "format_summary",
    "get_default_metrics",
    "get_default_sink",
    "set_default_metrics",
    "set_default_sink",
]
