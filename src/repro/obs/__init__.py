"""Observability layer: engine events, metrics, sync-round stats, export.

The subsystem is strictly *passive*: installing a sink or a metrics
registry never draws randomness, never advances simulated time, and never
changes scheduling — a seeded simulation produces bit-identical results
with and without observability enabled (tested in
``tests/simmpi/test_obs_determinism.py``).

Entry points:

* :mod:`repro.obs.events` — the :class:`EventSink` protocol, typed event
  records emitted by the engine/communicator, and ready-made sinks.
* :mod:`repro.obs.metrics` — counters/gauges/histograms with per-rank
  labels and job-level aggregation.
* :mod:`repro.obs.sync_stats` — per-round instrumentation of the clock
  synchronization algorithms (RTTs per fit point, fit residuals, slopes).
* :mod:`repro.obs.chrome_trace` — Chrome trace-event JSON export
  (Perfetto/about:tracing), with optional logical-clock remapping.
* :mod:`repro.obs.timeseries` — bounded, decimating per-rank telemetry
  series (clock error, drift model, resync age, NIC backlog) + markers.
* :mod:`repro.obs.health` — anomaly detectors over the telemetry bank
  producing typed findings and a per-run verdict.
* :mod:`repro.obs.report` — self-contained HTML + JSON run reports.
* :mod:`repro.obs.spans` — causal span/edge recorder (message edges,
  sync-phase spans, block intervals) over the event stream.
* :mod:`repro.obs.causal` — critical-path extraction, per-level latency
  attribution, and round-depth measurement over recorded spans.
"""

from repro.obs.events import (
    CollectiveEnter,
    CollectiveExit,
    CountingSink,
    EventSink,
    MsgDeliver,
    MsgSend,
    NicQueue,
    PhaseBegin,
    PhaseEnd,
    ProcBlock,
    ProcWake,
    RecordingSink,
    default_sink,
    get_default_sink,
    set_default_sink,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_metrics,
    format_summary,
    get_default_metrics,
    set_default_metrics,
)
from repro.obs.sync_stats import (
    FitpointSample,
    SyncRoundRecord,
    SyncStatsCollector,
)
from repro.obs.timeseries import (
    TimeSeries,
    TimeSeriesBank,
    default_timeseries,
    get_default_timeseries,
    set_default_timeseries,
)
from repro.obs.health import (
    HealthFinding,
    HealthThresholds,
    HealthVerdict,
    evaluate_health,
)
from repro.obs.report import build_report, render_html, write_report
from repro.obs.spans import MessageEdge, PhaseSpan, SpanRecorder

__all__ = [
    "CollectiveEnter",
    "CollectiveExit",
    "Counter",
    "CountingSink",
    "EventSink",
    "FitpointSample",
    "Gauge",
    "HealthFinding",
    "HealthThresholds",
    "HealthVerdict",
    "Histogram",
    "MessageEdge",
    "MetricsRegistry",
    "MsgDeliver",
    "MsgSend",
    "NicQueue",
    "PhaseBegin",
    "PhaseEnd",
    "PhaseSpan",
    "ProcBlock",
    "ProcWake",
    "RecordingSink",
    "SpanRecorder",
    "SyncRoundRecord",
    "SyncStatsCollector",
    "TimeSeries",
    "TimeSeriesBank",
    "build_report",
    "default_metrics",
    "default_sink",
    "default_timeseries",
    "evaluate_health",
    "format_summary",
    "get_default_metrics",
    "get_default_sink",
    "get_default_timeseries",
    "render_html",
    "set_default_metrics",
    "set_default_sink",
    "set_default_timeseries",
    "write_report",
]
