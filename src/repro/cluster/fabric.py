"""Interconnect fabrics: topology-dependent inter-node latency.

The base network model charges a flat REMOTE latency; real fabrics add a
per-hop cost that depends on where two nodes sit in the interconnect.
Titan's Cray Gemini is a 3D torus: messages between distant nodes cross
more router hops, which both raises the mean latency and widens the
latency *spread* across node pairs — one of the reasons the paper's
Fig. 6 (16k cores) shows much larger run-to-run variance than the
single-switch InfiniBand/OmniPath machines.

A fabric contributes ``extra_latency(node_a, node_b)`` seconds on top of
the level-based delay; :class:`~repro.simmpi.simulation.Simulation`
forwards it to the engine.
"""

from __future__ import annotations

import math
from typing import Protocol


class Fabric(Protocol):
    """Anything that prices a node pair in extra one-way latency."""

    def extra_latency(self, node_a: int, node_b: int) -> float:
        ...


class FlatFabric:
    """Single-switch fabric: no topology-dependent cost (IB/OmniPath)."""

    def extra_latency(self, node_a: int, node_b: int) -> float:
        return 0.0


class TorusFabric:
    """k-ary n-cube (torus) with dimension-ordered routing.

    Nodes map to coordinates in row-major order over ``dims``; the hop
    count between two nodes is the sum of per-dimension wrap-around
    distances, and each hop costs ``per_hop_latency``.
    """

    def __init__(
        self,
        dims: tuple[int, ...],
        per_hop_latency: float = 0.12e-6,
    ) -> None:
        if not dims or any(d <= 0 for d in dims):
            raise ValueError("dims must be non-empty positive extents")
        if per_hop_latency < 0:
            raise ValueError("per_hop_latency must be >= 0")
        self.dims = tuple(dims)
        self.per_hop_latency = float(per_hop_latency)
        self.num_nodes = math.prod(dims)

    @classmethod
    def cube_for(cls, num_nodes: int,
                 per_hop_latency: float = 0.12e-6) -> "TorusFabric":
        """A near-cubic 3D torus large enough for ``num_nodes`` nodes."""
        side = max(1, round(num_nodes ** (1.0 / 3.0)))
        while side ** 3 < num_nodes:
            side += 1
        return cls((side, side, side), per_hop_latency)

    def coords(self, node: int) -> tuple[int, ...]:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside torus of "
                             f"{self.num_nodes}")
        out = []
        for extent in reversed(self.dims):
            out.append(node % extent)
            node //= extent
        return tuple(reversed(out))

    def hops(self, node_a: int, node_b: int) -> int:
        """Dimension-ordered wrap-around (torus) Manhattan distance."""
        total = 0
        for a, b, extent in zip(self.coords(node_a), self.coords(node_b),
                                self.dims):
            d = abs(a - b)
            total += min(d, extent - d)
        return total

    def extra_latency(self, node_a: int, node_b: int) -> float:
        if node_a == node_b:
            return 0.0
        return self.per_hop_latency * self.hops(node_a, node_b)

    def diameter(self) -> int:
        """Maximum hop count between any two nodes."""
        return sum(extent // 2 for extent in self.dims)
