"""Machine topology: nodes, sockets, cores, and rank placement.

This plays the role hwloc + the MPI process mapper play on a real system:
it answers "which node/socket/core does rank r run on?" and "how far apart
are ranks a and b?".  The hierarchical synchronization schemes (HlHCA)
query it to build their per-level communicators, and the network model uses
the pairwise :class:`~repro.simmpi.network.Level` to pick link parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simmpi.network import Level


@dataclass(frozen=True)
class Placement:
    """Where one rank lives in the machine."""

    rank: int
    node: int
    socket: int
    core: int


class Machine:
    """A cluster of identical SMP nodes with block rank placement.

    Ranks are placed node-major, then socket-major, then core — the default
    "by core, pinned" mapping the paper uses (one rank per core, processes
    pinned).  ``sockets_per_node`` × ``cores_per_socket`` gives cores (and
    hence ranks) per node.
    """

    def __init__(
        self,
        num_nodes: int,
        sockets_per_node: int = 2,
        cores_per_socket: int = 8,
        ranks_per_node: int | None = None,
        name: str = "machine",
    ) -> None:
        if num_nodes <= 0 or sockets_per_node <= 0 or cores_per_socket <= 0:
            raise ValueError("all topology extents must be positive")
        self.num_nodes = num_nodes
        self.sockets_per_node = sockets_per_node
        self.cores_per_socket = cores_per_socket
        self.cores_per_node = sockets_per_node * cores_per_socket
        if ranks_per_node is None:
            ranks_per_node = self.cores_per_node
        if not 1 <= ranks_per_node <= self.cores_per_node:
            raise ValueError(
                f"ranks_per_node must be in [1, {self.cores_per_node}]"
            )
        self.ranks_per_node = ranks_per_node
        self.name = name
        #: Memoized per-rank placements, built on first lookup.  Placement
        #: is queried per (rank, message) in hot setup paths — the level
        #: map, NIC node lookups, clock-domain keys — so the divmod pair
        #: is paid once per rank, not per query.
        self._placements: list[Placement] | None = None

    @property
    def num_ranks(self) -> int:
        return self.num_nodes * self.ranks_per_node

    def placement(self, rank: int) -> Placement:
        """Node/socket/core of a rank (block placement, round-robin cores)."""
        placements = self._placements
        if placements is None:
            placements = self._placements = [
                self._compute_placement(r) for r in range(self.num_ranks)
            ]
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} out of range")
        return placements[rank]

    def _compute_placement(self, rank: int) -> Placement:
        node, local = divmod(rank, self.ranks_per_node)
        socket, core = divmod(local, self.cores_per_socket)
        # With fewer ranks than cores, ranks fill socket 0 first (pinned to
        # the first cores), matching the paper's "pinned to the first core
        # of a compute node" setup for the drift experiments.
        return Placement(rank=rank, node=node, socket=socket, core=core)

    def level_between(self, a: int, b: int) -> Level:
        """Topological distance class between two ranks.

        Computed arithmetically from the block placement rather than via
        :meth:`placement`: the engine fills its pairwise level cache
        through here (p·log p distinct pairs for the doubling patterns),
        and two divmods beat four attribute loads on frozen dataclasses.
        """
        n = self.num_ranks
        if not (0 <= a < n and 0 <= b < n):
            raise ValueError(f"rank pair ({a}, {b}) out of range")
        rpn = self.ranks_per_node
        node_a, local_a = divmod(a, rpn)
        node_b, local_b = divmod(b, rpn)
        if node_a != node_b:
            return Level.REMOTE
        cps = self.cores_per_socket
        if local_a // cps != local_b // cps:
            return Level.NODE
        if local_a != local_b:
            return Level.SOCKET
        return Level.SELF

    def node_of(self, rank: int) -> int:
        return self.placement(rank).node

    def ranks_on_node(self, node: int) -> list[int]:
        """All ranks placed on a node, in rank order."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
        start = node * self.ranks_per_node
        return list(range(start, start + self.ranks_per_node))

    def node_leaders(self) -> list[int]:
        """The first rank of each node (roots of the inter-node level)."""
        return [n * self.ranks_per_node for n in range(self.num_nodes)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine({self.name!r}, nodes={self.num_nodes}, "
            f"sockets={self.sockets_per_node}, "
            f"cores/socket={self.cores_per_socket}, "
            f"ranks/node={self.ranks_per_node})"
        )
