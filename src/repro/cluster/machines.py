"""The parallel machines of the paper's Table I, as scalable presets.

| Name    | Hardware                                   | Interconnect   |
|---------|--------------------------------------------|----------------|
| Jupiter | 36 × dual Opteron 6134 (2×8 cores)         | InfiniBand QDR |
| Hydra   | 36 × dual Xeon Gold 6130 (2×16 cores)      | Intel OmniPath |
| Titan   | Cray XK7, Opteron 6274 (16 cores/node)     | Cray Gemini    |

Each factory accepts ``num_nodes``/``ranks_per_node`` overrides so
experiments can run the paper's exact shapes (e.g. 32×16 on Jupiter) or a
scaled-down version with the same structure; EXPERIMENTS.md records the
scale used per figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.fabric import FlatFabric, TorusFabric
from repro.cluster.netmodels import cray_gemini, infiniband_qdr, omnipath
from repro.cluster.topology import Machine
from repro.simmpi.network import NetworkModel
from repro.simtime.sources import CLOCK_GETTIME, TimeSourceSpec


def flat_fabric(num_nodes: int) -> FlatFabric:
    """Single-switch fabric, independent of node count.

    Module-level (rather than a lambda) so :class:`MachineSpec` presets
    are picklable — the parallel campaign executor ships specs to worker
    processes.
    """
    return FlatFabric()


def torus_fabric(num_nodes: int) -> TorusFabric:
    """3D-torus fabric sized for ``num_nodes`` (Titan's Gemini)."""
    return TorusFabric.cube_for(num_nodes)


@dataclass(frozen=True)
class MachineSpec:
    """A machine preset: topology factory + network + default time source.

    Presets are picklable (factories are module-level functions), which
    lets :mod:`repro.parallel` submit campaign jobs referencing a spec to
    worker processes directly.
    """

    name: str
    default_nodes: int
    sockets_per_node: int
    cores_per_socket: int
    network_factory: Callable[[], NetworkModel]
    time_source: TimeSourceSpec = field(default=CLOCK_GETTIME)
    #: Builds the interconnect fabric for a given node count (torus for
    #: Titan's Gemini; flat single-switch fabrics elsewhere).
    fabric_factory: Callable[[int], object] = field(default=flat_fabric)

    def machine(
        self,
        num_nodes: int | None = None,
        ranks_per_node: int | None = None,
    ) -> Machine:
        return Machine(
            num_nodes=num_nodes or self.default_nodes,
            sockets_per_node=self.sockets_per_node,
            cores_per_socket=self.cores_per_socket,
            ranks_per_node=ranks_per_node,
            name=self.name,
        )

    def network(self) -> NetworkModel:
        return self.network_factory()

    def fabric(self, num_nodes: int | None = None):
        return self.fabric_factory(num_nodes or self.default_nodes)


JUPITER = MachineSpec(
    name="jupiter",
    default_nodes=36,
    sockets_per_node=2,
    cores_per_socket=8,
    network_factory=infiniband_qdr,
)

HYDRA = MachineSpec(
    name="hydra",
    default_nodes=36,
    sockets_per_node=2,
    cores_per_socket=16,
    network_factory=omnipath,
)

TITAN = MachineSpec(
    name="titan",
    default_nodes=1024,
    sockets_per_node=1,
    cores_per_socket=16,
    network_factory=cray_gemini,
    fabric_factory=torus_fabric,
)

MACHINES: dict[str, MachineSpec] = {
    "jupiter": JUPITER,
    "hydra": HYDRA,
    "titan": TITAN,
}


def jupiter() -> MachineSpec:
    """Jupiter preset; use as ``jupiter().machine(num_nodes, ranks_per_node)``."""
    return JUPITER


def hydra() -> MachineSpec:
    """Hydra preset."""
    return HYDRA


def titan() -> MachineSpec:
    """Titan preset."""
    return TITAN
