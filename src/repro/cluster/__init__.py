"""Cluster models: topology (nodes/sockets/cores) and network presets.

The three machines of the paper's Table I are available as scalable presets
(:func:`~repro.cluster.machines.jupiter`,
:func:`~repro.cluster.machines.hydra`,
:func:`~repro.cluster.machines.titan`).
"""

from repro.cluster.topology import Machine, Placement
from repro.cluster.fabric import FlatFabric, TorusFabric
from repro.cluster.netmodels import (
    infiniband_qdr,
    omnipath,
    cray_gemini,
    ideal_network,
)
from repro.cluster.machines import (
    MachineSpec,
    jupiter,
    hydra,
    titan,
    MACHINES,
)

__all__ = [
    "Machine",
    "Placement",
    "FlatFabric",
    "TorusFabric",
    "infiniband_qdr",
    "omnipath",
    "cray_gemini",
    "ideal_network",
    "MachineSpec",
    "jupiter",
    "hydra",
    "titan",
    "MACHINES",
]
