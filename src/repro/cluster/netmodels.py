"""Network parameter presets for the interconnects of Table I.

Values are calibrated to the magnitudes the paper reports rather than to
vendor datasheets: the InfiniBand QDR fabric of Jupiter has a small-message
ping-pong latency of 3–4 µs (stated in Section IV-E), OmniPath is newer and
"has a smaller latency", and the Cray Gemini torus of Titan shows larger
latency and noticeably larger jitter/congestion variance (Fig. 6's spread).
Intra-node (shared-memory) transfers are an order of magnitude faster.
"""

from __future__ import annotations

from repro.simmpi.network import Level, LinkParams, NetworkModel


def infiniband_qdr() -> NetworkModel:
    """Jupiter's fabric: IB QDR, ping-pong latency ≈ 3–4 µs."""
    return NetworkModel(
        name="infiniband-qdr",
        levels={
            Level.SOCKET: LinkParams(
                latency=0.25e-6, bandwidth=8e9, jitter_scale=0.02e-6
            ),
            Level.NODE: LinkParams(
                latency=0.45e-6, bandwidth=6e9, jitter_scale=0.04e-6
            ),
            Level.REMOTE: LinkParams(
                latency=1.6e-6,
                bandwidth=1.5e9,
                jitter_scale=0.15e-6,
                outlier_prob=2e-4,
                outlier_scale=25e-6,
            ),
        },
        o_send=0.25e-6,
        o_recv=0.25e-6,
        nic_gap=0.35e-6,
        congestion_jitter=0.5e-6,
    )


def omnipath() -> NetworkModel:
    """Hydra's fabric: Intel OmniPath, lower latency than IB QDR."""
    return NetworkModel(
        name="omnipath",
        levels={
            Level.SOCKET: LinkParams(
                latency=0.2e-6, bandwidth=10e9, jitter_scale=0.015e-6
            ),
            Level.NODE: LinkParams(
                latency=0.35e-6, bandwidth=8e9, jitter_scale=0.03e-6
            ),
            Level.REMOTE: LinkParams(
                latency=1.0e-6,
                bandwidth=3e9,
                jitter_scale=0.08e-6,
                outlier_prob=1e-4,
                outlier_scale=15e-6,
            ),
        },
        o_send=0.2e-6,
        o_recv=0.2e-6,
        nic_gap=0.25e-6,
        congestion_jitter=0.35e-6,
    )


def cray_gemini() -> NetworkModel:
    """Titan's fabric: Cray Gemini 3D torus — higher latency and jitter."""
    return NetworkModel(
        name="cray-gemini",
        levels={
            Level.SOCKET: LinkParams(
                latency=0.3e-6, bandwidth=6e9, jitter_scale=0.03e-6
            ),
            Level.NODE: LinkParams(
                latency=0.5e-6, bandwidth=5e9, jitter_scale=0.05e-6
            ),
            Level.REMOTE: LinkParams(
                latency=2.2e-6,
                bandwidth=0.2e9,
                jitter_scale=0.5e-6,
                outlier_prob=8e-4,
                outlier_scale=60e-6,
            ),
        },
        o_send=0.3e-6,
        o_recv=0.3e-6,
        nic_gap=0.45e-6,
        congestion_jitter=0.9e-6,
    )


def ideal_network(latency: float = 1e-6, bandwidth: float = 1e10) -> NetworkModel:
    """Jitter-free network for deterministic unit tests."""
    return NetworkModel(
        name="ideal",
        levels={Level.REMOTE: LinkParams(latency=latency, bandwidth=bandwidth)},
        o_send=0.0,
        o_recv=0.0,
    )
