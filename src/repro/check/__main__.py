"""CLI: re-check a recorded event stream. ``python -m repro.check run.jsonl``.

Replays one or more JSONL event dumps (see
:func:`repro.check.replay.dump_events`) through the sanitizer and prints
a text report per file.  Exits 1 if any file has violations, so the
command slots directly into CI.  ``--strict`` aborts at the first
violation instead; ``--json PATH`` additionally writes the merged
report as JSON.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.check.replay import replay_file
from repro.check.sanitizer import CheckReport


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description=(
            "Replay recorded engine event streams through the "
            "simulation sanitizer."
        ),
    )
    parser.add_argument(
        "events", nargs="+", metavar="EVENTS.jsonl",
        help="event dump(s) written by repro.check.replay.dump_events",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="raise on the first violation instead of accumulating",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="also write the merged report as JSON to PATH",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    merged = CheckReport(label="aggregate")
    for path in args.events:
        report = replay_file(
            path, mode="strict" if args.strict else "report"
        )
        print(report.format_text())
        merged.merge_from(report)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(merged.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 0 if merged.ok else 1


if __name__ == "__main__":
    sys.exit(main())
