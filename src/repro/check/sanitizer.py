"""Runtime simulation sanitizer: invariant checking over the event stream.

The :class:`SanitizerSink` is an :class:`~repro.obs.events.EventSink`
that *verifies* instead of recording: attached to an engine (alone or
tee'd next to a real sink), it checks engine-level invariants on every
emitted event and once more at run end (:meth:`SanitizerSink.finalize`).
It plays the role dynamic MPI correctness checkers (MUST, memcheckers)
play on real runs — the claims of the paper's experiments are only as
good as the discrete-event substrate underneath, and a silent causality
bug would skew every figure.

Invariant catalog (rule names used in violations):

``monotonic-time``
    Per-rank event times never decrease.  Every engine-core event is
    stamped with the emitting process's true time, and a process's time
    line only moves forward; a backward stamp means the causality gate
    (or a mutant) let a process observe the past.  Scheduled
    :class:`~repro.obs.events.FaultInject` records are exempt (they are
    emitted up front, at their future activation times).
``fifo-order``
    Per ``(source, dest, tag)`` channel, messages are *matched* in send
    (sequence-number) order — MPI's non-overtaking rule.  Arrival times
    may reorder freely; matching must not.
``conservation``
    Every send is matched by exactly one delivery or is still sitting in
    a mailbox when the run ends: no duplicated, forged, or silently
    dropped messages.  Cross-checked against ``Engine.stats()`` (and the
    metrics registry, when one is attached) at finalize.
``msg-integrity``
    A delivery's source/size must equal its send's, and it cannot
    complete before the send happened.
``lifecycle``
    Block/wake legality: a blocked process cannot block again without a
    wake in between, a wake requires a preceding block, and a rank's
    resync rounds arrive in round-index order.  This is the engine-level
    analogue of "no double-wait / double-complete" on requests.
``collective-nesting``
    Per rank, ``CollectiveExit`` events match the innermost open
    ``CollectiveEnter`` (LIFO), with exit time >= enter time.
``stats-consistency``
    ``Engine.stats()`` counters equal the event-stream counts
    (``messages_sent``/``messages_delivered``/``messages_unreceived``).
``clock-sanity``
    See :mod:`repro.check.clockcheck`: global clocks must be finite,
    monotone over the checked window, and have slope ≈ 1.

In ``strict`` mode the first violation raises
:class:`~repro.errors.InvariantViolation`; in ``report`` mode violations
accumulate into a :class:`CheckReport` (JSON + text renderable) so a
whole campaign can be audited post-hoc.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InvariantViolation
from repro.obs import events as obs_events

#: Violations kept per report (further ones are counted, not stored).
MAX_VIOLATIONS = 200


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with enough context to reproduce it."""

    #: Rule identifier from the invariant catalog (e.g. ``fifo-order``).
    rule: str
    #: Human-readable description of what went wrong.
    message: str
    #: True simulation time at which the violation was observed (-1 when
    #: the check is not tied to a specific instant, e.g. finalize checks).
    time: float = -1.0
    #: Affected rank (-1 for run-level violations).
    rank: int = -1
    #: Structured extras (seqs, counters, ...), JSON-serializable.
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "message": self.message,
            "time": self.time,
            "rank": self.rank,
            "details": dict(self.details),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Violation":
        return cls(
            rule=data["rule"],
            message=data["message"],
            time=data.get("time", -1.0),
            rank=data.get("rank", -1),
            details=dict(data.get("details", {})),
        )

    def format(self) -> str:
        where = []
        if self.time >= 0.0:
            where.append(f"t={self.time:.9g}")
        if self.rank >= 0:
            where.append(f"rank={self.rank}")
        suffix = f" [{', '.join(where)}]" if where else ""
        return f"{self.rule}: {self.message}{suffix}"


@dataclass
class CheckReport:
    """Outcome of one or more sanitized runs (mergeable, serializable)."""

    label: str = ""
    violations: list[Violation] = field(default_factory=list)
    #: Violations observed beyond the storage cap.
    dropped: int = 0
    runs: int = 0
    events_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations and self.dropped == 0

    @property
    def total_violations(self) -> int:
        return len(self.violations) + self.dropped

    def merge_from(self, other: "CheckReport") -> None:
        room = MAX_VIOLATIONS - len(self.violations)
        self.violations.extend(other.violations[:room])
        self.dropped += other.dropped + max(
            0, len(other.violations) - room
        )
        self.runs += other.runs
        self.events_checked += other.events_checked

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "ok": self.ok,
            "runs": self.runs,
            "events_checked": self.events_checked,
            "total_violations": self.total_violations,
            "violations": [v.to_dict() for v in self.violations],
            "dropped": self.dropped,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CheckReport":
        return cls(
            label=data.get("label", ""),
            violations=[
                Violation.from_dict(v) for v in data.get("violations", [])
            ],
            dropped=data.get("dropped", 0),
            runs=data.get("runs", 0),
            events_checked=data.get("events_checked", 0),
        )

    def format_text(self) -> str:
        head = (
            f"check report{f' [{self.label}]' if self.label else ''}: "
            f"{'OK' if self.ok else 'VIOLATIONS'} "
            f"({self.runs} run(s), {self.events_checked} events, "
            f"{self.total_violations} violation(s))"
        )
        lines = [head]
        for v in self.violations:
            lines.append(f"  {v.format()}")
        if self.dropped:
            lines.append(f"  ... and {self.dropped} more (cap reached)")
        return "\n".join(lines)


def _find_cycle(edges: dict[int, int]) -> list[int] | None:
    """First cycle in a functional wait-for graph (each node ≤ 1 edge)."""
    visited: set[int] = set()
    for start in sorted(edges):
        if start in visited:
            continue
        path: list[int] = []
        seen_here: dict[int, int] = {}
        node = start
        while node in edges and node not in visited:
            if node in seen_here:
                return path[seen_here[node]:]
            seen_here[node] = len(path)
            path.append(node)
            node = edges[node]
        visited.update(path)
    return None


class _RankState:
    """Per-rank sanitizer bookkeeping."""

    __slots__ = ("last_time", "blocked", "resync_round", "coll_stack")

    def __init__(self) -> None:
        self.last_time = 0.0
        #: The active ProcBlock record, or None while runnable.
        self.blocked: obs_events.ProcBlock | None = None
        self.resync_round = 0
        #: Open CollectiveEnter frames, innermost last.
        self.coll_stack: list[obs_events.CollectiveEnter] = []


class SanitizerSink:
    """Event sink that enforces the invariant catalog during a run.

    Passive like every sink (never mutates the engine, never draws
    randomness); in strict mode it raises out of ``emit``, which aborts
    the simulation at the exact faulty event.
    """

    def __init__(self, mode: str = "strict", label: str = "") -> None:
        if mode not in ("strict", "report"):
            raise ValueError(f"mode must be strict/report, got {mode!r}")
        self.mode = mode
        self.report = CheckReport(label=label)
        self._ranks: dict[int, _RankState] = {}
        #: seq -> MsgSend of not-yet-delivered messages.
        self._outstanding: dict[int, obs_events.MsgSend] = {}
        #: seqs that completed delivery (duplicate detection).
        self._delivered_seqs: set[int] = set()
        #: (source, dest, tag) -> last matched seq (non-overtaking check).
        self._last_matched: dict[tuple[int, int, int], int] = {}
        self.sends = 0
        self.deliveries = 0
        self._finalized = False

    # ------------------------------------------------------------------
    # Violation plumbing
    # ------------------------------------------------------------------
    def violation(
        self,
        rule: str,
        message: str,
        time: float = -1.0,
        rank: int = -1,
        **details,
    ) -> None:
        """Record one violation; raises immediately in strict mode."""
        v = Violation(
            rule=rule, message=message, time=time, rank=rank,
            details=details,
        )
        if self.mode == "strict":
            raise InvariantViolation(v.format(), violation=v)
        if len(self.report.violations) < MAX_VIOLATIONS:
            self.report.violations.append(v)
        else:
            self.report.dropped += 1

    def _state(self, rank: int) -> _RankState:
        state = self._ranks.get(rank)
        if state is None:
            state = self._ranks[rank] = _RankState()
        return state

    # ------------------------------------------------------------------
    # EventSink protocol
    # ------------------------------------------------------------------
    def emit(self, event) -> None:
        self.report.events_checked += 1
        etype = type(event)
        if etype is obs_events.FaultInject:
            return  # scheduled a priori, at future activation times
        rank = event.rank
        if rank >= 0:
            state = self._state(rank)
            if event.time < state.last_time:
                self.violation(
                    "monotonic-time",
                    f"{etype.__name__} at t={event.time:.9g} is before "
                    f"rank {rank}'s previous event at "
                    f"t={state.last_time:.9g}",
                    time=event.time, rank=rank,
                    previous=state.last_time,
                    event=etype.__name__,
                )
            else:
                state.last_time = event.time
        if etype is obs_events.MsgSend:
            self._on_send(event)
        elif etype is obs_events.MsgDeliver:
            self._on_deliver(event)
        elif etype is obs_events.ProcBlock:
            self._on_block(event)
        elif etype is obs_events.ProcWake:
            self._on_wake(event)
        elif etype is obs_events.ResyncRound:
            self._on_resync(event)
        elif etype is obs_events.CollectiveEnter:
            self._state(rank).coll_stack.append(event)
        elif etype is obs_events.CollectiveExit:
            self._on_collective_exit(event)

    # ------------------------------------------------------------------
    # Per-event checks
    # ------------------------------------------------------------------
    def _on_send(self, event: obs_events.MsgSend) -> None:
        self.sends += 1
        if event.seq in self._outstanding or event.seq in self._delivered_seqs:
            self.violation(
                "conservation",
                f"send seq {event.seq} reuses an already-seen sequence "
                f"number",
                time=event.time, rank=event.rank, seq=event.seq,
            )
            return
        self._outstanding[event.seq] = event

    def _on_deliver(self, event: obs_events.MsgDeliver) -> None:
        self.deliveries += 1
        send = self._outstanding.pop(event.seq, None)
        if send is None:
            if event.seq in self._delivered_seqs:
                self.violation(
                    "conservation",
                    f"message seq {event.seq} delivered twice",
                    time=event.time, rank=event.rank, seq=event.seq,
                )
            else:
                self.violation(
                    "conservation",
                    f"delivery of seq {event.seq} has no matching send",
                    time=event.time, rank=event.rank, seq=event.seq,
                )
            return
        self._delivered_seqs.add(event.seq)
        if (send.rank, send.dest, send.size) != (
            event.source, event.rank, event.size
        ):
            self.violation(
                "msg-integrity",
                f"delivery of seq {event.seq} does not match its send: "
                f"sent {send.rank}->{send.dest} ({send.size}B), "
                f"delivered {event.source}->{event.rank} ({event.size}B)",
                time=event.time, rank=event.rank, seq=event.seq,
            )
        if event.time < send.time:
            self.violation(
                "msg-integrity",
                f"seq {event.seq} delivered at t={event.time:.9g} before "
                f"its send at t={send.time:.9g}",
                time=event.time, rank=event.rank, seq=event.seq,
                send_time=send.time,
            )
        channel = (event.source, event.rank, event.tag)
        last = self._last_matched.get(channel)
        if last is not None and event.seq < last:
            self.violation(
                "fifo-order",
                f"channel {event.source}->{event.rank} tag {event.tag} "
                f"matched seq {event.seq} after seq {last} "
                f"(non-overtaking violated)",
                time=event.time, rank=event.rank, seq=event.seq,
                previous_seq=last,
            )
        else:
            self._last_matched[channel] = event.seq

    def _on_block(self, event: obs_events.ProcBlock) -> None:
        state = self._state(event.rank)
        if state.blocked is not None:
            self.violation(
                "lifecycle",
                f"rank {event.rank} blocked ({event.reason}) while "
                f"already blocked ({state.blocked.reason} since "
                f"t={state.blocked.time:.9g})",
                time=event.time, rank=event.rank, reason=event.reason,
            )
        state.blocked = event

    def _on_wake(self, event: obs_events.ProcWake) -> None:
        state = self._state(event.rank)
        if state.blocked is None:
            self.violation(
                "lifecycle",
                f"rank {event.rank} woke without a preceding block",
                time=event.time, rank=event.rank,
            )
        state.blocked = None

    def _on_resync(self, event: obs_events.ResyncRound) -> None:
        state = self._state(event.rank)
        expected = state.resync_round + 1
        if event.round_index != expected:
            self.violation(
                "lifecycle",
                f"rank {event.rank} resync round {event.round_index} "
                f"arrived out of order (expected {expected})",
                time=event.time, rank=event.rank,
                round_index=event.round_index,
            )
        state.resync_round = event.round_index

    def _on_collective_exit(self, event: obs_events.CollectiveExit) -> None:
        state = self._state(event.rank)
        if not state.coll_stack:
            self.violation(
                "collective-nesting",
                f"rank {event.rank} exited {event.name} without entering",
                time=event.time, rank=event.rank, name=event.name,
            )
            return
        enter = state.coll_stack.pop()
        if (enter.name, enter.comm_id) != (event.name, event.comm_id):
            self.violation(
                "collective-nesting",
                f"rank {event.rank} exited {event.name} (comm "
                f"{event.comm_id}) but innermost open collective is "
                f"{enter.name} (comm {enter.comm_id})",
                time=event.time, rank=event.rank, name=event.name,
            )
        elif event.time < enter.time:
            self.violation(
                "collective-nesting",
                f"rank {event.rank} exited {event.name} at "
                f"t={event.time:.9g}, before entering at "
                f"t={enter.time:.9g}",
                time=event.time, rank=event.rank, name=event.name,
            )

    # ------------------------------------------------------------------
    # Deadlock diagnosis (engine consults this on a stalled run)
    # ------------------------------------------------------------------
    def deadlock_diagnosis(self, engine) -> str:
        """Describe the blocked-wait graph, naming a cycle if one exists.

        Built from the sanitizer's own block/wake tracking, so it names
        the operation and timestamp each rank has been stuck on — the
        actionable version of "all processes are blocked".
        """
        blocked = {
            rank: state.blocked
            for rank, state in sorted(self._ranks.items())
            if state.blocked is not None
        }
        if not blocked:
            return "no blocked ranks tracked (sanitizer saw no stall)"
        lines = ["blocked-wait diagnosis:"]
        edges: dict[int, int] = {}
        for rank, ev in blocked.items():
            if ev.reason == "recv":
                who = "ANY_SOURCE" if ev.source < 0 else f"rank {ev.source}"
                lines.append(
                    f"  rank {rank}: recv(source={who}, tag={ev.tag}) "
                    f"since t={ev.time:.9g}"
                )
            else:
                lines.append(
                    f"  rank {rank}: ssend(dest=rank {ev.source}, "
                    f"tag={ev.tag}) unmatched since t={ev.time:.9g}"
                )
            if ev.source >= 0:
                edges[rank] = ev.source
        cycle = _find_cycle(edges)
        if cycle:
            pretty = " -> ".join(f"rank {r}" for r in cycle)
            lines.append(f"  wait cycle: {pretty} -> rank {cycle[0]}")
        else:
            lines.append(
                "  no closed wait cycle among tracked edges "
                "(a peer may have exited, or an ANY_SOURCE wait is "
                "unsatisfiable)"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # End-of-run checks
    # ------------------------------------------------------------------
    def finalize(self, engine=None, spans=None) -> CheckReport:
        """Run the end-of-run invariants; returns the report.

        ``engine`` (when given) enables the stats- and metrics-
        consistency cross-checks against the event-stream counts;
        ``spans`` (a :class:`~repro.obs.spans.SpanRecorder`, when one is
        tee'd alongside the sanitizer) cross-validates the two
        observability layers: the recorder's open-edge count must equal
        the engine's ``messages_unreceived``.
        Idempotent: a second call returns the report unchanged.
        """
        if self._finalized:
            return self.report
        self._finalized = True
        self.report.runs += 1
        for rank, state in sorted(self._ranks.items()):
            if state.blocked is not None:
                self.violation(
                    "lifecycle",
                    f"rank {rank} still blocked ({state.blocked.reason}) "
                    f"at run end",
                    time=state.blocked.time, rank=rank,
                )
            if state.coll_stack:
                enter = state.coll_stack[-1]
                self.violation(
                    "collective-nesting",
                    f"rank {rank} never exited {enter.name} entered at "
                    f"t={enter.time:.9g}",
                    time=enter.time, rank=rank, name=enter.name,
                )
        if engine is not None:
            self._check_engine_consistency(engine)
        if spans is not None:
            self._check_span_consistency(engine, spans)
        return self.report

    def _check_engine_consistency(self, engine) -> None:
        stats = engine.stats()
        checks = (
            ("messages_sent", self.sends),
            ("messages_delivered", self.deliveries),
            ("messages_unreceived", len(self._outstanding)),
        )
        for name, observed in checks:
            counted = stats.get(name)
            if counted != observed:
                self.violation(
                    "stats-consistency",
                    f"Engine.stats()[{name!r}] = {counted} but the event "
                    f"stream shows {observed}",
                    stat=name, stats_value=counted, observed=observed,
                )
        if self.sends != self.deliveries + len(self._outstanding):
            self.violation(
                "conservation",
                f"{self.sends} sends != {self.deliveries} deliveries + "
                f"{len(self._outstanding)} undelivered",
                sends=self.sends, deliveries=self.deliveries,
                undelivered=len(self._outstanding),
            )
        metrics = getattr(engine, "metrics", None)
        if metrics is not None:
            self._check_metrics_consistency(metrics)

    def _check_span_consistency(self, engine, spans) -> None:
        """The span recorder and the sanitizer must agree on open edges.

        Both layers consume the same event stream independently: the
        sanitizer tracks outstanding sends for conservation, the span
        recorder tracks open (undelivered) causal edges.  Any mismatch
        means one of the two mis-parsed the stream — and when the live
        engine is at hand, its ``messages_unreceived`` stat arbitrates.
        """
        open_edges = spans.open_edge_count
        if open_edges != len(self._outstanding):
            self.violation(
                "stats-consistency",
                f"span recorder reports {open_edges} open edge(s) but "
                f"the sanitizer tracks {len(self._outstanding)} "
                f"outstanding send(s)",
                stat="open_edges", stats_value=open_edges,
                observed=len(self._outstanding),
            )
        if engine is not None:
            unreceived = engine.stats().get("messages_unreceived")
            if unreceived != open_edges:
                self.violation(
                    "stats-consistency",
                    f"Engine.stats()['messages_unreceived'] = "
                    f"{unreceived} but the span recorder reports "
                    f"{open_edges} open edge(s)",
                    stat="messages_unreceived", stats_value=unreceived,
                    observed=open_edges,
                )

    def _check_metrics_consistency(self, metrics) -> None:
        for counter_name, observed in (
            ("engine.messages.sent", self.sends),
            ("engine.messages.delivered", self.deliveries),
        ):
            total = metrics.merged_counter(counter_name)
            if total != observed:
                self.violation(
                    "stats-consistency",
                    f"metrics counter {counter_name!r} = {total:g} "
                    f"but the event stream shows {observed}",
                    counter=counter_name, counter_value=total,
                    observed=observed,
                )


class TeeSink:
    """Fan one event stream out to several sinks (checker + recorder).

    Forwards :meth:`deadlock_diagnosis` to the first part that offers
    one, so a tee'd sanitizer still enriches the engine's deadlock
    error.
    """

    def __init__(self, *parts) -> None:
        self.parts = tuple(p for p in parts if p is not None)

    def emit(self, event) -> None:
        for part in self.parts:
            part.emit(event)

    def run_break(self) -> None:
        """Forward run segmentation to any part that understands it."""
        for part in self.parts:
            brk = getattr(part, "run_break", None)
            if brk is not None:
                brk()

    def deadlock_diagnosis(self, engine) -> str:
        for part in self.parts:
            fn = getattr(part, "deadlock_diagnosis", None)
            if fn is not None:
                return fn(engine)
        return ""
