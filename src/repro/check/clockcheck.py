"""Clock-model sanity checks: finite, monotone, slope ≈ 1.

A synchronized global clock is a linear adjustment of a hardware clock
whose skew is parts-per-million; whatever algorithm produced it, its
readings over any window must be finite, non-decreasing (time never
flows backwards on a healthy clock — the paper's Round-Time scheme
*depends* on monotone global clocks for validity windows), and advance
at a rate indistinguishable from true time at the ppm scale.  A fitted
slope far from 1 means the model inverted its fit or mixed up units —
exactly the silent corruption the sanitizer exists to catch.

These checks run *post-hoc* on ground-truth reads (the simulation is
finished), so they cannot perturb results.  Clock-fault scenarios
deliberately break monotonicity (NTP backward steps); callers skip the
checks for faulted domains.
"""

from __future__ import annotations

import math

from repro.check.config import (
    active_check_mode,
    append_report,
    check_report_dir,
)
from repro.check.sanitizer import CheckReport, SanitizerSink, Violation

#: |fitted slope - 1| bound: generous vs the ~1e-5 skews the simulator
#: draws, tiny vs the unit mix-ups it exists to catch.
SLOPE_TOL = 1e-3


def clock_sanity_violations(
    clock,
    t0: float,
    t1: float,
    npoints: int = 64,
    slope_tol: float = SLOPE_TOL,
    rank: int = -1,
) -> list[Violation]:
    """Check one clock over ``[t0, t1]``; returns the violations found."""
    if not t1 > t0:
        raise ValueError(f"need t1 > t0, got [{t0}, {t1}]")
    npoints = max(2, npoints)
    times = [
        t0 + (t1 - t0) * i / (npoints - 1) for i in range(npoints)
    ]
    readings = []
    out: list[Violation] = []
    for t in times:
        r = clock.read(t)
        if not math.isfinite(r):
            out.append(Violation(
                rule="clock-sanity",
                message=f"clock reading at t={t:.9g} is {r!r}",
                time=t, rank=rank,
            ))
            return out
        readings.append(r)
    for (ta, ra), (tb, rb) in zip(
        zip(times, readings), zip(times[1:], readings[1:])
    ):
        if rb < ra:
            out.append(Violation(
                rule="clock-sanity",
                message=(
                    f"clock is non-monotone: read(t={tb:.9g}) = {rb:.9g} "
                    f"< read(t={ta:.9g}) = {ra:.9g}"
                ),
                time=tb, rank=rank,
                details={"earlier": ra, "later": rb},
            ))
            break
    slope = (readings[-1] - readings[0]) / (t1 - t0)
    if abs(slope - 1.0) > slope_tol:
        out.append(Violation(
            rule="clock-sanity",
            message=(
                f"clock slope over [{t0:.9g}, {t1:.9g}] is {slope:.9g} "
                f"(|slope-1| > {slope_tol:g})"
            ),
            time=t0, rank=rank, details={"slope": slope},
        ))
    return out


def assert_clock_sane(
    clock,
    t0: float,
    t1: float,
    npoints: int = 64,
    slope_tol: float = SLOPE_TOL,
    rank: int = -1,
) -> None:
    """Raise :class:`~repro.errors.InvariantViolation` on the first issue."""
    checker = SanitizerSink(mode="strict")
    for v in clock_sanity_violations(
        clock, t0, t1, npoints=npoints, slope_tol=slope_tol, rank=rank
    ):
        checker.violation(
            v.rule, v.message, time=v.time, rank=v.rank, **v.details
        )


def check_global_clock(
    clock,
    t0: float,
    t1: float,
    rank: int = -1,
    label: str = "",
    npoints: int = 64,
    slope_tol: float = SLOPE_TOL,
) -> list[Violation]:
    """Mode-aware clock check for experiment code paths.

    No-op when checking is off; raises in strict mode; in report mode
    appends any violations to the configured report directory (when
    set) and returns them either way.
    """
    mode = active_check_mode()
    if mode is None:
        return []
    violations = clock_sanity_violations(
        clock, t0, t1, npoints=npoints, slope_tol=slope_tol, rank=rank
    )
    if not violations:
        return []
    if mode == "strict":
        checker = SanitizerSink(mode="strict")
        v = violations[0]
        checker.violation(
            v.rule, v.message, time=v.time, rank=v.rank, **v.details
        )
    report = CheckReport(label=label or "clock-check")
    report.violations.extend(violations)
    out_dir = check_report_dir()
    if out_dir is not None:
        append_report(report, out_dir)
    return violations
