"""Simulation sanitizer: runtime invariant checking for the engine.

Attach a :class:`SanitizerSink` to any run (or enable checking
process-wide with :func:`checking` / ``REPRO_CHECK=strict``) and every
engine-level invariant — per-rank time monotonicity, per-channel FIFO
matching, message conservation, block/wake lifecycle, collective
nesting, stats consistency — is verified as the run executes; deadlocks
are diagnosed with the blocked-wait cycle instead of an opaque stall.
``python -m repro.check`` re-checks recorded event streams post-hoc.

See DESIGN.md §11 for the invariant catalog and the mutant suite that
keeps the checker honest.
"""

from repro.check.clockcheck import (
    SLOPE_TOL,
    assert_clock_sane,
    check_global_clock,
    clock_sanity_violations,
)
from repro.check.config import (
    active_check_mode,
    append_report,
    check_report_dir,
    checking,
    load_reports,
    set_check_mode,
    write_aggregate,
)
from repro.check.replay import (
    dump_events,
    event_from_dict,
    event_to_dict,
    load_events,
    replay_events,
    replay_file,
)
from repro.check.sanitizer import (
    MAX_VIOLATIONS,
    CheckReport,
    SanitizerSink,
    TeeSink,
    Violation,
)
from repro.errors import InvariantViolation

__all__ = [
    "CheckReport",
    "InvariantViolation",
    "MAX_VIOLATIONS",
    "SLOPE_TOL",
    "SanitizerSink",
    "TeeSink",
    "Violation",
    "active_check_mode",
    "append_report",
    "assert_clock_sane",
    "check_global_clock",
    "check_report_dir",
    "checking",
    "clock_sanity_violations",
    "dump_events",
    "event_from_dict",
    "event_to_dict",
    "load_events",
    "load_reports",
    "replay_events",
    "replay_file",
    "set_check_mode",
    "write_aggregate",
]
