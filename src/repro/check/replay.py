"""Post-hoc sanitizer replay of a recorded engine event stream.

A run recorded with a :class:`~repro.obs.events.RecordingSink` can be
dumped to JSON lines (:func:`dump_events`) and re-checked later —
possibly on another machine — with ``python -m repro.check run.jsonl``.
Replay exercises every event-stream invariant (monotonicity, FIFO,
conservation, lifecycle, nesting); engine-counter cross-checks need the
live engine and are skipped, with sends still outstanding at stream end
reported as context rather than violations (a stream cannot distinguish
"dropped" from "legitimately unreceived at exit").
"""

from __future__ import annotations

import dataclasses
import json
from typing import Iterable, Iterator

from repro.errors import SimulationError
from repro.obs import events as obs_events
from repro.check.sanitizer import CheckReport, SanitizerSink

#: name -> event class, for the JSON round-trip.
EVENT_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        obs_events.MsgSend,
        obs_events.MsgDeliver,
        obs_events.ProcBlock,
        obs_events.ProcWake,
        obs_events.NicQueue,
        obs_events.FaultInject,
        obs_events.ResyncRound,
        obs_events.CollectiveEnter,
        obs_events.CollectiveExit,
        obs_events.PhaseBegin,
        obs_events.PhaseEnd,
    )
}


def event_to_dict(event) -> dict:
    """One event as a plain dict with a ``type`` discriminator."""
    out = {"type": type(event).__name__}
    out.update(dataclasses.asdict(event))
    return out


def event_from_dict(data: dict):
    """Inverse of :func:`event_to_dict`."""
    payload = dict(data)
    name = payload.pop("type", None)
    try:
        cls = EVENT_TYPES[name]
    except KeyError:
        raise SimulationError(
            f"unknown event type {name!r}; known: {sorted(EVENT_TYPES)}"
        ) from None
    try:
        return cls(**payload)
    except TypeError as exc:
        raise SimulationError(f"bad fields for {name!r}: {exc}") from None


def dump_events(events: Iterable, path) -> int:
    """Write events as JSON lines; returns the number written."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event_to_dict(event), sort_keys=True))
            fh.write("\n")
            n += 1
    return n


def load_events(path) -> Iterator:
    """Yield the events of a JSONL dump in file order."""
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield event_from_dict(json.loads(line))


def replay_events(
    events: Iterable, mode: str = "report", label: str = "replay"
) -> CheckReport:
    """Feed a recorded stream through a fresh sanitizer; returns the report.

    In ``strict`` mode the first violation raises out of the replay.
    """
    checker = SanitizerSink(mode=mode, label=label)
    for event in events:
        checker.emit(event)
    report = checker.finalize()
    if checker._outstanding:
        report.label += (
            f" ({len(checker._outstanding)} send(s) undelivered at "
            f"stream end)"
        )
    return report


def replay_file(
    path, mode: str = "report"
) -> CheckReport:
    """Replay one JSONL event dump (see :func:`dump_events`)."""
    return replay_events(load_events(path), mode=mode, label=str(path))
