"""Process-wide sanitizer activation, shared with worker processes.

Checking is switched on per process tree through two environment
variables (set via :func:`set_check_mode` / the :func:`checking` context
manager, or exported by the caller):

* ``REPRO_CHECK`` — ``strict`` (first violation raises
  :class:`~repro.errors.InvariantViolation`) or ``report`` (violations
  accumulate).
* ``REPRO_CHECK_DIR`` — in report mode, the directory run reports are
  appended to (one JSON line per sanitized run, one file per process so
  parallel campaign workers never contend on a file).

Environment variables — unlike module globals — are inherited by the
:class:`~concurrent.futures.ProcessPoolExecutor` workers the parallel
campaign executor fans jobs out to, which is what makes
``python -m repro.experiments fig3 --jobs 8 --check`` check every
simulated mpirun, wherever it executes.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from typing import Iterator

from repro.check.sanitizer import CheckReport

MODE_ENV = "REPRO_CHECK"
DIR_ENV = "REPRO_CHECK_DIR"

_VALID_MODES = ("strict", "report")


def active_check_mode() -> str | None:
    """The process-wide sanitizer mode, or None when checking is off.

    Unknown values are treated as off (a typo'd ``REPRO_CHECK`` must
    not silently flip every simulation into strict mode).
    """
    mode = os.environ.get(MODE_ENV, "").strip().lower()
    return mode if mode in _VALID_MODES else None


def check_report_dir() -> str | None:
    """The report-append directory, or None when not configured."""
    return os.environ.get(DIR_ENV) or None


def set_check_mode(
    mode: str | None, report_dir: str | None = None
) -> None:
    """Install (or with ``None`` clear) the process-wide check mode."""
    if mode is None:
        os.environ.pop(MODE_ENV, None)
        os.environ.pop(DIR_ENV, None)
        return
    if mode not in _VALID_MODES:
        raise ValueError(f"check mode must be strict/report, got {mode!r}")
    os.environ[MODE_ENV] = mode
    if report_dir is not None:
        os.makedirs(report_dir, exist_ok=True)
        os.environ[DIR_ENV] = report_dir
    else:
        os.environ.pop(DIR_ENV, None)


@contextmanager
def checking(
    mode: str = "strict", report_dir: str | None = None
) -> Iterator[None]:
    """Enable the sanitizer for the block (restores the previous state)."""
    previous = (os.environ.get(MODE_ENV), os.environ.get(DIR_ENV))
    set_check_mode(mode, report_dir)
    try:
        yield
    finally:
        for env, value in zip((MODE_ENV, DIR_ENV), previous):
            if value is None:
                os.environ.pop(env, None)
            else:
                os.environ[env] = value


def append_report(report: CheckReport, report_dir: str) -> str:
    """Append one run's report to the per-process JSONL file."""
    os.makedirs(report_dir, exist_ok=True)
    path = os.path.join(report_dir, f"check-{os.getpid()}.jsonl")
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(report.to_dict(), sort_keys=True) + "\n")
    return path


def load_reports(report_dir: str) -> CheckReport:
    """Aggregate every per-process report file under ``report_dir``."""
    merged = CheckReport(label="aggregate")
    if not os.path.isdir(report_dir):
        return merged
    for name in sorted(os.listdir(report_dir)):
        if not (name.startswith("check-") and name.endswith(".jsonl")):
            continue
        with open(os.path.join(report_dir, name), encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    merged.merge_from(
                        CheckReport.from_dict(json.loads(line))
                    )
    return merged


def write_aggregate(report_dir: str) -> tuple[str, CheckReport]:
    """Merge all run reports in ``report_dir`` into ``check_report.json``."""
    merged = load_reports(report_dir)
    path = os.path.join(report_dir, "check_report.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(merged.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path, merged
