"""Scenario container: an ordered, serializable set of scheduled faults.

A :class:`FaultSchedule` is the unit a :class:`~repro.simmpi.simulation.Simulation`
consumes: a named, deterministic list of faults sorted by start time.
Schedules round-trip through plain dicts and JSON (``to_dict``/
``from_dict``, ``save``/``load``), so scenarios can live in files next
to experiment configs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import ConfigurationError
from repro.faults.model import (
    ClockFrequencyFault,
    ClockStepFault,
    Fault,
    LinkFault,
    NicStormFault,
    StragglerFault,
    fault_from_dict,
)


@dataclass(frozen=True)
class FaultSchedule:
    """A named scenario: faults sorted by (start, kind, target)."""

    name: str
    faults: tuple[Fault, ...] = ()
    description: str = ""

    def __init__(
        self,
        name: str,
        faults: Sequence[Fault] = (),
        description: str = "",
    ) -> None:
        if not name:
            raise ConfigurationError("a fault schedule needs a name")
        ordered = tuple(
            sorted(faults, key=lambda f: (f.start, f.kind, f.target()))
        )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "faults", ordered)
        object.__setattr__(self, "description", description)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.faults)

    def window(self) -> tuple[float, float] | None:
        """``(first start, last end)`` over all faults; None when empty."""
        if not self.faults:
            return None
        return (
            min(f.start for f in self.faults),
            max(f.end for f in self.faults),
        )

    def clock_faults(
        self, node: int
    ) -> list[ClockStepFault | ClockFrequencyFault]:
        """Clock faults that apply to ``node`` (targeted or cluster-wide)."""
        return [
            f
            for f in self.faults
            if isinstance(f, (ClockStepFault, ClockFrequencyFault))
            and (f.node is None or f.node == node)
        ]

    def link_faults(self) -> list[LinkFault]:
        return [f for f in self.faults if isinstance(f, LinkFault)]

    def nic_faults(self) -> list[NicStormFault]:
        return [f for f in self.faults if isinstance(f, NicStormFault)]

    def straggler_faults(self) -> list[StragglerFault]:
        return [f for f in self.faults if isinstance(f, StragglerFault)]

    # ------------------------------------------------------------------
    # Validation against a concrete job
    # ------------------------------------------------------------------
    def validate(
        self,
        num_ranks: int | None = None,
        num_nodes: int | None = None,
        horizon: float | None = None,
    ) -> "FaultSchedule":
        """Reject faults that cannot act on the described job.

        Checks every fault's target against the job shape (``rank`` must
        be < ``num_ranks``, ``node`` < ``num_nodes``, and a link-keyed
        fault's ``src``/``dst`` endpoint ranks must both exist) and its
        start time against the run ``horizon`` — a fault scheduled past
        the end of the run silently never fires, which almost always
        means a mis-scaled scenario.  Raises
        :class:`~repro.errors.ConfigurationError` naming the first
        offending fault; returns ``self`` so calls chain.  ``None``
        bounds skip that check.
        """
        for f in self.faults:
            rank = getattr(f, "rank", None)
            if (
                num_ranks is not None
                and rank is not None
                and not 0 <= rank < num_ranks
            ):
                raise ConfigurationError(
                    f"fault {f.name!r} ({f.kind}) targets rank {rank}, "
                    f"but the job has ranks 0..{num_ranks - 1}"
                )
            if num_ranks is not None:
                # Directed link faults key on a (src, dst) rank pair;
                # both endpoints must exist or the fault never matches.
                for end in ("src", "dst"):
                    endpoint = getattr(f, end, None)
                    if endpoint is not None and not (
                        0 <= endpoint < num_ranks
                    ):
                        raise ConfigurationError(
                            f"fault {f.name!r} ({f.kind}) keys its link "
                            f"{end} to rank {endpoint}, but the job has "
                            f"ranks 0..{num_ranks - 1}"
                        )
            node = getattr(f, "node", None)
            if (
                num_nodes is not None
                and node is not None
                and not 0 <= node < num_nodes
            ):
                raise ConfigurationError(
                    f"fault {f.name!r} ({f.kind}) targets node {node}, "
                    f"but the job has nodes 0..{num_nodes - 1}"
                )
            if horizon is not None and f.start >= horizon:
                raise ConfigurationError(
                    f"fault {f.name!r} ({f.kind}) starts at t={f.start:g}s, "
                    f"at or beyond the run horizon {horizon:g}s — it "
                    f"would never fire"
                )
        return self

    @property
    def has_engine_faults(self) -> bool:
        """Whether any fault needs engine hooks (vs. clock-only wrapping)."""
        return any(
            isinstance(f, (LinkFault, NicStormFault, StragglerFault))
            for f in self.faults
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "faults": [f.to_dict() for f in self.faults],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        try:
            faults = [fault_from_dict(d) for d in data.get("faults", [])]
            return cls(
                name=data["name"],
                faults=faults,
                description=data.get("description", ""),
            )
        except KeyError as exc:
            raise ConfigurationError(
                f"fault schedule dict is missing {exc}"
            ) from None

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path) -> "FaultSchedule":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())
