"""Scenario container: an ordered, serializable set of scheduled faults.

A :class:`FaultSchedule` is the unit a :class:`~repro.simmpi.simulation.Simulation`
consumes: a named, deterministic list of faults sorted by start time.
Schedules round-trip through plain dicts and JSON (``to_dict``/
``from_dict``, ``save``/``load``), so scenarios can live in files next
to experiment configs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import ConfigurationError
from repro.faults.model import (
    ClockFrequencyFault,
    ClockStepFault,
    Fault,
    LinkFault,
    NicStormFault,
    StragglerFault,
    fault_from_dict,
)


@dataclass(frozen=True)
class FaultSchedule:
    """A named scenario: faults sorted by (start, kind, target)."""

    name: str
    faults: tuple[Fault, ...] = ()
    description: str = ""

    def __init__(
        self,
        name: str,
        faults: Sequence[Fault] = (),
        description: str = "",
    ) -> None:
        if not name:
            raise ConfigurationError("a fault schedule needs a name")
        ordered = tuple(
            sorted(faults, key=lambda f: (f.start, f.kind, f.target()))
        )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "faults", ordered)
        object.__setattr__(self, "description", description)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.faults)

    def window(self) -> tuple[float, float] | None:
        """``(first start, last end)`` over all faults; None when empty."""
        if not self.faults:
            return None
        return (
            min(f.start for f in self.faults),
            max(f.end for f in self.faults),
        )

    def clock_faults(
        self, node: int
    ) -> list[ClockStepFault | ClockFrequencyFault]:
        """Clock faults that apply to ``node`` (targeted or cluster-wide)."""
        return [
            f
            for f in self.faults
            if isinstance(f, (ClockStepFault, ClockFrequencyFault))
            and (f.node is None or f.node == node)
        ]

    def link_faults(self) -> list[LinkFault]:
        return [f for f in self.faults if isinstance(f, LinkFault)]

    def nic_faults(self) -> list[NicStormFault]:
        return [f for f in self.faults if isinstance(f, NicStormFault)]

    def straggler_faults(self) -> list[StragglerFault]:
        return [f for f in self.faults if isinstance(f, StragglerFault)]

    @property
    def has_engine_faults(self) -> bool:
        """Whether any fault needs engine hooks (vs. clock-only wrapping)."""
        return any(
            isinstance(f, (LinkFault, NicStormFault, StragglerFault))
            for f in self.faults
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "faults": [f.to_dict() for f in self.faults],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        try:
            faults = [fault_from_dict(d) for d in data.get("faults", [])]
            return cls(
                name=data["name"],
                faults=faults,
                description=data.get("description", ""),
            )
        except KeyError as exc:
            raise ConfigurationError(
                f"fault schedule dict is missing {exc}"
            ) from None

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path) -> "FaultSchedule":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())
