"""Engine-side fault application and clock wrapping.

The :class:`FaultInjector` is the piece the
:class:`~repro.simmpi.engine.Engine` consults on its hot paths: it
perturbs network delay draws (link degradation/congestion bursts),
scales NIC serialization gaps (backlog storms), and stretches compute
durations (stragglers).  All perturbations are pure functions of the
current true time plus draws from the calling process's own seeded RNG
stream, so a scenario + seed reproduces bit-identically.

Clock faults are applied *before* the run, by wrapping each node's
hardware clock via :func:`apply_clock_faults` — the engine never sees
them; processes simply observe stepped/bent readings.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.faults.schedule import FaultSchedule
from repro.obs.events import FaultInject
from repro.simmpi.network import Level
from repro.simtime.hardware import HardwareClock
from repro.simtime.perturb import ExcursionDrift, SteppedClock


def apply_clock_faults(
    clock: HardwareClock, schedule: FaultSchedule, node: int
):
    """Wrap a freshly built node clock with its scheduled clock faults.

    Frequency excursions wrap the clock's drift model (in place — the
    clock must not have been read yet); offset steps wrap the clock
    itself in a :class:`~repro.simtime.perturb.SteppedClock`.  Returns
    the clock to use for ``node`` (the original object when no clock
    fault targets it, preserving shared-time-source identity).
    """
    from repro.faults.model import ClockFrequencyFault, ClockStepFault

    faults = schedule.clock_faults(node)
    windows = [
        (f.start, f.end, f.skew_delta, f.shape)
        for f in faults
        if isinstance(f, ClockFrequencyFault)
    ]
    if windows:
        clock.drift = ExcursionDrift(
            clock.drift, windows, segment_length=clock.segment_length
        )
    steps = [
        (f.start, f.step) for f in faults if isinstance(f, ClockStepFault)
    ]
    if steps:
        return SteppedClock(clock, steps)
    return clock


class FaultInjector:
    """Applies a :class:`FaultSchedule`'s engine-level faults at run time."""

    #: Whether :meth:`perturb_payload` can change payloads.  The engine
    #: only calls the payload hook when this is set, so schedules without
    #: byzantine behaviour (this base class) skip it entirely.
    perturbs_payloads: bool = False

    def __init__(
        self,
        schedule: FaultSchedule,
        node_of: Callable[[int], int] | None = None,
    ) -> None:
        self.schedule = schedule
        self.node_of = node_of or (lambda rank: 0)
        self._links = schedule.link_faults()
        self._storms = schedule.nic_faults()
        self._stragglers = schedule.straggler_faults()
        #: Diagnostics: perturbations actually applied during the run.
        self.delays_perturbed = 0
        self.computes_perturbed = 0

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def schedule_events(self) -> list[FaultInject]:
        """One :class:`FaultInject` record per scheduled fault.

        The schedule is known before the run starts, so fault spans carry
        exact virtual times regardless of when processes observe them.
        """
        records = []
        for f in self.schedule:
            rank = getattr(f, "rank", None)
            records.append(
                FaultInject(
                    time=f.start,
                    rank=rank if rank is not None else -1,
                    kind=f.kind,
                    name=f.name,
                    target=f.target(),
                    duration=f.duration,
                )
            )
        return records

    # ------------------------------------------------------------------
    # Engine hooks (hot paths — all early-out when nothing is active)
    # ------------------------------------------------------------------
    def perturb_delay(
        self,
        time: float,
        level: Level,
        delay: float,
        rng: np.random.Generator,
        *,
        src: int | None = None,
        dst: int | None = None,
    ) -> float:
        """Degrade one network delay draw per the link faults active now.

        ``src``/``dst`` identify the directed message the draw prices
        (the engine supplies them; ack draws travel receiver→sender).
        Directed link faults only match when the pair is known and
        equal; undirected faults behave as before.
        """
        for f in self._links:
            if not f.active(time):
                continue
            if f.level is not None and f.level != level.name:
                continue
            if not f.matches_link(src, dst):
                continue
            delay *= f.latency_factor
            if f.jitter > 0.0:
                delay += rng.exponential(f.jitter)
            if f.outlier_prob > 0.0 and rng.random() < f.outlier_prob:
                delay += rng.exponential(f.outlier_scale)
            self.delays_perturbed += 1
        return delay

    def perturb_payload(
        self,
        time: float,
        src: int,
        dst: int,
        tag: int,
        payload,
        rng: np.random.Generator,
    ):
        """Hook for byzantine payload tampering; identity in the base class.

        The engine calls this just before constructing the message, and
        only when :attr:`perturbs_payloads` is set — plain fault
        schedules never reach it, keeping the unadversarial message path
        (and its RNG stream) untouched.
        """
        return payload

    def nic_gap_factor(self, time: float, node: int) -> float:
        """Multiplier on the NIC serialization gap of ``node`` right now."""
        factor = 1.0
        for f in self._storms:
            if f.active(time) and (f.node is None or f.node == node):
                factor *= f.gap_factor
        return factor

    def perturb_compute(
        self,
        time: float,
        rank: int,
        duration: float,
        rng: np.random.Generator,
    ) -> float:
        """Stretch one compute interval per the stragglers active now."""
        for f in self._stragglers:
            if f.active(time) and f.matches(rank, self.node_of(rank)):
                duration *= f.slowdown
                if f.noise > 0.0:
                    duration += rng.exponential(f.noise)
                self.computes_perturbed += 1
        return duration
