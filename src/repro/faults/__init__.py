"""Fault injection: scheduled clock/network/process perturbations.

The paper bounds the validity of a linear clock model to ~0–20 s
(Section III-C2) and motivates periodic re-synchronization because real
clocks and networks misbehave.  This package provides the controlled
misbehaviour: typed fault events (:mod:`repro.faults.model`), a
deterministic scenario container (:mod:`repro.faults.schedule`), the
engine-side injector (:mod:`repro.faults.injector`), preset scenarios
(:mod:`repro.faults.scenarios`), and a recovery-evaluation harness
(:mod:`repro.faults.evaluate`).

Usage::

    from repro.faults import make_scenario
    from repro.simmpi import Simulation

    sim = Simulation(machine=..., network=..., seed=42,
                     faults=make_scenario("ntp_step"))

Every injection lands at an exact virtual time, is reproducible from the
simulation seed, and is emitted through the :mod:`repro.obs` event
stream so Perfetto traces show fault windows as spans.
"""

from repro.faults.model import (
    ClockFrequencyFault,
    ClockStepFault,
    Fault,
    LinkFault,
    NicStormFault,
    StragglerFault,
    fault_from_dict,
)
from repro.faults.injector import FaultInjector, apply_clock_faults
from repro.faults.schedule import FaultSchedule
from repro.faults.scenarios import SCENARIOS, make_scenario

__all__ = [
    "ClockFrequencyFault",
    "ClockStepFault",
    "Fault",
    "FaultInjector",
    "FaultSchedule",
    "LinkFault",
    "NicStormFault",
    "SCENARIOS",
    "StragglerFault",
    "apply_clock_faults",
    "fault_from_dict",
    "make_scenario",
]
