"""Typed fault events and their dict round-trip.

Each fault is a frozen dataclass with a ``kind`` tag, a ``start`` true
time, a ``duration`` (0 for instantaneous faults), and a target.  The
five kinds mirror the disturbances related work injects to stress sync
algorithms (HyNTP's perturbation rejection, Skewless' frequency steps):

* :class:`ClockStepFault` — NTP-discipline jump of a node clock's reading.
* :class:`ClockFrequencyFault` — windowed skew excursion (thermal ramp)
  wrapped around any :class:`~repro.simtime.drift.DriftModel`.
* :class:`LinkFault` — time-windowed degradation of network delay draws
  (latency multiplier, extra jitter, extra outliers → congestion bursts).
* :class:`NicStormFault` — a node's NIC serialization gap grows, building
  backlog storms on inter-node traffic.
* :class:`StragglerFault` — a rank/node computes slower (plus optional
  exponential OS noise) during the window.

``to_dict``/:func:`fault_from_dict` round-trip every fault through plain
dicts (and therefore JSON) for scenario files.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import ClassVar, Union

from repro.errors import ConfigurationError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class _FaultBase:
    """Shared fields/validation of every fault type."""

    kind: ClassVar[str] = "fault"
    start: float

    def __post_init__(self) -> None:
        _require(self.start >= 0.0, f"fault start must be >= 0: {self}")

    @property
    def duration(self) -> float:
        return 0.0

    @property
    def end(self) -> float:
        """True time at which the fault stops acting."""
        return self.start + self.duration

    def active(self, true_time: float) -> bool:
        """Whether the fault's window covers ``true_time``."""
        return self.start <= true_time < self.end

    def target(self) -> str:
        """Human-readable target descriptor (for obs events)."""
        return "cluster"

    def to_dict(self) -> dict:
        out = {"kind": self.kind}
        out.update(dataclasses.asdict(self))
        return out


@dataclass(frozen=True)
class ClockStepFault(_FaultBase):
    """Instantaneous jump of a node clock's reading (NTP step).

    ``step`` is the jump in seconds (negative = backward step, making
    local time non-monotonic as real NTP steps do).  ``node=None``
    steps every node's clock.
    """

    kind: ClassVar[str] = "clock_step"
    step: float = 0.0
    node: int | None = None
    name: str = "clock_step"

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(self.step != 0.0, "clock step must be non-zero")

    def target(self) -> str:
        return "cluster" if self.node is None else f"node:{self.node}"


@dataclass(frozen=True)
class ClockFrequencyFault(_FaultBase):
    """Windowed oscillator-frequency excursion (thermal event).

    During ``[start, start + length)`` the node clock's skew is shifted
    by up to ``skew_delta`` (dimensionless; 5e-6 = 5 ppm).  ``shape`` is
    ``"flat"`` (sudden plateau) or ``"triangle"`` (thermal ramp up and
    back down).  The excursion wraps whatever drift model the clock
    already has.
    """

    kind: ClassVar[str] = "clock_freq"
    length: float = 0.0
    skew_delta: float = 0.0
    node: int | None = None
    shape: str = "triangle"
    name: str = "clock_freq"

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(self.length > 0.0, "clock_freq length must be > 0")
        _require(self.skew_delta != 0.0, "skew_delta must be non-zero")
        _require(
            self.shape in ("flat", "triangle"),
            f"unknown excursion shape {self.shape!r}",
        )

    @property
    def duration(self) -> float:
        return self.length

    def target(self) -> str:
        return "cluster" if self.node is None else f"node:{self.node}"


@dataclass(frozen=True)
class LinkFault(_FaultBase):
    """Windowed degradation of the network's delay draws.

    Within the window, every delay drawn at a matching topology level is
    multiplied by ``latency_factor``, then gains an exponential jitter
    term of mean ``jitter`` seconds, and with probability
    ``outlier_prob`` an exponential outlier of mean ``outlier_scale``.
    ``level=None`` degrades every level ("the switch is struggling");
    ``level="REMOTE"`` degrades only inter-node traffic.

    ``src``/``dst`` optionally pin the fault to one *directed* rank pair
    (both or neither must be given): only messages sent from rank
    ``src`` to rank ``dst`` are degraded — the shape of a targeted,
    asymmetric delay attack, as opposed to the level-wide congestion the
    ``level`` filter models.  Directed faults compose with ``level``.
    """

    kind: ClassVar[str] = "link"
    length: float = 0.0
    level: str | None = None
    latency_factor: float = 1.0
    jitter: float = 0.0
    outlier_prob: float = 0.0
    outlier_scale: float = 0.0
    src: int | None = None
    dst: int | None = None
    name: str = "link"

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(self.length > 0.0, "link fault length must be > 0")
        _require(self.latency_factor > 0.0, "latency_factor must be > 0")
        _require(self.jitter >= 0.0, "jitter must be >= 0")
        _require(
            0.0 <= self.outlier_prob <= 1.0, "outlier_prob must be in [0, 1]"
        )
        _require(self.outlier_scale >= 0.0, "outlier_scale must be >= 0")
        _require(
            self.latency_factor != 1.0
            or self.jitter > 0.0
            or self.outlier_prob > 0.0,
            "link fault must perturb something",
        )
        _require(
            (self.src is None) == (self.dst is None),
            "a directed link fault needs both src and dst (or neither)",
        )
        if self.src is not None:
            _require(self.src >= 0, "link fault src must be >= 0")
            _require(self.dst >= 0, "link fault dst must be >= 0")
            _require(
                self.src != self.dst,
                "a directed link fault cannot target a self-link",
            )

    @property
    def duration(self) -> float:
        return self.length

    def matches_link(self, src: int | None, dst: int | None) -> bool:
        """Whether the fault applies to the directed message ``src→dst``.

        Undirected faults match everything; directed faults only match
        when the engine supplied the concrete rank pair and it is ours.
        """
        if self.src is None:
            return True
        return src == self.src and dst == self.dst

    def target(self) -> str:
        if self.src is not None:
            return f"link:{self.src}->{self.dst}"
        return "links" if self.level is None else f"level:{self.level}"


@dataclass(frozen=True)
class NicStormFault(_FaultBase):
    """A node NIC's serialization gap grows by ``gap_factor`` (backlog storm).

    Only affects inter-node traffic of networks with ``nic_gap > 0``;
    ``node=None`` hits every NIC (fabric-wide incast).
    """

    kind: ClassVar[str] = "nic_storm"
    length: float = 0.0
    node: int | None = None
    gap_factor: float = 4.0
    name: str = "nic_storm"

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(self.length > 0.0, "nic_storm length must be > 0")
        _require(self.gap_factor > 1.0, "gap_factor must be > 1")

    @property
    def duration(self) -> float:
        return self.length

    def target(self) -> str:
        return "all-nics" if self.node is None else f"node:{self.node}"


@dataclass(frozen=True)
class StragglerFault(_FaultBase):
    """A rank (or a whole node) computes slower during the window.

    Every ``elapse`` of a matching process is multiplied by ``slowdown``
    and gains an exponential noise term of mean ``noise`` seconds —
    injected OS/daemon interference.  Target with ``rank`` or ``node``
    (``rank`` wins if both are given; both ``None`` slows everyone).
    """

    kind: ClassVar[str] = "straggler"
    length: float = 0.0
    rank: int | None = None
    node: int | None = None
    slowdown: float = 1.0
    noise: float = 0.0
    name: str = "straggler"

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(self.length > 0.0, "straggler length must be > 0")
        _require(self.slowdown >= 1.0, "slowdown must be >= 1")
        _require(self.noise >= 0.0, "noise must be >= 0")
        _require(
            self.slowdown > 1.0 or self.noise > 0.0,
            "straggler fault must slow something down",
        )

    @property
    def duration(self) -> float:
        return self.length

    def matches(self, rank: int, node: int) -> bool:
        if self.rank is not None:
            return rank == self.rank
        if self.node is not None:
            return node == self.node
        return True

    def target(self) -> str:
        if self.rank is not None:
            return f"rank:{self.rank}"
        if self.node is not None:
            return f"node:{self.node}"
        return "all-ranks"


Fault = Union[
    ClockStepFault,
    ClockFrequencyFault,
    LinkFault,
    NicStormFault,
    StragglerFault,
]

FAULT_TYPES: dict[str, type] = {
    cls.kind: cls
    for cls in (
        ClockStepFault,
        ClockFrequencyFault,
        LinkFault,
        NicStormFault,
        StragglerFault,
    )
}


def fault_from_dict(data: dict) -> Fault:
    """Reconstruct a fault from its ``to_dict`` form."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    try:
        cls = FAULT_TYPES[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown fault kind {kind!r}; known: {sorted(FAULT_TYPES)}"
        ) from None
    try:
        return cls(**payload)
    except TypeError as exc:
        raise ConfigurationError(f"bad fields for {kind!r}: {exc}") from None
