"""Recovery evaluation: how does a sync scheme ride through a fault?

The harness runs one simulated job through a fault scenario while a
synchronization policy maintains a global clock — either a single
up-front sync (the baseline whose linear model the fault invalidates) or
a :class:`~repro.sync.resync.PeriodicResyncClock` (the paper's
future-work extension).  After the run it samples the *ground-truth*
global-clock error (max spread of the per-rank global clocks, evaluated
through the simulator's oracle clocks) on a regular true-time grid and
aggregates it per phase: **before** the first fault, **during** any
fault window, and **after** the last fault ends.

The headline comparison (:func:`compare_recovery`): after an ``ntp_step``
fault the error stays bounded with periodic resync but jumps and stays
high without it.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.cluster.netmodels import infiniband_qdr
from repro.cluster.topology import Machine
from repro.faults.schedule import FaultSchedule
from repro.parallel import JobSpec, run_jobs
from repro.obs.events import EventSink
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesBank, get_default_timeseries
from repro.simmpi.network import NetworkModel
from repro.simmpi.simulation import Simulation
from repro.simtime.base import Clock
from repro.simtime.sources import CLOCK_GETTIME, TimeSourceSpec
from repro.sync.base import ClockSyncAlgorithm
from repro.sync.hierarchical import h2hca
from repro.sync.resync import PeriodicResyncClock

#: Default time source: drifty enough that staleness matters in tens of
#: seconds (mirrors the fast-drift preset of the resync tests).
FAULTY_TIME = CLOCK_GETTIME.with_(skew_walk_sigma=5e-7)


def default_algorithm() -> ClockSyncAlgorithm:
    """Small H2HCA configuration suited to smoke-scale fault runs."""
    return h2hca(nfitpoints=10, fitpoint_spacing=1e-4)


@dataclass(frozen=True)
class PhaseStats:
    """Error statistics of one evaluation phase (before/during/after)."""

    nsamples: int
    max_error: float
    mean_error: float
    p95_error: float

    @classmethod
    def from_errors(cls, errors: list[float]) -> "PhaseStats":
        if not errors:
            return cls(0, float("nan"), float("nan"), float("nan"))
        arr = np.asarray(errors)
        return cls(
            nsamples=len(errors),
            max_error=float(arr.max()),
            mean_error=float(arr.mean()),
            p95_error=float(np.percentile(arr, 95)),
        )


@dataclass
class RecoveryReport:
    """Outcome of one policy (resync or baseline) through one scenario."""

    scenario: str
    algorithm: str
    #: ``None`` for the sync-once baseline.
    resync_age: float | None
    seed: int
    horizon: float
    sample_interval: float
    #: phase name ("before"/"during"/"after") → error statistics.
    phases: dict[str, PhaseStats] = field(default_factory=dict)
    #: (true_time, max global-clock spread) samples, in time order.
    samples: list[tuple[float, float]] = field(default_factory=list)
    resync_rounds: int = 0
    engine_stats: dict[str, int] = field(default_factory=dict)

    def tail_max(self, fraction: float = 0.25) -> float:
        """Max error over the trailing ``fraction`` of the horizon.

        The tail excludes the immediate post-fault transient (the rounds
        before the next resync lands), so it measures the *recovered*
        steady state.
        """
        cutoff = self.horizon * (1.0 - fraction)
        tail = [err for t, err in self.samples if t >= cutoff]
        return max(tail) if tail else float("nan")

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "algorithm": self.algorithm,
            "resync_age": self.resync_age,
            "seed": self.seed,
            "horizon": self.horizon,
            "resync_rounds": self.resync_rounds,
            "phases": {
                name: vars(stats) for name, stats in self.phases.items()
            },
        }


def _phase_of(t: float, window: tuple[float, float] | None) -> str:
    if window is None:
        return "before"
    start, end = window
    if t < start:
        return "before"
    if t > end:
        return "after"
    return "during"


def run_recovery(
    scenario: FaultSchedule,
    resync_age: float | None,
    algorithm_factory: Callable[[], ClockSyncAlgorithm] = default_algorithm,
    horizon: float = 60.0,
    sample_interval: float = 1.0,
    ensure_interval: float = 2.0,
    num_nodes: int = 4,
    ranks_per_node: int = 2,
    network: NetworkModel | None = None,
    time_source: TimeSourceSpec | None = None,
    seed: int = 0,
    sink: EventSink | None = None,
    metrics: MetricsRegistry | None = None,
    timeseries: TimeSeriesBank | None = None,
    event_queue: str = "calendar",
) -> RecoveryReport:
    """Run one policy through ``scenario`` and score its recovery.

    ``resync_age=None`` syncs once at t≈0 and never again (baseline);
    otherwise each rank holds a :class:`PeriodicResyncClock` with that
    ``max_model_age`` and calls ``ensure`` every ``ensure_interval``
    seconds of simulated time until ``horizon``.

    With a telemetry bank attached (explicitly or via the process-wide
    default), everything the run samples — engine NIC backlog, resync
    markers, and the ground-truth per-rank ``clock.error`` series scored
    below — lands under a ``"resync"``/``"baseline"`` scope so the two
    policies of :func:`compare_recovery` stay separable.
    """
    bank = (
        timeseries if timeseries is not None else get_default_timeseries()
    )
    scope = "resync" if resync_age is not None else "baseline"
    with bank.scoped(scope) if bank is not None else nullcontext():
        return _run_recovery_scoped(
            scenario, resync_age, algorithm_factory, horizon,
            sample_interval, ensure_interval, num_nodes, ranks_per_node,
            network, time_source, seed, sink, metrics, bank, event_queue,
        )


def _run_recovery_scoped(
    scenario, resync_age, algorithm_factory, horizon, sample_interval,
    ensure_interval, num_nodes, ranks_per_node, network, time_source,
    seed, sink, metrics, bank, event_queue,
) -> RecoveryReport:
    machine = Machine(
        num_nodes=num_nodes,
        sockets_per_node=1,
        cores_per_socket=ranks_per_node,
        ranks_per_node=ranks_per_node,
        name="faultbox",
    )
    # Fail fast on scenarios that cannot act on this job — validated
    # here against the *evaluation* horizon (the Simulation re-validates
    # against its much larger hard time limit).
    scenario.validate(
        num_ranks=machine.num_ranks,
        num_nodes=num_nodes,
        horizon=horizon,
    )
    sim = Simulation(
        machine=machine,
        network=network or infiniband_qdr(),
        time_source=time_source or FAULTY_TIME,
        seed=seed,
        faults=scenario,
        sink=sink,
        metrics=metrics,
        timeseries=bank,
        event_queue=event_queue,
    )
    #: rank → [(true time acquired, global clock)], newest last.
    records: dict[int, list[tuple[float, Clock]]] = {}
    resyncs: dict[int, PeriodicResyncClock] = {}
    shared_algorithm = algorithm_factory()  # baseline: one SPMD instance

    def main(ctx, comm):
        recs = records.setdefault(ctx.rank, [])
        if resync_age is None:
            clock = yield from shared_algorithm.sync_clocks(
                comm, ctx.hardware_clock
            )
            recs.append((ctx.now, clock))
            yield from ctx.wait_until_true(horizon)
            return 0
        resync = resyncs.setdefault(
            ctx.rank,
            PeriodicResyncClock(
                algorithm_factory(), max_model_age=resync_age
            ),
        )
        # ensure() is collective, so every rank must make the same
        # number of calls.  A rank-local `ctx.now >= horizon` exit test
        # deadlocks under faults: a straggler's true time is dilated, so
        # it crosses the horizon in fewer iterations than its peers and
        # leaves them blocked inside the next round's bcast.  The trip
        # count is therefore fixed up front (identical to the time-based
        # exit whenever per-round overhead is small vs the interval).
        nsteps = int(np.ceil(horizon / ensure_interval))
        for step in range(nsteps + 1):
            clock = yield from resync.ensure(comm, ctx)
            if not recs or recs[-1][1] is not clock:
                recs.append((ctx.now, clock))
            if step < nsteps:
                yield from ctx.elapse(ensure_interval)
        return resync.resync_count

    result = sim.run(main)
    label = (
        resyncs[0].label() if resync_age is not None
        else shared_algorithm.label()
    )
    report = RecoveryReport(
        scenario=scenario.name,
        algorithm=label,
        resync_age=resync_age,
        seed=seed,
        horizon=horizon,
        sample_interval=sample_interval,
        resync_rounds=max(result.values) if resync_age is not None else 1,
        engine_stats=result.engine_stats,
    )

    # ------------------------------------------------------------------
    # Ground-truth scoring on a regular true-time grid.
    # ------------------------------------------------------------------
    ranks = sorted(records)
    t_ready = max(recs[0][0] for recs in records.values())
    first = int(np.ceil(t_ready / sample_interval)) + 1
    window = scenario.window()
    errors: dict[str, list[float]] = {"before": [], "during": [], "after": []}
    grid = [
        i * sample_interval
        for i in range(first, int(horizon / sample_interval) + 1)
    ]
    ts = np.asarray(grid, dtype=np.float64)
    # Per rank, each acquired clock covers a contiguous slice of the
    # grid (records are in acquisition order), so the whole trajectory
    # resolves in one read_many per (rank, clock) epoch instead of a
    # rank x grid scalar loop.  read_many is pinned bit-identical to
    # per-element read, and the emission order below is unchanged.
    readings = np.empty((len(ranks), len(grid)), dtype=np.float64)
    for row, rank in enumerate(ranks):
        recs = records[rank]
        acquired = np.asarray([a for a, _ in recs], dtype=np.float64)
        active = np.searchsorted(acquired, ts, side="right") - 1
        assert len(grid) == 0 or int(active.min()) >= 0
        for k, (_, clock) in enumerate(recs):
            mask = active == k
            if mask.any():
                readings[row, mask] = clock.read_many(ts[mask])
    for i, t in enumerate(grid):
        col = readings[:, i]
        err = float(col.max()) - float(col.min())
        report.samples.append((t, err))
        errors[_phase_of(t, window)].append(err)
        if bank is not None:
            # Per-rank error against rank 0's global clock (rank 0 vs
            # itself is identically 0, so it is skipped) plus the
            # job-level spread — the series the health detectors scan.
            ref = float(col[0])
            for rank, reading in zip(ranks[1:], col[1:]):
                bank.sample("clock.error", t, float(reading) - ref, rank=rank)
            bank.sample("clock.error.spread", t, err)
    report.phases = {
        name: PhaseStats.from_errors(vals) for name, vals in errors.items()
    }
    return report


def compare_recovery(
    scenario: FaultSchedule,
    resync_age: float = 8.0,
    jobs: int | None = 1,
    **kwargs,
) -> dict[str, RecoveryReport]:
    """Run the same scenario + seed with and without periodic resync.

    The two policy runs are independent simulations; ``jobs>1`` executes
    them on separate worker processes (results are identical to serial —
    each run's randomness is fully determined by its own arguments).
    Explicit ``sink``/``metrics``/``timeseries`` keyword arguments force
    the serial path: they are parent-process objects that workers cannot
    mutate.
    """
    if any(
        kwargs.get(key) is not None
        for key in ("sink", "metrics", "timeseries")
    ):
        jobs = 1
    specs = [
        JobSpec(run_recovery, args=(scenario,),
                kwargs={"resync_age": None, **kwargs}, label="baseline"),
        JobSpec(run_recovery, args=(scenario,),
                kwargs={"resync_age": resync_age, **kwargs}, label="resync"),
    ]
    baseline, resync = run_jobs(specs, jobs=jobs)
    return {"baseline": baseline, "resync": resync}
