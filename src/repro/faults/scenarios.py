"""Preset fault scenarios.

Each factory returns a :class:`~repro.faults.schedule.FaultSchedule`
shaped after a disturbance class from the literature:

* ``ntp_step`` — an NTP daemon steps one node's clock mid-run (the
  discipline jump that instantly invalidates a fitted linear model).
* ``thermal_cycle`` — a machine-room temperature swing bends one node's
  oscillator frequency over tens of seconds (Fig. 2's non-linearity,
  concentrated into a window).
* ``congestion_burst`` — inter-node links suffer a latency/jitter storm
  plus NIC backlog build-up (the outliers that invalidate window-based
  measurement, Section II).
* ``straggler_node`` — one node computes slower with heavy OS noise
  (the imbalance source of Figs. 7–8, but asymmetric).

Factories take explicit times/magnitudes so experiments can scale them;
the defaults fit a 60–120 s evaluation horizon.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.faults.model import (
    ClockFrequencyFault,
    ClockStepFault,
    LinkFault,
    NicStormFault,
    StragglerFault,
)
from repro.faults.schedule import FaultSchedule


def ntp_step(
    at: float = 20.0, step: float = 500e-6, node: int = 1
) -> FaultSchedule:
    """One clock step of ``step`` seconds on ``node`` at true time ``at``."""
    return FaultSchedule(
        name="ntp_step",
        description=(
            f"NTP discipline jump: node {node} clock steps by {step:g}s "
            f"at t={at:g}s"
        ),
        faults=[
            ClockStepFault(start=at, step=step, node=node, name="ntp_step"),
        ],
    )


def thermal_cycle(
    start: float = 15.0,
    length: float = 30.0,
    skew_delta: float = 8e-6,
    node: int = 1,
) -> FaultSchedule:
    """A triangular frequency excursion (thermal ramp) on one node."""
    return FaultSchedule(
        name="thermal_cycle",
        description=(
            f"thermal cycle: node {node} skew ramps by {skew_delta:g} "
            f"over [{start:g}, {start + length:g})s"
        ),
        faults=[
            ClockFrequencyFault(
                start=start,
                length=length,
                skew_delta=skew_delta,
                node=node,
                shape="triangle",
                name="thermal_cycle",
            ),
        ],
    )


def congestion_burst(
    start: float = 20.0,
    length: float = 10.0,
    latency_factor: float = 3.0,
    jitter: float = 20e-6,
    gap_factor: float = 6.0,
) -> FaultSchedule:
    """Inter-node congestion: degraded links plus NIC backlog storms."""
    return FaultSchedule(
        name="congestion_burst",
        description=(
            f"congestion burst on REMOTE links over "
            f"[{start:g}, {start + length:g})s"
        ),
        faults=[
            LinkFault(
                start=start,
                length=length,
                level="REMOTE",
                latency_factor=latency_factor,
                jitter=jitter,
                outlier_prob=0.05,
                outlier_scale=10 * jitter,
                name="congestion_burst",
            ),
            NicStormFault(
                start=start,
                length=length,
                node=None,
                gap_factor=gap_factor,
                name="nic_storm",
            ),
        ],
    )


def straggler_node(
    start: float = 20.0,
    length: float = 15.0,
    node: int = 1,
    slowdown: float = 4.0,
    noise: float = 50e-6,
) -> FaultSchedule:
    """One node's ranks compute ``slowdown``× slower with OS noise."""
    return FaultSchedule(
        name="straggler_node",
        description=(
            f"straggler: node {node} computes {slowdown:g}x slower over "
            f"[{start:g}, {start + length:g})s"
        ),
        faults=[
            StragglerFault(
                start=start,
                length=length,
                node=node,
                slowdown=slowdown,
                noise=noise,
                name="straggler_node",
            ),
        ],
    )


SCENARIOS: dict[str, Callable[..., FaultSchedule]] = {
    "ntp_step": ntp_step,
    "thermal_cycle": thermal_cycle,
    "congestion_burst": congestion_burst,
    "straggler_node": straggler_node,
}


def make_scenario(name: str, **overrides) -> FaultSchedule:
    """Build a preset scenario, optionally overriding factory parameters."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
        ) from None
    return factory(**overrides)
