"""repro.service: clock-as-a-service layer over synced models.

The subsystem turns the simulator's synchronized clocks into a
query-serving surface: compiled model epochs (`epoch`), the cached +
batched `ClockService` (`core`), resync scheduling policies (`slo`),
deterministic client workloads (`workload`), and the end-to-end run
driver (`driver`).  The ``service_slo`` experiment target sweeps resync
policies against an error SLO on top of :func:`run_service`.
"""

from repro.service.core import (
    ClockService,
    ModelProvider,
    ServiceResponse,
    ServiceStats,
)
from repro.service.driver import (
    SERVICE_TIME,
    ServiceConfig,
    ServicePolicyResult,
    SimulatedCluster,
    run_service,
)
from repro.service.epoch import ModelEpoch, compile_epoch
from repro.service.slo import (
    ErrorBoundResyncPolicy,
    PeriodicResyncPolicy,
    ResyncPolicy,
)
from repro.service.workload import (
    OP_COMPARE,
    OP_NOW,
    OP_TRANSLATE,
    BatchingModel,
    QueryStream,
    WorkloadSpec,
    generate,
)

__all__ = [
    "OP_COMPARE",
    "OP_NOW",
    "OP_TRANSLATE",
    "SERVICE_TIME",
    "BatchingModel",
    "ClockService",
    "ErrorBoundResyncPolicy",
    "ModelEpoch",
    "ModelProvider",
    "PeriodicResyncPolicy",
    "QueryStream",
    "ResyncPolicy",
    "ServiceConfig",
    "ServicePolicyResult",
    "ServiceResponse",
    "ServiceStats",
    "SimulatedCluster",
    "WorkloadSpec",
    "compile_epoch",
    "generate",
    "run_service",
]
