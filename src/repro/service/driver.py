"""Service run driver: cluster + sync oracle + workload → measurements.

One :func:`run_service` call is one policy's run: a simulated cluster of
drifting hardware clocks, a sync oracle that fits per-rank linear models
against the reference rank (the paper's offset-measurement + regression
pipeline, evaluated through the simulator's clocks with deterministic
measurement noise), a :class:`~repro.service.core.ClockService` serving
a generated query stream, and a resync policy deciding when the models
are refreshed.

Everything is vectorized per epoch: the queries landing within one sync
generation are answered through one batched model evaluation, their
ground-truth errors are scored against the oracle clocks, and latencies
come from the batching cost model over the full arrival sequence.  The
run is a pure function of ``(policy, config, workload, seed)`` — no
wall-clock value feeds any reported quantity except the ``wall_s``
throughput figure, which never enters ``report.json``.

Observability lands on the process-wide defaults (so the parallel
executor's isolate-and-merge contract applies unchanged): latency and
clock-error histograms plus service counters in the metrics registry,
and per-interval ``service.stale_rate`` / ``clock.error`` /
``service.error_bound`` series with ``resync`` markers in the telemetry
bank — the series the ``stale_read`` health detector scans.

Under an active sanitizer mode (``--check``), each epoch additionally
validates the serving path: batch answers must be bit-identical to the
scalar model arithmetic, and served global time must be monotone per
rank.  Violations raise
:class:`~repro.errors.InvariantViolation` immediately.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from contextlib import nullcontext

from repro.check.config import active_check_mode
from repro.errors import ConfigurationError, InvariantViolation
from repro.obs.metrics import Histogram, get_default_metrics
from repro.obs.timeseries import get_default_timeseries
from repro.prof.core import get_default_profiler
from repro.service.core import ClockService
from repro.service.slo import ResyncPolicy
from repro.service.workload import (
    OP_COMPARE,
    OP_NOW,
    OP_TRANSLATE,
    BatchingModel,
    WorkloadSpec,
    generate,
)
from repro.simtime.hardware import HardwareClock
from repro.simtime.sources import CLOCK_GETTIME, TimeSourceSpec, make_node_clocks
from repro.sync.linear_model import LinearDriftModel

#: Default time source: drifty enough that a 20 s old model matters at a
#: tens-of-microseconds SLO (between the package default and the resync
#: tests' TWITCHY preset).
SERVICE_TIME = CLOCK_GETTIME.with_(skew_walk_sigma=3e-7)


@dataclass(frozen=True)
class ServiceConfig:
    """Cluster + sync-oracle + serving parameters of one run."""

    num_ranks: int = 8
    #: Target clock-error SLO the service reports staleness against.
    slo: float = 25e-6
    time_source: TimeSourceSpec = SERVICE_TIME
    #: Span of the offset-measurement window each fit uses, seconds.
    fit_window: float = 1.0
    #: Offset measurements per fit.
    fit_points: int = 24
    #: Std-dev of per-measurement offset noise, seconds.
    noise: float = 0.3e-6
    #: Request batching cost model.
    batching: BatchingModel = field(default_factory=BatchingModel)
    #: Telemetry bucket width, seconds.
    sample_interval: float = 1.0
    #: Floor on the spacing between sync rounds (guards degenerate
    #: policies from resyncing every batch).
    min_resync_interval: float = 0.25

    def __post_init__(self) -> None:
        if self.num_ranks < 2:
            raise ConfigurationError("num_ranks must be >= 2")
        if self.slo <= 0.0:
            raise ConfigurationError("slo must be > 0")
        if self.fit_window <= 0.0 or self.fit_points < 2:
            raise ConfigurationError(
                "fit_window must be > 0 and fit_points >= 2"
            )
        if self.noise < 0.0:
            raise ConfigurationError("noise must be >= 0")
        if self.sample_interval <= 0.0 or self.min_resync_interval <= 0.0:
            raise ConfigurationError(
                "sample_interval/min_resync_interval must be > 0"
            )


class SimulatedCluster:
    """Drifting per-rank clocks plus a model-fitting sync oracle.

    Implements the service's ``ModelProvider`` surface.  ``sync(t)``
    measures each rank's offset against the reference over the trailing
    fit window (through the simulated clocks, with deterministic
    Gaussian measurement noise) and fits the package's centred
    least-squares :class:`LinearDriftModel` — the same regression the
    MPI sync algorithms run, minus the message-exchange machinery the
    serving path doesn't need.
    """

    def __init__(
        self, config: ServiceConfig, seed: np.random.SeedSequence
    ) -> None:
        clock_seed, noise_seed = seed.spawn(2)
        self.config = config
        self.clocks: list[HardwareClock] = make_node_clocks(
            config.num_ranks,
            config.time_source,
            np.random.default_rng(clock_seed),
        )
        self._noise_rng = np.random.default_rng(noise_seed)
        self.ref_rank = 0
        self.generation = -1
        self.synced_at = float("-inf")
        self.base_error = float("inf")
        self._models: list[LinearDriftModel] = []

    def models(self) -> Sequence[LinearDriftModel]:
        return self._models

    def drifts(self) -> tuple:
        return tuple(clock.drift for clock in self.clocks)

    def sync(self, t: float) -> None:
        """Fit fresh per-rank models from measurements ending at ``t``."""
        cfg = self.config
        ts = np.linspace(t - cfg.fit_window, t, cfg.fit_points)
        ref_readings = self.clocks[self.ref_rank].read_many(ts)
        models: list[LinearDriftModel] = []
        residual = 0.0
        for rank, clock in enumerate(self.clocks):
            if rank == self.ref_rank:
                models.append(LinearDriftModel.ZERO)
                continue
            local = clock.read_many(ts)
            noise = self._noise_rng.normal(0.0, cfg.noise, cfg.fit_points)
            offsets = local - ref_readings + noise
            model = LinearDriftModel.fit(local, offsets)
            models.append(model)
            pred = model.slope * local + model.intercept
            residual = max(residual, float(np.abs(offsets - pred).max()))
        self._models = models
        self.generation += 1
        self.synced_at = float(t)
        self.base_error = residual + self.clocks[self.ref_rank].granularity


@dataclass(frozen=True)
class ServicePolicyResult:
    """One (policy, workload) run's headline numbers (picklable)."""

    policy: str
    workload: str
    slo: float
    num_ranks: int
    duration: float
    queries: int
    syncs: int
    stale_reads: int
    stale_rate: float
    cache_hits: int
    cache_misses: int
    cache_hit_ratio: float
    latency_p50: float
    latency_p99: float
    latency_p999: float
    latency_mean: float
    clock_error_p50: float
    clock_error_p99: float
    clock_error_max: float
    #: True when the p99 served clock error stayed under the SLO.
    slo_met: bool
    #: Simulated-time throughput (queries per simulated second).
    sim_qps: float
    #: Host wall time of the serving loop (volatile — stdout only).
    wall_s: float


def _reads(
    clocks: Sequence[HardwareClock],
    ranks: np.ndarray,
    times: np.ndarray,
    raw: bool = False,
) -> np.ndarray:
    """Per-query clock readings, grouped by rank for batch evaluation."""
    out = np.empty(times.size, dtype=np.float64)
    for rank in np.unique(ranks):
        mask = ranks == rank
        clock = clocks[int(rank)]
        out[mask] = (
            clock.read_raw_many(times[mask]) if raw
            else clock.read_many(times[mask])
        )
    return out


def _check_epoch(
    service: ClockService,
    ops: np.ndarray,
    ranks: np.ndarray,
    ranks2: np.ndarray,
    readings: np.ndarray,
    values: np.ndarray,
    nsample: int = 8,
) -> None:
    """Sanitizer pass: batch answers == scalar model arithmetic."""
    epoch = service.epoch()
    for i in range(min(nsample, values.size)):
        op = int(ops[i])
        if op == OP_NOW:
            expect = epoch.model_for(int(ranks[i])).apply(
                float(readings[i])
            )
        elif op == OP_TRANSLATE:
            ref = epoch.model_for(int(ranks[i])).apply(float(readings[i]))
            expect = epoch.model_for(int(ranks2[i])).apply_inverse(ref)
        else:
            continue  # compare checked via its components above
        if expect != values[i]:
            raise InvariantViolation(
                f"service batch answer diverged from scalar model: "
                f"op={op} rank={ranks[i]} expected {expect!r} "
                f"got {values[i]!r}"
            )
    now_mask = ops == OP_NOW
    for rank in np.unique(ranks[now_mask]):
        served = values[now_mask & (ranks == rank)]
        if served.size >= 2 and np.any(np.diff(served) < 0.0):
            raise InvariantViolation(
                f"served global time is not monotone on rank {rank}"
            )


def run_service(
    policy: ResyncPolicy,
    workload: WorkloadSpec,
    config: ServiceConfig | None = None,
    seed: int = 0,
) -> ServicePolicyResult:
    """Run one policy against one workload; score errors and latencies."""
    config = config or ServiceConfig()
    root = np.random.SeedSequence(seed)
    cluster_seed, workload_seed = root.spawn(2)
    cluster = SimulatedCluster(config, cluster_seed)
    stream = generate(
        workload, config.num_ranks, workload_seed, config.batching
    )
    # Serving starts after the first fit window has history to fit on.
    t_start = config.fit_window
    times = stream.times + t_start
    t_end = t_start + workload.duration
    check_mode = active_check_mode()

    metrics = get_default_metrics()
    bank = get_default_timeseries()
    profiler = get_default_profiler()

    def zone(name: str):
        return profiler.zone(name) if profiler is not None else nullcontext()

    latency_hist = (
        metrics.histogram("service.latency") if metrics is not None
        else Histogram()
    )
    error_hist = (
        metrics.histogram("service.clock_error") if metrics is not None
        else Histogram()
    )

    wall_t0 = time.perf_counter()
    with zone("service.sync"):
        cluster.sync(t_start)
    service = ClockService(cluster, config.slo)

    with zone("service.batching"):
        done, _sizes = config.batching.respond(times)
    latencies = done - times
    errors = np.empty(times.size, dtype=np.float64)
    bounds = np.empty(times.size, dtype=np.float64)
    stale = np.empty(times.size, dtype=bool)

    start = 0
    syncs = 1
    while start < times.size:
        epoch = service.epoch()
        t_next = max(
            policy.next_resync(epoch),
            epoch.synced_at + config.min_resync_interval,
        )
        stop = int(np.searchsorted(times, min(t_next, t_end), side="left"))
        seg = slice(start, stop)
        if stop > start:
            seg_t0 = time.perf_counter_ns()
            seg_times = times[seg]
            seg_ops = stream.ops[seg]
            seg_ranks = stream.ranks[seg]
            seg_ranks2 = stream.ranks2[seg]
            readings = _reads(cluster.clocks, seg_ranks, seg_times)
            seg_values = np.empty(seg_times.size, dtype=np.float64)
            seg_errors = np.empty(seg_times.size, dtype=np.float64)
            seg_bounds = np.empty(seg_times.size, dtype=np.float64)
            seg_stale = np.empty(seg_times.size, dtype=bool)

            m = seg_ops == OP_NOW
            if m.any():
                values, bnd, stl = service.now_batch(
                    seg_ranks[m], readings[m], seg_times[m]
                )
                truth = cluster.clocks[cluster.ref_rank].read_raw_many(
                    seg_times[m]
                )
                seg_values[m] = values
                seg_errors[m] = values - truth
                seg_bounds[m] = bnd
                seg_stale[m] = stl

            m = seg_ops == OP_TRANSLATE
            if m.any():
                values, bnd, stl = service.translate_batch(
                    readings[m], seg_ranks[m], seg_ranks2[m], seg_times[m]
                )
                truth = _reads(
                    cluster.clocks, seg_ranks2[m], seg_times[m], raw=True
                )
                seg_values[m] = values
                seg_errors[m] = values - truth
                seg_bounds[m] = bnd
                seg_stale[m] = stl

            m = seg_ops == OP_COMPARE
            if m.any():
                readings_b = _reads(
                    cluster.clocks, seg_ranks2[m], seg_times[m]
                )
                values, bnd, stl = service.compare_batch(
                    seg_ranks[m], readings[m],
                    seg_ranks2[m], readings_b, seg_times[m],
                )
                # Both events happen at the same true instant, so the
                # ground-truth delta is identically zero.
                seg_values[m] = values
                seg_errors[m] = values
                seg_bounds[m] = bnd
                seg_stale[m] = stl

            if check_mode is not None:
                _check_epoch(
                    service, seg_ops, seg_ranks, seg_ranks2,
                    readings, seg_values,
                )

            errors[seg] = seg_errors
            bounds[seg] = seg_bounds
            stale[seg] = seg_stale
            if profiler is not None:
                profiler.add(
                    "service.serve",
                    time.perf_counter_ns() - seg_t0,
                    count=seg_times.size,
                )
        start = stop
        if t_next >= t_end:
            break
        with zone("service.sync"):
            cluster.sync(t_next)
        syncs += 1
        if profiler is not None:
            profiler.tick("service.resyncs")
        if bank is not None:
            bank.mark("resync", t_next, f"gen{cluster.generation}")

    latency_hist.observe_many(latencies)
    error_hist.observe_many(np.abs(errors))
    wall_s = time.perf_counter() - wall_t0

    # ------------------------------------------------------------------
    # Telemetry + metrics
    # ------------------------------------------------------------------
    stats = service.stats
    if metrics is not None:
        metrics.counter("service.queries").inc(stats.queries)
        metrics.counter("service.stale_reads").inc(stats.stale_served)
        metrics.counter("service.cache.hits").inc(stats.epoch_hits)
        metrics.counter("service.cache.misses").inc(stats.epoch_misses)
        metrics.counter("service.resyncs").inc(syncs)
    if bank is not None and times.size:
        buckets = np.floor(times / config.sample_interval).astype(np.int64)
        base = int(buckets.min())
        counts = np.bincount(buckets - base)
        stale_counts = np.bincount(
            buckets - base, weights=stale.astype(np.float64)
        )
        err_abs = np.abs(errors)
        for b in range(counts.size):
            if counts[b] == 0:
                continue
            t_b = (base + b + 1) * config.sample_interval
            in_bucket = buckets - base == b
            bank.sample(
                "service.stale_rate", t_b,
                float(stale_counts[b] / counts[b]),
            )
            bank.sample(
                "clock.error", t_b, float(err_abs[in_bucket].max())
            )
            bank.sample(
                "service.error_bound", t_b,
                float(bounds[in_bucket].max()),
            )

    err_abs = np.abs(errors)
    quantile = (
        lambda a, q: float(np.quantile(a, q)) if a.size else 0.0
    )
    return ServicePolicyResult(
        policy=policy.label(),
        workload=workload.label(),
        slo=config.slo,
        num_ranks=config.num_ranks,
        duration=workload.duration,
        queries=int(times.size),
        syncs=syncs,
        stale_reads=stats.stale_served,
        stale_rate=stats.stale_rate(),
        cache_hits=stats.epoch_hits,
        cache_misses=stats.epoch_misses,
        cache_hit_ratio=stats.cache_hit_ratio(),
        latency_p50=latency_hist.quantile(0.5),
        latency_p99=latency_hist.quantile(0.99),
        latency_p999=latency_hist.quantile(0.999),
        latency_mean=latency_hist.mean,
        clock_error_p50=quantile(err_abs, 0.5),
        clock_error_p99=quantile(err_abs, 0.99),
        clock_error_max=float(err_abs.max()) if err_abs.size else 0.0,
        slo_met=bool(
            err_abs.size and quantile(err_abs, 0.99) <= config.slo
        ),
        sim_qps=times.size / workload.duration,
        wall_s=wall_s,
    )
