"""Deterministic query workloads for the clock service.

Two client populations, both pure functions of a ``SeedSequence`` child
(the methodology of "MPI Benchmarking Revisited": measurement workloads
must be reproducible to be comparable):

* **open loop** — queries arrive as a Poisson process at a fixed rate,
  regardless of how the service responds (a shared tracing backend fed
  by unrelated jobs).
* **closed loop** — a fixed population of clients, each issuing its next
  query one exponential think time after its previous *response* (an
  interactive consumer).  Response times during generation come from the
  service's batching cost model, so a slow batch really does delay its
  clients' next queries.  Rounds are generated wave-by-wave (vectorized
  over the whole population); the driver recomputes final latencies over
  the merged arrival sequence, so cross-wave window sharing is settled
  globally.

Arrivals are *true* simulation times.  Per-query operation and rank
assignments are drawn from the same seed, so one ``WorkloadSpec`` + seed
fixes the entire query stream bit-for-bit — including across the
``--jobs`` process boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

#: Query operation codes, in ops-mix order.
OP_NOW, OP_TRANSLATE, OP_COMPARE = 0, 1, 2


@dataclass(frozen=True)
class BatchingModel:
    """Deterministic cost model of the service's request batching.

    Queries arriving within one ``window`` are served together at the
    window boundary; a batch of ``B`` queries costs
    ``cost_base + cost_per_query * B`` of service time.  Latency of a
    query is therefore (window remainder) + batch cost — the batching
    trade-off the tail-latency histograms measure.
    """

    window: float = 5e-3
    cost_base: float = 50e-6
    cost_per_query: float = 0.2e-6

    def __post_init__(self) -> None:
        if self.window <= 0.0:
            raise ConfigurationError("window must be > 0")
        if self.cost_base < 0.0 or self.cost_per_query < 0.0:
            raise ConfigurationError("batch costs must be >= 0")

    def respond(
        self, times: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Completion time and batch size for each arrival.

        Pure and vectorized: arrivals map to window indices, window
        populations come from one ``bincount``.
        """
        times = np.asarray(times, dtype=np.float64)
        if times.size == 0:
            return (
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.int64),
            )
        windows = np.floor(times / self.window).astype(np.int64)
        base = int(windows.min())
        sizes = np.bincount(windows - base)[windows - base]
        done = (
            (windows + 1) * self.window
            + self.cost_base
            + self.cost_per_query * sizes
        )
        return done, sizes


@dataclass(frozen=True)
class WorkloadSpec:
    """One client population: arrival process + query shape mix."""

    #: ``"open"`` (rate-driven) or ``"closed"`` (population-driven).
    mode: str = "open"
    #: Length of the generated arrival stream, seconds.
    duration: float = 60.0
    #: Open loop: mean arrivals per second.
    rate: float = 10_000.0
    #: Closed loop: number of concurrent simulated clients.
    clients: int = 100_000
    #: Closed loop: mean think time between response and next query.
    think_time: float = 5.0
    #: Probability of (now, translate, compare) per query.
    ops_mix: tuple[float, float, float] = (0.6, 0.3, 0.1)

    def __post_init__(self) -> None:
        if self.mode not in ("open", "closed"):
            raise ConfigurationError(f"unknown workload mode {self.mode!r}")
        if self.duration <= 0.0:
            raise ConfigurationError("duration must be > 0")
        if self.mode == "open" and self.rate <= 0.0:
            raise ConfigurationError("open-loop rate must be > 0")
        if self.mode == "closed" and (
            self.clients <= 0 or self.think_time <= 0.0
        ):
            raise ConfigurationError(
                "closed loop needs clients > 0 and think_time > 0"
            )
        if len(self.ops_mix) != 3 or not np.isclose(sum(self.ops_mix), 1.0):
            raise ConfigurationError("ops_mix must be 3 weights summing to 1")

    def label(self) -> str:
        if self.mode == "open":
            return f"open[{self.rate:g}/s]"
        return f"closed[{self.clients}c,{self.think_time:g}s]"


@dataclass(frozen=True)
class QueryStream:
    """The generated workload: parallel per-query arrays, time-sorted."""

    #: Arrival true times (sorted, within ``[0, duration)``).
    times: np.ndarray
    #: Operation per query (``OP_NOW``/``OP_TRANSLATE``/``OP_COMPARE``).
    ops: np.ndarray
    #: Primary rank (the client's clock domain).
    ranks: np.ndarray
    #: Secondary rank (translate destination / compare counterpart).
    ranks2: np.ndarray

    def __len__(self) -> int:
        return self.times.size


def _open_arrivals(
    spec: WorkloadSpec, rng: np.random.Generator
) -> np.ndarray:
    """Poisson arrivals over ``[0, duration)``, generated in one draw."""
    times: list[np.ndarray] = []
    last = 0.0
    while last < spec.duration:
        n = max(1024, int(spec.rate * (spec.duration - last) * 1.1))
        gaps = rng.exponential(1.0 / spec.rate, size=n)
        chunk = last + np.cumsum(gaps)
        times.append(chunk)
        last = float(chunk[-1])
    merged = np.concatenate(times)
    return merged[merged < spec.duration]


def _closed_arrivals(
    spec: WorkloadSpec,
    batching: BatchingModel,
    rng: np.random.Generator,
) -> np.ndarray:
    """Wave-based closed loop: think → query → batched response → think."""
    # Staggered start: clients come online over one think period.
    pending = rng.uniform(0.0, spec.think_time, size=spec.clients)
    waves: list[np.ndarray] = []
    while True:
        live = pending[pending < spec.duration]
        if live.size == 0:
            break
        waves.append(live)
        done, _ = batching.respond(live)
        thinks = rng.exponential(spec.think_time, size=pending.size)
        next_pending = np.full(pending.size, np.inf)
        next_pending[pending < spec.duration] = done + thinks[
            : live.size
        ]
        pending = next_pending
    return np.concatenate(waves) if waves else np.empty(0)


def generate(
    spec: WorkloadSpec,
    num_ranks: int,
    seed: np.random.SeedSequence | int,
    batching: BatchingModel | None = None,
) -> QueryStream:
    """Generate the full query stream for one service run.

    Deterministic: the stream is a pure function of ``(spec, num_ranks,
    seed, batching)``.  Closed-loop generation needs the batching model
    to compute the response times its arrivals feed back on.
    """
    if num_ranks < 2:
        raise ConfigurationError("need at least 2 ranks to query across")
    rng = np.random.default_rng(seed)
    if spec.mode == "open":
        times = _open_arrivals(spec, rng)
    else:
        times = _closed_arrivals(spec, batching or BatchingModel(), rng)
    order = np.argsort(times, kind="stable")
    times = times[order]
    n = times.size
    ops = rng.choice(3, size=n, p=np.asarray(spec.ops_mix))
    ranks = rng.integers(0, num_ranks, size=n)
    # Secondary rank, guaranteed distinct from the primary.
    ranks2 = (ranks + 1 + rng.integers(0, num_ranks - 1, size=n)) % num_ranks
    return QueryStream(
        times=times,
        ops=ops.astype(np.int8),
        ranks=ranks.astype(np.int64),
        ranks2=ranks2.astype(np.int64),
    )
