"""``ClockService``: global-clock reads as a cached, batched service.

ROADMAP item 4: the synchronized clock reframed as a consumer-facing
service.  A :class:`ClockService` answers three query shapes against the
latest synced models of a model provider (anything exposing the
:class:`ModelProvider` surface — the service driver's simulated cluster,
or a hand-rolled stub in tests):

* ``now(rank, reading, at)`` — a rank-local timestamp adjusted to the
  estimated global (reference) time,
* ``translate(t, src, dst, at)`` — a timestamp from one rank's clock
  domain re-expressed in another's (the MPI trace-alignment operation),
* ``compare(a, b, at)`` — the global-time delta between two events from
  different clock domains, with a definite-order verdict.

Every response carries the error bound of the paper's accuracy analysis
evaluated at the response's model age, and a ``stale`` flag set when that
bound exceeds the service's SLO.

Two cache layers make the service cheap under load:

* the **epoch cache** compiles the provider's models into a
  :class:`~repro.service.epoch.ModelEpoch` once per sync generation;
  every query until the next resync reuses the compiled arrays (an
  *epoch hit*).  A resync bumps the generation, which invalidates the
  compiled epoch and the answer memo below.
* the **answer memo** caches scalar query results by exact argument
  tuple within the current generation — repeated hot-key queries are
  dictionary lookups, and the memo can never leak an answer across a
  resync boundary (the property test tier pins both halves).

Batch entry points (``now_batch`` et al.) evaluate whole query bursts
through one vectorized model evaluation; their answers are bit-identical
to the scalar path element by element.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.service.epoch import ModelEpoch, compile_epoch
from repro.sync.linear_model import LinearDriftModel


@runtime_checkable
class ModelProvider(Protocol):
    """What the service needs from the sync layer."""

    #: Monotonically increasing sync-round counter.
    generation: int
    #: True time the current models were fitted.
    synced_at: float
    #: Fit residual bound of the current models (seconds).
    base_error: float
    #: Rank whose clock defines reference time.
    ref_rank: int

    def models(self) -> Sequence[LinearDriftModel]:
        """Per-rank models of the current generation."""

    def drifts(self) -> Sequence:
        """Per-rank drift families (``DriftModel`` or rate in s/s)."""


@dataclass(frozen=True)
class ServiceResponse:
    """One answered query: the value plus its staleness contract."""

    value: float
    #: Worst-case |value - truth| at this response's model age.
    error_bound: float
    #: True when ``error_bound`` exceeds the service SLO.
    stale: bool
    #: Sync generation the answer was computed against.
    generation: int


@dataclass
class ServiceStats:
    """Serving-side counters (cache behaviour + staleness accounting)."""

    queries: int = 0
    stale_served: int = 0
    #: Queries served against an already-compiled epoch.
    epoch_hits: int = 0
    #: Epoch compilations (one per sync generation actually queried).
    epoch_misses: int = 0
    #: Scalar answers served straight from the answer memo.
    memo_hits: int = 0
    by_op: dict = field(default_factory=dict)

    def cache_hit_ratio(self) -> float:
        total = self.epoch_hits + self.epoch_misses
        return self.epoch_hits / total if total else 0.0

    def stale_rate(self) -> float:
        return self.stale_served / self.queries if self.queries else 0.0

    def count(self, op: str, n: int, stale: int) -> None:
        self.queries += n
        self.stale_served += stale
        self.by_op[op] = self.by_op.get(op, 0) + n


class ClockService:
    """Serves global-clock queries against a provider's synced models."""

    def __init__(self, provider: ModelProvider, slo: float) -> None:
        if slo <= 0.0:
            raise ValueError("slo must be > 0")
        self.provider = provider
        self.slo = float(slo)
        self.stats = ServiceStats()
        self._epoch: ModelEpoch | None = None
        self._memo: dict[tuple, ServiceResponse] = {}

    # ------------------------------------------------------------------
    # Epoch cache
    # ------------------------------------------------------------------
    def _current_epoch(self) -> tuple[ModelEpoch, bool]:
        """Compiled epoch of the provider's current generation + hit flag.

        Compiles (and drops the stale epoch + answer memo) when the
        provider has resynced since the last query; otherwise the cached
        compile is reused.
        """
        generation = self.provider.generation
        if self._epoch is None or self._epoch.generation != generation:
            self._epoch = compile_epoch(
                generation=generation,
                synced_at=self.provider.synced_at,
                models=self.provider.models(),
                drifts=self.provider.drifts(),
                base_error=self.provider.base_error,
                ref_rank=self.provider.ref_rank,
            )
            self._memo.clear()
            self.stats.epoch_misses += 1
            return self._epoch, True
        return self._epoch, False

    def epoch(self) -> ModelEpoch:
        """The current compiled epoch.

        No *query* accounting, but a compile triggered here still counts
        as an epoch-cache miss (there is exactly one per generation
        touched, wherever the first touch happens).
        """
        return self._current_epoch()[0]

    def _count_epoch(self, compiled: bool, nqueries: int) -> None:
        # The query that triggered a compile is the miss (already
        # counted at compile time); everything else is a hit.
        self.stats.epoch_hits += nqueries - 1 if compiled else nqueries

    # ------------------------------------------------------------------
    # Scalar API (memoized per epoch)
    # ------------------------------------------------------------------
    def _memoized(self, key: tuple, compute) -> ServiceResponse:
        epoch, compiled = self._current_epoch()
        self._count_epoch(compiled, 1)
        cached = self._memo.get(key)
        if cached is not None:
            self.stats.memo_hits += 1
            response = cached
        else:
            response = self._memo[key] = compute(epoch)
        self.stats.count(key[0], 1, int(response.stale))
        return response

    def _bound(self, epoch: ModelEpoch, rank: int, at: float) -> float:
        ages = np.array([at - epoch.synced_at])
        return float(epoch.bounds_for(np.array([rank]), ages)[0])

    def now(self, rank: int, reading: float, at: float) -> ServiceResponse:
        """Estimated global time of a rank-local reading.

        ``at`` is the service time of the request (true seconds), which
        sets the model age — and therefore the bound — of the response.
        """

        def compute(epoch: ModelEpoch) -> ServiceResponse:
            value = epoch.model_for(rank).apply(reading)
            bound = self._bound(epoch, rank, at)
            return ServiceResponse(
                value=value, error_bound=bound,
                stale=bound > self.slo, generation=epoch.generation,
            )

        return self._memoized(("now", rank, reading, at), compute)

    def translate(
        self, t: float, src_rank: int, dst_rank: int, at: float
    ) -> ServiceResponse:
        """A src-local timestamp re-expressed in dst's clock domain."""

        def compute(epoch: ModelEpoch) -> ServiceResponse:
            reference = epoch.model_for(src_rank).apply(t)
            value = epoch.model_for(dst_rank).apply_inverse(reference)
            bound = (
                self._bound(epoch, src_rank, at)
                + self._bound(epoch, dst_rank, at)
            )
            return ServiceResponse(
                value=value, error_bound=bound,
                stale=bound > self.slo, generation=epoch.generation,
            )

        return self._memoized(
            ("translate", t, src_rank, dst_rank, at), compute
        )

    def compare(
        self,
        a: tuple[int, float],
        b: tuple[int, float],
        at: float,
    ) -> ServiceResponse:
        """Global-time delta of two ``(rank, reading)`` events (a - b).

        The response is *stale* when the combined bound exceeds the SLO;
        independently, ``abs(value) > error_bound`` means the ordering is
        definite even in the worst case.
        """

        def compute(epoch: ModelEpoch) -> ServiceResponse:
            rank_a, t_a = a
            rank_b, t_b = b
            value = (
                epoch.model_for(rank_a).apply(t_a)
                - epoch.model_for(rank_b).apply(t_b)
            )
            bound = (
                self._bound(epoch, rank_a, at)
                + self._bound(epoch, rank_b, at)
            )
            return ServiceResponse(
                value=value, error_bound=bound,
                stale=bound > self.slo, generation=epoch.generation,
            )

        return self._memoized(("compare", a, b, at), compute)

    # ------------------------------------------------------------------
    # Batch API (one vectorized model evaluation per burst)
    # ------------------------------------------------------------------
    def now_batch(
        self, ranks: np.ndarray, readings: np.ndarray, at: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`now`: ``(values, bounds, stale)`` arrays."""
        epoch, compiled = self._current_epoch()
        self._count_epoch(compiled, len(readings))
        values = epoch.global_of(ranks, readings)
        bounds = epoch.bounds_for(ranks, np.asarray(at) - epoch.synced_at)
        stale = bounds > self.slo
        self.stats.count("now", len(values), int(stale.sum()))
        return values, bounds, stale

    def translate_batch(
        self,
        readings: np.ndarray,
        src_ranks: np.ndarray,
        dst_ranks: np.ndarray,
        at: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`translate`."""
        epoch, compiled = self._current_epoch()
        self._count_epoch(compiled, len(readings))
        reference = epoch.global_of(src_ranks, readings)
        values = epoch.local_of(dst_ranks, reference)
        ages = np.asarray(at) - epoch.synced_at
        bounds = (
            epoch.bounds_for(src_ranks, ages)
            + epoch.bounds_for(dst_ranks, ages)
        )
        stale = bounds > self.slo
        self.stats.count("translate", len(values), int(stale.sum()))
        return values, bounds, stale

    def compare_batch(
        self,
        ranks_a: np.ndarray,
        readings_a: np.ndarray,
        ranks_b: np.ndarray,
        readings_b: np.ndarray,
        at: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`compare`."""
        epoch, compiled = self._current_epoch()
        self._count_epoch(compiled, len(readings_a))
        values = (
            epoch.global_of(ranks_a, readings_a)
            - epoch.global_of(ranks_b, readings_b)
        )
        ages = np.asarray(at) - epoch.synced_at
        bounds = (
            epoch.bounds_for(ranks_a, ages)
            + epoch.bounds_for(ranks_b, ages)
        )
        stale = bounds > self.slo
        self.stats.count("compare", len(values), int(stale.sum()))
        return values, bounds, stale
