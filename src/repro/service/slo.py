"""Resync scheduling policies for the clock service.

A policy answers one question: given the epoch just installed, *when*
should the cluster resync next?  The ``service_slo`` experiment sweeps
policies against an error SLO to find the cheapest schedule whose p99
clock error stays under it:

* :class:`PeriodicResyncPolicy` — the paper's fixed-age schedule
  (service-side mirror of :class:`~repro.sync.resync.PeriodicResyncClock`).
* :class:`ErrorBoundResyncPolicy` — resync when the *predicted* worst
  per-rank error bound reaches ``margin * slo`` (the service-side mirror
  of :class:`~repro.sync.resync.ErrorBoundResyncClock`); adapts the
  schedule to the drift actually present instead of a worst-case period.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.service.epoch import ModelEpoch


class ResyncPolicy(abc.ABC):
    """Decides the absolute time of the next sync round."""

    @abc.abstractmethod
    def next_resync(self, epoch: ModelEpoch) -> float:
        """True time at which the epoch should be replaced."""

    @abc.abstractmethod
    def label(self) -> str:
        """Human-readable policy tag for sweep tables."""


@dataclass(frozen=True)
class PeriodicResyncPolicy(ResyncPolicy):
    """Fixed model-age schedule: resync every ``period`` seconds."""

    period: float

    def __post_init__(self) -> None:
        if self.period <= 0.0:
            raise ConfigurationError("period must be > 0")

    def next_resync(self, epoch: ModelEpoch) -> float:
        return epoch.synced_at + self.period

    def label(self) -> str:
        return f"periodic[{self.period:g}s]"


@dataclass(frozen=True)
class ErrorBoundResyncPolicy(ResyncPolicy):
    """Resync when the predicted error bound reaches ``margin * slo``.

    The crossing age is found by bisection on the epoch's (monotone
    non-decreasing) worst per-rank bound; drift families whose bound
    never reaches the trigger before ``max_age`` — a constant-drift
    cluster, say — fall back to a ``max_age`` period.
    """

    slo: float
    margin: float = 0.8
    #: Schedule ceiling (and bisection bracket), seconds.
    max_age: float = 300.0

    def __post_init__(self) -> None:
        if self.slo <= 0.0:
            raise ConfigurationError("slo must be > 0")
        if not 0.0 < self.margin <= 1.0:
            raise ConfigurationError("margin must be in (0, 1]")
        if self.max_age <= 0.0:
            raise ConfigurationError("max_age must be > 0")

    def next_resync(self, epoch: ModelEpoch) -> float:
        target = self.margin * self.slo
        if epoch.max_bound(self.max_age) < target:
            return epoch.synced_at + self.max_age
        lo, hi = 0.0, self.max_age
        for _ in range(64):  # deterministic fixed-iteration bisection
            mid = 0.5 * (lo + hi)
            if epoch.max_bound(mid) >= target:
                hi = mid
            else:
                lo = mid
        return epoch.synced_at + hi

    def label(self) -> str:
        return f"errorbound[{self.slo:g}s@{self.margin:g}]"
