"""Compiled model epochs: one sync generation, frozen for serving.

A :class:`ModelEpoch` is the service layer's unit of cache: the per-rank
linear clock models produced by one sync round, compiled into flat numpy
arrays so a burst of queries against the same generation costs one
vectorized model evaluation instead of per-query Python dispatch.

The vectorized evaluators reproduce the scalar
:class:`~repro.sync.linear_model.LinearDriftModel` arithmetic in the same
IEEE-754 operation order (``t - (slope * t + intercept)``), so a batched
answer is bit-identical to the scalar one — the property
``tests/properties/test_property_service.py`` pins.

Per-response staleness comes from the paper's accuracy analysis
(:func:`repro.analysis.accuracy.error_bound`): the bound starts at the
fit's residual error and grows with model age at a rate set by each
rank's drift family.  The reference rank serves its own readings, so its
bound is identically zero; every other rank accumulates both its own and
the reference oscillator's wander.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import SyncError
from repro.simtime.drift import DriftModel
from repro.sync.linear_model import LinearDriftModel


@dataclass(frozen=True, eq=False)
class ModelEpoch:
    """Per-rank clock models of one sync generation, serving-ready."""

    #: Monotonically increasing sync-round counter (cache key).
    generation: int
    #: True time the models were fitted (age reference for staleness).
    synced_at: float
    #: Per-rank ``offset(t) = slope * t + intercept`` model coefficients
    #: (client minus reference, the package-wide sign convention).
    slopes: np.ndarray
    intercepts: np.ndarray
    #: Per-rank drift families (``DriftModel`` or plain rate in s/s) the
    #: staleness bounds are derived from.
    drifts: tuple
    #: Residual/measurement error of the fit itself (seconds).
    base_error: float = 0.0
    #: Rank whose clock defines reference time (its model is identity).
    ref_rank: int = 0
    #: Per-rank ``1 + |slope|`` error-scale factors (precompiled).
    _scale: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        slopes = np.asarray(self.slopes, dtype=np.float64)
        intercepts = np.asarray(self.intercepts, dtype=np.float64)
        if slopes.shape != intercepts.shape or slopes.ndim != 1:
            raise SyncError("slopes/intercepts must be equal-length 1-D")
        if len(self.drifts) != slopes.size:
            raise SyncError("need one drift entry per rank")
        if np.any(np.abs(1.0 - slopes) < 1e-9):
            raise SyncError("a model with slope ~1 is not invertible")
        object.__setattr__(self, "slopes", slopes)
        object.__setattr__(self, "intercepts", intercepts)
        object.__setattr__(self, "_scale", 1.0 + np.abs(slopes))

    @property
    def num_ranks(self) -> int:
        return self.slopes.size

    def model_for(self, rank: int) -> LinearDriftModel:
        """The scalar model of one rank (the uncached reference path)."""
        return LinearDriftModel(
            slope=float(self.slopes[rank]),
            intercept=float(self.intercepts[rank]),
        )

    # ------------------------------------------------------------------
    # Vectorized model evaluation
    # ------------------------------------------------------------------
    def global_of(
        self, ranks: np.ndarray, readings: np.ndarray
    ) -> np.ndarray:
        """Batch ``LinearDriftModel.apply``: local readings → global time.

        Same operation order as the scalar ``t - (slope * t + intercept)``,
        so each element is bit-identical to ``model_for(rank).apply(t)``.
        """
        readings = np.asarray(readings, dtype=np.float64)
        slopes = self.slopes[ranks]
        intercepts = self.intercepts[ranks]
        return readings - (slopes * readings + intercepts)

    def local_of(
        self, ranks: np.ndarray, reference_times: np.ndarray
    ) -> np.ndarray:
        """Batch ``apply_inverse``: global time → local reading per rank."""
        reference_times = np.asarray(reference_times, dtype=np.float64)
        return (
            (reference_times + self.intercepts[ranks])
            / (1.0 - self.slopes[ranks])
        )

    # ------------------------------------------------------------------
    # Staleness bounds
    # ------------------------------------------------------------------
    def _growth(self, rank: int, ages: np.ndarray) -> np.ndarray:
        drift = self.drifts[rank]
        if isinstance(drift, DriftModel):
            return drift.error_growth_many(ages)
        return abs(float(drift)) * np.clip(ages, 0.0, None)

    def bounds_for(
        self, ranks: np.ndarray, ages: np.ndarray
    ) -> np.ndarray:
        """Per-query worst-case error of ``global_of`` at the given ages.

        Non-reference ranks accumulate their own *and* the reference
        oscillator's wander (the fitted slope only froze their relative
        rate at sync time); the reference rank serves its own readings,
        which cannot go stale.
        """
        ranks = np.asarray(ranks)
        ages = np.asarray(ages, dtype=np.float64)
        ref_growth = self._growth(self.ref_rank, ages)
        bounds = np.zeros(ranks.shape, dtype=np.float64)
        for rank in np.unique(ranks):
            if rank == self.ref_rank:
                continue
            mask = ranks == rank
            growth = self._growth(int(rank), ages[mask])
            bounds[mask] = self.base_error + self._scale[rank] * (
                growth + ref_growth[mask]
            )
        return bounds

    def max_bound(self, age: float) -> float:
        """Worst per-rank bound at one age (resync-policy decision input)."""
        ranks = np.arange(self.num_ranks)
        ages = np.full(self.num_ranks, float(age))
        return float(self.bounds_for(ranks, ages).max())


def compile_epoch(
    generation: int,
    synced_at: float,
    models: Sequence[LinearDriftModel],
    drifts: Sequence,
    base_error: float = 0.0,
    ref_rank: int = 0,
) -> ModelEpoch:
    """Flatten per-rank models into a serving-ready :class:`ModelEpoch`."""
    return ModelEpoch(
        generation=generation,
        synced_at=synced_at,
        slopes=np.array([m.slope for m in models], dtype=np.float64),
        intercepts=np.array(
            [m.intercept for m in models], dtype=np.float64
        ),
        drifts=tuple(drifts),
        base_error=float(base_error),
        ref_rank=ref_rank,
    )
