"""Simulated-time substrate: hardware clocks with offset, skew and drift.

This subpackage models the *physical* clocks of a cluster.  Every simulated
process owns a :class:`~repro.simtime.hardware.HardwareClock` that converts
true (simulation) time into the local reading the process would observe via
``clock_gettime``/``gettimeofday``/``MPI_Wtime``.  Clocks are piecewise
linear in true time, which keeps reads O(log segments) and makes the whole
clock stack analytically invertible — a property the discrete-event engine
exploits to implement busy-waits on global-clock deadlines without stepping.
"""

from repro.simtime.base import Clock, SECOND, MILLISECOND, MICROSECOND, NANOSECOND
from repro.simtime.drift import (
    ConstantDrift,
    DriftModel,
    RandomWalkDrift,
    SinusoidalDrift,
)
from repro.simtime.hardware import HardwareClock
from repro.simtime.sources import (
    TimeSourceSpec,
    CLOCK_GETTIME,
    GETTIMEOFDAY,
    MPI_WTIME,
    make_node_clocks,
)

__all__ = [
    "Clock",
    "SECOND",
    "MILLISECOND",
    "MICROSECOND",
    "NANOSECOND",
    "DriftModel",
    "ConstantDrift",
    "RandomWalkDrift",
    "SinusoidalDrift",
    "HardwareClock",
    "TimeSourceSpec",
    "CLOCK_GETTIME",
    "GETTIMEOFDAY",
    "MPI_WTIME",
    "make_node_clocks",
]
