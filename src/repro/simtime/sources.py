"""Time-source presets and clock factories.

The paper contrasts ``clock_gettime`` (monotonic since boot: nanosecond
granularity but enormous cross-node offsets) with ``gettimeofday``
(NTP-disciplined wall clock: microsecond granularity, sub-millisecond
offsets) as time sources for tracing (Fig. 10).  A :class:`TimeSourceSpec`
bundles the distributional parameters from which per-node hardware clocks
are drawn; :func:`make_node_clocks` instantiates one clock per node (cores
on a node share the node clock, matching the machines in Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.simtime.drift import RandomWalkDrift, SinusoidalDrift
from repro.simtime.hardware import HardwareClock


@dataclass(frozen=True)
class TimeSourceSpec:
    """Distribution parameters for a family of hardware clocks.

    Attributes
    ----------
    name:
        Human-readable identifier (``clock_gettime`` ...).
    offset_scale:
        Scale of the initial offset between nodes, in seconds.  Offsets are
        drawn uniformly from ``[0, offset_scale)`` for boot-time-style
        sources and normally with this std-dev for NTP-style sources.
    offset_is_uniform:
        True for monotonic sources (offset = time since boot, strictly
        positive and huge), False for NTP-style zero-mean errors.
    skew_scale:
        Std-dev of the per-node initial skew (dimensionless; 50 ppm = 5e-5).
    skew_walk_sigma:
        Per-segment std-dev of the skew random walk (non-linear drift).
    segment_length:
        Length of constant-rate segments in seconds.
    granularity:
        Timer resolution in seconds.
    read_overhead:
        True-time cost of one timer read in seconds.
    """

    name: str
    offset_scale: float
    offset_is_uniform: bool
    skew_scale: float = 10e-6
    skew_walk_sigma: float = 40e-9
    segment_length: float = 1.0
    granularity: float = 1e-9
    read_overhead: float = 30e-9
    #: "random_walk" (default) or "sinusoidal" (thermal-cycle curvature).
    drift_kind: str = "random_walk"
    #: Sinusoidal drift parameters (ignored for random_walk).
    sinus_amplitude: float = 2e-6
    sinus_period: float = 120.0

    def __post_init__(self) -> None:
        # A negative scale would silently produce nonsense clocks via
        # make_clock (numpy accepts it and flips the distribution's sign).
        if self.offset_scale < 0.0:
            raise ValueError("offset_scale must be >= 0")
        if self.skew_scale < 0.0:
            raise ValueError("skew_scale must be >= 0")
        if self.skew_walk_sigma < 0.0:
            raise ValueError("skew_walk_sigma must be >= 0")
        if self.segment_length <= 0.0:
            raise ValueError("segment_length must be > 0")
        # granularity == 0 is the "infinitely fine timer" used by
        # exact-value tests; anything negative is invalid.
        if self.granularity < 0.0:
            raise ValueError("granularity must be >= 0")
        if self.read_overhead < 0.0:
            raise ValueError("read_overhead must be >= 0")
        if self.sinus_amplitude < 0.0 or self.sinus_period <= 0.0:
            raise ValueError(
                "sinus_amplitude must be >= 0 and sinus_period > 0"
            )

    def with_(self, **kwargs) -> "TimeSourceSpec":
        """Return a copy with some fields replaced."""
        return replace(self, **kwargs)


#: Monotonic clock (CLOCK_MONOTONIC): ns resolution, offsets are the
#: differences between node boot times — tens of thousands of seconds.
CLOCK_GETTIME = TimeSourceSpec(
    name="clock_gettime",
    offset_scale=60_000.0,
    offset_is_uniform=True,
    granularity=1e-9,
    read_overhead=25e-9,
)

#: NTP-disciplined wall clock: µs resolution, offsets within ~200 µs.
GETTIMEOFDAY = TimeSourceSpec(
    name="gettimeofday",
    offset_scale=120e-6,
    offset_is_uniform=False,
    granularity=1e-6,
    read_overhead=30e-9,
)

#: Open MPI's MPI_Wtime maps to the monotonic clock on Linux.
MPI_WTIME = CLOCK_GETTIME.with_(name="MPI_Wtime")


def make_clock(spec: TimeSourceSpec, rng: np.random.Generator) -> HardwareClock:
    """Draw a single hardware clock from ``spec``."""
    if spec.offset_is_uniform:
        offset = float(rng.uniform(0.0, spec.offset_scale))
    else:
        offset = float(rng.normal(0.0, spec.offset_scale))
    initial_skew = float(rng.normal(0.0, spec.skew_scale))
    if spec.drift_kind == "sinusoidal":
        drift: RandomWalkDrift | SinusoidalDrift = SinusoidalDrift(
            mean_skew=initial_skew,
            amplitude=spec.sinus_amplitude,
            period=spec.sinus_period,
            segment_length=spec.segment_length,
            phase=float(rng.uniform(0.0, 2.0 * np.pi)),
        )
    elif spec.drift_kind == "random_walk":
        drift = RandomWalkDrift(
            initial_skew=initial_skew,
            sigma=spec.skew_walk_sigma,
            rng=np.random.default_rng(rng.integers(0, 2**63)),
        )
    else:
        raise ValueError(f"unknown drift_kind {spec.drift_kind!r}")
    return HardwareClock(
        offset=offset,
        drift=drift,
        segment_length=spec.segment_length,
        granularity=spec.granularity,
        read_overhead=spec.read_overhead,
    )


def make_node_clocks(
    num_nodes: int,
    spec: TimeSourceSpec,
    seed: int | np.random.Generator = 0,
) -> list[HardwareClock]:
    """Create one independent hardware clock per compute node.

    All cores of a node share its clock (the common case the paper's
    ClockPropSync exploits); callers that model per-socket time sources
    simply call this once per socket instead.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be > 0")
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    return [make_clock(spec, rng) for _ in range(num_nodes)]
