"""Clock perturbation wrappers: offset steps and frequency excursions.

Real clocks do not merely drift — they get *disciplined*.  An NTP daemon
that decides the local clock is wrong applies a step (a discontinuous
jump of the reading), and a thermal event bends the oscillator frequency
for tens of seconds.  Both effects invalidate a previously fitted linear
clock model instantly, which is exactly what the fault-injection
subsystem (:mod:`repro.faults`) wants to provoke.

Two composable pieces:

* :class:`SteppedClock` wraps any :class:`~repro.simtime.hardware.HardwareClock`
  and adds offset steps at exact true times (forward *or* backward — a
  backward NTP step makes local time non-monotonic, as on real systems).
* :class:`ExcursionDrift` wraps any :class:`~repro.simtime.drift.DriftModel`
  and adds a windowed skew excursion (flat plateau or triangular ramp),
  quantized to the owning clock's segment grid.

Both are deterministic: they draw no randomness and are pure functions
of true time, so a seeded simulation with a fault schedule reproduces
bit-identically.
"""

from __future__ import annotations

import bisect
from typing import Sequence

from repro.errors import ClockError
from repro.simtime.base import Clock, quantize
from repro.simtime.drift import DriftModel
from repro.simtime.hardware import HardwareClock


class SteppedClock(Clock):
    """A hardware clock plus scheduled offset steps (NTP discipline jumps).

    ``steps`` is a sequence of ``(true_time, amount)`` pairs; at each
    ``true_time`` the reading jumps by ``amount`` seconds (positive =
    forward).  Between steps the wrapped clock is read unchanged, so the
    wrapper preserves the inner clock's drift behaviour exactly.
    """

    def __init__(
        self, inner: HardwareClock, steps: Sequence[tuple[float, float]]
    ) -> None:
        if not steps:
            raise ValueError("SteppedClock needs at least one step")
        ordered = sorted((float(t), float(a)) for t, a in steps)
        if ordered[0][0] < 0.0:
            raise ValueError("step times must be >= 0")
        self.inner = inner
        self._times = [t for t, _ in ordered]
        self._amounts = [a for _, a in ordered]
        # _cum[k] = total step applied once the first k steps have fired.
        self._cum = [0.0]
        for a in self._amounts:
            self._cum.append(self._cum[-1] + a)

    # ------------------------------------------------------------------
    # Clock protocol
    # ------------------------------------------------------------------
    @property
    def granularity(self) -> float:
        return self.inner.granularity

    @property
    def read_overhead(self) -> float:
        return self.inner.read_overhead

    def _step_sum(self, true_time: float) -> float:
        """Total offset applied by steps at or before ``true_time``."""
        return self._cum[bisect.bisect_right(self._times, true_time)]

    def read_raw(self, true_time: float) -> float:
        return self.inner.read_raw(true_time) + self._step_sum(true_time)

    def read(self, true_time: float) -> float:
        return quantize(self.read_raw(true_time), self.granularity)

    def invert(self, reading: float) -> float:
        """Earliest true time at which the stepped clock shows ``reading``.

        The mapping is the inner (strictly increasing) clock plus a
        piecewise-constant offset, so each step region can be inverted
        through the inner clock.  A reading skipped by a forward jump
        resolves to the jump instant; a reading repeated because of a
        backward jump resolves to its first occurrence.
        """
        n = len(self._times)
        for k in range(n + 1):
            lo = 0.0 if k == 0 else self._times[k - 1]
            hi = self._times[k] if k < n else float("inf")
            try:
                t = self.inner.invert(reading - self._cum[k])
            except ClockError:
                continue
            if lo <= t < hi:
                return t
        # Not reachable within any region: the reading lies inside a
        # forward jump — the clock attains it exactly at that step time.
        for k in range(n):
            at = self._times[k]
            before = self.inner.read_raw(at) + self._cum[k]
            after = before + self._amounts[k]
            if before <= reading < after:
                return at
        raise ClockError(
            f"reading {reading} is not attained by this stepped clock"
        )

    # ------------------------------------------------------------------
    # HardwareClock-compatible introspection (ground-truth oracles)
    # ------------------------------------------------------------------
    def skew_at(self, true_time: float) -> float:
        """Instantaneous skew (steps do not change the rate)."""
        return self.inner.skew_at(true_time)

    def offset_to(self, other: Clock, true_time: float) -> float:
        """Raw reading difference ``self - other`` at a common true time."""
        other_raw = other.read_raw(true_time)  # type: ignore[attr-defined]
        return self.read_raw(true_time) - other_raw

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        steps = list(zip(self._times, self._amounts))
        return f"SteppedClock(inner={self.inner!r}, steps={steps})"


class ExcursionDrift(DriftModel):
    """Adds windowed skew excursions on top of any :class:`DriftModel`.

    ``windows`` is a sequence of ``(start, end, delta, shape)`` tuples in
    *true seconds*; within ``[start, end)`` the wrapped model's skew is
    shifted by up to ``delta``.  ``shape`` is ``"flat"`` (constant plateau
    — a sudden load/thermal step) or ``"triangle"`` (ramp up to ``delta``
    at the window midpoint and back down — a thermal cycle).  Windows are
    evaluated on the segment grid of the owning clock, so ``segment_length``
    must match the clock's.
    """

    SHAPES = ("flat", "triangle")

    def __init__(
        self,
        inner: DriftModel,
        windows: Sequence[tuple[float, float, float, str]],
        segment_length: float,
    ) -> None:
        if segment_length <= 0.0:
            raise ValueError("segment_length must be > 0")
        for start, end, _delta, shape in windows:
            if start < 0.0 or end <= start:
                raise ValueError(
                    f"excursion window [{start}, {end}) must be non-empty "
                    "and start at >= 0"
                )
            if shape not in self.SHAPES:
                raise ValueError(
                    f"unknown excursion shape {shape!r}; known: {self.SHAPES}"
                )
        self.inner = inner
        self.windows = [
            (float(s), float(e), float(d), shape)
            for s, e, d, shape in windows
        ]
        self.segment_length = float(segment_length)

    def _excursion(self, index: int) -> float:
        """Total skew shift active during segment ``index``."""
        t = (index + 0.5) * self.segment_length  # segment midpoint
        total = 0.0
        for start, end, delta, shape in self.windows:
            if not start <= t < end:
                continue
            if shape == "flat":
                total += delta
            else:  # triangle
                mid = 0.5 * (start + end)
                half = mid - start
                total += delta * (1.0 - abs(t - mid) / half)
        return total

    def skew_for_segment(self, index: int) -> float:
        return self.inner.skew_for_segment(index) + self._excursion(index)

    def excursion_bound(self) -> float:
        # Worst pair of segments: one at the inner model's extreme with
        # every overlapping window pushing one way, the other at the
        # opposite extreme with no window active.  Windows may overlap,
        # so their deltas add.
        return self.inner.excursion_bound() + 2.0 * sum(
            abs(delta) for _s, _e, delta, _shape in self.windows
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExcursionDrift(inner={self.inner!r}, "
            f"windows={self.windows!r})"
        )
