"""Piecewise-linear hardware clocks.

A :class:`HardwareClock` converts true simulation time into the local
reading a process observes.  Within each fixed-length *segment* of true time
the clock runs at a constant rate ``(1 + skew_i)`` supplied by a
:class:`~repro.simtime.drift.DriftModel`; across segments the rate changes,
producing the non-linear long-term drift of Fig. 2 in the paper.

Because the mapping is piecewise linear and strictly increasing, it is
analytically invertible.  The engine uses :meth:`HardwareClock.invert` (and
the affine inverses of the logical-clock layers above it) to translate a
"busy-wait until my global clock reads T" into a single scheduled wake-up.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.errors import ClockError
from repro.simtime.base import Clock, quantize
from repro.simtime.drift import ConstantDrift, DriftModel


class HardwareClock(Clock):
    """A local oscillator with offset, skew, drift, and read granularity.

    Parameters
    ----------
    offset:
        Local reading at true time 0 (seconds).  ``clock_gettime`` offsets
        between nodes can be hours (boot-time differences); ``gettimeofday``
        offsets are sub-millisecond (NTP).
    drift:
        Per-segment skew source.  Defaults to a perfect clock.
    segment_length:
        True-time length of each constant-rate segment (seconds).
    granularity:
        Reading resolution (e.g. 1 ns for ``clock_gettime``).
    read_overhead:
        True-time cost of one timer call, charged by the process context.
    """

    def __init__(
        self,
        offset: float = 0.0,
        drift: DriftModel | None = None,
        segment_length: float = 1.0,
        granularity: float = 0.0,
        read_overhead: float = 0.0,
    ) -> None:
        if segment_length <= 0.0:
            raise ValueError("segment_length must be > 0")
        if granularity < 0.0 or read_overhead < 0.0:
            raise ValueError("granularity/read_overhead must be >= 0")
        self.offset = float(offset)
        self.drift = drift if drift is not None else ConstantDrift(0.0)
        self.segment_length = float(segment_length)
        self._granularity = float(granularity)
        self._read_overhead = float(read_overhead)
        # Cumulative local time at each segment boundary; _local_at[i] is the
        # exact local reading at true time i * segment_length.
        self._local_at: list[float] = [self.offset]
        self._skews: list[float] = []

    # ------------------------------------------------------------------
    # Clock protocol
    # ------------------------------------------------------------------
    @property
    def granularity(self) -> float:
        return self._granularity

    @property
    def read_overhead(self) -> float:
        return self._read_overhead

    def _ensure_segments(self, upto_index: int) -> None:
        """Extend the boundary table so segment ``upto_index`` exists."""
        while len(self._skews) <= upto_index:
            i = len(self._skews)
            skew = self.drift.skew_for_segment(i)
            if not -1.0 < skew < 1.0:
                raise ClockError(f"drift produced skew {skew} outside (-1, 1)")
            self._skews.append(skew)
            self._local_at.append(
                self._local_at[-1] + (1.0 + skew) * self.segment_length
            )

    def read_raw(self, true_time: float) -> float:
        """Exact (un-quantized) local time at ``true_time``."""
        if true_time < 0.0:
            raise ClockError(f"true time must be >= 0, got {true_time}")
        idx = int(true_time / self.segment_length)
        self._ensure_segments(idx)
        t0 = idx * self.segment_length
        return self._local_at[idx] + (1.0 + self._skews[idx]) * (true_time - t0)

    def read(self, true_time: float) -> float:
        return quantize(self.read_raw(true_time), self._granularity)

    def read_raw_many(self, true_times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`read_raw` over an array of true times.

        Bit-identical to a per-element scalar loop: both paths evaluate
        ``local_at[i] + (1 + skew[i]) * (t - i * segment_length)`` in the
        same IEEE-754 double operation order, so batch-serving layers can
        cache and replay answers without drifting from the scalar clock.
        """
        t = np.asarray(true_times, dtype=np.float64)
        if t.size == 0:
            return np.empty(0, dtype=np.float64)
        if float(t.min()) < 0.0:
            raise ClockError(
                f"true time must be >= 0, got {float(t.min())}"
            )
        idx = (t / self.segment_length).astype(np.int64)
        self._ensure_segments(int(idx.max()))
        local_at = np.asarray(self._local_at, dtype=np.float64)[idx]
        skews = np.asarray(self._skews, dtype=np.float64)[idx]
        t0 = idx * self.segment_length
        return local_at + (1.0 + skews) * (t - t0)

    def read_many(self, true_times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`read`: batch raw reads, then quantize.

        ``floor(v / g) * g`` on a float64 array matches the scalar
        :func:`~repro.simtime.base.quantize` bit for bit.
        """
        raw = self.read_raw_many(true_times)
        if self._granularity <= 0.0:
            return raw
        return np.floor(raw / self._granularity) * self._granularity

    def invert(self, reading: float) -> float:
        """True time at which the (raw) local clock shows ``reading``."""
        # Tolerate float round-off from affine layers above (readings can be
        # ~1e5 s, where double precision leaves ~1e-11 s residues).
        epoch = self._local_at[0]
        tolerance = 1e-9 * max(1.0, abs(epoch))
        if reading < epoch:
            if reading >= epoch - tolerance:
                return 0.0
            raise ClockError(
                f"reading {reading} precedes the clock's value at true time 0"
            )
        # Extend segments until the boundary table brackets the reading.
        while self._local_at[-1] <= reading:
            self._ensure_segments(len(self._skews) + 64)
        idx = bisect.bisect_right(self._local_at, reading) - 1
        skew = self._skews[idx]
        t0 = idx * self.segment_length
        return t0 + (reading - self._local_at[idx]) / (1.0 + skew)

    # ------------------------------------------------------------------
    # Introspection helpers (used by drift-analysis experiments)
    # ------------------------------------------------------------------
    def skew_at(self, true_time: float) -> float:
        """The instantaneous skew active at ``true_time``."""
        idx = int(true_time / self.segment_length)
        self._ensure_segments(idx)
        return self._skews[idx]

    def offset_to(self, other: "HardwareClock", true_time: float) -> float:
        """Raw reading difference ``self - other`` at a common true time.

        This is the ground-truth clock offset the synchronization algorithms
        try to estimate; experiments use it to score accuracy.
        """
        return self.read_raw(true_time) - other.read_raw(true_time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HardwareClock(offset={self.offset:g}, drift={self.drift!r}, "
            f"segment_length={self.segment_length:g})"
        )
