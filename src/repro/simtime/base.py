"""Clock protocol and time-unit helpers.

All times in the simulator are ``float`` seconds.  A :class:`Clock` maps
*true* simulation time to a local reading and back.  Both directions must be
strictly monotonic; the synchronization algorithms rely on invertibility to
implement deadline waits analytically.
"""

from __future__ import annotations

import abc

SECOND: float = 1.0
MILLISECOND: float = 1e-3
MICROSECOND: float = 1e-6
NANOSECOND: float = 1e-9


class Clock(abc.ABC):
    """A readable, invertible mapping from true time to local time.

    Concrete clocks are either :class:`~repro.simtime.hardware.HardwareClock`
    (the bottom of every stack) or logical clocks layered on top of another
    clock, e.g. :class:`~repro.sync.clocks.GlobalClockLM`.
    """

    @abc.abstractmethod
    def read(self, true_time: float) -> float:
        """Return the clock's reading at the given true simulation time."""

    @abc.abstractmethod
    def invert(self, reading: float) -> float:
        """Return the true time at which this clock shows ``reading``.

        Raises :class:`~repro.errors.ClockError` if the clock is not
        invertible (e.g. a fitted model with slope >= 1).
        """

    @property
    def granularity(self) -> float:
        """Smallest representable increment of a reading, in seconds."""
        return 0.0

    @property
    def read_overhead(self) -> float:
        """True-time cost a process pays for one read of this clock."""
        return 0.0

    def __call__(self, true_time: float) -> float:
        return self.read(true_time)


def quantize(value: float, granularity: float) -> float:
    """Round ``value`` down to a multiple of ``granularity`` (0 = no-op).

    Timer APIs report a value that has already *passed*, hence floor rather
    than round-to-nearest.
    """
    if granularity <= 0.0:
        return value
    import math

    return math.floor(value / granularity) * granularity
