"""Clock protocol and time-unit helpers.

All times in the simulator are ``float`` seconds.  A :class:`Clock` maps
*true* simulation time to a local reading and back.  Both directions must be
strictly monotonic; the synchronization algorithms rely on invertibility to
implement deadline waits analytically.
"""

from __future__ import annotations

import abc

import numpy as np

SECOND: float = 1.0
MILLISECOND: float = 1e-3
MICROSECOND: float = 1e-6
NANOSECOND: float = 1e-9


class Clock(abc.ABC):
    """A readable, invertible mapping from true time to local time.

    Concrete clocks are either :class:`~repro.simtime.hardware.HardwareClock`
    (the bottom of every stack) or logical clocks layered on top of another
    clock, e.g. :class:`~repro.sync.clocks.GlobalClockLM`.
    """

    @abc.abstractmethod
    def read(self, true_time: float) -> float:
        """Return the clock's reading at the given true simulation time."""

    @abc.abstractmethod
    def invert(self, reading: float) -> float:
        """Return the true time at which this clock shows ``reading``.

        Raises :class:`~repro.errors.ClockError` if the clock is not
        invertible (e.g. a fitted model with slope >= 1).
        """

    def read_many(self, true_times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`read` over an array of true times.

        The default is a scalar loop, so every clock supports the array
        protocol; concrete clocks override it with genuinely vectorized
        paths (:class:`~repro.simtime.hardware.HardwareClock`,
        :class:`~repro.sync.clocks.GlobalClockLM`).  Overrides must stay
        bit-identical to per-element :meth:`read` calls — the telemetry
        grids rely on that to swap loops for array calls freely.
        """
        t = np.asarray(true_times, dtype=np.float64)
        return np.array(
            [self.read(float(v)) for v in t], dtype=np.float64
        )

    @property
    def granularity(self) -> float:
        """Smallest representable increment of a reading, in seconds."""
        return 0.0

    @property
    def read_overhead(self) -> float:
        """True-time cost a process pays for one read of this clock."""
        return 0.0

    def __call__(self, true_time: float) -> float:
        return self.read(true_time)


def quantize(value: float, granularity: float) -> float:
    """Round ``value`` down to a multiple of ``granularity`` (0 = no-op).

    Timer APIs report a value that has already *passed*, hence floor rather
    than round-to-nearest.
    """
    if granularity <= 0.0:
        return value
    import math

    return math.floor(value / granularity) * granularity
