"""Skew/drift generators for simulated hardware clocks.

The *skew* of a clock is the relative frequency error of its oscillator:
a skew of ``+50e-6`` (50 ppm) means the clock gains 50 µs per true second.
Real oscillators are not perfectly stable — temperature and voltage move the
frequency over tens of seconds, which is exactly the non-linearity the paper
observes in Fig. 2 (linear over ~10 s, visibly curved over 500 s).

A :class:`DriftModel` produces the skew for consecutive fixed-length
*segments* of true time.  :class:`~repro.simtime.hardware.HardwareClock`
integrates those per-segment skews into a piecewise-linear local-time curve.
All models are deterministic functions of a `numpy.random.Generator` seeded
at construction, so simulations are reproducible.
"""

from __future__ import annotations

import abc
import math

import numpy as np

#: Typical magnitude of commodity-oscillator skew (dimensionless, 50 ppm).
TYPICAL_SKEW_PPM = 50e-6


class DriftModel(abc.ABC):
    """Produces the oscillator skew for segment ``i`` of a hardware clock."""

    @abc.abstractmethod
    def skew_for_segment(self, index: int) -> float:
        """Return the (dimensionless) skew during segment ``index`` (>= 0).

        Must be deterministic: calling twice with the same index returns the
        same value.  Values must stay in ``(-1, 1)`` so local time remains
        strictly increasing; realistic values are within ±1e-3.
        """


class ConstantDrift(DriftModel):
    """A perfectly stable oscillator with a fixed skew.

    Under constant drift the clock-offset curve of Fig. 2 is an exact line,
    which makes this model the baseline for unit tests and for validating
    the linear-regression machinery (R² == 1).
    """

    def __init__(self, skew: float = 0.0) -> None:
        if not -1.0 < skew < 1.0:
            raise ValueError(f"skew must be in (-1, 1), got {skew}")
        self.skew = float(skew)

    def skew_for_segment(self, index: int) -> float:
        if index < 0:
            raise ValueError("segment index must be >= 0")
        return self.skew

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConstantDrift(skew={self.skew:g})"


class RandomWalkDrift(DriftModel):
    """Skew performs a bounded Gaussian random walk across segments.

    This reproduces the Fig. 2 phenomenology: over a handful of segments the
    skew barely moves (offset curve looks linear, R² > 0.9 over ~10 s), but
    over hundreds of segments the accumulated walk bends the curve.

    The walk is reflected at ``initial_skew ± max_excursion`` so the skew
    cannot run away over very long simulations.
    """

    def __init__(
        self,
        initial_skew: float,
        sigma: float,
        rng: np.random.Generator,
        max_excursion: float = 20e-6,
        max_segments: int = 1 << 20,
    ) -> None:
        if sigma < 0.0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        if max_excursion <= 0.0:
            raise ValueError("max_excursion must be > 0")
        self.initial_skew = float(initial_skew)
        self.sigma = float(sigma)
        self.max_excursion = float(max_excursion)
        self._rng = rng
        self._max_segments = max_segments
        # Lazily extended record of the walk; index i holds segment i's skew.
        self._skews: list[float] = [self.initial_skew]

    def _reflect(self, value: float) -> float:
        lo = self.initial_skew - self.max_excursion
        hi = self.initial_skew + self.max_excursion
        if lo <= value <= hi:
            return value
        span = hi - lo
        # Fold the value back into [lo, hi] (triangle-wave reflection).
        y = (value - lo) % (2.0 * span)
        if y > span:
            y = 2.0 * span - y
        return lo + y

    def skew_for_segment(self, index: int) -> float:
        if index < 0:
            raise ValueError("segment index must be >= 0")
        if index >= self._max_segments:
            raise ValueError(
                f"segment index {index} exceeds max_segments={self._max_segments}"
            )
        while len(self._skews) <= index:
            step = self._rng.normal(0.0, self.sigma)
            self._skews.append(self._reflect(self._skews[-1] + step))
        return self._skews[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RandomWalkDrift(initial_skew={self.initial_skew:g}, "
            f"sigma={self.sigma:g})"
        )


class SinusoidalDrift(DriftModel):
    """Deterministic thermal-style oscillation of the skew.

    Models a machine-room temperature cycle: skew oscillates around a mean
    with a long period (minutes).  Combined with a short observation window
    this is indistinguishable from linear drift; over the full period the
    offset curve is clearly non-linear.  ``segment_length`` must match the
    owning clock's segment length so phase advances at the right rate.
    """

    def __init__(
        self,
        mean_skew: float,
        amplitude: float,
        period: float,
        segment_length: float,
        phase: float = 0.0,
    ) -> None:
        if period <= 0.0:
            raise ValueError("period must be > 0")
        if segment_length <= 0.0:
            raise ValueError("segment_length must be > 0")
        if amplitude < 0.0:
            raise ValueError("amplitude must be >= 0")
        self.mean_skew = float(mean_skew)
        self.amplitude = float(amplitude)
        self.period = float(period)
        self.segment_length = float(segment_length)
        self.phase = float(phase)

    def skew_for_segment(self, index: int) -> float:
        if index < 0:
            raise ValueError("segment index must be >= 0")
        t = (index + 0.5) * self.segment_length
        return self.mean_skew + self.amplitude * math.sin(
            2.0 * math.pi * t / self.period + self.phase
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SinusoidalDrift(mean={self.mean_skew:g}, amp={self.amplitude:g}, "
            f"period={self.period:g})"
        )
