"""Skew/drift generators for simulated hardware clocks.

The *skew* of a clock is the relative frequency error of its oscillator:
a skew of ``+50e-6`` (50 ppm) means the clock gains 50 µs per true second.
Real oscillators are not perfectly stable — temperature and voltage move the
frequency over tens of seconds, which is exactly the non-linearity the paper
observes in Fig. 2 (linear over ~10 s, visibly curved over 500 s).

A :class:`DriftModel` produces the skew for consecutive fixed-length
*segments* of true time.  :class:`~repro.simtime.hardware.HardwareClock`
integrates those per-segment skews into a piecewise-linear local-time curve.
All models are deterministic functions of a `numpy.random.Generator` seeded
at construction, so simulations are reproducible.
"""

from __future__ import annotations

import abc
import math

import numpy as np

#: Typical magnitude of commodity-oscillator skew (dimensionless, 50 ppm).
TYPICAL_SKEW_PPM = 50e-6


class DriftModel(abc.ABC):
    """Produces the oscillator skew for segment ``i`` of a hardware clock."""

    @abc.abstractmethod
    def skew_for_segment(self, index: int) -> float:
        """Return the (dimensionless) skew during segment ``index`` (>= 0).

        Must be deterministic: calling twice with the same index returns the
        same value.  Values must stay in ``(-1, 1)`` so local time remains
        strictly increasing; realistic values are within ±1e-3.
        """

    def excursion_bound(self) -> float:
        """Upper bound on ``|skew(j) - skew(i)|`` over any two segments.

        This is the residual *rate* error a clock model fitted at one
        point in time can accumulate against later: after a perfect
        slope correction, the estimate degrades at most this fast
        (seconds of error per second of age).  Models without a known
        bound return ``inf`` — consumers (staleness bounds, resync
        policies) then fall back to always-stale behaviour rather than
        claiming an accuracy they cannot guarantee.
        """
        return math.inf

    def error_growth(self, age: float) -> float:
        """Bound on accumulated clock error ``age`` seconds after a sync.

        The integral of the skew deviation since the sync instant — the
        paper's per-second accuracy degradation, generalized per drift
        family.  The default integrates the worst case
        (``excursion_bound() * age``); stochastic models override it
        with a tighter high-confidence bound.
        """
        if age <= 0.0:
            return 0.0
        return self.excursion_bound() * age

    def error_growth_many(self, ages: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`error_growth` over an array of ages.

        The batch-serving layer calls this per response; overrides must
        keep the same formula as their scalar ``error_growth``.
        """
        ages = np.clip(np.asarray(ages, dtype=np.float64), 0.0, None)
        return self.excursion_bound() * ages


class ConstantDrift(DriftModel):
    """A perfectly stable oscillator with a fixed skew.

    Under constant drift the clock-offset curve of Fig. 2 is an exact line,
    which makes this model the baseline for unit tests and for validating
    the linear-regression machinery (R² == 1).
    """

    def __init__(self, skew: float = 0.0) -> None:
        if not -1.0 < skew < 1.0:
            raise ValueError(f"skew must be in (-1, 1), got {skew}")
        self.skew = float(skew)

    def skew_for_segment(self, index: int) -> float:
        if index < 0:
            raise ValueError("segment index must be >= 0")
        return self.skew

    def excursion_bound(self) -> float:
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConstantDrift(skew={self.skew:g})"


class RandomWalkDrift(DriftModel):
    """Skew performs a bounded Gaussian random walk across segments.

    This reproduces the Fig. 2 phenomenology: over a handful of segments the
    skew barely moves (offset curve looks linear, R² > 0.9 over ~10 s), but
    over hundreds of segments the accumulated walk bends the curve.

    The walk is reflected at ``initial_skew ± max_excursion`` so the skew
    cannot run away over very long simulations.
    """

    def __init__(
        self,
        initial_skew: float,
        sigma: float,
        rng: np.random.Generator,
        max_excursion: float = 20e-6,
        max_segments: int = 1 << 20,
    ) -> None:
        if sigma < 0.0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        if max_excursion <= 0.0:
            raise ValueError("max_excursion must be > 0")
        self.initial_skew = float(initial_skew)
        self.sigma = float(sigma)
        self.max_excursion = float(max_excursion)
        self._rng = rng
        self._max_segments = max_segments
        # Lazily extended record of the walk; index i holds segment i's skew.
        self._skews: list[float] = [self.initial_skew]

    def _reflect(self, value: float) -> float:
        lo = self.initial_skew - self.max_excursion
        hi = self.initial_skew + self.max_excursion
        if lo <= value <= hi:
            return value
        span = hi - lo
        # Fold the value back into [lo, hi] (triangle-wave reflection).
        y = (value - lo) % (2.0 * span)
        if y > span:
            y = 2.0 * span - y
        return lo + y

    def skew_for_segment(self, index: int) -> float:
        if index < 0:
            raise ValueError("segment index must be >= 0")
        if index >= self._max_segments:
            raise ValueError(
                f"segment index {index} exceeds max_segments={self._max_segments}"
            )
        while len(self._skews) <= index:
            step = self._rng.normal(0.0, self.sigma)
            self._skews.append(self._reflect(self._skews[-1] + step))
        return self._skews[index]

    def excursion_bound(self) -> float:
        # The walk is reflected into initial_skew ± max_excursion, so two
        # segments can differ by at most the full corridor width.
        return 2.0 * self.max_excursion

    def error_growth(self, age: float) -> float:
        """3-sigma bound on the integrated walk, capped by the corridor.

        The skew deviation after ``a`` segments is a random walk with
        per-segment std ``sigma``; its time integral has std
        ``sigma * a^1.5 / sqrt(3)`` (in seconds, at the package-default
        1 s segments).  Three sigmas of that is a high-confidence bound,
        and the reflecting corridor caps the worst case at
        ``2 * max_excursion * a``.
        """
        if age <= 0.0:
            return 0.0
        walk = 3.0 * self.sigma * age ** 1.5 / math.sqrt(3.0)
        return min(walk, self.excursion_bound() * age)

    def error_growth_many(self, ages: np.ndarray) -> np.ndarray:
        ages = np.clip(np.asarray(ages, dtype=np.float64), 0.0, None)
        walk = 3.0 * self.sigma * ages ** 1.5 / math.sqrt(3.0)
        return np.minimum(walk, self.excursion_bound() * ages)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RandomWalkDrift(initial_skew={self.initial_skew:g}, "
            f"sigma={self.sigma:g})"
        )


class SinusoidalDrift(DriftModel):
    """Deterministic thermal-style oscillation of the skew.

    Models a machine-room temperature cycle: skew oscillates around a mean
    with a long period (minutes).  Combined with a short observation window
    this is indistinguishable from linear drift; over the full period the
    offset curve is clearly non-linear.  ``segment_length`` must match the
    owning clock's segment length so phase advances at the right rate.
    """

    def __init__(
        self,
        mean_skew: float,
        amplitude: float,
        period: float,
        segment_length: float,
        phase: float = 0.0,
    ) -> None:
        if period <= 0.0:
            raise ValueError("period must be > 0")
        if segment_length <= 0.0:
            raise ValueError("segment_length must be > 0")
        if amplitude < 0.0:
            raise ValueError("amplitude must be >= 0")
        self.mean_skew = float(mean_skew)
        self.amplitude = float(amplitude)
        self.period = float(period)
        self.segment_length = float(segment_length)
        self.phase = float(phase)

    def skew_for_segment(self, index: int) -> float:
        if index < 0:
            raise ValueError("segment index must be >= 0")
        t = (index + 0.5) * self.segment_length
        return self.mean_skew + self.amplitude * math.sin(
            2.0 * math.pi * t / self.period + self.phase
        )

    def excursion_bound(self) -> float:
        # Peak-to-peak swing of the sinusoid.
        return 2.0 * self.amplitude

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SinusoidalDrift(mean={self.mean_skew:g}, amp={self.amplitude:g}, "
            f"period={self.period:g})"
        )
