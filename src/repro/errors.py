"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  Subclasses distinguish the three layers of
the system: simulated time, the MPI substrate, and the clock-synchronization
layer built on top of them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ClockError(ReproError):
    """Invalid operation on a simulated clock (e.g. non-invertible model)."""


class SimulationError(ReproError):
    """The discrete-event engine detected an inconsistent state."""


class DeadlockError(SimulationError):
    """All processes are blocked and no events remain."""


class InvariantViolation(SimulationError):
    """The simulation sanitizer caught a broken engine-level invariant.

    Raised in strict mode by :mod:`repro.check`; carries the structured
    :class:`~repro.check.sanitizer.Violation` as ``violation`` when one
    is available.
    """

    def __init__(self, message: str, violation=None) -> None:
        super().__init__(message)
        self.violation = violation


class CommunicatorError(SimulationError):
    """Invalid communicator operation (bad rank, mismatched collective...)."""


class MatchingError(SimulationError):
    """Point-to-point matching violated (e.g. truncation, bad wildcard)."""


class SyncError(ReproError):
    """A clock-synchronization algorithm was misused or failed."""


class ConfigurationError(ReproError):
    """Invalid configuration value or unparsable algorithm label."""
