"""Hierarchical wall-time zones for profiling the simulator itself.

"MPI Benchmarking Revisited" (Hunold & Carpen-Amarie) argues that a
performance claim is only as good as its measurement design; this module
points the same rigor at our own event loop.  Before the ROADMAP's
vectorized-kernel rewrite we need to know *where* engine wall time goes
— guessing the bottleneck is exactly the failure mode the paper warns
about.

A :class:`Profiler` maintains a tree of **zones**.  A zone is opened with
:meth:`Profiler.push` / closed with :meth:`Profiler.pop` (the raw API the
engine hot path uses), with the :meth:`Profiler.zone` context manager, or
with the :func:`profiled` decorator.  Zones nest: the tree mirrors the
dynamic call structure of the *thread of execution* — one stack per
profiler, which matches the simulator (one OS thread drives every
simulated process inline).

Two invariants the instrumentation sites must respect:

* **Never hold a zone across a generator ``yield``.**  Simulated
  processes interleave inside the engine loop; a zone spanning a yield
  would interleave other processes' zones into its subtree.  Pure-compute
  sections (model fitting, offset estimation) are safe; anything that
  communicates is attributed through the engine's own zones instead.
* **Profiling must stay passive.**  Zones read ``time.perf_counter_ns``
  and touch nothing else — no RNG draws, no virtual-time changes — so a
  profiled simulation is bit-identical to an unprofiled one (pinned by
  ``tests/prof/test_identity.py``).  With no profiler installed every
  instrumentation site reduces to one pointer comparison, the same
  zero-overhead contract the obs sinks follow.

Like the obs layer, a process-wide default profiler can be installed
(:func:`set_default_profiler` / the :func:`default_profiler` context
manager); the parallel campaign executor runs each job under a fresh
profiler and merges it back (:meth:`Profiler.merge_from`), so ``--jobs N``
attribution covers every simulated mpirun wherever it executed.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator


class Zone:
    """One node of the profile tree: aggregated time for a zone path."""

    __slots__ = ("name", "count", "total_ns", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        #: Times the zone was entered (or samples accounted via ``add``).
        self.count = 0
        #: Inclusive wall time (nanoseconds) spent inside the zone.
        self.total_ns = 0
        self.children: dict[str, Zone] = {}

    def child(self, name: str) -> "Zone":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = Zone(name)
        return node

    def self_ns(self) -> int:
        """Exclusive time: total minus the children's totals (clamped)."""
        return max(0, self.total_ns - sum(
            c.total_ns for c in self.children.values()
        ))

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "total_ns": self.total_ns,
            "children": [
                self.children[k].to_dict() for k in sorted(self.children)
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Zone":
        zone = cls(data["name"])
        zone.count = int(data.get("count", 0))
        zone.total_ns = int(data.get("total_ns", 0))
        for child in data.get("children", ()):
            node = cls.from_dict(child)
            zone.children[node.name] = node
        return zone

    def merge_from(self, other: "Zone") -> None:
        """Fold another zone's counts/times (and subtree) into this one."""
        self.count += other.count
        self.total_ns += other.total_ns
        for name, theirs in other.children.items():
            self.child(name).merge_from(theirs)


class Profiler:
    """Thread-of-execution scoped wall-time zone tree.

    The hot-path API is ``start = prof.push(name)`` / ``prof.pop(start)``
    — two dict probes and two clock reads per zone.  ``zone()`` wraps the
    pair as a context manager for non-hot call sites, and ``add()``
    accounts a pre-measured duration into a *child* of the current zone
    without stack traffic (used for leaf costs like sink emission).
    """

    def __init__(self, clock: Callable[[], int] = time.perf_counter_ns) -> None:
        self.clock = clock
        self.root = Zone("")
        self._stack: list[Zone] = [self.root]

    # ------------------------------------------------------------------
    # Hot-path zone API
    # ------------------------------------------------------------------
    def push(self, name: str) -> int:
        """Open a zone under the current one; returns the start stamp."""
        stack = self._stack
        top = stack[-1]
        node = top.children.get(name)
        if node is None:
            node = top.children[name] = Zone(name)
        stack.append(node)
        return self.clock()

    def pop(self, start: int) -> None:
        """Close the innermost zone opened at ``start``."""
        node = self._stack.pop()
        node.total_ns += self.clock() - start
        node.count += 1

    def add(self, name: str, elapsed_ns: int, count: int = 1) -> None:
        """Account a measured duration to child ``name`` of the current zone."""
        node = self._stack[-1].child(name)
        node.total_ns += elapsed_ns
        node.count += count

    def tick(self, name: str, count: int = 1) -> None:
        """Count an occurrence with no wall time (phase markers)."""
        self._stack[-1].child(name).count += count

    @contextmanager
    def zone(self, name: str) -> Iterator[None]:
        """Context-manager form of push/pop (must not span a yield)."""
        start = self.push(name)
        try:
            yield
        finally:
            self.pop(start)

    @property
    def depth(self) -> int:
        """Current nesting depth (0 == at the root)."""
        return len(self._stack) - 1

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def total_ns(self) -> int:
        """Wall time covered by the top-level zones."""
        return sum(c.total_ns for c in self.root.children.values())

    def walk(self) -> Iterator[tuple[tuple[str, ...], Zone]]:
        """Depth-first ``(path, zone)`` pairs, children in sorted order."""

        def _walk(prefix: tuple[str, ...], zone: Zone):
            for name in sorted(zone.children):
                child = zone.children[name]
                path = prefix + (name,)
                yield path, child
                yield from _walk(path, child)

        yield from _walk((), self.root)

    def find(self, *path: str) -> Zone | None:
        """The zone at ``path`` (root-relative), or None."""
        node = self.root
        for name in path:
            node = node.children.get(name)
            if node is None:
                return None
        return node

    def merge_from(self, other: "Profiler") -> None:
        """Fold another profiler's tree into this one (root-aligned).

        The executor calls this with per-job profilers in submission
        order; zone paths aggregate across jobs so a campaign profile
        shows one tree, not one tree per mpirun.
        """
        self.root.merge_from(other.root)

    def to_dict(self) -> dict[str, Any]:
        return {"zones": [
            self.root.children[k].to_dict() for k in sorted(self.root.children)
        ]}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Profiler":
        prof = cls()
        for child in data.get("zones", ()):
            node = Zone.from_dict(child)
            prof.root.children[node.name] = node
        return prof


def profiled(name: str) -> Callable:
    """Decorator: run the function inside a zone of the default profiler.

    Resolves the default profiler *per call*, so decorated functions are
    free (one None check) while profiling is off and need no re-wiring
    when a profiler is installed mid-process.  Do not use on generator
    functions — the zone would span their yields.
    """

    def deco(fn: Callable) -> Callable:
        def wrapper(*args, **kwargs):
            prof = _default_profiler
            if prof is None:
                return fn(*args, **kwargs)
            start = prof.push(name)
            try:
                return fn(*args, **kwargs)
            finally:
                prof.pop(start)

        wrapper.__name__ = getattr(fn, "__name__", "profiled")
        wrapper.__doc__ = fn.__doc__
        wrapper.__wrapped__ = fn
        return wrapper

    return deco


# ----------------------------------------------------------------------
# Process-wide default (mirrors repro.obs's sink/metrics/timeseries)
# ----------------------------------------------------------------------
_default_profiler: Profiler | None = None


def set_default_profiler(profiler: Profiler | None) -> Profiler | None:
    """Install (or with None clear) the process-wide profiler default."""
    global _default_profiler
    previous = _default_profiler
    _default_profiler = profiler
    return previous


def get_default_profiler() -> Profiler | None:
    """The process-wide profiler, or None when profiling is off."""
    return _default_profiler


@contextmanager
def default_profiler(profiler: Profiler | None) -> Iterator[Profiler | None]:
    """Scoped install of the default profiler (restores the previous one)."""
    previous = set_default_profiler(profiler)
    try:
        yield profiler
    finally:
        set_default_profiler(previous)
