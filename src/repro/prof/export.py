"""Profile exporters: speedscope flamegraph, top-N table, profile.json.

Three views of one :class:`~repro.prof.core.Profiler` tree:

* :func:`speedscope_document` — a speedscope-compatible "evented" profile
  (open in https://www.speedscope.app or via ``speedscope profile.json``).
  The tree holds *aggregated* zone times, not an event log, so the
  exporter synthesizes a canonical timeline: children of a zone are laid
  out back-to-back from the zone's open; the remainder is the zone's
  self time.  The flamegraph therefore shows where wall time went, with
  frame widths exact and ordering canonical rather than chronological.
* :func:`format_table` — a text top-N table ordered by self time, the
  quick-look view the CLI prints.
* :func:`profile_dict` / :func:`write_profile` — the machine-readable
  ``profile.json`` artifact (flat zone list with counts, total and self
  nanoseconds) plus the speedscope file, as written by ``--profile DIR``.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.prof.core import Profiler, Zone

SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"

#: File names written by :func:`write_profile` under the output directory.
PROFILE_JSON = "profile.json"
SPEEDSCOPE_JSON = "profile.speedscope.json"


def _effective_ns(zone: Zone) -> int:
    """Inclusive time consistent with the subtree (children never spill).

    ``add()``-accounted leaf durations can slightly exceed the parent
    zone's own clock reads (they are separate measurements); exports use
    ``max(total, sum(children))`` per zone so self times are never
    negative and subtree sums are exact.
    """
    return max(zone.total_ns, sum(
        _effective_ns(c) for c in zone.children.values()
    ))


def flatten(profiler: Profiler) -> list[dict[str, Any]]:
    """Flat zone rows: path, depth, count, total/self nanoseconds.

    ``total_ns`` is the zone's raw measured inclusive time; ``self_ns``
    is derived from the *effective* totals (see :func:`_effective_ns`),
    so for every subtree ``sum(self_ns) == effective total`` exactly.
    """
    rows = []
    for path, zone in profiler.walk():
        effective = _effective_ns(zone)
        rows.append({
            "path": "/".join(path),
            "name": zone.name,
            "depth": len(path) - 1,
            "count": zone.count,
            "total_ns": zone.total_ns,
            "self_ns": effective - sum(
                _effective_ns(c) for c in zone.children.values()
            ),
        })
    return rows


def total_effective_ns(profiler: Profiler) -> int:
    """Wall time covered by the document: top-level effective totals."""
    return sum(
        _effective_ns(c) for c in profiler.root.children.values()
    )


def profile_dict(
    profiler: Profiler, meta: dict[str, Any] | None = None
) -> dict[str, Any]:
    """The machine-readable ``profile.json`` document.

    ``self_ns`` over all rows sums *exactly* to ``total_ns`` of the
    document, which is what lets the acceptance check "zone self-times
    cover the measured wall time" be evaluated from this artifact alone.
    """
    return {
        "format": "repro-profile",
        "version": 1,
        "unit": "nanoseconds",
        "total_ns": total_effective_ns(profiler),
        "meta": meta or {},
        "zones": flatten(profiler),
    }


def speedscope_document(
    profiler: Profiler, name: str = "repro simulator profile"
) -> dict[str, Any]:
    """Speedscope "evented" profile of the aggregated zone tree."""
    frames: list[dict[str, str]] = []
    frame_index: dict[str, int] = {}

    def frame_of(zone_name: str) -> int:
        idx = frame_index.get(zone_name)
        if idx is None:
            idx = frame_index[zone_name] = len(frames)
            frames.append({"name": zone_name})
        return idx

    events: list[dict[str, Any]] = []

    def emit(zone: Zone, at: int) -> int:
        total = _effective_ns(zone)
        idx = frame_of(zone.name)
        events.append({"type": "O", "frame": idx, "at": at})
        cursor = at
        for child_name in sorted(zone.children):
            cursor = emit(zone.children[child_name], cursor)
        close = at + total
        events.append({"type": "C", "frame": idx, "at": close})
        return close

    cursor = 0
    for top_name in sorted(profiler.root.children):
        cursor = emit(profiler.root.children[top_name], cursor)

    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "name": name,
        "exporter": "repro.prof",
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": [{
            "type": "evented",
            "name": name,
            "unit": "nanoseconds",
            "startValue": 0,
            "endValue": cursor,
            "events": events,
        }],
    }


def format_table(profiler: Profiler, top: int = 15) -> str:
    """Top-``top`` zones by self time, with counts and totals."""
    rows = flatten(profiler)
    grand = total_effective_ns(profiler) or 1
    rows.sort(key=lambda r: (-r["self_ns"], r["path"]))
    lines = [
        f"{'self':>10}  {'%':>6}  {'total':>10}  {'count':>10}  zone",
    ]
    for row in rows[:top]:
        lines.append(
            f"{row['self_ns'] / 1e6:9.2f}ms"
            f"  {100.0 * row['self_ns'] / grand:5.1f}%"
            f"  {row['total_ns'] / 1e6:8.2f}ms"
            f"  {row['count']:>10}"
            f"  {row['path']}"
        )
    covered = sum(r["self_ns"] for r in rows[:top])
    lines.append(
        f"(top {min(top, len(rows))} of {len(rows)} zones cover "
        f"{100.0 * covered / grand:.1f}% of {grand / 1e6:.2f}ms profiled)"
    )
    return "\n".join(lines)


def top_zones(profiler: Profiler, top: int = 5) -> list[dict[str, Any]]:
    """The ``top`` rows by self time (for summaries and bench entries)."""
    rows = flatten(profiler)
    rows.sort(key=lambda r: (-r["self_ns"], r["path"]))
    return rows[:top]


def zone_breakdown(profiler: Profiler, top: int = 12) -> dict[str, Any]:
    """Compact per-zone breakdown embedded in bench trajectory entries."""
    return {
        "total_ns": total_effective_ns(profiler),
        "zones": {
            row["path"]: {
                "count": row["count"],
                "total_ns": row["total_ns"],
                "self_ns": row["self_ns"],
            }
            for row in top_zones(profiler, top)
        },
    }


def write_profile(
    profiler: Profiler,
    out_dir: str,
    meta: dict[str, Any] | None = None,
    name: str = "repro simulator profile",
) -> tuple[str, str]:
    """Write ``profile.json`` + ``profile.speedscope.json`` under a dir."""
    os.makedirs(out_dir, exist_ok=True)
    json_path = os.path.join(out_dir, PROFILE_JSON)
    with open(json_path, "w", encoding="utf-8") as fh:
        json.dump(profile_dict(profiler, meta), fh, indent=2, sort_keys=True)
        fh.write("\n")
    speedscope_path = os.path.join(out_dir, SPEEDSCOPE_JSON)
    with open(speedscope_path, "w", encoding="utf-8") as fh:
        json.dump(speedscope_document(profiler, name), fh, sort_keys=True)
        fh.write("\n")
    return json_path, speedscope_path
