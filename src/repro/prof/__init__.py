"""Simulator self-profiling: hierarchical wall-time zones + exporters.

See :mod:`repro.prof.core` for the zone API and the passivity contract
(profiled runs are bit-identical to unprofiled ones), and
:mod:`repro.prof.export` for the speedscope / table / ``profile.json``
output formats.  ``python -m repro.experiments <target> --profile DIR``
is the main entry point; ``python -m repro.perf.scaling`` uses the same
zones for per-rank-count breakdowns.
"""

from repro.prof.core import (
    Profiler,
    Zone,
    default_profiler,
    get_default_profiler,
    profiled,
    set_default_profiler,
)
from repro.prof.export import (
    flatten,
    format_table,
    profile_dict,
    speedscope_document,
    top_zones,
    total_effective_ns,
    write_profile,
    zone_breakdown,
)

__all__ = [
    "Profiler",
    "Zone",
    "default_profiler",
    "flatten",
    "format_table",
    "get_default_profiler",
    "profile_dict",
    "profiled",
    "set_default_profiler",
    "speedscope_document",
    "top_zones",
    "total_effective_ns",
    "write_profile",
    "zone_breakdown",
]
