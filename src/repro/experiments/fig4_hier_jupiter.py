"""Fig. 4: H2HCA vs flat HCA3 on Jupiter (32×16 in the paper).

Expected shapes: the hierarchical composition reduces the synchronization
time (log #nodes rounds instead of log #procs, minus communicator-creation
overhead) while keeping — or improving — the accuracy of the global clock,
because fewer fitted models means less accumulated model error.
"""

from __future__ import annotations

from repro.cluster.machines import JUPITER
from repro.experiments.common import Scale, SyncCampaignResult
from repro.experiments.hier import format_hier_result, run_hier_campaign


def run(
    scale: str | Scale = "quick", seed: int = 0, jobs: int | None = 1
) -> SyncCampaignResult:
    return run_hier_campaign(JUPITER, scale, seed=seed, jobs=jobs)


def format_result(result: SyncCampaignResult) -> str:
    return format_hier_result(result, "Fig. 4")
