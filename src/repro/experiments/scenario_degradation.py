"""Adversarial degradation tables: scenario presets × sync algorithms.

Not a figure of the paper, but the paper's central claim (hierarchical
synchronization holds clock error at the microsecond level) invites the
adversarial follow-up: *how gracefully does each algorithm family
degrade when the honest-clock and well-behaved-link assumptions break?*
This target runs every scenario preset (:mod:`repro.scenarios`) against
a grid of algorithm labels; each cell runs baseline and adversarial
twins from identical seed streams (:mod:`repro.scenarios.runner`) and
reports the measured max offset ratio plus the ground-truth error the
adversary actually caused (which byzantine lies cannot hide).

Run::

    python -m repro.experiments scenario_degradation --scale quick

The per-cell summaries are deterministic per seed and pinned
byte-for-byte by ``tests/experiments/test_scenario_golden.py``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.parallel import JobSpec, job_seeds, run_jobs, seed_int
from repro.scenarios import PRESETS, make_preset
from repro.scenarios.runner import CellResult, run_scenario_cell

#: Experiment size per scale:
#: (nodes, ranks/node, rounds, nexchanges, labels).
_SCALE = {
    "quick": (
        4, 2, 2, 4,
        (
            "hca/6/skampi_offset/4",
            "jk/6/skampi_offset/4",
        ),
    ),
    "default": (
        8, 2, 3, 8,
        (
            "hca/6/skampi_offset/4",
            "hca2/6/skampi_offset/4",
            "hca3/recompute_intercept/6/skampi_offset/4",
            "jk/6/skampi_offset/4",
            "Top/hca3/6/skampi_offset/4/Bottom/ClockPropagation",
            "clockpropagation",
        ),
    ),
}


@dataclass
class ScenarioDegradationResult:
    """All cells of one preset × label degradation sweep."""

    scale: str
    seed: int
    num_nodes: int
    ranks_per_node: int
    rounds: int
    labels: tuple[str, ...]
    cells: list[CellResult] = field(default_factory=list)

    def cell(self, scenario: str, label: str) -> CellResult:
        for c in self.cells:
            if c.scenario == scenario and c.label == label:
                return c
        raise KeyError(f"no cell ({scenario!r}, {label!r})")


def _cell_job(
    scenario: dict,
    label: str,
    num_nodes: int,
    ranks_per_node: int,
    nexchanges: int,
    rounds: int,
    seed: int,
) -> CellResult:
    """One degradation cell; runs in-process or in a pool worker.

    The scenario travels as its dict form (primitive and picklable);
    the runner reconstructs it, so the job behaves identically wherever
    it executes.
    """
    return run_scenario_cell(
        scenario,
        label,
        num_nodes=num_nodes,
        ranks_per_node=ranks_per_node,
        nexchanges=nexchanges,
        rounds=rounds,
        seed=seed,
    )


def run(
    scale: str = "quick",
    seed: int = 0,
    jobs: int | None = 1,
) -> ScenarioDegradationResult:
    """Run the full preset × label grid; cells fan out over ``jobs``.

    One root seed spawns one child per cell in submission order
    (preset-major), so every cell draws from an independent stream and
    ``jobs=N`` is bit-identical to ``jobs=1``.
    """
    num_nodes, ranks_per_node, rounds, nexchanges, labels = _SCALE[scale]
    presets = sorted(PRESETS)
    result = ScenarioDegradationResult(
        scale=scale,
        seed=seed,
        num_nodes=num_nodes,
        ranks_per_node=ranks_per_node,
        rounds=rounds,
        labels=tuple(labels),
    )
    seeds = job_seeds(seed, len(presets) * len(labels))
    specs: list[JobSpec] = []
    for preset_idx, preset in enumerate(presets):
        scenario = make_preset(preset)
        for label_idx, label in enumerate(labels):
            specs.append(JobSpec(
                fn=_cell_job,
                kwargs=dict(
                    scenario=scenario.to_dict(),
                    label=label,
                    num_nodes=num_nodes,
                    ranks_per_node=ranks_per_node,
                    nexchanges=nexchanges,
                    rounds=rounds,
                    seed=seed_int(
                        seeds[preset_idx * len(labels) + label_idx]
                    ),
                ),
                label=f"{preset}x{label}",
            ))
    result.cells = run_jobs(specs, jobs=jobs)
    return result


def summary(result: ScenarioDegradationResult) -> dict:
    """Canonical, JSON-ready summary (full precision, goldenable)."""
    return {
        "scale": result.scale,
        "seed": result.seed,
        "num_nodes": result.num_nodes,
        "ranks_per_node": result.ranks_per_node,
        "rounds": result.rounds,
        "labels": list(result.labels),
        "cells": [cell.to_dict() for cell in result.cells],
    }


def summary_json(result: ScenarioDegradationResult) -> str:
    """``summary`` as deterministic JSON (sorted keys, LF EOL)."""
    return json.dumps(summary(result), indent=2, sort_keys=True) + "\n"


def format_result(result: ScenarioDegradationResult) -> str:
    """Per-(scenario, algorithm) degradation table."""
    lines = [
        f"Adversarial degradation — {result.num_nodes}x"
        f"{result.ranks_per_node} ranks, {result.rounds} round(s)/cell, "
        f"seed {result.seed}",
        "",
        f"  {'scenario':<18} {'algorithm':<28} {'baseline':>10} "
        f"{'adversarial':>12} {'truth':>10} {'degrade':>8} {'viol':>5}",
    ]
    for cell in result.cells:
        label = (
            cell.label if len(cell.label) <= 28 else cell.label[:25] + "..."
        )
        lines.append(
            f"  {cell.scenario:<18} {label:<28} "
            f"{cell.baseline_max_offset:>10.3g} "
            f"{cell.adversarial_max_offset:>12.3g} "
            f"{cell.ground_truth_error:>10.3g} "
            f"{cell.degradation:>8.3g} "
            f"{len(cell.violations):>5d}"
        )
    worst = max(
        result.cells, key=lambda c: c.degradation, default=None
    )
    if worst is not None:
        lines.append("")
        lines.append(
            f"  worst degradation: {worst.degradation:.3g}x "
            f"({worst.scenario} vs {worst.label})"
        )
    total = sum(len(c.violations) for c in result.cells)
    lines.append(f"  error-budget/sanity violations: {total}")
    return "\n".join(lines)
