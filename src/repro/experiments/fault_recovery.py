"""Fault-recovery experiment: sync under disturbance, with/without resync.

Not a figure of the paper, but a direct consequence of Section III-C2:
the linear clock model is only valid for ~0–20 s, so tracing tools must
re-synchronize periodically — and a faulted clock/network is the extreme
case.  This target injects a preset scenario (:mod:`repro.faults.scenarios`)
into a simulated job and reports the ground-truth global-clock error
before, during, and after the fault, once with a single up-front sync
and once with :class:`~repro.sync.resync.PeriodicResyncClock`.

Run::

    python -m repro.experiments fault_recovery --scale quick \
        --scenario ntp_step

With ``--chrome-trace-dir DIR`` the run is also exported as Chrome trace
JSON whose ``fault`` track shows the injection windows as spans.
"""

from __future__ import annotations

import os

from repro.faults.evaluate import (
    RecoveryReport,
    compare_recovery,
    run_recovery,
)
from repro.faults.scenarios import make_scenario
from repro.obs.chrome_trace import export_chrome_trace
from repro.obs.events import FaultInject, RecordingSink, ResyncRound

#: Experiment size per scale: (nodes, ranks/node, horizon s, resync age s).
_SCALE = {
    "quick": (4, 2, 50.0, 8.0),
    "default": (8, 4, 120.0, 10.0),
}

DEFAULT_SCENARIO = "ntp_step"


def run(
    scale: str = "quick",
    seed: int = 0,
    scenario: str = DEFAULT_SCENARIO,
    jobs: int | None = 1,
) -> dict[str, RecoveryReport]:
    """Run the with/without-resync comparison for one preset scenario."""
    num_nodes, ranks_per_node, horizon, resync_age = _SCALE[scale]
    schedule = make_scenario(scenario)
    return compare_recovery(
        schedule,
        resync_age=resync_age,
        jobs=jobs,
        horizon=horizon,
        num_nodes=num_nodes,
        ranks_per_node=ranks_per_node,
        seed=seed,
    )


def format_result(reports: dict[str, RecoveryReport]) -> str:
    """Phase table for both policies plus the recovery verdict."""
    base, resync = reports["baseline"], reports["resync"]
    lines = [
        f"Fault recovery — scenario '{base.scenario}', "
        f"{base.horizon:g}s horizon, seed {base.seed}",
        f"  algorithm: {base.algorithm}",
        f"  resync policy: {resync.algorithm} "
        f"({resync.resync_rounds} rounds)",
        "",
        f"  {'policy':<10} {'phase':<8} {'n':>4} {'max err':>12} "
        f"{'p95 err':>12} {'mean err':>12}",
    ]
    for label, report in (("baseline", base), ("resync", resync)):
        for phase in ("before", "during", "after"):
            stats = report.phases.get(phase)
            if stats is None or stats.nsamples == 0:
                continue
            lines.append(
                f"  {label:<10} {phase:<8} {stats.nsamples:>4} "
                f"{stats.max_error:>12.3g} {stats.p95_error:>12.3g} "
                f"{stats.mean_error:>12.3g}"
            )
    lines.append("")
    lines.append(
        f"  tail max error (last 25% of horizon): "
        f"baseline {base.tail_max():.3g}s vs resync {resync.tail_max():.3g}s"
    )
    return "\n".join(lines)


def export_chrome_traces(
    out_dir: str,
    scale: str = "quick",
    seed: int = 0,
    scenario: str = DEFAULT_SCENARIO,
) -> dict:
    """Re-run the resync variant recording events; export the trace.

    The exported file carries the fault windows as ``cat="fault"`` spans
    on their own track, next to the per-rank collective/block slices and
    ``resync_round`` instants — load it in https://ui.perfetto.dev.
    """
    os.makedirs(out_dir, exist_ok=True)
    num_nodes, ranks_per_node, horizon, resync_age = _SCALE[scale]
    schedule = make_scenario(scenario)
    sink = RecordingSink()
    report = run_recovery(
        schedule,
        resync_age=resync_age,
        horizon=horizon,
        num_nodes=num_nodes,
        ranks_per_node=ranks_per_node,
        seed=seed,
        sink=sink,
    )
    path = os.path.join(out_dir, f"fault_recovery_{scenario}.json")
    nrecords = export_chrome_trace(path, engine_events=sink.events)
    return {
        "path": path,
        "records": nrecords,
        "fault_events": len(sink.of_type(FaultInject)),
        "resync_events": len(sink.of_type(ResyncRound)),
        "report": report,
    }
