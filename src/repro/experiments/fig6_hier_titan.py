"""Fig. 6: H2HCA vs flat HCA3 on Titan (1024×16 = 16k cores in the paper).

At this scale the paper (and this reproduction) samples 10 % of the
processes for the accuracy check, uses nmpiruns = 5, and observes both
larger maximum offsets (≈ 4 µs at 0 s, ≈ 15 µs after 10 s) and a larger
run-to-run variance than on the smaller machines — Titan's Gemini network
has the highest jitter and its clocks the fastest-changing drift.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cluster.machines import TITAN
from repro.experiments.common import Scale, SyncCampaignResult, resolve_scale
from repro.experiments.hier import format_hier_result, run_hier_campaign


def run(
    scale: str | Scale = "quick", seed: int = 0, jobs: int | None = 1
) -> SyncCampaignResult:
    sc = resolve_scale(scale)
    # Titan is the big machine: 4x the nodes of the Jupiter/Hydra runs.
    sc = replace(sc, num_nodes=sc.num_nodes * 4, nmpiruns=min(sc.nmpiruns, 5))
    return run_hier_campaign(
        TITAN, sc, seed=seed, sample_fraction=0.1, jobs=jobs
    )


def format_result(result: SyncCampaignResult) -> str:
    return format_hier_result(result, "Fig. 6 (10% accuracy sampling)")
