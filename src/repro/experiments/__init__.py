"""One module per paper table/figure (see DESIGN.md §4 for the index).

Every module exposes ``run(scale=..., seed=...) -> <result dataclass>`` and
``format_result(result) -> str`` so that the ``benchmarks/`` targets, the
``examples/`` scripts, and the tests share one implementation.  Scale
presets live in :mod:`repro.experiments.common`; "quick" keeps wall time
in CI territory, "paper" approaches the paper's shapes (EXPERIMENTS.md
records which scale produced the recorded numbers).
"""

from repro.experiments import common

__all__ = ["common"]
