"""Fig. 7: measured MPI_Allreduce latency depends on the barrier algorithm.

For each message size (4/8/16 B) and each MPI_Barrier algorithm (bruck,
recursive doubling, tree — the paper omits double ring because its impact
is even larger), three benchmark suites measure MPI_Allreduce with their
barrier-based schemes.  Expected shape: the reported latency varies
substantially with the barrier algorithm, and the ``tree`` barrier yields
the smallest latency in all cells — its exit imbalance is the smallest, so
the least imbalance leaks into the measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import Table, format_table
from repro.bench.runner import make_allreduce_op, run_latency_benchmark
from repro.cluster.machines import JUPITER
from repro.experiments.common import (
    MACHINE_TIME_SOURCES,
    Scale,
    resolve_scale,
)
from repro.sync.hierarchical import h2hca

BARRIERS = ("bruck", "recursive_doubling", "tree")
MSIZES = (4, 8, 16)
SUITES = ("imb", "osu", "reprompi_barrier")


@dataclass
class Fig7Result:
    nprocs: int
    #: (suite, msize, barrier) -> latency seconds
    cells: dict[tuple[str, int, str], float] = field(default_factory=dict)

    def best_barrier(self, suite: str, msize: int) -> str:
        candidates = {
            b: self.cells[(suite, msize, b)] for b in BARRIERS
        }
        return min(candidates, key=candidates.get)


def run(scale: str | Scale = "quick", seed: int = 0) -> Fig7Result:
    sc = resolve_scale(scale)
    # The barrier effects need node-concentrated ranks (the paper runs
    # 32x16): dissemination barriers then flood each node's NIC while the
    # binomial tree keeps most traffic intra-node.
    machine = JUPITER.machine(max(4, sc.num_nodes // 4), 16)
    nreps = 30 if sc.nmpiruns <= 3 else 100
    result = Fig7Result(nprocs=machine.num_ranks)
    sync_alg = h2hca(nfitpoints=sc.nfitpoints,
                     fitpoint_spacing=sc.fitpoint_spacing)
    for barrier in BARRIERS:
        measurements = run_latency_benchmark(
            machine=machine,
            network=JUPITER.network(),
            suites=list(SUITES),
            msizes=list(MSIZES),
            sync_algorithm=sync_alg,
            operation_factory=make_allreduce_op,
            barrier_algorithm=barrier,
            nreps=nreps,
            time_source=MACHINE_TIME_SOURCES["jupiter"],
            seed=seed,
        )
        for m in measurements:
            result.cells[(m.suite, m.msize, barrier)] = m.report.latency
    return result


def format_result(result: Fig7Result) -> str:
    table = Table(
        title=(
            f"Fig. 7: MPI_Allreduce latency [us] by suite x barrier "
            f"algorithm ({result.nprocs} processes, Jupiter)"
        ),
        columns=["msize [B]", "suite"] + [f"{b}" for b in BARRIERS],
    )
    for msize in MSIZES:
        for suite in SUITES:
            table.add_row(
                msize,
                suite,
                *(
                    f"{result.cells[(suite, msize, b)] * 1e6:.2f}"
                    for b in BARRIERS
                ),
            )
    lines = [format_table(table)]
    wins = sum(
        result.best_barrier(s, m) == "tree"
        for s in SUITES
        for m in MSIZES
    )
    lines.append(
        f"'tree' gives the smallest latency in {wins}/{len(SUITES) * len(MSIZES)} "
        "cells (paper: all cells)"
    )
    return "\n".join(lines)
