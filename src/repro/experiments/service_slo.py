"""``service_slo``: resync-policy sweep for the clock service.

Not a figure of the paper — the serving-side consequence of its Section
III-C2 observation that a fitted linear clock model is only trustworthy
for a bounded window.  A :class:`~repro.service.core.ClockService`
answers global-clock queries (``now`` / ``translate`` / ``compare``)
against the latest synced models at production traffic; this target
sweeps *when to resync* against a clock-error SLO:

* ``periodic[T]`` — the paper's fixed resync schedule, at several
  periods bracketing the model-validity window,
* ``errorbound`` — resync when the predicted worst-case error bound
  reaches a margin of the SLO (drift-adaptive scheduling).

Each policy serves the same deterministic query stream (open-loop
Poisson clients; the error-bound policy is additionally run against a
closed-loop client population).  The table reports throughput, batched
tail latencies (p50/p99/p999 from the seeded-reservoir histograms),
ground-truth clock-error quantiles, stale-read rate, epoch-cache hit
ratio, and an SLO verdict per policy.

Run::

    python -m repro.experiments service_slo --scale quick --jobs 2

Policies are independent runs, fanned out over ``--jobs`` workers with
results bit-identical to serial execution.
"""

from __future__ import annotations

from contextlib import nullcontext

from repro.obs.timeseries import get_default_timeseries
from repro.parallel import JobSpec, job_seeds, run_jobs, seed_int
from repro.service import (
    ErrorBoundResyncPolicy,
    PeriodicResyncPolicy,
    ResyncPolicy,
    ServiceConfig,
    ServicePolicyResult,
    WorkloadSpec,
    run_service,
)

#: Default clock-error SLO (seconds) the sweep is judged against.
DEFAULT_SLO = 25e-6

#: Sweep shape per scale: (num_ranks, periodic periods s, open-loop
#: workload, closed-loop workload for the error-bound policy).
_SCALE = {
    "quick": (
        8,
        (2.0, 8.0, 20.0),
        WorkloadSpec(mode="open", duration=50.0, rate=6000.0),
        WorkloadSpec(
            mode="closed", duration=50.0, clients=40_000, think_time=5.0
        ),
    ),
    "default": (
        16,
        (2.0, 5.0, 10.0, 20.0, 40.0),
        WorkloadSpec(mode="open", duration=120.0, rate=20_000.0),
        WorkloadSpec(
            mode="closed", duration=120.0, clients=200_000, think_time=5.0
        ),
    ),
}


def _policy_job(
    policy: ResyncPolicy,
    workload: WorkloadSpec,
    config: ServiceConfig,
    seed: int,
    scope: str,
) -> ServicePolicyResult:
    """One sweep entry (module-level so job specs stay picklable).

    Telemetry of each entry lands under its own time-series scope, so
    the merged health report keeps the policies' ``service.stale_rate``
    and ``clock.error`` series apart.
    """
    bank = get_default_timeseries()
    ctx = bank.scoped(scope) if bank is not None else nullcontext()
    with ctx:
        return run_service(policy, workload, config, seed=seed)


def run(
    scale: str = "quick",
    seed: int = 0,
    jobs: int | None = 1,
    slo: float = DEFAULT_SLO,
) -> list[ServicePolicyResult]:
    """Sweep resync policies against the error SLO; one run per policy."""
    num_ranks, periods, open_wl, closed_wl = _SCALE[scale]
    config = ServiceConfig(num_ranks=num_ranks, slo=slo)
    entries: list[tuple[ResyncPolicy, WorkloadSpec]] = [
        (PeriodicResyncPolicy(period), open_wl) for period in periods
    ]
    errorbound = ErrorBoundResyncPolicy(slo=slo)
    entries.append((errorbound, open_wl))
    entries.append((errorbound, closed_wl))

    seeds = job_seeds(seed, len(entries))
    specs = [
        JobSpec(
            _policy_job,
            args=(
                policy,
                workload,
                config,
                seed_int(child),
                f"{policy.label()}|{workload.label()}",
            ),
            label=policy.label(),
        )
        for (policy, workload), child in zip(entries, seeds)
    ]
    return run_jobs(specs, jobs=jobs)


def format_result(results: list[ServicePolicyResult]) -> str:
    """Policy comparison table plus the sweep verdict."""
    first = results[0]
    total_queries = sum(r.queries for r in results)
    total_wall = sum(r.wall_s for r in results)
    lines = [
        f"Clock service SLO sweep — {first.num_ranks} ranks, "
        f"SLO {first.slo * 1e6:g}us, {total_queries} queries total",
        "",
        f"  {'policy':<26} {'workload':<18} {'queries':>8} {'syncs':>5} "
        f"{'lat p50':>9} {'lat p99':>9} {'lat p999':>9} "
        f"{'err p99':>9} {'stale%':>7} {'hit%':>6} {'SLO':>4}",
    ]
    for r in results:
        lines.append(
            f"  {r.policy:<26} {r.workload:<18} {r.queries:>8} "
            f"{r.syncs:>5} "
            f"{r.latency_p50 * 1e3:>7.2f}ms {r.latency_p99 * 1e3:>7.2f}ms "
            f"{r.latency_p999 * 1e3:>7.2f}ms "
            f"{r.clock_error_p99 * 1e6:>7.2f}us "
            f"{r.stale_rate * 100:>6.2f}% "
            f"{r.cache_hit_ratio * 100:>5.1f}% "
            f"{'met' if r.slo_met else 'MISS':>4}"
        )
    lines.append("")
    meeting = [r for r in results if r.slo_met]
    if meeting:
        # Cheapest schedule that still meets the SLO: fewest sync rounds.
        best = min(meeting, key=lambda r: (r.syncs, r.policy))
        lines.append(
            f"  cheapest policy meeting the SLO: {best.policy} "
            f"({best.syncs} syncs, p99 error "
            f"{best.clock_error_p99 * 1e6:.2f}us)"
        )
    else:
        lines.append("  no swept policy met the SLO")
    if total_wall > 0.0:
        lines.append(
            f"  served {total_queries} queries in {total_wall:.2f}s wall "
            f"({total_queries / total_wall:,.0f} queries/s)"
        )
    return "\n".join(lines)


def service_queries_per_sec(
    results: list[ServicePolicyResult],
) -> float:
    """Aggregate serving throughput (host wall time) for benchmarking."""
    total_wall = sum(r.wall_s for r in results)
    if total_wall <= 0.0:
        return 0.0
    return sum(r.queries for r in results) / total_wall
