"""Fig. 3: accuracy vs duration of the flat algorithms (Jupiter).

Compares HCA, HCA2, HCA3 and JK in the paper's best-found configurations
(labels below), plotting the max measured clock offset right after the
synchronization and 10 s later against the synchronization duration.

Expected shapes (paper, 32×16 processes on Jupiter):

* JK's duration is an order of magnitude above the HCA family (O(p) vs
  O(log p) rounds, moderated by JK's 5× cheaper fit points).
* All algorithms are accurate right after synchronizing (≲ 4 µs).
* After 10 s, the HCA family sits within a few µs of each other (the
  paper's HCA3 < HCA2 < HCA ordering is a sub-µs effect at our scale; see
  EXPERIMENTS.md for the noise-floor discussion).
"""

from __future__ import annotations

from repro.analysis.reporting import Table, format_table
from repro.cluster.machines import JUPITER
from repro.experiments.common import (
    Scale,
    SyncCampaignResult,
    resolve_scale,
    run_sync_accuracy_campaign,
)

#: The paper's Fig. 3 configurations.  The numeric fields (nfitpoints and
#: ping-pongs) are scaled by the campaign's Scale; labels keep the paper's
#: structure so the registry round-trips them.
def labels_for(scale: Scale) -> list[str]:
    n = scale.nfitpoints
    e = scale.nexchanges
    return [
        f"hca/{n}/skampi_offset/{e}",
        f"hca2/recompute_intercept/{n}/skampi_offset/{e}",
        f"hca3/recompute_intercept/{n}/skampi_offset/{e}",
        f"jk/{n}/skampi_offset/{max(5, e // 5)}",
    ]


def run(
    scale: str | Scale = "quick", seed: int = 0, jobs: int | None = 1
) -> SyncCampaignResult:
    sc = resolve_scale(scale)
    return run_sync_accuracy_campaign(
        spec=JUPITER,
        labels=labels_for(sc),
        scale=sc,
        wait_times=(0.0, 10.0),
        seed=seed,
        jobs=jobs,
    )


def format_result(result: SyncCampaignResult) -> str:
    table = Table(
        title=(
            f"Fig. 3: max clock offset vs sync duration "
            f"(Jupiter, {result.nprocs} processes)"
        ),
        columns=["algorithm", "mean duration [s]",
                 "max offset @0s [us]", "max offset @10s [us]"],
    )
    for label in result.by_label():
        table.add_row(
            label,
            f"{result.mean_duration(label):.3f}",
            f"{result.mean_offset(label, 0.0) * 1e6:.3f}",
            f"{result.mean_offset(label, 10.0) * 1e6:.3f}",
        )
    return format_table(table)
