"""Table I: the parallel machines used in the experiments.

The substitution counterpart of the paper's hardware table: for each
machine preset, the modelled topology and the calibrated network
parameters (ping-pong latency, jitter), plus a measured small-message
ping-pong from the simulator as a sanity check of the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import Table, format_table
from repro.cluster.machines import MACHINES, MachineSpec
from repro.simmpi.network import Level
from repro.simmpi.simulation import Simulation


@dataclass
class MachineRow:
    name: str
    nodes: int
    sockets: int
    cores_per_socket: int
    network: str
    model_latency_us: float
    measured_pingpong_us: float


def measured_pingpong(spec: MachineSpec, nreps: int = 200, seed: int = 0):
    """Median inter-node 8 B ping-pong RTT on the simulated fabric."""
    machine = spec.machine(2, 1)

    def main(ctx, comm):
        if comm.rank == 0:
            rtts = []
            for _ in range(nreps):
                t0 = ctx.wtime()
                yield from comm.send(1, 1, 0.0, 8)
                yield from comm.recv(1, 1)
                rtts.append(ctx.wtime() - t0)
            return float(np.median(rtts))
        for _ in range(nreps):
            yield from comm.recv(0, 1)
            yield from comm.send(0, 1, 0.0, 8)
        return None

    sim = Simulation(machine=machine, network=spec.network(), seed=seed)
    return sim.run(main).values[0]


def run(seed: int = 0) -> list[MachineRow]:
    rows = []
    for name, spec in MACHINES.items():
        net = spec.network()
        remote = net.params_for(Level.REMOTE)
        rows.append(
            MachineRow(
                name=name,
                nodes=spec.default_nodes,
                sockets=spec.sockets_per_node,
                cores_per_socket=spec.cores_per_socket,
                network=net.name,
                model_latency_us=remote.latency * 1e6,
                measured_pingpong_us=measured_pingpong(spec, seed=seed) * 1e6,
            )
        )
    return rows


def format_result(rows: list[MachineRow]) -> str:
    table = Table(
        title="Table I: parallel machines (simulated substitutes)",
        columns=["name", "nodes", "sockets x cores", "network",
                 "model latency [us]", "pingpong RTT [us]"],
    )
    for row in rows:
        table.add_row(
            row.name,
            row.nodes,
            f"{row.sockets} x {row.cores_per_socket}",
            row.network,
            f"{row.model_latency_us:.2f}",
            f"{row.measured_pingpong_us:.2f}",
        )
    return format_table(table)
