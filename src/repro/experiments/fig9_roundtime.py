"""Fig. 9: OSU (barrier-based) vs ReproMPI Round-Time on Titan.

MPI_Allreduce latency across message sizes 4 B … 1024 B, measured by OSU
Micro-Benchmarks (barrier each repetition, mean) and by ReproMPI with the
Round-Time scheme (global-clock start lines, median).  Expected shape:
OSU's reported latencies are inflated by barrier-exit imbalance at small
message sizes; the curves converge as the payload (and hence the true
collective latency) grows relative to the barrier's imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.reporting import Table, format_table
from repro.bench.runner import make_allreduce_op, run_latency_benchmark
from repro.cluster.machines import TITAN
from repro.experiments.common import (
    MACHINE_TIME_SOURCES,
    Scale,
    resolve_scale,
)
from repro.sync.hierarchical import h2hca

MSIZES = (4, 8, 16, 32, 64, 128, 256, 512, 1024)


@dataclass
class Fig9Result:
    nprocs: int
    #: suite -> msize -> list of latencies (one per mpirun), seconds
    series: dict[str, dict[int, list[float]]] = field(default_factory=dict)

    def mean(self, suite: str, msize: int) -> float:
        return float(np.mean(self.series[suite][msize]))

    def inflation(self, msize: int) -> float:
        """OSU latency / Round-Time latency at one message size."""
        return self.mean("osu", msize) / self.mean("reprompi", msize)


def run(
    scale: str | Scale = "quick",
    seed: int = 0,
    nmpiruns: int | None = None,
    msizes: tuple[int, ...] = MSIZES,
) -> Fig9Result:
    sc = resolve_scale(scale)
    # The barrier-inflation effect needs enough processes for the barrier's
    # exit imbalance to rival the allreduce latency, and several ranks per
    # node so NIC serialization matters (the paper runs 64 nodes x 16);
    # keep at least 16 nodes x 8 ranks even at quick scale.
    machine = TITAN.machine(max(16, sc.num_nodes), 8)
    nmpiruns = nmpiruns or min(3, sc.nmpiruns)
    nreps = 30 if sc.nmpiruns <= 3 else 100
    result = Fig9Result(nprocs=machine.num_ranks)
    sync_alg = h2hca(nfitpoints=sc.nfitpoints,
                     fitpoint_spacing=sc.fitpoint_spacing)
    for run_idx in range(nmpiruns):
        measurements = run_latency_benchmark(
            machine=machine,
            network=TITAN.network(),
            suites=["osu", "reprompi"],
            msizes=list(msizes),
            sync_algorithm=sync_alg,
            operation_factory=make_allreduce_op,
            # OSU inherits the MPI library's default barrier; cray-mpich's
            # flat (linear) barrier is the worst case the paper observes.
            barrier_algorithm="linear",
            nreps=nreps,
            max_time_slice=0.25,
            time_source=MACHINE_TIME_SOURCES["titan"],
            seed=seed * 1000 + run_idx,
            fabric=TITAN.fabric(machine.num_nodes),
        )
        for m in measurements:
            result.series.setdefault(m.suite, {}).setdefault(
                m.msize, []
            ).append(m.report.latency)
    return result


def format_result(result: Fig9Result) -> str:
    table = Table(
        title=(
            f"Fig. 9: MPI_Allreduce latency [us], OSU vs ReproMPI "
            f"Round-Time ({result.nprocs} processes, Titan)"
        ),
        columns=["msize [B]", "OSU", "ReproMPI (Round-Time)", "OSU/RT"],
    )
    msizes = sorted(result.series["osu"])
    for msize in msizes:
        table.add_row(
            msize,
            f"{result.mean('osu', msize) * 1e6:.2f}",
            f"{result.mean('reprompi', msize) * 1e6:.2f}",
            f"{result.inflation(msize):.2f}x",
        )
    lines = [format_table(table)]
    lines.append(
        "paper shape: OSU inflated at small msizes by barrier effects; "
        "gap narrows as msize grows"
    )
    return "\n".join(lines)
