"""Fig. 5: H2HCA vs flat HCA3 on Hydra (36×32 in the paper).

Hydra's OmniPath network has lower latency (tighter offsets right after
synchronization, < 0.2 µs in the paper) but its clocks drift faster, so
the models lose precision over 10 s — H2HCA stays ~1 µs.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cluster.machines import HYDRA
from repro.experiments.common import Scale, SyncCampaignResult, resolve_scale
from repro.experiments.hier import format_hier_result, run_hier_campaign


def run(
    scale: str | Scale = "quick", seed: int = 0, jobs: int | None = 1
) -> SyncCampaignResult:
    sc = resolve_scale(scale)
    # Hydra has twice the cores per node of Jupiter (32 vs 16): keep the
    # node count and double the ranks per node, like the paper's 36×32.
    sc = replace(sc, ranks_per_node=sc.ranks_per_node * 2)
    return run_hier_campaign(HYDRA, sc, seed=seed, jobs=jobs)


def format_result(result: SyncCampaignResult) -> str:
    return format_hier_result(result, "Fig. 5")
