"""Fig. 10: Gantt charts of one AMG2013 MPI_Allreduce, four clock setups.

The AMG-like loop (80 % of time in 8 B allreduces) runs under a tracing
library configured with ``clock_gettime`` or ``gettimeofday`` as the time
source, each with either the raw local clock or the H2HCA global clock.
The 10th iteration's allreduce is extracted as a Gantt chart.

Expected shapes:

* local ``clock_gettime``: start offsets ~1e10 µs (boot-time differences)
  — events invisible (Fig. 10b).
* local ``gettimeofday``: offsets ~100 µs — events visible but skewed
  (Fig. 10d).
* global clock on either source: events line up within a few µs; processes
  spend ~tens of µs in MPI_Allreduce, independent of the source
  (Figs. 10a/10c).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.analysis.reporting import Table, format_table
from repro.cluster.machines import JUPITER
from repro.experiments.common import Scale, resolve_scale
from repro.obs.chrome_trace import export_chrome_trace
from repro.obs.events import RecordingSink
from repro.simmpi.simulation import Simulation
from repro.simtime.sources import CLOCK_GETTIME, GETTIMEOFDAY
from repro.sync.hierarchical import h2hca
from repro.trace.amg import AMGConfig, amg_iteration_loop
from repro.trace.gantt import GanttBar, gantt_bars, start_spread, visibility_ratio
from repro.trace.tracer import Tracer

SETUPS = (
    ("clock_gettime", "global"),
    ("clock_gettime", "local"),
    ("gettimeofday", "global"),
    ("gettimeofday", "local"),
)

#: "the 10th iteration" of the paper (0-based index 9).
ITERATION = 9


@dataclass
class Fig10Result:
    nprocs: int
    #: (source, clock_kind) -> Gantt bars of the traced iteration.
    charts: dict[tuple[str, str], list[GanttBar]] = field(
        default_factory=dict
    )

    def visibility(self, source: str, kind: str) -> float:
        return visibility_ratio(self.charts[(source, kind)])

    def spread(self, source: str, kind: str) -> float:
        return start_spread(self.charts[(source, kind)])


def run(scale: str | Scale = "quick", seed: int = 0) -> Fig10Result:
    sc = resolve_scale(scale)
    # Paper: 27 nodes × 8 ranks; scaled to the campaign node budget.
    machine = JUPITER.machine(max(4, sc.num_nodes // 2), sc.ranks_per_node)
    result = Fig10Result(nprocs=machine.num_ranks)
    sources = {
        "clock_gettime": CLOCK_GETTIME,
        "gettimeofday": GETTIMEOFDAY,
    }
    amg = AMGConfig(niterations=max(12, ITERATION + 2))
    for source_name, kind in SETUPS:
        sync_alg = h2hca(nfitpoints=sc.nfitpoints,
                         fitpoint_spacing=sc.fitpoint_spacing)

        def main(ctx, comm):
            if kind == "global":
                clock = yield from sync_alg.sync_clocks(
                    comm, ctx.hardware_clock
                )
            else:
                clock = ctx.hardware_clock
            tracer = Tracer(clock, comm.rank)
            yield from amg_iteration_loop(comm, tracer, amg)
            events = yield from tracer.gather_events(comm)
            return events

        sim = Simulation(
            machine=machine,
            network=JUPITER.network(),
            time_source=sources[source_name],
            seed=seed,
        )
        events = sim.run(main).values[0]
        result.charts[(source_name, kind)] = gantt_bars(
            events, "MPI_Allreduce", ITERATION
        )
    return result


def export_chrome_traces(
    out_dir: str,
    scale: str | Scale = "quick",
    seed: int = 0,
    source_name: str = "clock_gettime",
    include_messages: bool = False,
) -> dict:
    """One seeded H2HCA tracing run, exported as two Chrome trace files.

    Runs the Fig. 10 pipeline once (sync + traced AMG loop) with an engine
    :class:`RecordingSink` attached, then writes

    * ``fig10_raw_local_clock.json`` — every span re-read through its
      rank's *hardware* clock (the skewed view of Fig. 10b/10d), and
    * ``fig10_global_clock.json`` — the same spans re-read through the
      H2HCA-synchronized logical clocks (the corrected view of
      Fig. 10a/10c).

    Load both in https://ui.perfetto.dev to see the paper's before/after
    diff.  Returns a dict with the file paths, the engine counter snapshot
    and the sync algorithm's per-level round summary.
    """
    sc = resolve_scale(scale)
    machine = JUPITER.machine(max(4, sc.num_nodes // 2), sc.ranks_per_node)
    sources = {
        "clock_gettime": CLOCK_GETTIME,
        "gettimeofday": GETTIMEOFDAY,
    }
    amg = AMGConfig(niterations=max(12, ITERATION + 2))
    sync_alg = h2hca(nfitpoints=sc.nfitpoints,
                     fitpoint_spacing=sc.fitpoint_spacing)
    sink = RecordingSink()

    def main(ctx, comm):
        clock = yield from sync_alg.sync_clocks(comm, ctx.hardware_clock)
        tracer = Tracer(clock, comm.rank)
        yield from amg_iteration_loop(comm, tracer, amg)
        events = yield from tracer.gather_events(comm)
        return events, clock

    sim = Simulation(
        machine=machine,
        network=JUPITER.network(),
        time_source=sources[source_name],
        seed=seed,
        sink=sink,
    )
    result = sim.run(main)
    trace_events = result.values[0][0]
    global_clocks = [clk for (_ev, clk) in result.values]

    os.makedirs(out_dir, exist_ok=True)
    raw_path = os.path.join(out_dir, "fig10_raw_local_clock.json")
    global_path = os.path.join(out_dir, "fig10_global_clock.json")
    nraw = export_chrome_trace(
        raw_path,
        trace_events=trace_events,
        engine_events=sink.events,
        clock_of=lambda r: result.clocks[r],
        include_messages=include_messages,
    )
    nglobal = export_chrome_trace(
        global_path,
        trace_events=trace_events,
        engine_events=sink.events,
        clock_of=lambda r: global_clocks[r],
        include_messages=include_messages,
    )
    return {
        "raw_local_clock": raw_path,
        "global_clock": global_path,
        "records": {"raw_local_clock": nraw, "global_clock": nglobal},
        "engine": result.engine_stats,
        "sync": sync_alg.sync_stats_summary(),
    }


def format_result(result: Fig10Result) -> str:
    table = Table(
        title=(
            f"Fig. 10: 10th MPI_Allreduce of the AMG loop "
            f"({result.nprocs} processes, Jupiter)"
        ),
        columns=["time source", "clock", "start spread [us]",
                 "median duration [us]", "visible?"],
    )
    import numpy as np

    for source, kind in SETUPS:
        bars = result.charts[(source, kind)]
        dur = float(np.median([b.duration for b in bars])) * 1e6
        vis = result.visibility(source, kind)
        table.add_row(
            source,
            kind,
            f"{result.spread(source, kind) * 1e6:.3g}",
            f"{dur:.2f}",
            "yes" if vis > 0.05 else "NO",
        )
    return format_table(table)
