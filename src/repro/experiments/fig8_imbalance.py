"""Fig. 8: process imbalance introduced by MPI_Barrier algorithms.

Using the H2HCA global clock, processes line up on a common start time,
call the barrier, and record their exit timestamps; ``imbalance`` is the
max-min spread of exits per call.  Distributions over 500 calls × 5 runs
in the paper.  Expected shape: ``tree`` is by far the best on average;
``double_ring`` is by far the worst (its token circulates in O(p) serial
hops, so the first and last exits are a full circulation apart).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.imbalance import measure_barrier_imbalance
from repro.analysis.reporting import Table, format_table
from repro.cluster.machines import JUPITER
from repro.experiments.common import (
    MACHINE_TIME_SOURCES,
    Scale,
    resolve_scale,
)
from repro.simmpi.simulation import Simulation
from repro.sync.hierarchical import h2hca

ALGORITHMS = ("bruck", "double_ring", "recursive_doubling", "tree")


@dataclass
class Fig8Result:
    nprocs: int
    #: algorithm -> all imbalance samples (seconds) across runs.
    samples: dict[str, list[float]] = field(default_factory=dict)

    def mean(self, algorithm: str) -> float:
        vals = [v for v in self.samples[algorithm] if np.isfinite(v)]
        return float(np.mean(vals)) if vals else float("nan")

    def percentile(self, algorithm: str, q: float) -> float:
        vals = [v for v in self.samples[algorithm] if np.isfinite(v)]
        return float(np.percentile(vals, q)) if vals else float("nan")


def run(
    scale: str | Scale = "quick",
    seed: int = 0,
    ncalls: int | None = None,
    nmpiruns: int | None = None,
) -> Fig8Result:
    sc = resolve_scale(scale)
    # Node-concentrated ranks, like the paper's 32x16 (see fig7).
    machine = JUPITER.machine(max(4, sc.num_nodes // 4), 16)
    ncalls = ncalls or (50 if sc.nmpiruns <= 3 else 500)
    nmpiruns = nmpiruns or min(sc.nmpiruns, 5)
    result = Fig8Result(nprocs=machine.num_ranks)
    sync_alg = h2hca(nfitpoints=sc.nfitpoints,
                     fitpoint_spacing=sc.fitpoint_spacing)

    def main(ctx, comm):
        g_clk = yield from sync_alg.sync_clocks(comm, ctx.hardware_clock)
        out = {}
        for algorithm in ALGORITHMS:
            samples = yield from measure_barrier_imbalance(
                comm, g_clk, algorithm, nreps=ncalls
            )
            if comm.rank == 0:
                out[algorithm] = samples
        return out

    for run_idx in range(nmpiruns):
        sim = Simulation(
            machine=machine,
            network=JUPITER.network(),
            time_source=MACHINE_TIME_SOURCES["jupiter"],
            seed=seed * 1000 + run_idx,
        )
        per_alg = sim.run(main).values[0]
        for algorithm, samples in per_alg.items():
            result.samples.setdefault(algorithm, []).extend(samples)
    return result


def format_result(result: Fig8Result) -> str:
    table = Table(
        title=(
            f"Fig. 8: barrier-exit imbalance [us] "
            f"({result.nprocs} processes, Jupiter)"
        ),
        columns=["algorithm", "mean", "p50", "p95", "samples"],
    )
    for algorithm in ALGORITHMS:
        vals = [v for v in result.samples[algorithm] if np.isfinite(v)]
        table.add_row(
            algorithm,
            f"{result.mean(algorithm) * 1e6:.2f}",
            f"{result.percentile(algorithm, 50) * 1e6:.2f}",
            f"{result.percentile(algorithm, 95) * 1e6:.2f}",
            len(vals),
        )
    lines = [format_table(table)]
    means = {a: result.mean(a) for a in ALGORITHMS}
    best = min(means, key=means.get)
    worst = max(means, key=means.get)
    lines.append(
        f"best: {best} (paper: tree) / worst: {worst} (paper: double_ring)"
    )
    return "\n".join(lines)
