"""Shared engine for the hierarchical-vs-flat comparisons (Figs. 4–6)."""

from __future__ import annotations

from repro.analysis.reporting import Table, format_table
from repro.cluster.machines import MachineSpec
from repro.experiments.common import (
    Scale,
    SyncCampaignResult,
    resolve_scale,
    run_sync_accuracy_campaign,
)


def hier_labels_for(scale: Scale) -> list[str]:
    """The paper's Figs. 4–6 configurations: two HCA3 fit-point budgets,
    flat and hierarchical (Top HCA3 + Bottom ClockPropagation)."""
    n = scale.nfitpoints
    e = scale.nexchanges
    half = max(2, n // 2)
    return [
        f"hca3/recompute_intercept/{n}/skampi_offset/{e}",
        f"hca3/recompute_intercept/{half}/skampi_offset/{e}",
        f"Top/hca3/{n}/skampi_offset/{e}/Bottom/ClockPropagation",
        f"Top/hca3/{half}/skampi_offset/{e}/Bottom/ClockPropagation",
    ]


def run_hier_campaign(
    spec: MachineSpec,
    scale: str | Scale,
    seed: int = 0,
    sample_fraction: float = 1.0,
    nmpiruns: int | None = None,
    jobs: int | None = 1,
) -> SyncCampaignResult:
    sc = resolve_scale(scale)
    if nmpiruns is not None:
        from dataclasses import replace

        sc = replace(sc, nmpiruns=nmpiruns)
    return run_sync_accuracy_campaign(
        spec=spec,
        labels=hier_labels_for(sc),
        scale=sc,
        wait_times=(0.0, 10.0),
        sample_fraction=sample_fraction,
        seed=seed,
        jobs=jobs,
    )


def format_hier_result(result: SyncCampaignResult, figure: str) -> str:
    table = Table(
        title=(
            f"{figure}: hierarchical (H2HCA) vs flat HCA3 "
            f"({result.machine}, {result.nprocs} processes)"
        ),
        columns=["configuration", "mean duration [s]",
                 "max offset @0s [us]", "max offset @10s [us]"],
    )
    for label in result.by_label():
        table.add_row(
            label,
            f"{result.mean_duration(label):.3f}",
            f"{result.mean_offset(label, 0.0) * 1e6:.3f}",
            f"{result.mean_offset(label, 10.0) * 1e6:.3f}",
        )
    return format_table(table)
