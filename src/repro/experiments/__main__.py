"""Command-line runner: ``python -m repro.experiments <target> [options]``.

Targets are the paper's tables/figures (``table1``, ``fig2`` … ``fig10``)
or ``all``.  Example::

    python -m repro.experiments fig8 --scale quick --seed 1

Observability options (see :mod:`repro.obs`):

* ``--obs-summary`` installs a process-wide event sink + metrics registry
  for the run and prints event counts and metric aggregates afterwards.
* ``--health-report DIR`` installs a clock-health telemetry bank, runs
  the anomaly detectors over the sampled series afterwards, and writes a
  self-contained ``report.html`` + machine-readable ``report.json``.
* ``--profile DIR`` self-profiles the simulator (see :mod:`repro.prof`)
  and writes ``profile.json`` + a speedscope flamegraph under DIR; the
  profiled simulation's outputs are bit-identical to an unprofiled run.
* ``--critical-path DIR`` attaches a causal span recorder (see
  :mod:`repro.obs.spans`), extracts each traced run's critical path and
  sync-round depth afterwards (:mod:`repro.obs.causal`), writes
  ``critical_path.json`` under DIR and prints the top-N path table.
  Combined with ``--health-report`` the measured depth ratios feed the
  ``depth_anomaly`` detector and a report section.
* ``--chrome-trace-dir DIR`` (with the ``fig10`` target) additionally
  exports the traced AMG run as Chrome trace-event JSON, once through the
  raw local clocks and once through the H2HCA global clocks — open both
  in https://ui.perfetto.dev for the paper's skewed-vs-corrected diff.

Correctness checking (see :mod:`repro.check` and DESIGN.md §11):

* ``--check`` runs every simulated job under the strict sanitizer —
  the first broken engine invariant aborts the run with a typed
  :class:`~repro.errors.InvariantViolation`.
* ``--check-report DIR`` runs in report mode instead: violations
  accumulate per job, and an aggregated ``check_report.json`` is
  written under DIR afterwards (exit status 1 if anything was flagged).
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import ExitStack

from repro.check.config import checking, write_aggregate
from repro.check.sanitizer import TeeSink
from repro.obs.causal import (
    analyze_recorder,
    format_critical_path,
    write_critical_path,
)
from repro.obs.events import CountingSink, default_sink
from repro.obs.health import DEPTH_METRIC, evaluate_health
from repro.obs.spans import SpanRecorder
from repro.obs.metrics import MetricsRegistry, default_metrics, format_summary
from repro.obs.report import build_report, write_report
from repro.obs.timeseries import TimeSeriesBank, default_timeseries
from repro.prof import (
    Profiler,
    default_profiler,
    format_table,
    top_zones,
    write_profile,
)
from repro.experiments import (
    fault_recovery,
    fig2_drift,
    fig3_flat_algorithms,
    fig4_hier_jupiter,
    fig5_hier_hydra,
    fig6_hier_titan,
    fig7_barrier_impact,
    fig8_imbalance,
    fig9_roundtime,
    fig10_tracing,
    scenario_degradation,
    service_slo,
    table1_machines,
)
from repro.faults.scenarios import SCENARIOS


def _run_table1(scale: str, seed: int, jobs: int | None) -> str:
    return table1_machines.format_result(table1_machines.run(seed=seed))


def _run_fig2(scale: str, seed: int, jobs: int | None) -> str:
    duration = 60.0 if scale == "quick" else 200.0
    nodes = 4 if scale == "quick" else 10
    return fig2_drift.format_result(
        fig2_drift.run(num_nodes=nodes, duration=duration, interval=1.0,
                       seed=seed)
    )


def _run_fault_recovery(scale: str, seed: int, jobs: int | None) -> str:
    # fault_recovery also honours --scenario; main() threads it through.
    return fault_recovery.format_result(
        fault_recovery.run(scale=scale, seed=seed, jobs=jobs)
    )


def _run_service_slo(scale: str, seed: int, jobs: int | None) -> str:
    # service_slo also honours --slo; main() threads it through.
    return service_slo.format_result(
        service_slo.run(scale=scale, seed=seed, jobs=jobs)
    )


def _simple(module, parallel: bool = False):
    def runner(scale: str, seed: int, jobs: int | None) -> str:
        kwargs = {"jobs": jobs} if parallel else {}
        return module.format_result(
            module.run(scale=scale, seed=seed, **kwargs)
        )

    return runner


TARGETS = {
    "table1": _run_table1,
    "fig2": _run_fig2,
    "fault_recovery": _run_fault_recovery,
    "service_slo": _run_service_slo,
    # Campaign-based targets fan individual mpiruns out over --jobs
    # worker processes; results are bit-identical to --jobs 1.
    "fig3": _simple(fig3_flat_algorithms, parallel=True),
    "fig4": _simple(fig4_hier_jupiter, parallel=True),
    "fig5": _simple(fig5_hier_hydra, parallel=True),
    "fig6": _simple(fig6_hier_titan, parallel=True),
    "fig7": _simple(fig7_barrier_impact),
    "fig8": _simple(fig8_imbalance),
    "fig9": _simple(fig9_roundtime),
    "fig10": _simple(fig10_tracing),
    # Adversarial degradation tables (scenario presets x algorithms);
    # cells fan out over --jobs like the campaign targets.
    "scenario_degradation": _simple(scenario_degradation, parallel=True),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a table/figure of the paper.",
    )
    parser.add_argument(
        "target",
        choices=sorted(TARGETS) + ["all"],
        help="which experiment to run",
    )
    parser.add_argument("--scale", default="quick",
                        choices=["quick", "default"],
                        help="experiment size (see EXPERIMENTS.md)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run independent simulations of campaign-based targets "
             "(fig3-fig6, fault_recovery) on N worker processes; 0 means "
             "one per CPU.  Results are identical to --jobs 1.",
    )
    parser.add_argument(
        "--obs-summary",
        action="store_true",
        help="attach an event sink + metrics registry to every simulated "
             "job and print aggregate counts afterwards",
    )
    parser.add_argument(
        "--health-report",
        metavar="DIR",
        help="attach a clock-health telemetry bank to every simulated "
             "job, run the anomaly detectors afterwards, and write "
             "report.html + report.json under DIR (byte-identical for "
             "any --jobs value, modulo the generated_at timestamp)",
    )
    parser.add_argument(
        "--chrome-trace-dir",
        metavar="DIR",
        help="with the fig10 target: also export the traced AMG run as "
             "Chrome trace JSON (raw local clocks + H2HCA global clocks); "
             "with fault_recovery: export the faulted run with fault spans",
    )
    parser.add_argument(
        "--profile",
        metavar="DIR",
        help="self-profile the simulator (repro.prof wall-time zones) and "
             "write profile.json + profile.speedscope.json under DIR; "
             "per-job profiles are merged under --jobs N.  Profiling only "
             "reads the host clock, so simulated results stay identical.",
    )
    parser.add_argument(
        "--critical-path",
        metavar="DIR",
        help="attach a causal span recorder to every simulated job, "
             "extract per-run critical paths and sync-round depth "
             "afterwards, and write critical_path.json under DIR "
             "(byte-identical for any --jobs value)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="run every simulated job under the strict simulation "
             "sanitizer (repro.check): abort on the first broken engine "
             "invariant",
    )
    parser.add_argument(
        "--check-report",
        metavar="DIR",
        help="like --check, but accumulate violations instead of "
             "aborting and write an aggregated check_report.json under "
             "DIR; exits 1 if any violation was recorded",
    )
    parser.add_argument(
        "--scenario",
        default=fault_recovery.DEFAULT_SCENARIO,
        choices=sorted(SCENARIOS),
        help="fault scenario for the fault_recovery target",
    )
    parser.add_argument(
        "--slo",
        type=float,
        default=service_slo.DEFAULT_SLO,
        metavar="SECONDS",
        help="clock-error SLO for the service_slo target "
             f"(default {service_slo.DEFAULT_SLO:g}s)",
    )
    return parser


def _print_obs_summary(
    sink: CountingSink,
    registry: MetricsRegistry,
    profiler: Profiler | None = None,
) -> None:
    print("=== observability summary ===")
    total = sum(sink.counts.values())
    print(f"engine events: {total}")
    for name in sorted(sink.counts):
        print(f"  {name}: {sink.counts[name]}")
    metrics_text = format_summary(registry)
    if metrics_text:
        print("metrics:")
        for line in metrics_text.splitlines():
            print(f"  {line}")
    if profiler is not None and profiler.total_ns() > 0:
        print("slowest zones (self time):")
        for row in top_zones(profiler, top=5):
            print(
                f"  {row['path']}: {row['self_ns'] / 1e6:.2f}ms self "
                f"({row['count']}x)"
            )


def _write_health_report(
    out_dir: str,
    targets: list[str],
    args: argparse.Namespace,
    bank: TimeSeriesBank,
    registry: MetricsRegistry,
    critical_path: list[dict] | None = None,
) -> None:
    verdict = evaluate_health(bank)
    report = build_report(
        bank=bank,
        metrics=registry,
        verdict=verdict,
        critical_path=critical_path,
        meta={
            "targets": targets,
            "scale": args.scale,
            "seed": args.seed,
            "scenario": (
                args.scenario if "fault_recovery" in targets else None
            ),
            "slo": args.slo if "service_slo" in targets else None,
        },
    )
    json_path, html_path = write_report(report, out_dir)
    print("=== clock-health report ===")
    print(
        f"status: {verdict.status} ({len(verdict.findings)} findings, "
        f"{verdict.series_scanned} error series scanned)"
    )
    for name, summary in verdict.detectors.items():
        print(
            f"  {name}: {summary['findings']} findings "
            f"(worst {summary['worst']})"
        )
    print(f"report.json: {json_path}")
    print(f"report.html: {html_path}")


def _export_chrome_traces(out_dir: str, scale: str, seed: int) -> None:
    info = fig10_tracing.export_chrome_traces(
        out_dir, scale=scale, seed=seed
    )
    print("=== chrome trace export (load in https://ui.perfetto.dev) ===")
    for key in ("raw_local_clock", "global_clock"):
        print(f"{key}: {info[key]} ({info['records'][key]} records)")
    eng = info["engine"]
    print(f"engine: {eng['messages_delivered']} messages, "
          f"{eng['bytes_delivered']:.0f} bytes delivered")
    for level, stats in sorted(info["sync"].items()):
        print(f"sync[{level}]: rounds={stats['rounds']:.0f} "
              f"mean_rtt={stats['mean_rtt']:.3g}s "
              f"max_abs_residual={stats['max_abs_residual']:.3g}s")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    targets = sorted(TARGETS) if args.target == "all" else [args.target]

    def run_targets() -> None:
        for name in targets:
            t0 = time.time()
            if name == "fault_recovery":
                output = fault_recovery.format_result(fault_recovery.run(
                    scale=args.scale, seed=args.seed,
                    scenario=args.scenario, jobs=args.jobs,
                ))
            elif name == "service_slo":
                output = service_slo.format_result(service_slo.run(
                    scale=args.scale, seed=args.seed,
                    jobs=args.jobs, slo=args.slo,
                ))
            else:
                output = TARGETS[name](args.scale, args.seed, args.jobs)
            print(output)
            print(f"[{name}: {time.time() - t0:.1f}s]\n")
        if args.chrome_trace_dir and (
            "fig10" in targets or args.target == "all"
        ):
            _export_chrome_traces(
                args.chrome_trace_dir, args.scale, args.seed
            )
        if args.chrome_trace_dir and "fault_recovery" in targets:
            info = fault_recovery.export_chrome_traces(
                args.chrome_trace_dir, scale=args.scale, seed=args.seed,
                scenario=args.scenario,
            )
            print("=== fault-recovery chrome trace "
                  "(load in https://ui.perfetto.dev) ===")
            print(f"{info['path']}: {info['records']} records, "
                  f"{info['fault_events']} fault spans, "
                  f"{info['resync_events']} resync rounds")

    sink: CountingSink | None = None
    recorder: SpanRecorder | None = None
    registry: MetricsRegistry | None = None
    bank: TimeSeriesBank | None = None
    profiler: Profiler | None = None
    with ExitStack() as stack:
        if args.check and args.check_report:
            print("--check and --check-report are mutually exclusive",
                  file=sys.stderr)
            return 2
        if args.check:
            # Env-based so --jobs worker processes inherit the mode.
            stack.enter_context(checking("strict"))
        elif args.check_report:
            stack.enter_context(
                checking("report", report_dir=args.check_report)
            )
        if args.obs_summary:
            sink = CountingSink()
        if args.critical_path:
            recorder = SpanRecorder()
        if sink is not None and recorder is not None:
            # Tee counts + spans off one stream.  run_jobs replays the
            # full per-job event stream into non-counting parents, so
            # both parts see every event under --jobs N as well.
            stack.enter_context(default_sink(TeeSink(sink, recorder)))
        elif recorder is not None:
            stack.enter_context(default_sink(recorder))
        elif sink is not None:
            stack.enter_context(default_sink(sink))
        if args.obs_summary or args.health_report:
            # One registry serves both outputs when both are requested.
            registry = MetricsRegistry()
            stack.enter_context(default_metrics(registry))
        if args.health_report:
            bank = TimeSeriesBank()
            stack.enter_context(default_timeseries(bank))
        if args.profile:
            profiler = Profiler()
            stack.enter_context(default_profiler(profiler))
        run_targets()
    if args.obs_summary:
        _print_obs_summary(sink, registry, profiler)
    if args.profile:
        json_path, speedscope_path = write_profile(
            profiler, args.profile,
            meta={
                "targets": targets,
                "scale": args.scale,
                "seed": args.seed,
                "jobs": args.jobs,
            },
        )
        print("=== simulator self-profile ===")
        print(format_table(profiler))
        print(f"profile.json: {json_path}")
        print(f"speedscope: {speedscope_path} "
              "(open in https://www.speedscope.app)")
    analyses: list[dict] | None = None
    if args.critical_path:
        analyses = analyze_recorder(recorder)
        cp_path = write_critical_path(
            args.critical_path, analyses,
            meta={"targets": targets, "scale": args.scale,
                  "seed": args.seed},
        )
        print("=== sync-round critical path ===")
        print(format_critical_path(analyses))
        print(f"critical_path.json: {cp_path}")
        if bank is not None:
            # Feed the measured depth ratios to the depth_anomaly
            # detector before the health verdict is computed below.
            for entry in analyses:
                bank.sample(
                    DEPTH_METRIC,
                    entry["duration_s"],
                    entry["depth"]["ratio"],
                )
    if args.health_report:
        _write_health_report(
            args.health_report, targets, args, bank, registry,
            critical_path=analyses,
        )
    if args.check_report:
        path, merged = write_aggregate(args.check_report)
        print("=== sanitizer report ===")
        print(f"runs checked: {merged.runs}, "
              f"events: {merged.events_checked}, "
              f"violations: {len(merged.violations)}"
              + (f" (+{merged.dropped} dropped)" if merged.dropped else ""))
        print(f"check_report.json: {path}")
        if not merged.ok:
            print(merged.format_text())
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
